package provex_test

// Doc-drift contract for ARCHITECTURE.md: the map must mention every
// internal/ package and every cmd/ binary by name. The directory
// listing is read live, so adding a package without a row here (or
// renaming one and orphaning its row) fails the build, the same deal
// observability_test.go enforces for metric families.

import (
	"os"
	"strings"
	"testing"
)

// entries lists the subdirectory names of dir (non-directories are
// skipped; hidden directories too).
func entries(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if de.IsDir() && !strings.HasPrefix(de.Name(), ".") {
			names = append(names, de.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("no subdirectories under %s", dir)
	}
	return names
}

func TestArchitectureDocCoversTree(t *testing.T) {
	doc, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, pkg := range entries(t, "internal") {
		// A package is "mentioned" when its name appears as a word —
		// backtick-quoted in the tables, or bare in the diagrams.
		if !strings.Contains(text, "`"+pkg+"`") && !containsWord(text, pkg) {
			t.Errorf("internal/%s is not mentioned in ARCHITECTURE.md", pkg)
		}
	}
	for _, bin := range entries(t, "cmd") {
		if !strings.Contains(text, bin) {
			t.Errorf("cmd/%s is not mentioned in ARCHITECTURE.md", bin)
		}
	}
}

// TestArchitectureDocNamesExist is the reverse direction: every
// `internal/...` path the map cites must exist in the tree, so a
// package rename cannot orphan its documentation.
func TestArchitectureDocNamesExist(t *testing.T) {
	doc, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(doc), "\n") {
		for rest := line; ; {
			i := strings.Index(rest, "internal/")
			if i < 0 {
				break
			}
			name := rest[i+len("internal/"):]
			if j := strings.IndexAny(name, "`{ .,|)"); j >= 0 {
				name = name[:j]
			}
			rest = rest[i+len("internal/"):]
			if name == "" {
				continue
			}
			if _, err := os.Stat("internal/" + name); err != nil {
				t.Errorf("ARCHITECTURE.md cites internal/%s which does not exist (line: %s)",
					name, strings.TrimSpace(line))
			}
		}
	}
}

// containsWord reports whether text contains name delimited by
// non-identifier characters (so "core" in "score" does not count).
func containsWord(text, name string) bool {
	for idx := 0; ; {
		i := strings.Index(text[idx:], name)
		if i < 0 {
			return false
		}
		i += idx
		before := byte(' ')
		if i > 0 {
			before = text[i-1]
		}
		after := byte(' ')
		if j := i + len(name); j < len(text) {
			after = text[j]
		}
		if !isIdent(before) && !isIdent(after) {
			return true
		}
		idx = i + len(name)
	}
}

func isIdent(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
