package provex_test

// One benchmark per table/figure of the paper's evaluation (Section
// VI), each wrapping the corresponding experiment at bench scale and
// reporting the figure's headline quantities as custom metrics. Run
// with:
//
//	go test -bench=. -benchmem
//
// Full-size regeneration (the paper's 700k/4.25M message runs) goes
// through cmd/provbench -scale paper; these benchmarks keep the suite
// executable in CI time while exercising the identical code paths.

import (
	"strconv"
	"sync"
	"testing"

	"provex/internal/core"
	"provex/internal/experiments"
	"provex/internal/gen"
	"provex/internal/pipeline"
	"provex/internal/stream"
	"provex/internal/tweet"
)

// benchScale shrinks the experiment streams so a full -bench=. pass
// stays in the minutes range.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Messages:      20_000,
		SweepMessages: 20_000,
		PoolLimit:     400,
		BundleLimit:   200,
		SweepLimits:   []int{80, 400, 1600},
		Checkpoints:   5,
		Seed:          1,
	}
}

// cell parses a table cell as float for metric reporting.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// lastRow returns the final row of a table.
func lastRow(t *experiments.Table) []string {
	return t.Rows[len(t.Rows)-1]
}

// sharedThree caches one three-method pass across the figure-view
// benchmarks so -bench=. ingests the main stream once, mirroring how
// the paper derives Figures 7/8/11/12/13 from the same simulation.
// sync.Once rather than a nil check: `go test -bench` can run benchmark
// functions on fresh goroutines (and -cpu fans out further), so a plain
// lazy-init global would race between the first two figure benchmarks.
var (
	sharedThreeOnce sync.Once
	sharedThree     *experiments.ThreeResult
)

func three(b *testing.B) *experiments.ThreeResult {
	b.Helper()
	sharedThreeOnce.Do(func() {
		sharedThree = experiments.RunThreeMethods(benchScale())
	})
	return sharedThree
}

// BenchmarkFig06BundleCharacters regenerates Figure 6: the bundle size
// and time-span distributions of an unlimited full-index run.
func BenchmarkFig06BundleCharacters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig6(benchScale())
		var total float64
		for _, row := range tables[0].Rows {
			total += cell(b, row[1])
		}
		b.ReportMetric(total, "bundles")
	}
}

// BenchmarkFig07BundleGrowth regenerates Figure 7: live-bundle counts
// per method over the stream.
func BenchmarkFig07BundleGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7(three(b))
		last := lastRow(t)
		b.ReportMetric(cell(b, last[1]), "full_bundles")
		b.ReportMetric(cell(b, last[2]), "partial_bundles")
		b.ReportMetric(cell(b, last[3]), "limit_bundles")
	}
}

// BenchmarkFig08AccuracyReturn regenerates Figure 8: accuracy and
// return of the partial methods against the full-index ground truth.
func BenchmarkFig08AccuracyReturn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig8(three(b))
		acc, ret := lastRow(tabs[0]), lastRow(tabs[1])
		b.ReportMetric(cell(b, acc[1]), "partial_acc")
		b.ReportMetric(cell(b, acc[2]), "limit_acc")
		b.ReportMetric(cell(b, ret[1]), "partial_ret")
		b.ReportMetric(cell(b, ret[2]), "limit_ret")
	}
}

// BenchmarkFig09PoolSweep regenerates Figure 9: accuracy across bundle
// pool limits.
func BenchmarkFig09PoolSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9(benchScale())
		last := lastRow(t)
		b.ReportMetric(cell(b, last[1]), "acc_smallest_pool")
		b.ReportMetric(cell(b, last[len(last)-1]), "acc_largest_pool")
	}
}

// BenchmarkFig10Showcases regenerates Figure 10: the scripted showcase
// events are ingested, retrieved and their trails rendered.
func BenchmarkFig10Showcases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, trails := experiments.Fig10(benchScale())
		if len(trails) == 0 {
			b.Fatal("no showcase trails")
		}
		b.ReportMetric(cell(b, t.Rows[0][2]), "cics_bundle_size")
		b.ReportMetric(cell(b, t.Rows[1][2]), "tsunami_bundle_size")
	}
}

// BenchmarkFig11MemoryCost regenerates Figure 11: estimated memory and
// in-memory message counts per method.
func BenchmarkFig11MemoryCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig11(three(b))
		mem := lastRow(tabs[0])
		b.ReportMetric(cell(b, mem[1]), "full_MB")
		b.ReportMetric(cell(b, mem[2]), "partial_MB")
		b.ReportMetric(cell(b, mem[3]), "limit_MB")
	}
}

// BenchmarkFig12TimeCost regenerates Figure 12: cumulative maintenance
// time per method.
func BenchmarkFig12TimeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig12(three(b))
		last := lastRow(t)
		b.ReportMetric(cell(b, last[1]), "full_s")
		b.ReportMetric(cell(b, last[2]), "partial_s")
		b.ReportMetric(cell(b, last[3]), "limit_s")
	}
}

// BenchmarkFig13StageTime regenerates Figure 13: cumulative per-stage
// time of the partial index.
func BenchmarkFig13StageTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig13(three(b))
		last := lastRow(t)
		b.ReportMetric(cell(b, last[1]), "match_s")
		b.ReportMetric(cell(b, last[2]), "place_s")
		b.ReportMetric(cell(b, last[3]), "refine_s")
	}
}

// Ablation benches — the design choices DESIGN.md calls out.

func BenchmarkAblationCandidateFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationCandidateFetch(benchScale())
		b.ReportMetric(cell(b, t.Rows[1][1]), "acc_score_all")
		b.ReportMetric(cell(b, t.Rows[len(t.Rows)-1][1]), "acc_top2")
	}
}

func BenchmarkAblationFreshness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationFreshness(benchScale())
		b.ReportMetric(cell(b, t.Rows[1][1]), "acc_default_gamma")
		b.ReportMetric(cell(b, t.Rows[2][1]), "acc_gamma0")
	}
}

func BenchmarkAblationRefineTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationRefineTrigger(benchScale())
		b.ReportMetric(cell(b, t.Rows[1][5]), "ingest_s_throttled")
		b.ReportMetric(cell(b, t.Rows[3][5]), "ingest_s_every_insert")
	}
}

// Ingest throughput benches — serial engine vs the parallel prepare
// pipeline on identical streams. Run with -benchmem to see the
// allocation effect of the postings slab/interning overhaul too.

// ingestMsgs lazily generates one shared bench stream; iterations clone
// it because engines annotate and retain the messages they ingest.
var (
	ingestMsgsOnce sync.Once
	ingestMsgs     []*tweet.Message
)

func benchStream(b *testing.B) []*tweet.Message {
	b.Helper()
	ingestMsgsOnce.Do(func() {
		s := benchScale()
		g := gen.New(gen.DefaultConfig())
		ingestMsgs = make([]*tweet.Message, s.Messages)
		for i := range ingestMsgs {
			ingestMsgs[i] = g.Next()
		}
	})
	return ingestMsgs
}

func benchIngest(b *testing.B, workers, matchWorkers int) {
	msgs := benchStream(b)
	s := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clones := stream.CloneSlice(msgs)
		cfg := core.PartialIndexConfig(s.PoolLimit)
		cfg.Parallel = core.ParallelOptions{Workers: workers, MatchWorkers: matchWorkers}
		e := core.New(cfg, nil, nil)
		b.StartTimer()
		n, err := pipeline.IngestAll(e, stream.NewSliceSource(clones))
		if err != nil || n != len(clones) {
			b.Fatalf("IngestAll = (%d, %v)", n, err)
		}
	}
	b.ReportMetric(float64(b.N*len(msgs))/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkIngestSerial is the single-threaded baseline ingest path.
func BenchmarkIngestSerial(b *testing.B) { benchIngest(b, 1, 1) }

// BenchmarkIngestParallel runs 4 prepare workers and 2 match workers;
// the speedup over serial only materialises with GOMAXPROCS >= 4 (the
// apply stage stays single-writer).
func BenchmarkIngestParallel(b *testing.B) { benchIngest(b, 4, 2) }

func BenchmarkAblationKeywordClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationKeywordClass(benchScale())
		b.ReportMetric(cell(b, t.Rows[1][4]), "edges_keywords_on")
		b.ReportMetric(cell(b, t.Rows[2][4]), "edges_keywords_off")
	}
}
