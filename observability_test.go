package provex_test

// Doc-coverage contract for OBSERVABILITY.md: wire the metrics
// registry exactly the way provserve's fully-featured mode does
// (engine + durable WAL + pipeline service + HTTP server), render the
// exposition, and require every exported metric family to be
// documented by name in OBSERVABILITY.md — so a metric cannot ship
// without its runbook entry, and the runbook cannot go stale without
// this test noticing.

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/repl"
	"provex/internal/server"
	"provex/internal/shard"
	"provex/internal/trace"
)

// fullRegistry builds the union of every metric family the system can
// export, mirroring provserve's live durable mode.
func fullRegistry(t *testing.T) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry()
	dur, err := pipeline.OpenDurable(core.FullIndexConfig(), nil, nil, pipeline.DurableOptions{
		FS:             fsx.NewMem(),
		CheckpointPath: "engine.ckpt",
		WALDir:         "wal",
		WALSyncEvery:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	dur.RegisterMetrics(reg)
	dur.Engine().RegisterMetrics(reg)
	proc := query.New(dur.Engine(), query.DefaultOptions())
	svc := pipeline.New(proc, pipeline.Options{Durable: dur})
	svc.RegisterMetrics(reg)
	rec := trace.New(trace.Options{SampleEvery: 1})
	rec.RegisterMetrics(reg)
	// leader-side WAL shipping families
	repl.NewSource(dur, repl.SourceOptions{}).RegisterMetrics(reg)
	// follower families; the replica is never started, so only its
	// repl_-level instruments register (its engine/WAL/pipeline series
	// are the same families the durable node above already exports)
	rep, err := repl.NewReplica("http://leader.invalid", core.FullIndexConfig(), repl.ReplicaOptions{
		FS:             fsx.NewMem(),
		CheckpointPath: "replica.ckpt",
		WALDir:         "replica-wal",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.RegisterMetrics(reg)
	// registers HTTP + backend-snapshot + build-info/process families
	server.New(svc, server.WithRegistry(reg), server.WithTrace(rec))
	return reg
}

// shardRegistry mirrors provserve's sharded durable mode on its own
// registry: the shard Service reuses the provex_pipeline_* family
// names and each shard engine re-registers the serial families under a
// shard label, so the sharded stack must live apart from fullRegistry
// (one deployment runs one shell).
func shardRegistry(t *testing.T) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry()
	q := query.DefaultOptions()
	dur, err := shard.OpenDurable(core.FullIndexConfig(),
		shard.Options{Shards: 2, Query: &q},
		shard.DurableOptions{
			FS:           fsx.NewMem(),
			Dir:          "shards",
			ManifestPath: "manifest.json",
			WALSyncEvery: 8,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Close() })
	dur.Engine.RegisterMetrics(reg)
	dur.RegisterMetrics(reg)
	svc, err := shard.NewService(dur.Engine, dur, shard.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterMetrics(reg)
	return reg
}

// familyNames extracts every family declared by a `# TYPE name kind`
// line of a rendered exposition.
func familyNames(t *testing.T, exposition string) []string {
	t.Helper()
	var names []string
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			names = append(names, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no # TYPE lines in exposition")
	}
	return names
}

// allFamilyNames unions the family names of every deployment shell:
// the serial full wiring plus the sharded stack.
func allFamilyNames(t *testing.T) []string {
	t.Helper()
	seen := make(map[string]bool)
	var names []string
	for _, reg := range []*metrics.Registry{fullRegistry(t), shardRegistry(t)} {
		var b strings.Builder
		if err := reg.Expose(&b); err != nil {
			t.Fatal(err)
		}
		for _, name := range familyNames(t, b.String()) {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	return names
}

func TestObservabilityDocCoversEveryMetric(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	names := allFamilyNames(t)
	if len(names) < 20 {
		t.Errorf("only %d metric families exported — did registration get unplugged?", len(names))
	}
	for _, name := range names {
		if !strings.Contains(text, name) {
			t.Errorf("metric family %q is exported but not documented in OBSERVABILITY.md", name)
		}
	}
}

// TestObservabilityDocNamesExist is the reverse direction: every
// provex_-prefixed name the runbook mentions must actually be exported,
// catching renames that orphan documentation.
func TestObservabilityDocNamesExist(t *testing.T) {
	exported := make(map[string]bool)
	for _, name := range allFamilyNames(t) {
		exported[name] = true
	}
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(doc)))
	for sc.Scan() {
		line := sc.Text()
		for rest := line; ; {
			i := strings.Index(rest, "provex_")
			if i < 0 {
				break
			}
			name := rest[i:]
			if j := strings.IndexAny(name, "`{ .,|)"); j >= 0 {
				name = name[:j]
			}
			rest = rest[i+len("provex_"):]
			if !exported[name] {
				t.Errorf("OBSERVABILITY.md documents %q but the full wiring does not export it (line: %s)", name, strings.TrimSpace(line))
			}
		}
	}
}
