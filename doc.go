// Package provex reproduces "Provenance-based Indexing Support in
// Micro-blog Platforms" (Yao, Cui, Xue, Liu — ICDE 2012) as a Go
// library: a provenance model over micro-blog message streams, a
// summary index routing each incoming message into provenance bundles,
// adaptive pool maintenance, an on-disk bundle store, and
// bundle-granularity retrieval.
//
// The implementation lives under internal/ (see DESIGN.md for the
// module inventory); cmd/ holds the tools, examples/ runnable
// demonstrations, and bench_test.go one benchmark per figure of the
// paper's evaluation.
package provex
