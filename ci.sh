#!/usr/bin/env bash
# CI gate: build, vet, unit tests, then the race-detector pass. The
# race pass matters since the ingest pipeline grew concurrent stages
# (prepare worker pool, parallel match scoring, read-lock queries).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
