#!/usr/bin/env bash
# CI gate: build, vet, unit tests, then the race-detector pass. The
# race pass matters since the ingest pipeline grew concurrent stages
# (prepare worker pool, parallel match scoring, read-lock queries).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

# provlint: the repo's own vettool (cmd/provlint) re-runs vet with the
# eight invariant analyzers — fsxdiscipline, durabilityerr, metricsreg,
# hotpathalloc (DESIGN.md §2f) plus the concurrency four: lockguard,
# wgbalance, atomicmix, sendafterclose (§2j). The ./... sweep includes
# internal/analysis itself, so provlint self-lints. A finding here is a
# positioned diagnostic and fails the gate; deliberate exceptions carry
# //provlint:ignore with a reason.
echo "== provlint (go vet -vettool) =="
lint_tmp="$(mktemp -d)"
trap 'rm -rf "$lint_tmp"' EXIT
go build -o "$lint_tmp/provlint" ./cmd/provlint
go vet -vettool="$lint_tmp/provlint" ./...

# Fuzz smoke: each native fuzz target gets a short budget. The corpus
# work happens offline; CI just proves the harnesses still run and the
# seeds still pass.
echo "== fuzz smoke =="
go test ./internal/wal -fuzz FuzzOpenReplay -fuzztime 10s -run '^$'
go test ./internal/tokenizer -fuzz FuzzTokenizeKeywords -fuzztime 10s -run '^$'
go test ./internal/promtext -fuzz FuzzParse -fuzztime 10s -run '^$'
go test ./internal/repl -fuzz FuzzFrameDecoder -fuzztime 10s -run '^$'
go test ./internal/analysis/analyzers -fuzz FuzzParseGuardedBy -fuzztime 10s -run '^$'

# govulncheck is best-effort: it needs the tool and a vulndb, neither
# of which an offline builder has.
echo "== govulncheck (best effort) =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || { echo "govulncheck: FAILED"; exit 1; }
else
    echo "govulncheck: not installed, skipping"
fi

# -shuffle=on randomizes test order within each package, flushing out
# inter-test state dependence; the seed is printed on failure.
echo "== go test =="
go test -shuffle=on ./...

echo "== go test -race =="
go test -race -shuffle=on ./...

# Durability-critical packages once more, uncached: the fault-injection
# and WAL tests are the crash-safety gate and must not ride a stale
# test cache.
echo "== durability (-race -count=1) =="
go test -race -count=1 ./internal/fsx ./internal/wal ./internal/storage

# Crash torture: randomized fault points, crash, recover, compare
# against an uninterrupted run. Seeds are fixed; a failure prints the
# seed in the subtest name for exact reproduction.
echo "== crash torture =="
go test -count=1 -run TestCrashTorture -v ./internal/pipeline | grep -E 'seed|PASS|FAIL|ok '

# Observability loopback: a real provserve (decision tracing on)
# answers a real provload run over localhost — non-zero throughput
# (provload exits 1 on zero 2xx), a well-formed /metrics scrape
# (provload errors on malformed exposition lines) with the HTTP
# families present, and at least one harvested message ID resolving to
# a well-formed /explain breakdown (full Eq. 1 candidate component
# scores + Table II connection for a live-ingested message).
echo "== provload vs provserve loopback =="
obs_tmp="$(mktemp -d)"
serve_pid=""
trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$obs_tmp" "$lint_tmp"' EXIT
go build -o "$obs_tmp/provserve" ./cmd/provserve
go build -o "$obs_tmp/provload" ./cmd/provload
"$obs_tmp/provserve" -n 3000 -addr 127.0.0.1:18923 \
    -trace-sample 1 -trace-buffer 8192 >"$obs_tmp/serve.log" 2>&1 &
serve_pid=$!
"$obs_tmp/provload" -target http://127.0.0.1:18923 -wait 15s \
    -qps 300 -workers 8 -warmup 200ms -duration 2s \
    -mix 'search=5,prov=3,bundle=1,trending=1,explain=2' | tee "$obs_tmp/load.out"
grep -q 'provex_http_requests_total' "$obs_tmp/load.out" \
    || { echo "loopback: HTTP metric families missing from the delta"; exit 1; }
grep -Eq 'explain: ok=[1-9]' "$obs_tmp/load.out" \
    || { echo "loopback: no well-formed /explain breakdown observed"; exit 1; }
grep -q 'explain: .*malformed=0' "$obs_tmp/load.out" \
    || { echo "loopback: malformed /explain answers"; exit 1; }
grep -q 'decision quality:' "$obs_tmp/load.out" \
    || { echo "loopback: decision-quality digest missing"; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true

# Replication loopback: a durable leader ingests a generated stream
# while a follower bootstraps from its checkpoint and tails its WAL
# (DESIGN.md §2h). The gate: the follower reports ready with zero lag,
# its /search, /prov and /trending answers are byte-identical to the
# leader's, and provload drives the leader+follower pair through
# /readyz gating without errors.
echo "== leader+follower replication loopback =="
leader_pid=""
follower_pid=""
trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null;
      [ -n "$leader_pid" ] && kill "$leader_pid" 2>/dev/null;
      [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null;
      rm -rf "$obs_tmp" "$lint_tmp"' EXIT
go build -o "$obs_tmp/provgen" ./cmd/provgen
"$obs_tmp/provgen" -n 20000 -out "$obs_tmp/stream.jsonl"
"$obs_tmp/provserve" -live -in "$obs_tmp/stream.jsonl" \
    -ckpt "$obs_tmp/leader.ckpt" -wal "$obs_tmp/leader-wal" \
    -addr 127.0.0.1:18941 >"$obs_tmp/leader.log" 2>&1 &
leader_pid=$!
"$obs_tmp/provserve" -follow http://127.0.0.1:18941 \
    -ckpt "$obs_tmp/follower.ckpt" -wal "$obs_tmp/follower-wal" \
    -addr 127.0.0.1:18942 >"$obs_tmp/follower.log" 2>&1 &
follower_pid=$!
# wait for the leader to finish ingesting (message counter stable)
prev=-1; cur=""
for _ in $(seq 1 240); do
    cur="$(curl -s http://127.0.0.1:18941/metrics \
        | grep -m1 '^provex_ingest_messages_total' | awk '{print $2}')" || true
    [ -n "$cur" ] && [ "$cur" = "$prev" ] && break
    prev="$cur"; sleep 0.5
done
[ "$cur" = "20000" ] || { echo "repl loopback: leader ingested $cur, want 20000"; exit 1; }
# wait for the follower to be ready with the lag metric drained to zero
ready=""; lag=""
for _ in $(seq 1 240); do
    ready="$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:18942/readyz)" || true
    lag="$(curl -s http://127.0.0.1:18942/metrics \
        | grep -m1 '^provex_repl_lag_messages' | awk '{print $2}')" || true
    [ "$ready" = "200" ] && [ "$lag" = "0" ] && break
    sleep 0.25
done
[ "$ready" = "200" ] && [ "$lag" = "0" ] \
    || { echo "repl loopback: follower never converged (readyz=$ready lag=$lag)"; exit 1; }
# leader-parity: identical bytes on every read endpoint
for p in '/search?q=tsunami+samoa&k=10' '/prov?q=tsunami&k=10' '/trending?k=10'; do
    curl -sf "http://127.0.0.1:18941$p" >"$obs_tmp/leader.json"
    curl -sf "http://127.0.0.1:18942$p" >"$obs_tmp/follower.json"
    cmp -s "$obs_tmp/leader.json" "$obs_tmp/follower.json" \
        || { echo "repl loopback: follower diverges from leader on $p"; exit 1; }
done
echo "repl loopback: follower converged, parity on /search /prov /trending"
"$obs_tmp/provload" -target http://127.0.0.1:18941,http://127.0.0.1:18942 \
    -wait 15s -qps 200 -workers 8 -warmup 200ms -duration 2s >"$obs_tmp/repl-load.out"
grep -E 'requests:' "$obs_tmp/repl-load.out"
kill "$leader_pid" "$follower_pid"
wait "$leader_pid" "$follower_pid" 2>/dev/null || true
leader_pid=""; follower_pid=""

# Bench trajectory smoke: a tiny provbench -json run must emit a
# parseable report with the provbench/1 schema (the format
# BENCH_PR4.json is committed in).
echo "== provbench -json smoke =="
go run ./cmd/provbench -json -fig ingest -n 800 -out "$obs_tmp/bench.json" >/dev/null 2>&1
grep -q '"schema": "provbench/1"' "$obs_tmp/bench.json" \
    || { echo "bench smoke: schema tag missing"; exit 1; }

# Perf smoke: the pruned hot paths (DESIGN.md §2g) must keep cumulative
# bundle-match and placement time near-linear. 40k messages is enough
# stream for large bundles to form (where the pre-pruning placement bent
# quadratic: ~4× per doubling) yet cheap enough for every CI run; the
# factor allows 1.5× the linear extrapolation between 20k and 40k, a
# guardrail against algorithmic regression, not a microbenchmark.
echo "== perf smoke (fig13 linearity) =="
go run ./cmd/provbench -figure fig13 -max 40000 -check-linear 1.5 -out /dev/null

# Sharded ingest gate (DESIGN.md §2i): the differential equivalence
# proof and the sharded crash torture under the race detector, uncached
# — these are the correctness contract for -shards > 1 — then the
# fig13 stage-linearity smoke once more on a 4-shard engine, so the
# round protocol cannot regress the §2g hot-path guarantees.
echo "== sharded engine (equivalence + crash torture, -race) =="
go test -race -count=1 \
    -run 'TestShardedEquivalenceWithSerial|TestShardedDeterminism|TestShardedCrashTorture' \
    -v ./internal/shard | grep -E 'seed|PASS|FAIL|ok '

echo "== perf smoke (fig13 linearity, 4 shards) =="
go run ./cmd/provbench -figure fig13 -max 30000 -shards 4 -check-linear 1.5 -out /dev/null

echo "CI OK"
