#!/usr/bin/env bash
# CI gate: build, vet, unit tests, then the race-detector pass. The
# race pass matters since the ingest pipeline grew concurrent stages
# (prepare worker pool, parallel match scoring, read-lock queries).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

# Durability-critical packages once more, uncached: the fault-injection
# and WAL tests are the crash-safety gate and must not ride a stale
# test cache.
echo "== durability (-race -count=1) =="
go test -race -count=1 ./internal/fsx ./internal/wal ./internal/storage

# Crash torture: randomized fault points, crash, recover, compare
# against an uninterrupted run. Seeds are fixed; a failure prints the
# seed in the subtest name for exact reproduction.
echo "== crash torture =="
go test -count=1 -run TestCrashTorture -v ./internal/pipeline | grep -E 'seed|PASS|FAIL|ok '

echo "CI OK"
