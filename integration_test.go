package provex_test

// Integration tests exercising whole-system flows across module
// boundaries: dataset file -> engine -> pool/refinement -> disk store ->
// query -> HTTP API, plus determinism and recovery guarantees that only
// show up when the pieces run together.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/eval"
	"provex/internal/gen"
	"provex/internal/query"
	"provex/internal/server"
	"provex/internal/storage"
	"provex/internal/stream"
)

// integrationConfig is a small but structurally rich stream.
func integrationConfig() gen.Config {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 40_000
	cfg.Users = 5_000
	cfg.VocabSize = 3_000
	cfg.EventsPerDay = 1_200
	cfg.Scripts = []gen.EventScript{{
		Name:     "samoa tsunami",
		Hashtags: []string{"tsunami", "samoa"},
		Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue"},
		URLs:     2,
		Start:    time.Hour,
		HalfLife: 6 * time.Hour,
		Weight:   45,
	}}
	return cfg
}

// TestDatasetFileToQueryPipeline drives the full production path: a
// JSONL dataset file is written, re-read, streamed through a bounded
// engine backed by a disk store, and finally queried — with evicted
// bundles still reachable through the engine facade.
func TestDatasetFileToQueryPipeline(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "stream.jsonl")

	// 1. Generate a dataset file.
	f, err := os.Create(dataset)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(integrationConfig())
	const n = 15_000
	if _, err := stream.WriteJSONL(f, stream.Limit(stream.FuncSource(g.Next), n)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// 2. Replay it through a bounded engine with a disk back-end.
	st, err := storage.Open(filepath.Join(dir, "bundles"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	proc := query.New(core.New(core.PartialIndexConfig(400), st, nil), query.DefaultOptions())

	in, err := os.Open(dataset)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	src := stream.NewJSONLReader(in)
	count := 0
	for {
		m, err := src.Next()
		if err != nil {
			break
		}
		proc.Insert(m)
		count++
	}
	if count != n {
		t.Fatalf("replayed %d messages, want %d", count, n)
	}
	if err := proc.Engine().Err(); err != nil {
		t.Fatal(err)
	}

	// 3. The pool stayed bounded and evictions landed on disk.
	est := proc.Engine().Snapshot()
	if est.BundlesLive > 400+512 {
		t.Errorf("pool grew to %d despite limit 400", est.BundlesLive)
	}
	if st.Count() == 0 {
		t.Fatal("no bundles flushed to disk")
	}

	// 4. The scripted event is retrievable and its trail renders.
	hits := proc.SearchBundles("tsunami samoa", 3)
	if len(hits) == 0 {
		t.Fatal("scripted event not found via query")
	}
	trail, err := proc.Trail(hits[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trail, "bundle") {
		t.Errorf("trail malformed: %q", trail[:80])
	}

	// 5. Every disk-resident bundle loads through the engine facade and
	// validates.
	checked := 0
	for _, id := range st.IDs() {
		if checked >= 50 {
			break
		}
		b, err := proc.Engine().Bundle(id)
		if err != nil {
			t.Fatalf("Bundle(%d): %v", id, err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("bundle %d invalid after flush: %v", id, err)
		}
		checked++
	}
}

// TestEngineDeterminism: identical seeds and configuration must produce
// identical provenance output, end to end.
func TestEngineDeterminism(t *testing.T) {
	run := func() (core.Stats, *eval.EdgeSet) {
		g := gen.New(integrationConfig())
		edges := eval.NewEdgeSet()
		e := core.New(core.PartialIndexConfig(300), nil, edges.Observe)
		for i := 0; i < 8_000; i++ {
			e.Insert(g.Next())
		}
		return e.Snapshot(), edges
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1.BundlesCreated != s2.BundlesCreated || s1.EdgesCreated != s2.EdgesCreated ||
		s1.BundlesLive != s2.BundlesLive || s1.MessagesInMemory != s2.MessagesInMemory {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(s1.ConnCounts, s2.ConnCounts) {
		t.Errorf("connection mixes differ: %v vs %v", s1.ConnCounts, s2.ConnCounts)
	}
	if e1.Len() != e2.Len() || e1.IntersectCount(e2) != e1.Len() {
		t.Errorf("edge sets differ: %d vs %d (overlap %d)", e1.Len(), e2.Len(), e1.IntersectCount(e2))
	}
}

// TestStoreRecoveryAfterEngineRun: bundles flushed during a run survive
// a store reopen byte-for-byte (codec + storage + engine interplay).
func TestStoreRecoveryAfterEngineRun(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(core.BundleLimitConfig(200, 100), st, nil)
	g := gen.New(integrationConfig())
	for i := 0; i < 10_000; i++ {
		e.Insert(g.Next())
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	ids := st.IDs()
	if len(ids) == 0 {
		t.Fatal("nothing flushed")
	}
	before := make(map[bundle.ID][]byte, len(ids))
	for _, id := range ids {
		b, err := st.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		before[id] = b.Marshal()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Count() != len(ids) {
		t.Fatalf("recovered %d bundles, want %d", st2.Count(), len(ids))
	}
	for id, want := range before {
		b, err := st2.Get(id)
		if err != nil {
			t.Fatalf("Get(%d) after reopen: %v", id, err)
		}
		if !bytes.Equal(b.Marshal(), want) {
			t.Fatalf("bundle %d bytes differ after reopen", id)
		}
	}
}

// TestHTTPDemoOverGeneratedStream: the demo server answers both search
// modes over a generated stream, end to end over real HTTP.
func TestHTTPDemoOverGeneratedStream(t *testing.T) {
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	g := gen.New(integrationConfig())
	for i := 0; i < 12_000; i++ {
		proc.Insert(g.Next())
	}
	srv := httptest.NewServer(server.New(proc))
	defer srv.Close()

	get := func(path string) map[string]interface{} {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		var out map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	prov := get("/prov?q=tsunami+samoa&k=3")
	bundles := prov["bundles"].([]interface{})
	if len(bundles) == 0 {
		t.Fatal("no bundles over HTTP")
	}
	top := bundles[0].(map[string]interface{})
	if top["size"].(float64) < 5 {
		t.Errorf("event bundle suspiciously small: %v", top["size"])
	}

	search := get("/search?q=tsunami&k=5")
	if len(search["hits"].([]interface{})) == 0 {
		t.Error("no message hits over HTTP")
	}

	stats := get("/stats")
	if stats["messages"].(float64) != 12_000 {
		t.Errorf("stats messages = %v", stats["messages"])
	}
}

// TestAccuracySanity: at moderate scale the partial index must stay
// reasonably faithful to the ground truth — the paper's core claim.
func TestAccuracySanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := gen.New(integrationConfig())
	truth := eval.NewEdgeSet()
	full := core.New(core.FullIndexConfig(), nil, truth.Observe)
	partialEdges := eval.NewEdgeSet()
	partial := core.New(core.PartialIndexConfig(600), nil, partialEdges.Observe)
	for i := 0; i < 20_000; i++ {
		m := g.Next()
		full.Insert(m.Clone())
		partial.Insert(m.Clone())
	}
	m := eval.Compare(partialEdges, truth)
	if m.Accuracy < 0.7 {
		t.Errorf("partial accuracy %.3f below sanity bound 0.7 (%s)", m.Accuracy, m)
	}
	if m.Return < 0.4 {
		t.Errorf("partial return %.3f below sanity bound 0.4 (%s)", m.Return, m)
	}
}
