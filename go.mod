module provex

go 1.22
