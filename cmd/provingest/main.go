// Command provingest replays a micro-blog dataset through the
// provenance indexing engine and reports ingest statistics — the
// simulation loop of the paper's Section VI-A as a standalone tool.
//
// Usage:
//
//	provgen -n 100000 | provingest -mode partial -pool 1500
//	provingest -in stream.jsonl -mode limit -pool 1500 -bundle-limit 300 -store /tmp/bundles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"provex/internal/core"
	"provex/internal/storage"
	"provex/internal/stream"
)

func main() {
	var (
		in          = flag.String("in", "-", "input JSONL path, '-' for stdin")
		mode        = flag.String("mode", "full", "indexing mode: full | partial | limit")
		poolLimit   = flag.Int("pool", 10_000, "bundle pool limitation (partial/limit modes)")
		bundleLimit = flag.Int("bundle-limit", 500, "max bundle size (limit mode)")
		storeDir    = flag.String("store", "", "optional on-disk bundle store directory")
		progress    = flag.Int("progress", 100_000, "print a progress line every N messages (0 = off)")
	)
	flag.Parse()

	var cfg core.Config
	switch *mode {
	case "full":
		cfg = core.FullIndexConfig()
	case "partial":
		cfg = core.PartialIndexConfig(*poolLimit)
	case "limit":
		cfg = core.BundleLimitConfig(*poolLimit, *bundleLimit)
	default:
		fail("unknown mode %q (want full, partial or limit)", *mode)
	}

	var store *storage.Store
	if *storeDir != "" {
		var err error
		store, err = storage.Open(*storeDir, storage.Options{})
		if err != nil {
			fail("open store: %v", err)
		}
		defer store.Close()
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail("open %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}

	eng := core.New(cfg, store, nil)
	src := stream.NewJSONLReader(r)
	start := time.Now()
	n := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("read: %v", err)
		}
		eng.Insert(m)
		n++
		if *progress > 0 && n%*progress == 0 {
			st := eng.Snapshot()
			fmt.Fprintf(os.Stderr, "provingest: %d messages, %d live bundles, %.1f MB est., %.1fs\n",
				n, st.BundlesLive, float64(st.MemTotal())/(1<<20), time.Since(start).Seconds())
		}
	}
	if err := eng.Err(); err != nil {
		fail("engine: %v", err)
	}

	st := eng.Snapshot()
	elapsed := time.Since(start)
	fmt.Printf("mode            %s\n", *mode)
	fmt.Printf("messages        %d\n", st.Messages)
	fmt.Printf("bundles created %d\n", st.BundlesCreated)
	fmt.Printf("bundles live    %d\n", st.BundlesLive)
	fmt.Printf("edges           %d\n", st.EdgesCreated)
	for conn, c := range st.ConnCounts {
		fmt.Printf("  edges[%s] = %d\n", conn, c)
	}
	fmt.Printf("mem estimate    %.1f MB (bundles %.1f + index %.1f)\n",
		float64(st.MemTotal())/(1<<20), float64(st.MemBundles)/(1<<20), float64(st.MemIndex)/(1<<20))
	fmt.Printf("msgs in memory  %d\n", st.MessagesInMemory)
	fmt.Printf("stage time      match=%.2fs place=%.2fs refine=%.2fs\n",
		st.MatchTime.Seconds(), st.PlaceTime.Seconds(), st.RefineTime.Seconds())
	fmt.Printf("wall time       %.2fs (%.0f msg/s)\n", elapsed.Seconds(), float64(n)/elapsed.Seconds())
	if store != nil {
		fmt.Printf("store           %d bundles, %.1f MB live\n", store.Count(), float64(store.LiveBytes())/(1<<20))
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "provingest: "+format+"\n", args...)
	os.Exit(1)
}
