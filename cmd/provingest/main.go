// Command provingest replays a micro-blog dataset through the
// provenance indexing engine and reports ingest statistics — the
// simulation loop of the paper's Section VI-A as a standalone tool.
//
// Usage:
//
//	provgen -n 100000 | provingest -mode partial -pool 1500
//	provingest -in stream.jsonl -mode limit -pool 1500 -bundle-limit 300 -store /tmp/bundles
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provex/internal/cli"
	"provex/internal/core"
	"provex/internal/pipeline"
	"provex/internal/shard"
	"provex/internal/storage"
	"provex/internal/stream"
	"provex/internal/trace"
)

func main() {
	var (
		in          = flag.String("in", "-", "input JSONL path, '-' for stdin")
		mode        = flag.String("mode", "full", "indexing mode: full | partial | limit")
		poolLimit   = flag.Int("pool", 10_000, "bundle pool limitation (partial/limit modes)")
		bundleLimit = flag.Int("bundle-limit", 500, "max bundle size (limit mode)")
		storeDir    = flag.String("store", "", "optional on-disk bundle store directory")
		progress    = flag.Int("progress", 100_000, "print a progress line every N messages (0 = off)")
		workers     = flag.Int("workers", 1, "concurrent prepare (keyword extraction) workers; <=1 ingests serially")
		matchWkrs   = flag.Int("match-workers", 1, "concurrent Eq. 1 match-scoring workers on large candidate sets; <=1 scores serially")
		shards      = flag.Int("shards", 1, "independent engine shards; >1 ingests through the two-phase round protocol (DESIGN.md section 2i)")
		shardBatch  = flag.Int("shard-batch", shard.DefaultBatch, "messages buffered per sharded round (only with -shards > 1)")
		traceSample = flag.Int("trace-sample", 0, "record every Nth ingest decision and print a decision-quality digest (0 = off)")
		traceBuffer = flag.Int("trace-buffer", trace.DefaultBuffer, "decisions and refinement events retained in the trace rings")
		logLevel    = cli.LogLevelFlag()
	)
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}
	if *workers < 1 {
		*workers = 1
	}
	if *matchWkrs < 1 {
		*matchWkrs = 1
	}

	var cfg core.Config
	switch *mode {
	case "full":
		cfg = core.FullIndexConfig()
	case "partial":
		cfg = core.PartialIndexConfig(*poolLimit)
	case "limit":
		cfg = core.BundleLimitConfig(*poolLimit, *bundleLimit)
	default:
		cli.Fatal("unknown mode (want full, partial or limit)", nil, "mode", *mode)
	}
	cfg.Parallel = core.ParallelOptions{Workers: *workers, MatchWorkers: *matchWkrs}
	if *shards < 1 {
		*shards = 1
	}

	// Serial mode uses one store at -store; sharded mode gives each
	// shard its own store under -store/shard-NNN (same layout as
	// shard.OpenDurable).
	var store *storage.Store
	var stores []*storage.Store
	if *storeDir != "" && *shards == 1 {
		var err error
		store, err = storage.Open(*storeDir, storage.Options{})
		if err != nil {
			cli.Fatal("open store", err, "path", *storeDir)
		}
		defer store.Close()
	}
	if *storeDir != "" && *shards > 1 {
		for i := 0; i < *shards; i++ {
			dir := fmt.Sprintf("%s/shard-%03d", *storeDir, i)
			st, err := storage.Open(dir, storage.Options{})
			if err != nil {
				cli.Fatal("open shard store", err, "path", dir)
			}
			defer st.Close()
			stores = append(stores, st)
		}
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			cli.Fatal("open input", err, "path", *in)
		}
		defer f.Close()
		r = f
	}

	// One engine or N: the sharded engine shares the prepared-message
	// apply contract, so the read/prepare loop below is mode-agnostic.
	var (
		eng *core.Engine
		sh  *shard.Engine
		rec *trace.Recorder
	)
	if *shards > 1 {
		if *traceSample > 0 {
			// trace.Recorder is not safe for the concurrent commit
			// goroutines; see DESIGN.md section 2i.
			slog.Warn("tracing is unavailable with -shards > 1; disabling", "shards", *shards)
			*traceSample = 0
		}
		var err error
		sh, err = shard.New(cfg, shard.Options{Shards: *shards, Batch: *shardBatch}, stores, nil)
		if err != nil {
			cli.Fatal("sharded engine", err)
		}
	} else {
		eng = core.New(cfg, store, nil)
		if *traceSample > 0 {
			rec = trace.New(trace.Options{SampleEvery: *traceSample, Buffer: *traceBuffer, Logger: slog.Default()})
			eng.SetTracer(rec)
		}
	}
	src := stream.NewJSONLReader(r)

	// Serial and parallel ingest share the apply loop: next() yields
	// prepared messages either inline or from the worker pool, always in
	// stream order so the resulting state is identical.
	next := func() (core.Prepared, error) {
		m, err := src.Next()
		if err != nil {
			return core.Prepared{}, err
		}
		return core.Prepare(m), nil
	}
	if *workers > 1 {
		ps := pipeline.NewPreparedSource(src, *workers, 0)
		next = ps.Next
	}

	// SIGINT/SIGTERM break the loop gracefully: the current message
	// finishes, parked flushes drain, the store closes cleanly, and the
	// statistics for everything ingested so far still print.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	start := time.Now()
	n := 0
loop:
	for {
		select {
		case <-ctx.Done():
			slog.Warn("interrupted — draining", "messages", n)
			break loop
		default:
		}
		p, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cli.Fatal("read", err)
		}
		if sh != nil {
			if err := sh.IngestPrepared(p); err != nil {
				cli.Fatal("sharded ingest", err)
			}
		} else {
			eng.InsertPrepared(p)
		}
		n++
		if *progress > 0 && n%*progress == 0 {
			st := snapshotOf(eng, sh)
			slog.Info("progress", "messages", n, "bundles_live", st.BundlesLive,
				"mem_mb", fmt.Sprintf("%.1f", float64(st.MemTotal())/(1<<20)),
				"seconds", fmt.Sprintf("%.1f", time.Since(start).Seconds()))
		}
	}
	if sh != nil {
		// Resolve the buffered partial round before reporting.
		if err := sh.Flush(); err != nil {
			cli.Fatal("sharded flush", err)
		}
	}
	if store != nil {
		// Re-attempt any parked flushes and make the store durable
		// before reporting; a still-failing disk is a hard error.
		if err := eng.DrainFlushRetries(); err != nil {
			cli.Fatal("flush drain", err)
		}
		if err := store.Sync(); err != nil {
			cli.Fatal("store sync", err)
		}
	}
	for i, st := range stores {
		if err := sh.ShardEngine(i).DrainFlushRetries(); err != nil {
			cli.Fatal("flush drain", err, "shard", i)
		}
		if err := st.Sync(); err != nil {
			cli.Fatal("store sync", err, "shard", i)
		}
	}
	if sh != nil {
		if err := sh.Err(); err != nil {
			cli.Fatal("engine", err)
		}
	} else if err := eng.Err(); err != nil {
		cli.Fatal("engine", err)
	}

	st := snapshotOf(eng, sh)
	elapsed := time.Since(start)
	fmt.Printf("mode            %s\n", *mode)
	fmt.Printf("messages        %d\n", st.Messages)
	fmt.Printf("bundles created %d\n", st.BundlesCreated)
	fmt.Printf("bundles live    %d\n", st.BundlesLive)
	fmt.Printf("edges           %d\n", st.EdgesCreated)
	for conn, c := range st.ConnCounts {
		fmt.Printf("  edges[%s] = %d\n", conn, c)
	}
	fmt.Printf("mem estimate    %.1f MB (bundles %.1f + index %.1f)\n",
		float64(st.MemTotal())/(1<<20), float64(st.MemBundles)/(1<<20), float64(st.MemIndex)/(1<<20))
	fmt.Printf("msgs in memory  %d\n", st.MessagesInMemory)
	// Stage split of ingest cost — the paper's Figure 13 breakdown, with
	// the prepare (tokenize) stage separated out since it is the part
	// the -workers pool runs concurrently.
	stageTotal := st.PrepareTime + st.MatchTime + st.PlaceTime + st.RefineTime
	pct := func(d time.Duration) float64 {
		if stageTotal <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(stageTotal)
	}
	fmt.Printf("stage time      prepare=%.2fs (%.0f%%) match=%.2fs (%.0f%%) place=%.2fs (%.0f%%) refine=%.2fs (%.0f%%)\n",
		st.PrepareTime.Seconds(), pct(st.PrepareTime),
		st.MatchTime.Seconds(), pct(st.MatchTime),
		st.PlaceTime.Seconds(), pct(st.PlaceTime),
		st.RefineTime.Seconds(), pct(st.RefineTime))
	fmt.Printf("workers         prepare=%d match=%d\n", *workers, *matchWkrs)
	fmt.Printf("wall time       %.2fs (%.0f msg/s)\n", elapsed.Seconds(), float64(n)/elapsed.Seconds())
	if sh != nil {
		// Per-shard balance, cross-shard resolution rate, and the
		// critical-path (span) throughput an unstarved scheduler would
		// reach — see EXPERIMENTS.md "Sharded scaling".
		fmt.Printf("shards          %d (batch %d, rounds %d, cross-shard %d = %.1f%%)\n",
			sh.Shards(), sh.Batch(), sh.Rounds(), sh.Cross(), 100*float64(sh.Cross())/float64(max(n, 1)))
		for i := 0; i < sh.Shards(); i++ {
			ss := sh.ShardSnapshot(i)
			fmt.Printf("  shard[%d]      %d msgs, %d bundles live\n", i, ss.Messages, ss.BundlesLive)
		}
		span := sh.Span()
		fmt.Printf("span time       probe=%.2fs reduce=%.2fs commit=%.2fs total=%.2fs (%.0f msg/s span)\n",
			span.Probe.Seconds(), span.Reduce.Seconds(), span.Commit.Seconds(),
			span.Total().Seconds(), float64(n)/span.Total().Seconds())
	}
	if store != nil {
		fmt.Printf("store           %d bundles, %.1f MB live\n", store.Count(), float64(store.LiveBytes())/(1<<20))
	}
	for i, st := range stores {
		fmt.Printf("store[%d]        %d bundles, %.1f MB live\n", i, st.Count(), float64(st.LiveBytes())/(1<<20))
	}
	if rec != nil {
		// Decision-quality digest over the retained trace window: how
		// often matching failed (new bundle), how decisively joins won,
		// and the fraction of near-tie joins — the messages most
		// sensitive to Eq. 1 weight tuning.
		dg := trace.ComputeDigest(rec.Recent(rec.Buffer()), 0)
		fmt.Printf("trace digest    decisions=%d new_bundle=%.1f%% mean_margin=%.3f near_ties=%.1f%% (margin<%.2f) refine_events=%d\n",
			dg.Decisions, 100*dg.NewBundleRate, dg.MeanMargin,
			100*dg.NearTieRate, dg.NearTie, len(rec.Refinements(rec.Buffer())))
	}
}

// snapshotOf reads aggregate statistics from whichever engine shape is
// active.
func snapshotOf(eng *core.Engine, sh *shard.Engine) core.Stats {
	if sh != nil {
		return sh.Snapshot()
	}
	return eng.Snapshot()
}
