// Command provlint is the repo's vettool: a suite of static analyzers
// that mechanically enforce contracts the compiler cannot see — the
// fsx fault-injection boundary, durability error discipline, metrics
// registration, and hot-path allocation budgets.
//
// It speaks the `go vet` vettool protocol and is meant to be run as
//
//	go build -o /tmp/provlint ./cmd/provlint
//	go vet -vettool=/tmp/provlint ./...
//
// (ci.sh does exactly this). Individual analyzers can be disabled with
// -<name>=false vet flags; individual findings are silenced in place
// with //provlint:ignore <analyzer> <reason> comments.
package main

import (
	"provex/internal/analysis"
	"provex/internal/analysis/analyzers"
)

func main() {
	analysis.Main(analyzers.All()...)
}
