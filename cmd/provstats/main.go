// Command provstats profiles a micro-blog dataset: message rates,
// indicant coverage, RT share, user-activity skew and text length
// distribution. It exists to validate the synthetic substitution for
// the paper's 2009 crawl (DESIGN.md, S3) — the generator's output
// should show the same qualitative shapes the paper describes: heavy
// user skew, a meaningful RT share, noisy short fragments, hashtag-
// carried topics.
//
// Usage:
//
//	provgen -n 100000 | provstats
//	provstats -in stream.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"provex/internal/cli"
	"provex/internal/metrics"
	"provex/internal/stream"
)

func main() {
	in := flag.String("in", "-", "input JSONL path, '-' for stdin")
	logLevel := cli.LogLevelFlag()
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			cli.Fatal("open input", err, "path", *in)
		}
		defer f.Close()
		r = f
	}

	var (
		n, withTag, withURL, withMention, rts, noise int
		tagOcc, urlOcc                               int
		first, last                                  time.Time
		users                                        = map[string]int{}
		tags                                         = map[string]int{}
		lenHist                                      = metrics.NewHistogram(20, 40, 60, 80, 100, 120, 140)
	)

	src := stream.NewJSONLReader(r)
	for {
		m, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cli.Fatal("read", err)
		}
		n++
		if first.IsZero() {
			first = m.Date
		}
		last = m.Date
		users[m.User]++
		lenHist.Observe(int64(len(m.Text)))
		if len(m.Hashtags) > 0 {
			withTag++
			tagOcc += len(m.Hashtags)
			for _, h := range m.Hashtags {
				tags[h]++
			}
		}
		if len(m.URLs) > 0 {
			withURL++
			urlOcc += len(m.URLs)
		}
		if len(m.Mentions) > 0 {
			withMention++
		}
		if m.IsRT() {
			rts++
		}
		if len(m.Hashtags) == 0 && len(m.URLs) == 0 && !m.IsRT() {
			noise++
		}
	}
	if n == 0 {
		cli.Fatal("empty dataset", nil)
	}

	span := last.Sub(first)
	fmt.Printf("messages        %d\n", n)
	fmt.Printf("time span       %s .. %s (%.1f days)\n",
		first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"), span.Hours()/24)
	if span > 0 {
		fmt.Printf("rate            %.0f msgs/day\n", float64(n)/(span.Hours()/24))
	}
	pct := func(x int) float64 { return 100 * float64(x) / float64(n) }
	fmt.Printf("with hashtag    %d (%.1f%%), %.2f tags/message overall\n", withTag, pct(withTag), float64(tagOcc)/float64(n))
	fmt.Printf("with URL        %d (%.1f%%)\n", withURL, pct(withURL))
	fmt.Printf("with mention    %d (%.1f%%)\n", withMention, pct(withMention))
	fmt.Printf("re-shares (RT)  %d (%.1f%%)\n", rts, pct(rts))
	fmt.Printf("bare noise      %d (%.1f%%)  [no tag, URL or RT]\n", noise, pct(noise))
	fmt.Printf("distinct users  %d\n", len(users))
	fmt.Printf("distinct tags   %d\n", len(tags))

	// User skew: share of traffic from the top 1% of users.
	counts := make([]int, 0, len(users))
	for _, c := range users {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := len(counts) / 100
	if top < 1 {
		top = 1
	}
	topSum := 0
	for _, c := range counts[:top] {
		topSum += c
	}
	fmt.Printf("user skew       top 1%% of users post %.1f%% of messages\n", pct(topSum))

	// Top hashtags.
	type tc struct {
		tag string
		c   int
	}
	all := make([]tc, 0, len(tags))
	for t, c := range tags {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].tag < all[j].tag
	})
	fmt.Printf("top hashtags    ")
	for i := 0; i < len(all) && i < 8; i++ {
		fmt.Printf("#%s(%d) ", all[i].tag, all[i].c)
	}
	fmt.Println()

	fmt.Printf("\ntext length distribution:\n%s", lenHist.String())
}
