// Command provserve hosts the demo site of the paper (Section V-C's
// t.pku.edu.cn/tweet analogue): it loads or generates a dataset, builds
// the provenance index, and serves message search, bundle search and
// trail visualisation over HTTP.
//
// Usage:
//
//	provserve -n 50000 -addr :8080              # generate, build, serve
//	provserve -in stream.jsonl -addr :8080      # serve an existing dataset
//	provgen -n 0 | provserve -follow            # live ingest from stdin while serving
//	provserve -in s.jsonl -ckpt engine.ckpt     # resume from/persist a checkpoint
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/server"
	"provex/internal/stream"
)

func main() {
	var (
		in     = flag.String("in", "", "input JSONL path ('' = generate -n messages; with -follow, '' = stdin)")
		n      = flag.Int("n", 50_000, "messages to generate when -in is empty (ignored with -follow)")
		seed   = flag.Int64("seed", 1, "generator seed")
		addr   = flag.String("addr", ":8080", "listen address")
		follow = flag.Bool("follow", false, "keep ingesting from the input while serving (live mode)")
		ckpt   = flag.String("ckpt", "", "checkpoint path: resume from it when present, keep it updated while running")
		walDir = flag.String("wal", "", "write-ahead log directory (live mode, requires -ckpt): crash-safe ingest — acknowledged messages survive a kill")
	)
	flag.Parse()

	src := openSource(*in, *n, *seed, *follow)
	if *follow {
		serveLive(src, *addr, *ckpt, *walDir)
		return
	}

	// Build-then-serve: ingest everything, then answer queries
	// single-threaded through the processor.
	proc := buildProcessor(*ckpt)
	start := time.Now()
	count := ingestAll(proc, src)
	st := proc.Snapshot()
	fmt.Fprintf(os.Stderr, "provserve: indexed %d messages into %d bundles in %.1fs\n",
		count, st.BundlesLive, time.Since(start).Seconds())
	if *ckpt != "" {
		if err := proc.Engine().SaveCheckpoint(nil, *ckpt); err != nil {
			fail("checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "provserve: checkpoint written to %s\n", *ckpt)
	}
	fmt.Fprintf(os.Stderr, "provserve: listening on %s — try /prov?q=tsunami+samoa\n", *addr)
	serveHTTP(*addr, server.New(proc), nil)
}

// buildProcessor restores from a checkpoint when one exists, otherwise
// starts fresh.
func buildProcessor(ckpt string) *query.Processor {
	cfg := core.FullIndexConfig()
	if ckpt != "" {
		eng, err := core.LoadCheckpoint(cfg, nil, nil, nil, ckpt)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the checkpoint will be created on save.
		case err != nil:
			fail("restore %s: %v", ckpt, err)
		default:
			st := eng.Snapshot()
			fmt.Fprintf(os.Stderr, "provserve: resumed from %s (%d messages, %d bundles)\n",
				ckpt, st.Messages, st.BundlesLive)
			// The baseline message index is not checkpointed; rebuild
			// it from the restored pool so /search covers the full
			// recovered history, not just post-resume messages.
			proc := query.New(eng, query.DefaultOptions())
			proc.Reindex()
			return proc
		}
	}
	return query.New(core.New(cfg, nil, nil), query.DefaultOptions())
}

// serveHTTP runs a configured http.Server until it fails or a
// SIGINT/SIGTERM arrives, then drains in-flight requests and calls
// onShutdown (ingest drain + final checkpoint in live mode).
func serveHTTP(addr string, h http.Handler, onShutdown func()) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail("serve: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "provserve: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "provserve: http shutdown: %v\n", err)
		}
		if onShutdown != nil {
			onShutdown()
		}
		fmt.Fprintln(os.Stderr, "provserve: clean exit")
	}
}

func openSource(in string, n int, seed int64, follow bool) stream.Source {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			fail("open %s: %v", in, err)
		}
		return stream.NewJSONLReader(f)
	case follow:
		return stream.NewJSONLReader(os.Stdin)
	default:
		cfg := gen.DefaultConfig()
		cfg.Seed = seed
		cfg.Scripts = []gen.EventScript{{
			Name:     "samoa tsunami",
			Hashtags: []string{"tsunami", "samoa"},
			Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast"},
			URLs:     3, Start: 6 * time.Hour, HalfLife: 8 * time.Hour, Weight: 40,
		}}
		return stream.Limit(stream.FuncSource(gen.New(cfg).Next), n)
	}
}

func ingestAll(proc *query.Processor, src stream.Source) int {
	count := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return count
		}
		if err != nil {
			fail("read: %v", err)
		}
		proc.Insert(m)
		count++
	}
}

// serveLive runs the concurrent pipeline: ingest from src in the
// background while the HTTP server answers queries against live state.
// With both -ckpt and -wal the ingest path is crash-safe: every
// message is WAL-appended before it is applied, and a kill at any
// point recovers to checkpoint + WAL replay on the next start.
func serveLive(src stream.Source, addr, ckpt, walDir string) {
	cfg := core.FullIndexConfig()
	opts := pipeline.Options{}
	var proc *query.Processor
	var dur *pipeline.Durable
	switch {
	case walDir != "" && ckpt == "":
		fail("-wal requires -ckpt")
	case walDir != "":
		var err error
		dur, err = pipeline.OpenDurable(cfg, nil, nil, pipeline.DurableOptions{
			CheckpointPath: ckpt,
			WALDir:         walDir,
			WALSyncEvery:   64,
		})
		if err != nil {
			fail("durable open: %v", err)
		}
		if st := dur.Engine().Snapshot(); st.Messages > 0 {
			fmt.Fprintf(os.Stderr, "provserve: recovered %d messages (%d replayed from WAL)\n",
				st.Messages, dur.Replayed())
		}
		proc = query.New(dur.Engine(), query.DefaultOptions())
		// Recovery bypassed the processor, so rebuild the baseline
		// message index from the recovered pool — /search answers over
		// the full recovered history, not just post-resume messages.
		proc.Reindex()
		opts.Durable = dur
		opts.CheckpointEvery = 50_000
	default:
		proc = buildProcessor(ckpt)
		if ckpt != "" {
			opts.CheckpointEvery = 50_000
			opts.CheckpointPath = ckpt
		}
	}
	svc := pipeline.New(proc, opts)
	svc.Start()

	go func() {
		for {
			m, err := src.Next()
			if err == io.EOF {
				if err := svc.Stop(); err != nil {
					fail("pipeline: %v", err)
				}
				fmt.Fprintf(os.Stderr, "provserve: input drained after %d messages; still serving\n", svc.Ingested())
				return
			}
			if err != nil {
				fail("read: %v", err)
			}
			if err := svc.Submit(m); err != nil {
				if errors.Is(err, pipeline.ErrClosed) {
					return // shutdown raced the feed; drop the rest
				}
				fail("submit: %v", err)
			}
		}
	}()

	go func() {
		for range time.Tick(10 * time.Second) {
			st := svc.Snapshot()
			fmt.Fprintf(os.Stderr, "provserve: live %d messages, %d bundles, %.1f MB\n",
				st.Messages, st.BundlesLive, float64(st.MemTotal())/(1<<20))
		}
	}()

	fmt.Fprintf(os.Stderr, "provserve: live mode on %s\n", addr)
	serveHTTP(addr, server.New(svc), func() {
		// Stop drains the ingest queue and writes the final checkpoint
		// (which also truncates the WAL in durable mode).
		if err := svc.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "provserve: pipeline: %v\n", err)
		}
		if dur != nil {
			if err := dur.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "provserve: wal close: %v\n", err)
			}
		}
	})
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "provserve: "+format+"\n", args...)
	os.Exit(1)
}
