// Command provserve hosts the demo site of the paper (Section V-C's
// t.pku.edu.cn/tweet analogue): it loads or generates a dataset, builds
// the provenance index, and serves message search, bundle search and
// trail visualisation over HTTP.
//
// Usage:
//
//	provserve -n 50000 -addr :8080              # generate, build, serve
//	provserve -in stream.jsonl -addr :8080      # serve an existing dataset
//	provgen -n 0 | provserve -follow            # live ingest from stdin while serving
//	provserve -in s.jsonl -ckpt engine.ckpt     # resume from/persist a checkpoint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/server"
	"provex/internal/stream"
)

func main() {
	var (
		in     = flag.String("in", "", "input JSONL path ('' = generate -n messages; with -follow, '' = stdin)")
		n      = flag.Int("n", 50_000, "messages to generate when -in is empty (ignored with -follow)")
		seed   = flag.Int64("seed", 1, "generator seed")
		addr   = flag.String("addr", ":8080", "listen address")
		follow = flag.Bool("follow", false, "keep ingesting from the input while serving (live mode)")
		ckpt   = flag.String("ckpt", "", "checkpoint path: resume from it when present, keep it updated while running")
	)
	flag.Parse()

	proc := buildProcessor(*ckpt)

	src := openSource(*in, *n, *seed, *follow)
	if *follow {
		serveLive(proc, src, *addr, *ckpt)
		return
	}

	// Build-then-serve: ingest everything, then answer queries
	// single-threaded through the processor.
	start := time.Now()
	count := ingestAll(proc, src)
	st := proc.Snapshot()
	fmt.Fprintf(os.Stderr, "provserve: indexed %d messages into %d bundles in %.1fs\n",
		count, st.BundlesLive, time.Since(start).Seconds())
	if *ckpt != "" {
		if err := saveCheckpoint(proc.Engine(), *ckpt); err != nil {
			fail("checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "provserve: checkpoint written to %s\n", *ckpt)
	}
	fmt.Fprintf(os.Stderr, "provserve: listening on %s — try /prov?q=tsunami+samoa\n", *addr)
	if err := http.ListenAndServe(*addr, server.New(proc)); err != nil {
		fail("serve: %v", err)
	}
}

// buildProcessor restores from a checkpoint when one exists, otherwise
// starts fresh.
func buildProcessor(ckpt string) *query.Processor {
	cfg := core.FullIndexConfig()
	if ckpt != "" {
		if f, err := os.Open(ckpt); err == nil {
			defer f.Close()
			eng, err := core.RestoreCheckpoint(cfg, nil, nil, f)
			if err != nil {
				fail("restore %s: %v", ckpt, err)
			}
			st := eng.Snapshot()
			fmt.Fprintf(os.Stderr, "provserve: resumed from %s (%d messages, %d bundles)\n",
				ckpt, st.Messages, st.BundlesLive)
			// Note: the baseline message index is not checkpointed; a
			// resumed server answers /prov and /bundle over the full
			// history but /search only over post-resume messages.
			return query.New(eng, query.DefaultOptions())
		}
	}
	return query.New(core.New(cfg, nil, nil), query.DefaultOptions())
}

func openSource(in string, n int, seed int64, follow bool) stream.Source {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			fail("open %s: %v", in, err)
		}
		return stream.NewJSONLReader(f)
	case follow:
		return stream.NewJSONLReader(os.Stdin)
	default:
		cfg := gen.DefaultConfig()
		cfg.Seed = seed
		cfg.Scripts = []gen.EventScript{{
			Name:     "samoa tsunami",
			Hashtags: []string{"tsunami", "samoa"},
			Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast"},
			URLs:     3, Start: 6 * time.Hour, HalfLife: 8 * time.Hour, Weight: 40,
		}}
		return stream.Limit(stream.FuncSource(gen.New(cfg).Next), n)
	}
}

func ingestAll(proc *query.Processor, src stream.Source) int {
	count := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return count
		}
		if err != nil {
			fail("read: %v", err)
		}
		proc.Insert(m)
		count++
	}
}

// serveLive runs the concurrent pipeline: ingest from src in the
// background while the HTTP server answers queries against live state.
func serveLive(proc *query.Processor, src stream.Source, addr, ckpt string) {
	opts := pipeline.Options{}
	if ckpt != "" {
		opts.CheckpointEvery = 50_000
		opts.CheckpointPath = ckpt
	}
	svc := pipeline.New(proc, opts)
	svc.Start()

	go func() {
		for {
			m, err := src.Next()
			if err == io.EOF {
				if err := svc.Stop(); err != nil {
					fail("pipeline: %v", err)
				}
				fmt.Fprintf(os.Stderr, "provserve: input drained after %d messages; still serving\n", svc.Ingested())
				return
			}
			if err != nil {
				fail("read: %v", err)
			}
			if err := svc.Submit(m); err != nil {
				fail("submit: %v", err)
			}
		}
	}()

	go func() {
		for range time.Tick(10 * time.Second) {
			st := svc.Snapshot()
			fmt.Fprintf(os.Stderr, "provserve: live %d messages, %d bundles, %.1f MB\n",
				st.Messages, st.BundlesLive, float64(st.MemTotal())/(1<<20))
		}
	}()

	fmt.Fprintf(os.Stderr, "provserve: live mode on %s\n", addr)
	if err := http.ListenAndServe(addr, server.New(svc)); err != nil {
		fail("serve: %v", err)
	}
}

func saveCheckpoint(eng *core.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.WriteCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "provserve: "+format+"\n", args...)
	os.Exit(1)
}
