// Command provserve hosts the demo site of the paper (Section V-C's
// t.pku.edu.cn/tweet analogue): it loads or generates a dataset, builds
// the provenance index, and serves message search, bundle search and
// trail visualisation over HTTP. Every run also exposes operational
// telemetry at GET /metrics (Prometheus text exposition; see
// OBSERVABILITY.md) and, with -pprof, runtime profiles under
// /debug/pprof/.
//
// Usage:
//
//	provserve -n 50000 -addr :8080              # generate, build, serve
//	provserve -in stream.jsonl -addr :8080      # serve an existing dataset
//	provgen -n 0 | provserve -live              # live ingest from stdin while serving
//	provserve -in s.jsonl -ckpt engine.ckpt     # resume from/persist a checkpoint
//	provserve -n 50000 -pprof                   # + /debug/pprof/ for provload runs
//
// Replication: a live durable leader (-live -ckpt -wal) automatically
// ships its WAL under /repl/; a follower replays it:
//
//	provserve -live -ckpt l.ckpt -wal lwal -addr :8080           # leader
//	provserve -follow http://leader:8080 -ckpt f.ckpt -wal fwal \
//	          -addr :8081                                        # read replica
//
// A follower serves the same read endpoints with an explicit staleness
// bound: beyond -max-lag messages (or -stale-after of leader silence)
// it flips /readyz and answers data requests 503 + Retry-After until
// it has caught up.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"provex/internal/cli"
	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/repl"
	"provex/internal/server"
	"provex/internal/shard"
	"provex/internal/stream"
	"provex/internal/trace"
)

func main() {
	var (
		in          = flag.String("in", "", "input JSONL path ('' = generate -n messages; with -live, '' = stdin)")
		n           = flag.Int("n", 50_000, "messages to generate when -in is empty (ignored with -live)")
		seed        = flag.Int64("seed", 1, "generator seed")
		addr        = flag.String("addr", ":8080", "listen address")
		live        = flag.Bool("live", false, "keep ingesting from the input while serving (live mode)")
		follow      = flag.String("follow", "", "run as a read replica of the leader at this base URL (requires -ckpt and -wal)")
		maxLag      = flag.Uint64("max-lag", 10_000, "follower staleness bound in messages; beyond it reads answer 503 + Retry-After")
		staleAfter  = flag.Duration("stale-after", 30*time.Second, "follower gates reads after this much leader silence (staleness unquantifiable)")
		ckpt        = flag.String("ckpt", "", "checkpoint path: resume from it when present, keep it updated while running")
		walDir      = flag.String("wal", "", "write-ahead log directory (live mode, requires -ckpt): crash-safe ingest — acknowledged messages survive a kill")
		shards      = flag.Int("shards", 1, "engine shards; >1 ingests through the sharded round protocol (0 = auto: min(GOMAXPROCS, 8)); replication and tracing require 1")
		pprofOn     = flag.Bool("pprof", false, "expose /debug/pprof/ runtime profiles (opt-in: costs CPU while sampling)")
		logEvery    = flag.Duration("log-every", 10*time.Second, "cadence of structured progress lines in live mode")
		traceSample = flag.Int("trace-sample", 0, "record every Nth ingest decision for /explain and /trace/* (0 = tracing off)")
		traceBuffer = flag.Int("trace-buffer", trace.DefaultBuffer, "decisions and refinement events retained in the trace rings")
		logLevel    = cli.LogLevelFlag()
	)
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}
	ns := *shards
	if ns == 0 {
		ns = min(runtime.GOMAXPROCS(0), 8)
	}
	if ns > 1 && *traceSample > 0 {
		// trace.Recorder is not safe for the concurrent commit
		// goroutines; see DESIGN.md section 2i.
		slog.Warn("tracing is unavailable with -shards > 1; disabling", "shards", ns)
		*traceSample = 0
	}
	rec := newRecorder(*traceSample, *traceBuffer)

	if *follow != "" {
		if ns > 1 {
			cli.Fatal("flags", errors.New("-follow requires -shards 1: WAL shipping replicates a single serial log (DESIGN.md section 2i)"))
		}
		serveFollower(*follow, *addr, *ckpt, *walDir, *maxLag, *staleAfter, *pprofOn, *logEvery)
		return
	}
	src := openSource(*in, *n, *seed, *live)
	if ns > 1 {
		serveSharded(src, ns, *addr, *ckpt, *walDir, *live, *pprofOn, *logEvery)
		return
	}
	if *live {
		serveLive(src, *addr, *ckpt, *walDir, *pprofOn, *logEvery, rec)
		return
	}

	// Build-then-serve: ingest everything, then answer queries
	// single-threaded through the processor.
	proc := buildProcessor(*ckpt)
	proc.Engine().SetTracer(rec)
	start := time.Now()
	count := ingestAll(proc, src)
	st := proc.Snapshot()
	slog.Info("indexed", "messages", count, "bundles", st.BundlesLive,
		"seconds", fmt.Sprintf("%.1f", time.Since(start).Seconds()))
	if *ckpt != "" {
		if err := proc.Engine().SaveCheckpoint(nil, *ckpt); err != nil {
			cli.Fatal("checkpoint", err)
		}
		slog.Info("checkpoint written", "path", *ckpt)
	}
	reg := metrics.NewRegistry()
	proc.Engine().RegisterMetrics(reg)
	slog.Info("listening", "addr", *addr, "try", "/prov?q=tsunami+samoa")
	serveHTTP(*addr, server.New(proc, serverOptions(reg, *pprofOn, rec)...), nil)
}

// serveFollower runs provserve as a WAL-shipping read replica: it
// bootstraps from the leader's newest checkpoint, tails its WAL with
// retries and backoff, and serves the same read endpoints with an
// explicit staleness bound — /readyz flips and data requests answer
// 503 + Retry-After whenever the replica is bootstrapping, lagging
// beyond maxLag, cut off from the leader past staleAfter, or diverged.
func serveFollower(leaderURL, addr, ckpt, walDir string, maxLag uint64, staleAfter time.Duration, pprofOn bool, logEvery time.Duration) {
	if ckpt == "" || walDir == "" {
		cli.Fatal("flags", errors.New("-follow requires -ckpt and -wal: a follower is a full crash-recoverable node"))
	}
	reg := metrics.NewRegistry()
	rep, err := repl.NewReplica(leaderURL, core.FullIndexConfig(), repl.ReplicaOptions{
		CheckpointPath: ckpt,
		WALDir:         walDir,
		MaxLag:         maxLag,
		StaleAfter:     staleAfter,
	})
	if err != nil {
		cli.Fatal("follower", err)
	}
	rep.RegisterMetrics(reg)
	rep.Start()

	// Structured heartbeat mirroring the leader's live-mode line.
	go func() {
		for range time.Tick(logEvery) {
			st := rep.Health()
			attrs := []any{"ready", st.Ready, "applied", rep.Applied(), "lag", rep.Lag()}
			if !st.Ready {
				attrs = append(attrs, "reason", st.Reason)
			}
			slog.Info("follower", attrs...)
		}
	}()

	opts := serverOptions(reg, pprofOn, nil)
	opts = append(opts, server.WithHealth(rep.Health))
	slog.Info("follower mode", "leader", leaderURL, "addr", addr,
		"max_lag", maxLag, "stale_after", staleAfter.String())
	serveHTTP(addr, server.New(rep, opts...), func() {
		// Stop drains the apply queue and writes a final checkpoint, so
		// the next start recovers locally instead of re-bootstrapping.
		if err := rep.Stop(); err != nil {
			slog.Error("replica stop", "err", err)
		}
	})
}

// newRecorder builds the decision tracer, nil when sampling is off
// (every consumer accepts a nil recorder).
func newRecorder(sample, buffer int) *trace.Recorder {
	if sample <= 0 {
		return nil
	}
	rec := trace.New(trace.Options{SampleEvery: sample, Buffer: buffer, Logger: slog.Default()})
	slog.Info("decision tracing on", "sample_every", sample, "buffer", rec.Buffer())
	return rec
}

// serverOptions assembles the observability options every mode shares.
func serverOptions(reg *metrics.Registry, pprofOn bool, rec *trace.Recorder) []server.Option {
	opts := []server.Option{server.WithRegistry(reg)}
	if pprofOn {
		opts = append(opts, server.WithPprof())
	}
	if rec != nil {
		rec.RegisterMetrics(reg)
		opts = append(opts, server.WithTrace(rec))
	}
	return opts
}

// buildProcessor restores from a checkpoint when one exists, otherwise
// starts fresh.
func buildProcessor(ckpt string) *query.Processor {
	cfg := core.FullIndexConfig()
	if ckpt != "" {
		eng, err := core.LoadCheckpoint(cfg, nil, nil, nil, ckpt)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the checkpoint will be created on save.
		case err != nil:
			cli.Fatal("restore checkpoint", err, "path", ckpt)
		default:
			st := eng.Snapshot()
			slog.Info("resumed from checkpoint", "path", ckpt,
				"messages", st.Messages, "bundles", st.BundlesLive)
			// The baseline message index is not checkpointed; rebuild
			// it from the restored pool so /search covers the full
			// recovered history, not just post-resume messages.
			proc := query.New(eng, query.DefaultOptions())
			proc.Reindex()
			return proc
		}
	}
	return query.New(core.New(cfg, nil, nil), query.DefaultOptions())
}

// serveHTTP runs a configured http.Server until it fails or a
// SIGINT/SIGTERM arrives, then drains in-flight requests and calls
// onShutdown (ingest drain + final checkpoint in live mode).
func serveHTTP(addr string, h http.Handler, onShutdown func()) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		cli.Fatal("serve", err)
	case sig := <-sigc:
		slog.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			slog.Error("http shutdown", "err", err)
		}
		if onShutdown != nil {
			onShutdown()
		}
		slog.Info("clean exit")
	}
}

func openSource(in string, n int, seed int64, live bool) stream.Source {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			cli.Fatal("open input", err, "path", in)
		}
		return stream.NewJSONLReader(f)
	case live:
		return stream.NewJSONLReader(os.Stdin)
	default:
		cfg := gen.DefaultConfig()
		cfg.Seed = seed
		cfg.Scripts = []gen.EventScript{{
			Name:     "samoa tsunami",
			Hashtags: []string{"tsunami", "samoa"},
			Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast"},
			URLs:     3, Start: 6 * time.Hour, HalfLife: 8 * time.Hour, Weight: 40,
		}}
		return stream.Limit(stream.FuncSource(gen.New(cfg).Next), n)
	}
}

func ingestAll(proc *query.Processor, src stream.Source) int {
	count := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return count
		}
		if err != nil {
			cli.Fatal("read", err)
		}
		proc.Insert(m)
		count++
	}
}

// serveSharded hosts the site on the sharded round engine (DESIGN.md
// section 2i): N shards ingest through two-phase rounds, queries fan
// out and merge under the serial tie order. With -ckpt and -wal the
// node is durable — -ckpt holds the cross-shard manifest and -wal the
// per-shard WAL/checkpoint tree, with the coordinated barrier keeping
// recovery crash-consistent across shards. Replication shipping is a
// single-shard feature: a sharded leader exposes no /repl/ endpoints.
func serveSharded(src stream.Source, ns int, addr, ckpt, walDir string, live, pprofOn bool, logEvery time.Duration) {
	cfg := core.FullIndexConfig()
	q := query.DefaultOptions()
	opts := shard.Options{Shards: ns, Query: &q}
	reg := metrics.NewRegistry()
	var eng *shard.Engine
	var dur *shard.Durable
	svcOpts := shard.ServiceOptions{}
	switch {
	case walDir != "" && ckpt == "":
		cli.Fatal("flags", errors.New("-wal requires -ckpt"))
	case ckpt != "" && walDir == "":
		cli.Fatal("flags", errors.New("sharded mode: -ckpt requires -wal (the checkpoint is a manifest over the per-shard tree)"))
	case walDir != "":
		var err error
		dur, err = shard.OpenDurable(cfg, opts, shard.DurableOptions{
			Dir:          walDir,
			ManifestPath: ckpt,
			WALSyncEvery: 64,
		})
		if err != nil {
			cli.Fatal("sharded durable open", err)
		}
		eng = dur.Engine
		if g := eng.Global(); g > 0 {
			slog.Info("recovered", "messages", g, "wal_replayed", dur.Replayed())
		}
		// Recovery bypassed the processors; rebuild their baseline
		// message indexes from the recovered pools.
		eng.Reindex()
		dur.RegisterMetrics(reg)
		svcOpts.CheckpointEvery = 50_000
	default:
		var err error
		eng, err = shard.New(cfg, opts, nil, nil)
		if err != nil {
			cli.Fatal("sharded engine", err)
		}
	}
	eng.RegisterMetrics(reg)
	svc, err := shard.NewService(eng, dur, svcOpts)
	if err != nil {
		cli.Fatal("sharded service", err)
	}
	svc.RegisterMetrics(reg)
	svc.Start()

	feed := func() {
		for {
			m, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				cli.Fatal("read", err)
			}
			if err := svc.Submit(m); err != nil {
				if errors.Is(err, shard.ErrClosed) {
					return // shutdown raced the feed; drop the rest
				}
				cli.Fatal("submit", err)
			}
		}
	}
	if live {
		go func() {
			feed()
			slog.Info("input drained, still serving", "messages", svc.Ingested())
		}()
	} else {
		// Build-then-serve: ingest everything before listening. The
		// service stays up for queries after Stop — only ingest closes.
		start := time.Now()
		feed()
		if err := svc.Stop(); err != nil {
			cli.Fatal("sharded ingest", err)
		}
		st := svc.Snapshot()
		slog.Info("indexed", "messages", svc.Ingested(), "bundles", st.BundlesLive,
			"shards", ns, "seconds", fmt.Sprintf("%.1f", time.Since(start).Seconds()))
	}

	go func() {
		for range time.Tick(logEvery) {
			st := svc.Snapshot()
			attrs := []any{
				"messages", st.Messages,
				"bundles", st.BundlesLive,
				"shards", ns,
				"mem_mb", fmt.Sprintf("%.1f", float64(st.MemTotal())/(1<<20)),
				"checkpoints", svc.Checkpoints(),
			}
			if st.Degraded() {
				attrs = append(attrs, "flush_parked", st.FlushParked, "flush_dropped", st.FlushDropped)
			}
			slog.Info("live", attrs...)
		}
	}()

	slog.Info("sharded mode", "addr", addr, "shards", ns, "live", live, "durable", dur != nil,
		"note", "replication shipping requires -shards 1")
	serveHTTP(addr, server.New(svc, serverOptions(reg, pprofOn, nil)...), func() {
		if err := svc.Stop(); err != nil {
			slog.Error("sharded stop", "err", err)
		}
		if dur != nil {
			if err := dur.Close(); err != nil {
				slog.Error("sharded close", "err", err)
			}
		}
	})
}

// serveLive runs the concurrent pipeline: ingest from src in the
// background while the HTTP server answers queries against live state.
// With both -ckpt and -wal the ingest path is crash-safe: every
// message is WAL-appended before it is applied, and a kill at any
// point recovers to checkpoint + WAL replay on the next start.
func serveLive(src stream.Source, addr, ckpt, walDir string, pprofOn bool, logEvery time.Duration, rec *trace.Recorder) {
	cfg := core.FullIndexConfig()
	opts := pipeline.Options{}
	reg := metrics.NewRegistry()
	var proc *query.Processor
	var dur *pipeline.Durable
	var shipper *repl.Source
	switch {
	case walDir != "" && ckpt == "":
		cli.Fatal("flags", errors.New("-wal requires -ckpt"))
	case walDir != "":
		var err error
		dur, err = pipeline.OpenDurable(cfg, nil, nil, pipeline.DurableOptions{
			CheckpointPath: ckpt,
			WALDir:         walDir,
			WALSyncEvery:   64,
		})
		if err != nil {
			cli.Fatal("durable open", err)
		}
		if st := dur.Engine().Snapshot(); st.Messages > 0 {
			slog.Info("recovered", "messages", st.Messages, "wal_replayed", dur.Replayed())
		}
		proc = query.New(dur.Engine(), query.DefaultOptions())
		// Recovery bypassed the processor, so rebuild the baseline
		// message index from the recovered pool — /search answers over
		// the full recovered history, not just post-resume messages.
		proc.Reindex()
		dur.RegisterMetrics(reg)
		opts.Durable = dur
		opts.CheckpointEvery = 50_000
		// A durable live node is a replication leader: ship the WAL
		// under /repl/ for followers to bootstrap from and tail.
		shipper = repl.NewSource(dur, repl.SourceOptions{})
		shipper.RegisterMetrics(reg)
	default:
		proc = buildProcessor(ckpt)
		if ckpt != "" {
			opts.CheckpointEvery = 50_000
			opts.CheckpointPath = ckpt
		}
	}
	proc.Engine().SetTracer(rec)
	proc.Engine().RegisterMetrics(reg)
	svc := pipeline.New(proc, opts)
	svc.RegisterMetrics(reg)
	svc.Start()

	go func() {
		for {
			m, err := src.Next()
			if err == io.EOF {
				if err := svc.Stop(); err != nil {
					cli.Fatal("pipeline", err)
				}
				slog.Info("input drained, still serving", "messages", svc.Ingested())
				return
			}
			if err != nil {
				cli.Fatal("read", err)
			}
			if err := svc.Submit(m); err != nil {
				if errors.Is(err, pipeline.ErrClosed) {
					return // shutdown raced the feed; drop the rest
				}
				cli.Fatal("submit", err)
			}
		}
	}()

	// Structured progress heartbeat: the same numbers /metrics exports,
	// logged on a cadence so a terminal tail shows where ingest stands.
	go func() {
		for range time.Tick(logEvery) {
			st := svc.Snapshot()
			attrs := []any{
				"messages", st.Messages,
				"bundles", st.BundlesLive,
				"mem_mb", fmt.Sprintf("%.1f", float64(st.MemTotal())/(1<<20)),
				"checkpoints", svc.Checkpoints(),
			}
			if st.Degraded() {
				attrs = append(attrs, "flush_parked", st.FlushParked, "flush_dropped", st.FlushDropped)
			}
			slog.Info("live", attrs...)
		}
	}()

	srvOpts := serverOptions(reg, pprofOn, rec)
	if shipper != nil {
		srvOpts = append(srvOpts, server.WithReplication(shipper))
	}
	slog.Info("live mode", "addr", addr, "durable", dur != nil, "leader", shipper != nil)
	serveHTTP(addr, server.New(svc, srvOpts...), func() {
		// Stop drains the ingest queue and writes the final checkpoint
		// (which also truncates the WAL in durable mode).
		if err := svc.Stop(); err != nil {
			slog.Error("pipeline stop", "err", err)
		}
		if dur != nil {
			if err := dur.Close(); err != nil {
				slog.Error("wal close", "err", err)
			}
		}
	})
}
