// Command provsearch loads a dataset into the engine and answers one
// query in either retrieval mode, contrasting the paper's Figure 1
// (message search) with Figure 2 (provenance bundle search).
//
// Usage:
//
//	provsearch -in stream.jsonl -q "yankee redsox"            # bundle mode
//	provsearch -in stream.jsonl -q "yankee redsox" -messages  # Figure 1 baseline
//	provsearch -in stream.jsonl -trail 42                     # render bundle 42
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/stream"
)

func main() {
	var (
		in       = flag.String("in", "-", "input JSONL path, '-' for stdin")
		q        = flag.String("q", "", "query string")
		messages = flag.Bool("messages", false, "message search (Figure 1) instead of bundle search")
		k        = flag.Int("k", 10, "results to return")
		trailID  = flag.Uint64("trail", 0, "render the provenance trail of this bundle ID instead of searching")
	)
	flag.Parse()
	if *q == "" && *trailID == 0 {
		fail("need -q or -trail")
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail("open %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}

	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	src := stream.NewJSONLReader(r)
	n := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("read: %v", err)
		}
		proc.Insert(m)
		n++
	}
	fmt.Fprintf(os.Stderr, "provsearch: indexed %d messages\n", n)

	switch {
	case *trailID != 0:
		trail, err := proc.Trail(bundle.ID(*trailID))
		if err != nil {
			fail("trail: %v", err)
		}
		fmt.Print(trail)
	case *messages:
		fmt.Printf("message search (Fig. 1) for %q:\n", *q)
		for _, h := range proc.SearchMessages(*q, *k) {
			fmt.Printf("  %6.3f  %s\n", h.Score, h.Msg)
		}
	default:
		fmt.Printf("provenance bundle search (Fig. 2) for %q:\n", *q)
		for _, h := range proc.SearchBundles(*q, *k) {
			fmt.Printf("  %s\n", h)
		}
		fmt.Fprintln(os.Stderr, "provsearch: use -trail <id> to render a bundle's provenance trail")
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "provsearch: "+format+"\n", args...)
	os.Exit(1)
}
