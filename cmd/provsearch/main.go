// Command provsearch loads a dataset into the engine and answers one
// query in either retrieval mode, contrasting the paper's Figure 1
// (message search) with Figure 2 (provenance bundle search).
//
// Usage:
//
//	provsearch -in stream.jsonl -q "yankee redsox"            # bundle mode
//	provsearch -in stream.jsonl -q "yankee redsox" -messages  # Figure 1 baseline
//	provsearch -in stream.jsonl -trail 42                     # render bundle 42
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"provex/internal/bundle"
	"provex/internal/cli"
	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/stream"
)

func main() {
	var (
		in       = flag.String("in", "-", "input JSONL path, '-' for stdin")
		q        = flag.String("q", "", "query string")
		messages = flag.Bool("messages", false, "message search (Figure 1) instead of bundle search")
		k        = flag.Int("k", 10, "results to return")
		trailID  = flag.Uint64("trail", 0, "render the provenance trail of this bundle ID instead of searching")
		logLevel = cli.LogLevelFlag()
	)
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}
	if *q == "" && *trailID == 0 {
		cli.Fatal("need -q or -trail", nil)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			cli.Fatal("open input", err, "path", *in)
		}
		defer f.Close()
		r = f
	}

	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	src := stream.NewJSONLReader(r)
	n := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cli.Fatal("read", err)
		}
		proc.Insert(m)
		n++
	}
	slog.Info("indexed", "messages", n)

	switch {
	case *trailID != 0:
		trail, err := proc.Trail(bundle.ID(*trailID))
		if err != nil {
			cli.Fatal("trail", err)
		}
		fmt.Print(trail)
	case *messages:
		fmt.Printf("message search (Fig. 1) for %q:\n", *q)
		for _, h := range proc.SearchMessages(*q, *k) {
			fmt.Printf("  %6.3f  %s\n", h.Score, h.Msg)
		}
	default:
		fmt.Printf("provenance bundle search (Fig. 2) for %q:\n", *q)
		for _, h := range proc.SearchBundles(*q, *k) {
			fmt.Printf("  %s\n", h)
		}
		slog.Info("use -trail <id> to render a bundle's provenance trail")
	}
}
