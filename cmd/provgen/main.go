// Command provgen generates a synthetic micro-blog dataset (JSONL) with
// the statistical shape of the paper's 2009 Twitter crawl — the
// documented substitute for the unavailable original data (DESIGN.md,
// S3).
//
// Usage:
//
//	provgen -n 700000 -out stream.jsonl
//	provgen -n 100000 -showcases -seed 7 -out small.jsonl
package main

import (
	"flag"
	"io"
	"log/slog"
	"os"
	"time"

	"provex/internal/cli"
	"provex/internal/fsx"
	"provex/internal/gen"
	"provex/internal/stream"
)

func main() {
	var (
		n          = flag.Int("n", 100_000, "number of messages to generate")
		out        = flag.String("out", "-", "output path, '-' for stdout")
		seed       = flag.Int64("seed", 1, "RNG seed (equal seeds give identical streams)")
		msgsPerDay = flag.Int("msgs-per-day", 70_000, "mean arrival rate (paper's crawl: ~70k/day)")
		users      = flag.Int("users", 50_000, "user population")
		eventsDay  = flag.Float64("events-per-day", 2200, "topical event spawn rate")
		noise      = flag.Float64("noise", 0.35, "fraction of noisy chatter messages")
		showcases  = flag.Bool("showcases", false, "inject the Figure 10 showcase events (IBM CICS, Samoa tsunami)")
		logLevel   = cli.LogLevelFlag()
	)
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}

	cfg := gen.DefaultConfig()
	cfg.Seed = *seed
	cfg.MsgsPerDay = *msgsPerDay
	cfg.Users = *users
	cfg.EventsPerDay = *eventsDay
	cfg.NoiseRatio = *noise
	if *showcases {
		cfg.Scripts = []gen.EventScript{
			{
				Name:     "ibm cics partner conference",
				Hashtags: []string{"cics", "ibm"},
				Topic:    []string{"cics", "partner", "conference", "mainframe", "keynote", "session", "announce"},
				URLs:     2, Start: 6 * time.Hour, HalfLife: 12 * time.Hour, Weight: 25,
			},
			{
				Name:     "samoa tsunami",
				Hashtags: []string{"tsunami", "samoa"},
				Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast", "relief"},
				URLs:     3, Start: 18 * time.Hour, HalfLife: 8 * time.Hour, Weight: 40,
			},
		}
	}

	// The generated dataset feeds the store via provingest, so its
	// write goes through the fsx boundary like every other write on
	// the durability path (fsxdiscipline enforces this).
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := fsx.OS{}.Create(*out)
		if err != nil {
			cli.Fatal("create output", err, "path", *out)
		}
		defer f.Close()
		w = f
	}

	g := gen.New(cfg)
	written, err := stream.WriteJSONL(w, stream.Limit(stream.FuncSource(g.Next), *n))
	if err != nil {
		cli.Fatal("write", err)
	}
	slog.Info("wrote dataset", "messages", written, "seed", *seed, "out", *out)
}
