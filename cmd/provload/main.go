// Command provload drives a running provserve with a controlled HTTP
// workload and reports throughput and latency percentiles — the load
// half of the observability story (OBSERVABILITY.md): run provload
// against a server, watch /metrics (or capture a pprof profile) while
// it runs, and the before/after metrics delta it prints doubles as a
// bottleneck report.
//
// Two pacing modes:
//
//   - open loop (-qps > 0): requests are dispatched on a fixed schedule
//     regardless of how fast the server answers; when every worker is
//     busy the tick is dropped and counted, so saturation shows up as
//     shed load instead of silently stretching the schedule;
//   - closed loop (-qps 0): -workers concurrent clients issue requests
//     back-to-back, measuring the server's ceiling.
//
// The workload mixes /search, /prov, /bundle, /trending and /explain
// by weight (-mix), drawing query strings from -queries (one per line)
// or a built-in list matched to provserve's default generated dataset.
// Bundle IDs are harvested from /prov responses and message IDs from
// /search responses on the fly, so /bundle and /explain requests hit
// real entities. When the mix includes explain, every /explain answer
// is validated (full Eq. 1/Eq. 5 breakdown or a 404-with-hint) and the
// report closes with a decision-quality digest computed from
// /trace/recent: new-bundle rate, mean winning margin, near-tie rate.
//
// Usage:
//
//	provload -qps 500 -duration 10s                         # paced, default mix
//	provload -qps 0 -workers 32 -duration 30s               # closed-loop ceiling
//	provload -target http://host:8080 -wait 15s -json       # wait for /readyz, JSON report
//	provload -target http://leader:8080,http://replica:8081 # spread reads leader+follower
//
// -wait polls GET /readyz on every target until each answers 200.
// During the run, a 503 with a Retry-After header (a gated follower or
// a shedding leader) parks that worker for the advertised interval
// (bounded) instead of hammering a degraded server; the waits are
// counted in the report.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provex/internal/cli"
	"provex/internal/promtext"
	"provex/internal/trace"
)

type config struct {
	target   string
	targets  []string // parsed from target (comma-separated)
	qps      float64
	workers  int
	duration time.Duration
	warmup   time.Duration
	timeout  time.Duration
	wait     time.Duration
	mix      string
	queries  string
	seed     int64
	jsonOut  bool
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.target, "target", "http://127.0.0.1:8080", "base URL(s) of provserve instance(s), comma-separated (e.g. leader,follower) — requests spread uniformly")
	flag.Float64Var(&cfg.qps, "qps", 0, "open-loop target rate; 0 = closed loop (workers go back-to-back)")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent client workers")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured run length")
	flag.DurationVar(&cfg.warmup, "warmup", time.Second, "untimed warmup before the measured run (also harvests bundle IDs)")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request timeout")
	flag.DurationVar(&cfg.wait, "wait", 0, "poll the server for readiness up to this long before starting")
	flag.StringVar(&cfg.mix, "mix", "search=5,prov=3,bundle=1,trending=1", "endpoint weights")
	flag.StringVar(&cfg.queries, "queries", "", "query file, one query per line ('' = built-in list)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON instead of text")
	logLevel := cli.LogLevelFlag()
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}

	rep, err := run(cfg)
	if err != nil {
		cli.Fatal("run", err)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			cli.Fatal("encode report", err)
		}
	} else {
		rep.writeText(os.Stdout)
	}
	if rep.ByClass["2xx"] == 0 {
		cli.Fatal("zero successful requests", nil)
	}
}

// op is one weighted workload entry.
type op struct {
	name   string
	weight int
}

// parseMix turns "search=5,prov=3" into a weighted op list.
func parseMix(mix string) ([]op, error) {
	known := map[string]bool{"search": true, "prov": true, "bundle": true, "trending": true, "stats": true, "explain": true}
	var ops []op
	total := 0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint", part)
		}
		ops = append(ops, op{name: name, weight: weight})
		total += weight
	}
	if total == 0 {
		return nil, errors.New("mix has zero total weight")
	}
	return ops, nil
}

// pick draws one op by weight.
func pick(ops []op, rng *rand.Rand) string {
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	n := rng.Intn(total)
	for _, o := range ops {
		n -= o.weight
		if n < 0 {
			return o.name
		}
	}
	return ops[len(ops)-1].name
}

// defaultQueries match the topical vocabulary of provserve's default
// generated dataset (the samoa-tsunami event script).
var defaultQueries = []string{
	"tsunami samoa", "quake warning", "rescue coast", "tsunami warning",
	"samoa", "quake", "coast rescue samoa",
}

func loadQueries(path string) ([]string, error) {
	if path == "" {
		return defaultQueries, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var qs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			qs = append(qs, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("query file %s is empty", path)
	}
	return qs, nil
}

// idPool holds bundle IDs harvested from /prov responses, so /bundle
// requests target bundles that actually exist.
type idPool struct {
	mu  sync.Mutex
	ids []uint64 // guarded by mu
}

func (p *idPool) add(ids []uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if len(p.ids) >= 1024 {
			return
		}
		p.ids = append(p.ids, id)
	}
}

func (p *idPool) pick(rng *rand.Rand) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return uint64(1 + rng.Intn(64)) // cold start: guess low IDs
	}
	return p.ids[rng.Intn(len(p.ids))]
}

func (p *idPool) sparse() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ids) < 256
}

// sample is one completed request.
type sample struct {
	op   string
	code int // 0 = transport error
	d    time.Duration
}

// LatencySummary reports percentiles over one sample population.
// Values are milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / 1e6
	}
	return LatencySummary{
		Count: len(lats),
		P50Ms: q(0.50), P90Ms: q(0.90), P99Ms: q(0.99),
		MaxMs: float64(lats[len(lats)-1]) / 1e6,
	}
}

// DeltaLine is one metrics series whose value changed across the run.
type DeltaLine struct {
	Series string  `json:"series"`
	Delta  float64 `json:"delta"`
}

// Report is the full run result.
type Report struct {
	Target      string                    `json:"target"`
	Mode        string                    `json:"mode"`
	TargetQPS   float64                   `json:"target_qps,omitempty"`
	Workers     int                       `json:"workers"`
	DurationSec float64                   `json:"duration_sec"`
	Requests    int                       `json:"requests"`
	ByClass     map[string]int            `json:"by_class"`
	Errors      int                       `json:"errors"`
	Dropped     int64                     `json:"dropped,omitempty"`
	RetryWaits  int64                     `json:"retry_after_waits,omitempty"`
	RetrySec    float64                   `json:"retry_after_sec,omitempty"`
	Throughput  float64                   `json:"throughput_rps"`
	Overall     LatencySummary            `json:"overall"`
	Endpoints   map[string]LatencySummary `json:"endpoints"`
	HasMetrics  bool                      `json:"has_metrics"`
	Delta       []DeltaLine               `json:"metrics_delta,omitempty"`
	HotStages   []DeltaLine               `json:"hot_stages,omitempty"`
	Explain     *ExplainStats             `json:"explain,omitempty"`
	Quality     *trace.Digest             `json:"decision_quality,omitempty"`
}

// ExplainStats classifies every /explain answer seen during the
// measured run. ok means a well-formed full breakdown (msg_id echoed,
// candidates present, Table II connection set); unsampled is the
// documented 404-with-hint for IDs the sampler skipped; malformed is
// anything else — a server-side tracing bug.
type ExplainStats struct {
	OK        int64 `json:"ok"`
	Unsampled int64 `json:"unsampled"`
	Malformed int64 `json:"malformed"`
}

func (r *Report) writeText(w io.Writer) {
	fmt.Fprintf(w, "provload: target=%s mode=%s workers=%d", r.Target, r.Mode, r.Workers)
	if r.Mode == "open" {
		fmt.Fprintf(w, " target_qps=%g", r.TargetQPS)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "requests: %d (2xx=%d 3xx=%d 4xx=%d 5xx=%d errors=%d", r.Requests,
		r.ByClass["2xx"], r.ByClass["3xx"], r.ByClass["4xx"], r.ByClass["5xx"], r.Errors)
	if r.Dropped > 0 {
		fmt.Fprintf(w, " dropped_ticks=%d", r.Dropped)
	}
	fmt.Fprintln(w, ")")
	if r.RetryWaits > 0 {
		fmt.Fprintf(w, "retry-after honored: %d waits, %.1fs parked\n", r.RetryWaits, r.RetrySec)
	}
	fmt.Fprintf(w, "throughput: %.1f req/s over %.1fs\n", r.Throughput, r.DurationSec)
	fmt.Fprintf(w, "latency overall: %s\n", fmtSummary(r.Overall))
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  /%-9s %s\n", name, fmtSummary(r.Endpoints[name]))
	}
	if r.Explain != nil {
		fmt.Fprintf(w, "explain: ok=%d unsampled=%d malformed=%d\n",
			r.Explain.OK, r.Explain.Unsampled, r.Explain.Malformed)
	}
	if r.Quality != nil {
		fmt.Fprintf(w, "decision quality: decisions=%d new_bundle=%.1f%% mean_margin=%.3f near_ties=%.1f%% (margin<%.2f)\n",
			r.Quality.Decisions, 100*r.Quality.NewBundleRate, r.Quality.MeanMargin,
			100*r.Quality.NearTieRate, r.Quality.NearTie)
	}
	if !r.HasMetrics {
		fmt.Fprintln(w, "/metrics: unavailable on target (run provserve from this tree?)")
		return
	}
	if len(r.HotStages) > 0 {
		fmt.Fprintf(w, "hot stages (server-side seconds spent during the run):\n")
		for _, d := range r.HotStages {
			fmt.Fprintf(w, "  %-60s +%.3fs\n", d.Series, d.Delta)
		}
	}
	// Histogram buckets are noise at text granularity (the _sum/_count
	// and percentile lines carry the signal); -json keeps them all.
	buckets := 0
	for _, d := range r.Delta {
		if strings.Contains(d.Series, "_bucket{") {
			buckets++
		}
	}
	fmt.Fprintf(w, "/metrics delta over the run (%d series changed; %d histogram buckets elided):\n",
		len(r.Delta), buckets)
	for _, d := range r.Delta {
		if strings.Contains(d.Series, "_bucket{") {
			continue
		}
		fmt.Fprintf(w, "  %-60s %+g\n", d.Series, d.Delta)
	}
}

func fmtSummary(s LatencySummary) string {
	return fmt.Sprintf("n=%-6d p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
		s.Count, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs)
}

func scrape(client *http.Client, target string) (map[string]float64, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // server without a registry; tolerated
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	return promtext.Parse(resp.Body)
}

// scrapeAll merges /metrics from every target. With several targets,
// series are prefixed "tN " so leader and follower deltas stay
// distinguishable in the report.
func scrapeAll(client *http.Client, targets []string) (map[string]float64, error) {
	merged := map[string]float64{}
	found := false
	for i, tgt := range targets {
		m, err := scrape(client, tgt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tgt, err)
		}
		if m == nil {
			continue
		}
		found = true
		prefix := ""
		if len(targets) > 1 {
			prefix = fmt.Sprintf("t%d ", i)
		}
		for series, v := range m {
			merged[prefix+series] = v
		}
	}
	if !found {
		return nil, nil
	}
	return merged, nil
}

// waitReady polls GET /readyz on every target until each answers 200
// within the shared deadline. /readyz is the real readiness contract:
// a recovering leader or a still-catching-up follower answers 503
// there while /stats would already answer 200. A 404 counts as ready —
// the server is up, it just predates the readiness endpoint.
func waitReady(client *http.Client, targets []string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for _, tgt := range targets {
		for {
			resp, err := client.Get(tgt + "/readyz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
					break
				}
				err = fmt.Errorf("/readyz: status %d", resp.StatusCode)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s not ready: %w", tgt, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// loadgen owns one run's shared state.
type loadgen struct {
	cfg     config
	client  *http.Client
	ops     []op
	queries []string
	ids     idPool // bundle IDs from /prov, for /bundle
	msgs    idPool // message IDs from /search, for /explain
	dropped int64  // open-loop ticks shed because all workers were busy

	throttleWaits atomic.Int64 // Retry-After intervals honored
	throttleNanos atomic.Int64 // total time spent honoring them

	explainOK        atomic.Int64
	explainUnsampled atomic.Int64
	explainMalformed atomic.Int64
}

// doOne issues a single request and returns its sample. /prov response
// bodies are parsed (while the ID pool is sparse) to harvest real
// bundle IDs for subsequent /bundle requests.
func (g *loadgen) doOne(opName string, rng *rand.Rand) sample {
	var path string
	switch opName {
	case "search":
		path = "/search?k=10&q=" + url.QueryEscape(g.queries[rng.Intn(len(g.queries))])
	case "prov":
		path = "/prov?k=10&q=" + url.QueryEscape(g.queries[rng.Intn(len(g.queries))])
	case "bundle":
		path = "/bundle?id=" + strconv.FormatUint(g.ids.pick(rng), 10)
	case "trending":
		path = "/trending?k=10"
	case "stats":
		path = "/stats"
	case "explain":
		path = "/explain?id=" + strconv.FormatUint(g.msgs.pick(rng), 10)
	}
	target := g.cfg.targets[rng.Intn(len(g.cfg.targets))]
	start := time.Now()
	resp, err := g.client.Get(target + path)
	if err != nil {
		return sample{op: opName, code: 0, d: time.Since(start)}
	}
	defer resp.Body.Close()
	switch {
	case opName == "prov" && resp.StatusCode == http.StatusOK && g.ids.sparse():
		g.harvest(resp.Body)
	case opName == "search" && resp.StatusCode == http.StatusOK && g.msgs.sparse():
		g.harvestMsgs(resp.Body)
	case opName == "explain":
		g.checkExplain(resp)
	default:
		io.Copy(io.Discard, resp.Body)
	}
	s := sample{op: opName, code: resp.StatusCode, d: time.Since(start)}
	if resp.StatusCode == http.StatusServiceUnavailable {
		// A gated follower or a shedding leader tells us when to come
		// back; park this worker for that long (bounded) instead of
		// hammering a server that just said it is degraded.
		g.honorRetryAfter(resp.Header.Get("Retry-After"))
	}
	return s
}

// maxRetryAfter bounds how long one advertised Retry-After may park a
// worker, so a misconfigured server cannot stall the whole run.
const maxRetryAfter = 5 * time.Second

func (g *loadgen) honorRetryAfter(h string) {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs <= 0 {
		return
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	g.throttleWaits.Add(1)
	g.throttleNanos.Add(int64(d))
	time.Sleep(d)
}

// harvest pulls bundle IDs out of a /prov response body.
func (g *loadgen) harvest(body io.Reader) {
	var out struct {
		Bundles []struct {
			ID uint64 `json:"id"`
		} `json:"bundles"`
	}
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		return
	}
	ids := make([]uint64, 0, len(out.Bundles))
	for _, b := range out.Bundles {
		ids = append(ids, b.ID)
	}
	g.ids.add(ids)
}

// harvestMsgs pulls message IDs out of a /search response body so
// /explain requests target messages the server really ingested.
func (g *loadgen) harvestMsgs(body io.Reader) {
	var out struct {
		Hits []struct {
			ID uint64 `json:"id"`
		} `json:"hits"`
	}
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		return
	}
	ids := make([]uint64, 0, len(out.Hits))
	for _, h := range out.Hits {
		ids = append(ids, h.ID)
	}
	g.msgs.add(ids)
}

// checkExplain validates one /explain answer: a 200 must carry the
// full decision breakdown, a 404 is the documented unsampled verdict,
// anything else counts as malformed.
func (g *loadgen) checkExplain(resp *http.Response) {
	switch resp.StatusCode {
	case http.StatusNotFound:
		g.explainUnsampled.Add(1)
		io.Copy(io.Discard, resp.Body)
		return
	case http.StatusOK:
	default:
		g.explainMalformed.Add(1)
		io.Copy(io.Discard, resp.Body)
		return
	}
	var d struct {
		MsgID      uint64            `json:"msg_id"`
		Candidates []json.RawMessage `json:"candidates"`
		Conn       string            `json:"conn"`
		Threshold  float64           `json:"threshold"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil ||
		d.MsgID == 0 || d.Conn == "" || d.Threshold <= 0 {
		g.explainMalformed.Add(1)
		return
	}
	g.explainOK.Add(1)
}

// fetchQuality computes the decision-quality digest from the server's
// /trace/recent window. A 404 means tracing is off on the target; the
// digest is simply omitted.
func fetchQuality(client *http.Client, target string) (*trace.Digest, error) {
	resp, err := client.Get(target + "/trace/recent?n=1000")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/trace/recent: status %d", resp.StatusCode)
	}
	var out struct {
		Decisions []struct {
			NewBundle bool    `json:"new_bundle"`
			Margin    float64 `json:"margin"`
		} `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("/trace/recent: %w", err)
	}
	ds := make([]*trace.Decision, 0, len(out.Decisions))
	for _, d := range out.Decisions {
		ds = append(ds, &trace.Decision{NewBundle: d.NewBundle, Margin: d.Margin})
	}
	dg := trace.ComputeDigest(ds, 0)
	return &dg, nil
}

// phase runs the workload for d and returns the collected samples.
// discard marks warmup: requests still fly (and harvest IDs) but no
// samples are kept.
func (g *loadgen) phase(d time.Duration, discard bool) []sample {
	deadline := time.Now().Add(d)
	perWorker := make([][]sample, g.cfg.workers)
	var tokens chan struct{}
	var pacerDone chan struct{}
	if g.cfg.qps > 0 {
		tokens = make(chan struct{}, g.cfg.workers)
		pacerDone = make(chan struct{})
		interval := time.Duration(float64(time.Second) / g.cfg.qps)
		go func() {
			defer close(pacerDone)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for now := range tick.C {
				if now.After(deadline) {
					return
				}
				select {
				case tokens <- struct{}{}:
				default:
					if !discard {
						g.dropped++
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.cfg.seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case _, ok := <-tokens:
						if !ok {
							return
						}
					case <-pacerDone:
						return
					}
				}
				s := g.doOne(pick(g.ops, rng), rng)
				if !discard {
					perWorker[w] = append(perWorker[w], s)
				}
			}
		}(w)
	}
	wg.Wait()
	if pacerDone != nil {
		<-pacerDone // join the pacer before dropped is read
	}
	var all []sample
	for _, ws := range perWorker {
		all = append(all, ws...)
	}
	return all
}

// run executes the full provload flow: readiness, before-scrape,
// warmup, measured run, after-scrape, report.
func run(cfg config) (*Report, error) {
	ops, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	queries, err := loadQueries(cfg.queries)
	if err != nil {
		return nil, err
	}
	if cfg.workers < 1 {
		return nil, errors.New("need at least one worker")
	}
	for _, tgt := range strings.Split(cfg.target, ",") {
		if tgt = strings.TrimSpace(tgt); tgt != "" {
			cfg.targets = append(cfg.targets, strings.TrimRight(tgt, "/"))
		}
	}
	if len(cfg.targets) == 0 {
		return nil, errors.New("no targets")
	}
	g := &loadgen{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.timeout},
		ops:     ops,
		queries: queries,
	}
	if cfg.wait > 0 {
		if err := waitReady(g.client, cfg.targets, cfg.wait); err != nil {
			return nil, err
		}
	}
	before, err := scrapeAll(g.client, cfg.targets)
	if err != nil {
		return nil, fmt.Errorf("before-scrape: %w", err)
	}
	if cfg.warmup > 0 {
		g.phase(cfg.warmup, true)
	}
	start := time.Now()
	samples := g.phase(cfg.duration, false)
	elapsed := time.Since(start)
	after, err := scrapeAll(g.client, cfg.targets)
	if err != nil {
		return nil, fmt.Errorf("after-scrape: %w", err)
	}

	rep := &Report{
		Target:      cfg.target,
		Mode:        "closed",
		Workers:     cfg.workers,
		DurationSec: elapsed.Seconds(),
		Requests:    len(samples),
		ByClass:     map[string]int{},
		Dropped:     g.dropped,
		RetryWaits:  g.throttleWaits.Load(),
		RetrySec:    time.Duration(g.throttleNanos.Load()).Seconds(),
		Endpoints:   map[string]LatencySummary{},
		HasMetrics:  after != nil,
	}
	if cfg.qps > 0 {
		rep.Mode = "open"
		rep.TargetQPS = cfg.qps
	}
	var overall []time.Duration
	perOp := map[string][]time.Duration{}
	for _, s := range samples {
		if s.code == 0 {
			rep.Errors++
			continue
		}
		class := fmt.Sprintf("%dxx", s.code/100)
		rep.ByClass[class]++
		overall = append(overall, s.d)
		perOp[s.op] = append(perOp[s.op], s.d)
	}
	rep.Throughput = float64(len(overall)) / elapsed.Seconds()
	rep.Overall = summarize(overall)
	for opName, lats := range perOp {
		rep.Endpoints[opName] = summarize(lats)
	}
	if before != nil && after != nil {
		rep.Delta, rep.HotStages = diffMetrics(before, after)
	}
	for _, o := range ops {
		if o.name == "explain" && o.weight > 0 {
			rep.Explain = &ExplainStats{
				OK:        g.explainOK.Load(),
				Unsampled: g.explainUnsampled.Load(),
				Malformed: g.explainMalformed.Load(),
			}
			q, err := fetchQuality(g.client, cfg.targets[0])
			if err != nil {
				return nil, err
			}
			rep.Quality = q
			break
		}
	}
	return rep, nil
}

// diffMetrics returns every series whose value changed, plus the
// _seconds_sum series ranked by time spent — the server-side stages
// that actually absorbed the run, i.e. the bottleneck candidates.
func diffMetrics(before, after map[string]float64) (delta, hot []DeltaLine) {
	for series, b := range after {
		if d := b - before[series]; d != 0 {
			delta = append(delta, DeltaLine{Series: series, Delta: d})
		}
	}
	sort.Slice(delta, func(i, j int) bool { return delta[i].Series < delta[j].Series })
	for _, d := range delta {
		if strings.Contains(d.Series, "_seconds_sum") && d.Delta > 0 {
			hot = append(hot, d)
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Delta > hot[j].Delta })
	if len(hot) > 5 {
		hot = hot[:5]
	}
	return delta, hot
}
