package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	ops, err := parseMix("search=5,prov=3,bundle=1,trending=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 || ops[0].name != "search" || ops[0].weight != 5 {
		t.Errorf("ops = %+v", ops)
	}
	for _, bad := range []string{"", "search", "search=x", "search=-1", "nosuch=1", "search=0,prov=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// A zero-weight entry alongside a live one is fine and never picked.
	ops, err = parseMix("search=1,prov=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestSummarize(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	s := summarize(lats)
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
	if s.P50Ms < 49 || s.P50Ms > 51 {
		t.Errorf("p50 = %v", s.P50Ms)
	}
	if s.P99Ms < 98 || s.P99Ms > 100 {
		t.Errorf("p99 = %v", s.P99Ms)
	}
	if s.MaxMs != 100 {
		t.Errorf("max = %v", s.MaxMs)
	}
	if z := summarize(nil); z.Count != 0 || z.MaxMs != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

// stubServer imitates just enough of provserve for a smoke run: the
// query endpoints answer canned JSON and /metrics exposes a counter
// that tracks real request traffic, so the delta must come out nonzero.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	count := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			h(w, r)
		}
	}
	mux.HandleFunc("/search", count(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"query":"q","hits":[{"id":11},{"id":12}]}`)
	}))
	mux.HandleFunc("/prov", count(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"query":"q","bundles":[{"id":7},{"id":9}]}`)
	}))
	mux.HandleFunc("/bundle", count(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "7" && id != "9" {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		fmt.Fprint(w, `{"id":7,"nodes":[]}`)
	}))
	mux.HandleFunc("/trending", count(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"bundles":[]}`)
	}))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"messages":0}`)
	})
	mux.HandleFunc("/explain", count(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id != "11" && id != "12" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"message has no recorded decision","hint":"lower -trace-sample"}`)
			return
		}
		fmt.Fprint(w, `{"msg_id":`+id+`,"threshold":0.55,"candidates":[{"bundle":7,"total":0.8}],"new_bundle":false,"conn":"hashtag"}`)
	}))
	mux.HandleFunc("/trace/recent", count(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"sample_every":1,"buffer":16,"decisions":[
			{"msg_id":11,"new_bundle":false,"margin":0.2},
			{"msg_id":12,"new_bundle":false,"margin":0.01},
			{"msg_id":13,"new_bundle":true,"margin":0.3}]}`)
	}))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# HELP stub_requests_total Requests served.\n# TYPE stub_requests_total counter\nstub_requests_total %d\n", hits.Load())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestRunSmoke drives the full run() flow against the stub: requests
// flow, percentiles come out, and the /metrics delta reflects traffic.
func TestRunSmoke(t *testing.T) {
	srv, hits := stubServer(t)
	rep, err := run(config{
		target:   srv.URL,
		qps:      0, // closed loop: fastest smoke
		workers:  4,
		duration: 300 * time.Millisecond,
		warmup:   50 * time.Millisecond,
		timeout:  2 * time.Second,
		wait:     2 * time.Second,
		mix:      "search=5,prov=3,bundle=1,trending=1",
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByClass["2xx"] == 0 {
		t.Fatalf("no successful requests: %+v", rep)
	}
	if rep.Requests != rep.ByClass["2xx"]+rep.ByClass["3xx"]+rep.ByClass["4xx"]+rep.ByClass["5xx"]+rep.Errors {
		t.Errorf("request accounting off: %+v", rep)
	}
	if rep.Overall.Count == 0 || rep.Overall.P99Ms < rep.Overall.P50Ms || rep.Overall.MaxMs < rep.Overall.P99Ms {
		t.Errorf("percentiles inconsistent: %+v", rep.Overall)
	}
	if len(rep.Endpoints) == 0 {
		t.Error("no per-endpoint summaries")
	}
	if !rep.HasMetrics {
		t.Error("stub /metrics not scraped")
	}
	found := false
	for _, d := range rep.Delta {
		if d.Series == "stub_requests_total" && d.Delta > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics delta missing stub counter (hits=%d): %+v", hits.Load(), rep.Delta)
	}
	var b strings.Builder
	rep.writeText(&b)
	for _, want := range []string{"throughput:", "p50=", "p99=", "/metrics delta"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, b.String())
		}
	}
}

// TestRunOpenLoop: the pacer caps throughput near the target rate.
func TestRunOpenLoop(t *testing.T) {
	srv, _ := stubServer(t)
	rep, err := run(config{
		target:   srv.URL,
		qps:      200,
		workers:  4,
		duration: 500 * time.Millisecond,
		timeout:  2 * time.Second,
		mix:      "search=1",
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q", rep.Mode)
	}
	// Loopback httptest answers in microseconds, so a closed loop would
	// do tens of thousands of req/s; the pacer must hold it near 200.
	if rep.Throughput > 400 {
		t.Errorf("open loop did not pace: %.0f req/s", rep.Throughput)
	}
	if rep.ByClass["2xx"] == 0 {
		t.Error("no successful requests")
	}
}

// TestRunNoMetrics: a target without /metrics still produces a report.
func TestRunNoMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"hits":[]}`)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rep, err := run(config{
		target:   srv.URL,
		workers:  2,
		duration: 100 * time.Millisecond,
		timeout:  time.Second,
		mix:      "search=1",
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasMetrics {
		t.Error("HasMetrics true without a /metrics endpoint")
	}
	if rep.ByClass["2xx"] == 0 {
		t.Error("no successful requests")
	}
}

// TestRunExplain: an explain-bearing mix validates /explain answers
// (harvested message IDs resolve, unknown IDs 404) and the report
// gains the decision-quality digest computed from /trace/recent.
func TestRunExplain(t *testing.T) {
	srv, _ := stubServer(t)
	rep, err := run(config{
		target:   srv.URL,
		workers:  4,
		duration: 300 * time.Millisecond,
		warmup:   50 * time.Millisecond, // harvests message IDs via /search
		timeout:  2 * time.Second,
		mix:      "search=2,explain=2",
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil {
		t.Fatal("explain stats missing from report")
	}
	if rep.Explain.OK == 0 {
		t.Errorf("no well-formed /explain answers: %+v", rep.Explain)
	}
	if rep.Explain.Malformed != 0 {
		t.Errorf("stub breakdowns flagged malformed: %+v", rep.Explain)
	}
	if rep.Quality == nil {
		t.Fatal("decision-quality digest missing")
	}
	if rep.Quality.Decisions != 3 {
		t.Errorf("digest decisions = %d", rep.Quality.Decisions)
	}
	if got := rep.Quality.NewBundleRate; got < 0.33 || got > 0.34 {
		t.Errorf("new-bundle rate = %v", got)
	}
	if got := rep.Quality.NearTieRate; got < 0.49 || got > 0.51 { // 1 of the 2 joins
		t.Errorf("near-tie rate = %v", got)
	}
	var b strings.Builder
	rep.writeText(&b)
	for _, want := range []string{"explain: ok=", "decision quality:"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, b.String())
		}
	}
}

// TestRunExplainNoTracing: explain in the mix against a server without
// tracing produces unsampled counts and no digest, not an error.
func TestRunExplainNoTracing(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"hits":[{"id":5}]}`)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	rep, err := run(config{
		target:   srv.URL,
		workers:  2,
		duration: 100 * time.Millisecond,
		timeout:  time.Second,
		mix:      "search=1,explain=1",
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil || rep.Explain.Unsampled == 0 || rep.Explain.OK != 0 {
		t.Errorf("explain stats = %+v", rep.Explain)
	}
	if rep.Quality != nil {
		t.Errorf("digest present without /trace/recent: %+v", rep.Quality)
	}
}
