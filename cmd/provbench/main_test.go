package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"provex/internal/experiments"
)

// smallScale shrinks every stream so the smoke tests run in seconds.
func smallScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.Messages = 800
	return s
}

// TestRunJSON is the -json smoke: a small ingest-figure run must emit
// one well-formed report that round-trips through encoding/json with
// the schema tag BENCH_PR4.json (and successors) are matched against.
func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallScale(), map[string]bool{"ingest": true}, 2, true); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, buf.String())
	}
	if rep.Schema != reportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, reportSchema)
	}
	if rep.GoVersion == "" || rep.GOMAXPROCS < 1 || rep.Workers != 2 {
		t.Errorf("environment header incomplete: %+v", rep)
	}
	if rep.Scale.Messages != 800 {
		t.Errorf("scale not echoed: %+v", rep.Scale)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].Name != "ingest" {
		t.Fatalf("figures = %+v", rep.Figures)
	}
	fig := rep.Figures[0]
	if len(fig.Tables) == 0 || len(fig.Tables[0].Rows) == 0 {
		t.Fatalf("ingest figure carries no table rows: %+v", fig)
	}
	if rep.ElapsedSec <= 0 {
		t.Errorf("elapsed_sec = %v", rep.ElapsedSec)
	}
}

// TestRunText: the default text mode still renders tables, not JSON.
func TestRunText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smallScale(), map[string]bool{"ingest": true}, 2, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "provbench: scale") {
		t.Errorf("text header missing:\n%s", out)
	}
	if strings.Contains(out, `"schema"`) {
		t.Error("text mode emitted JSON")
	}
}
