// Command provbench regenerates the paper's evaluation figures
// (Section VI) on the synthetic stream. Each -fig value maps to one
// figure of the paper; 'all' runs the whole suite plus the ablation
// studies and prints the text tables EXPERIMENTS.md quotes.
//
// Usage:
//
//	provbench -fig all                  # everything at the reduced default scale
//	provbench -fig 8                    # just Figure 8 (accuracy/return)
//	provbench -scale paper -fig 7       # paper-sized run (700k messages)
//	provbench -fig all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"provex/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figures to regenerate (comma separated): 6,7,8,9,10,11,12,13, ablations, all")
		scaleArg = flag.String("scale", "default", "run scale: default | paper")
		messages = flag.Int("n", 0, "override the main stream length")
		sweepN   = flag.Int("sweep-n", 0, "override the Fig 9 sweep stream length (pool limits scale proportionally)")
		out      = flag.String("out", "-", "output path, '-' for stdout")
		workers  = flag.Int("workers", 4, "prepare workers for the 'ingest' throughput comparison")
	)
	flag.Parse()

	var s experiments.Scale
	switch *scaleArg {
	case "default":
		s = experiments.DefaultScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		fail("unknown scale %q (want default or paper)", *scaleArg)
	}
	if *messages > 0 {
		s.Messages = *messages
	}
	if *sweepN > 0 && *sweepN != s.SweepMessages {
		// Keep each pool limit's ratio to the sweep stream length.
		factor := float64(*sweepN) / float64(s.SweepMessages)
		for i, lim := range s.SweepLimits {
			scaled := int(float64(lim) * factor)
			if scaled < 20 {
				scaled = 20
			}
			s.SweepLimits[i] = scaled
		}
		s.SweepMessages = *sweepN
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}

	valid := map[string]bool{
		"6": true, "7": true, "8": true, "9": true, "10": true,
		"11": true, "12": true, "13": true, "ablations": true, "all": true,
		"ingest": true,
	}
	figs := map[string]bool{}
	for _, f := range strings.Split(strings.ToLower(*fig), ",") {
		f = strings.TrimSpace(f)
		if !valid[f] {
			fail("unknown figure %q (want 6..13, ablations, ingest or all)", f)
		}
		figs[f] = true
	}
	run(w, s, figs, *workers)
}

// run executes the requested figure(s). Figures 7, 8, 11, 12 and 13
// share one three-method pass so 'all' (or any comma-joined subset of
// them) ingests the main stream once.
func run(w io.Writer, s experiments.Scale, figs map[string]bool, workers int) {
	start := time.Now()
	fmt.Fprintf(w, "provbench: scale messages=%d sweep=%d pool=%d bundle_limit=%d seed=%d\n\n",
		s.Messages, s.SweepMessages, s.PoolLimit, s.BundleLimit, s.Seed)

	var three *experiments.ThreeResult
	needThree := func() *experiments.ThreeResult {
		if three == nil {
			fmt.Fprintln(os.Stderr, "provbench: running three-method stream pass...")
			three = experiments.RunThreeMethods(s)
		}
		return three
	}
	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			fmt.Fprintln(w, t.Render())
		}
	}

	wants := func(name string) bool { return figs["all"] || figs[name] }

	if wants("6") {
		fmt.Fprintln(os.Stderr, "provbench: figure 6...")
		emit(experiments.Fig6(s)...)
	}
	if wants("7") {
		emit(experiments.Fig7(needThree()))
	}
	if wants("8") {
		emit(experiments.Fig8(needThree())...)
	}
	if wants("9") {
		fmt.Fprintln(os.Stderr, "provbench: figure 9 sweep...")
		emit(experiments.Fig9(s))
	}
	if wants("10") {
		fmt.Fprintln(os.Stderr, "provbench: figure 10 showcases...")
		table, trails := experiments.Fig10(s)
		emit(table)
		for _, trail := range trails {
			fmt.Fprintln(w, headLines(trail, 20))
		}
	}
	if wants("11") {
		emit(experiments.Fig11(needThree())...)
	}
	if wants("12") {
		emit(experiments.Fig12(needThree()))
	}
	if wants("13") {
		emit(experiments.Fig13(needThree()))
	}
	if three != nil {
		emit(experiments.ConnBreakdown(three))
	}
	// The ingest throughput comparison is opt-in (not part of 'all'): it
	// re-ingests the main stream twice and only shows a speedup on
	// multi-core machines.
	if figs["ingest"] {
		fmt.Fprintln(os.Stderr, "provbench: ingest throughput comparison...")
		emit(experiments.IngestBench(s, workers))
	}
	if wants("ablations") {
		fmt.Fprintln(os.Stderr, "provbench: ablations...")
		emit(
			experiments.AblationCandidateFetch(s),
			experiments.AblationFreshness(s),
			experiments.AblationRefineTrigger(s),
			experiments.AblationKeywordClass(s),
		)
	}
	fmt.Fprintf(os.Stderr, "provbench: done in %.1fs\n", time.Since(start).Seconds())
}

// headLines truncates s to its first n lines, annotating the cut.
func headLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) <= n {
		return s
	}
	return strings.Join(lines[:n], "\n") + fmt.Sprintf("\n  ... (%d more lines)\n", len(lines)-n)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "provbench: "+format+"\n", args...)
	os.Exit(1)
}
