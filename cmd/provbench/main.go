// Command provbench regenerates the paper's evaluation figures
// (Section VI) on the synthetic stream. Each -fig value maps to one
// figure of the paper; 'all' runs the whole suite plus the ablation
// studies and prints the text tables EXPERIMENTS.md quotes.
//
// Usage:
//
//	provbench -fig all                  # everything at the reduced default scale
//	provbench -fig 8                    # just Figure 8 (accuracy/return)
//	provbench -scale paper -fig 7       # paper-sized run (700k messages)
//	provbench -fig all -out results.txt
//	provbench -figure fig13 -max 1000000 -json   # long-stream stage-time sweep
//	provbench -figure fig13 -max 40000 -check-linear 1.5   # ci perf smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"provex/internal/cli"
	"provex/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figures to regenerate (comma separated): 6,7,8,9,10,11,12,13, ablations, all")
		scaleArg = flag.String("scale", "default", "run scale: default | paper")
		messages = flag.Int("n", 0, "override the main stream length")
		sweepN   = flag.Int("sweep-n", 0, "override the Fig 9 sweep stream length (pool limits scale proportionally)")
		out      = flag.String("out", "-", "output path, '-' for stdout")
		workers  = flag.Int("workers", 4, "prepare workers for the 'ingest' throughput comparison")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report instead of text tables")
		figure   = flag.String("figure", "", "dedicated sweep mode, bypasses -fig: 'fig13' runs the long-stream stage-time sweep, 'shards' the sharded scaling sweep")
		maxN     = flag.Int("max", 1_000_000, "stream length for -figure sweeps")
		linear   = flag.Float64("check-linear", 0, "with -figure fig13: exit nonzero unless cumulative match/placement time at -max stays within this factor of the linear extrapolation from -max/2")
		shardsN  = flag.Int("shards", 0, "with -figure fig13: run the sweep through the sharded round engine at this shard count")
		shardSet = flag.String("shard-set", "1,2,4,8", "with -figure shards: comma-separated shard counts to sweep")
		minSpeed = flag.Float64("check-speedup", 0, "with -figure shards: exit nonzero unless span speedup at the largest shard count reaches this factor")
		logLevel = cli.LogLevelFlag()
	)
	flag.Parse()
	if err := cli.SetupLogging(*logLevel); err != nil {
		cli.Fatal("flags", err)
	}

	var s experiments.Scale
	switch *scaleArg {
	case "default":
		s = experiments.DefaultScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		cli.Fatal("unknown scale (want default or paper)", nil, "scale", *scaleArg)
	}
	if *messages > 0 {
		s.Messages = *messages
	}
	if *sweepN > 0 && *sweepN != s.SweepMessages {
		// Keep each pool limit's ratio to the sweep stream length.
		factor := float64(*sweepN) / float64(s.SweepMessages)
		for i, lim := range s.SweepLimits {
			scaled := int(float64(lim) * factor)
			if scaled < 20 {
				scaled = 20
			}
			s.SweepLimits[i] = scaled
		}
		s.SweepMessages = *sweepN
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		//provlint:ignore fsxdiscipline bench report for humans and CI greps; these bytes never feed the store
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal("create output", err, "path", *out)
		}
		defer f.Close()
		w = f
	}

	if *figure != "" {
		switch *figure {
		case "fig13":
			if err := runSweep(w, s, *maxN, *linear, *jsonOut, *workers, *shardsN); err != nil {
				cli.Fatal("fig13 sweep", err)
			}
		case "shards":
			if err := runShardSweep(w, s, *shardSet, *minSpeed, *jsonOut); err != nil {
				cli.Fatal("shard sweep", err)
			}
		default:
			cli.Fatal("unknown -figure (want fig13 or shards)", nil, "figure", *figure)
		}
		return
	}

	valid := map[string]bool{
		"6": true, "7": true, "8": true, "9": true, "10": true,
		"11": true, "12": true, "13": true, "ablations": true, "all": true,
		"ingest": true,
	}
	figs := map[string]bool{}
	for _, f := range strings.Split(strings.ToLower(*fig), ",") {
		f = strings.TrimSpace(f)
		if !valid[f] {
			cli.Fatal("unknown figure (want 6..13, ablations, ingest or all)", nil, "fig", f)
		}
		figs[f] = true
	}
	if err := run(w, s, figs, *workers, *jsonOut); err != nil {
		cli.Fatal("write report", err)
	}
}

// reportSchema versions the -json layout; bump it when a field changes
// meaning so trajectory tooling can refuse mixed comparisons.
const reportSchema = "provbench/1"

// jsonFigure is one figure's result set in the -json report.
type jsonFigure struct {
	Name   string               `json:"name"`
	Tables []*experiments.Table `json:"tables"`
	Trails []string             `json:"trails,omitempty"`
}

// jsonReport is the machine-readable bench trajectory entry: enough
// environment to interpret the numbers, plus every requested figure's
// tables verbatim. BENCH_PR4.json (and successors) are instances.
type jsonReport struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Workers    int               `json:"workers"`
	Scale      experiments.Scale `json:"scale"`
	Figures    []jsonFigure      `json:"figures"`
	ElapsedSec float64           `json:"elapsed_sec"`
}

// run executes the requested figure(s). Figures 7, 8, 11, 12 and 13
// share one three-method pass so 'all' (or any comma-joined subset of
// them) ingests the main stream once. With jsonOut the tables are
// collected into one jsonReport instead of rendered as text.
func run(w io.Writer, s experiments.Scale, figs map[string]bool, workers int, jsonOut bool) error {
	start := time.Now()
	report := jsonReport{
		Schema:     reportSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      s,
	}
	if !jsonOut {
		fmt.Fprintf(w, "provbench: scale messages=%d sweep=%d pool=%d bundle_limit=%d seed=%d\n\n",
			s.Messages, s.SweepMessages, s.PoolLimit, s.BundleLimit, s.Seed)
	}

	var three *experiments.ThreeResult
	needThree := func() *experiments.ThreeResult {
		if three == nil {
			slog.Info("running three-method stream pass")
			three = experiments.RunThreeMethods(s)
		}
		return three
	}
	emit := func(name string, tables ...*experiments.Table) {
		if jsonOut {
			report.Figures = append(report.Figures, jsonFigure{Name: name, Tables: tables})
			return
		}
		for _, t := range tables {
			fmt.Fprintln(w, t.Render())
		}
	}

	wants := func(name string) bool { return figs["all"] || figs[name] }

	if wants("6") {
		slog.Info("figure 6")
		emit("fig6", experiments.Fig6(s)...)
	}
	if wants("7") {
		emit("fig7", experiments.Fig7(needThree()))
	}
	if wants("8") {
		emit("fig8", experiments.Fig8(needThree())...)
	}
	if wants("9") {
		slog.Info("figure 9 sweep")
		emit("fig9", experiments.Fig9(s))
	}
	if wants("10") {
		slog.Info("figure 10 showcases")
		table, trails := experiments.Fig10(s)
		if jsonOut {
			report.Figures = append(report.Figures, jsonFigure{
				Name: "fig10", Tables: []*experiments.Table{table}, Trails: trails,
			})
		} else {
			emit("fig10", table)
			for _, trail := range trails {
				fmt.Fprintln(w, headLines(trail, 20))
			}
		}
	}
	if wants("11") {
		emit("fig11", experiments.Fig11(needThree())...)
	}
	if wants("12") {
		emit("fig12", experiments.Fig12(needThree()))
	}
	if wants("13") {
		emit("fig13", experiments.Fig13(needThree()))
	}
	if three != nil {
		emit("conn-breakdown", experiments.ConnBreakdown(three))
	}
	// The ingest throughput comparison is opt-in (not part of 'all'): it
	// re-ingests the main stream twice and only shows a speedup on
	// multi-core machines.
	if figs["ingest"] {
		slog.Info("ingest throughput comparison")
		emit("ingest", experiments.IngestBench(s, workers))
	}
	if wants("ablations") {
		slog.Info("ablations")
		emit("ablations",
			experiments.AblationCandidateFetch(s),
			experiments.AblationFreshness(s),
			experiments.AblationRefineTrigger(s),
			experiments.AblationKeywordClass(s),
		)
	}
	elapsed := time.Since(start)
	if jsonOut {
		report.ElapsedSec = elapsed.Seconds()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	slog.Info("done", "seconds", fmt.Sprintf("%.1f", elapsed.Seconds()))
	return nil
}

// runSweep executes the -figure fig13 long-stream sweep: one Partial
// Index engine, cumulative per-stage time at 100 checkpoints, rendered
// as a table (or a one-figure jsonReport; BENCH_PR6.json is an
// instance). With checkLinear > 0 it is also the ci.sh perf-smoke
// guardrail: a superlinear match or placement curve is a hard failure.
func runSweep(w io.Writer, s experiments.Scale, max int, checkLinear float64, jsonOut bool, workers, shards int) error {
	start := time.Now()
	slog.Info("fig13 sweep", "messages", max, "pool", s.PoolLimit, "shards", shards)
	var res *experiments.Fig13SweepResult
	if shards > 1 {
		res = experiments.Fig13SweepSharded(s, max, shards)
	} else {
		res = experiments.Fig13Sweep(s, max)
	}
	elapsed := time.Since(start)
	if jsonOut {
		report := jsonReport{
			Schema:     reportSchema,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    workers,
			Scale:      s,
			Figures:    []jsonFigure{{Name: "fig13sweep", Tables: []*experiments.Table{res.Table()}}},
			ElapsedSec: elapsed.Seconds(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(w, res.Table().Render())
	}
	if checkLinear > 0 {
		if err := res.CheckLinear(checkLinear); err != nil {
			return err
		}
		slog.Info("linearity check passed", "factor", checkLinear)
	}
	slog.Info("done", "seconds", fmt.Sprintf("%.1f", elapsed.Seconds()))
	return nil
}

// runShardSweep executes the -figure shards scaling sweep: the main
// stream through the sharded round engine at each count in shardSet,
// wall-clock and critical-path (span) throughput side by side.
// BENCH_PR8.json is an instance (GOMAXPROCS=8, -json); with
// checkSpeedup > 0 the sweep doubles as a scaling guardrail on the
// span column, which measures the algorithm rather than the host's
// core count (see the table notes and EXPERIMENTS.md).
func runShardSweep(w io.Writer, s experiments.Scale, shardSet string, checkSpeedup float64, jsonOut bool) error {
	var counts []int
	for _, part := range strings.Split(shardSet, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shard-set entry %q", part)
		}
		counts = append(counts, n)
	}
	start := time.Now()
	slog.Info("shard sweep", "messages", s.Messages, "counts", shardSet)
	res := experiments.ShardSweep(s, counts, 0)
	elapsed := time.Since(start)
	if jsonOut {
		report := jsonReport{
			Schema:     reportSchema,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Scale:      s,
			Figures:    []jsonFigure{{Name: "shardsweep", Tables: []*experiments.Table{res.Table()}}},
			ElapsedSec: elapsed.Seconds(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(w, res.Table().Render())
	}
	if checkSpeedup > 0 {
		top := counts[len(counts)-1]
		if got := res.SpanSpeedup(top); got < checkSpeedup {
			return fmt.Errorf("span speedup at %d shards is %.2fx, below the required %.2fx", top, got, checkSpeedup)
		}
		slog.Info("speedup check passed", "shards", top, "factor", checkSpeedup)
	}
	slog.Info("done", "seconds", fmt.Sprintf("%.1f", elapsed.Seconds()))
	return nil
}

// headLines truncates s to its first n lines, annotating the cut.
func headLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) <= n {
		return s
	}
	return strings.Join(lines[:n], "\n") + fmt.Sprintf("\n  ... (%d more lines)\n", len(lines)-n)
}
