// Package textindex is an embedded full-text search engine — the
// stdlib-only substitute for the Lucene instance the paper used for its
// query support. It provides an incremental inverted index with BM25
// ranking, boolean conjunction, and tombstone deletes.
//
// Documents are opaque to the index: callers supply a uint64 document ID
// and a bag of terms. The provenance query module indexes messages (the
// Figure 1 baseline search) and bundle summaries (the s(q,B) component
// of Eq. 7) in separate Index instances.
package textindex

import (
	"container/heap"
	"math"
	"sort"
	"sync"
)

// DocID identifies an indexed document.
type DocID uint64

// posting records one document's term occurrence count.
type posting struct {
	doc DocID
	tf  uint32
}

// BM25 tuning constants — the standard Robertson defaults.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Index is an incremental inverted index. All methods are safe for
// concurrent use; writes take an exclusive lock.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting // guarded by mu
	docLen   map[DocID]int        // guarded by mu
	deleted  map[DocID]bool       // guarded by mu
	totalLen int64                // sum of live+deleted doc lengths, adjusted on delete; guarded by mu
	liveDocs int                  // guarded by mu
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docLen:   make(map[DocID]int),
		deleted:  make(map[DocID]bool),
	}
}

// Add indexes doc with the given term bag. Duplicate terms raise term
// frequency. Re-adding an existing live document is a programming error
// and panics; re-adding a deleted document resurrects it under the same
// ID with the new content semantics of appended postings (callers in
// provex never reuse IDs, the panic guards that invariant).
func (ix *Index) Add(doc DocID, terms []string) {
	if len(terms) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[doc]; ok && !ix.deleted[doc] {
		panic("textindex: duplicate Add for live document")
	}
	tf := make(map[string]uint32, len(terms))
	for _, t := range terms {
		if t == "" {
			continue
		}
		tf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: doc, tf: n})
	}
	delete(ix.deleted, doc)
	ix.docLen[doc] = len(terms)
	ix.totalLen += int64(len(terms))
	ix.liveDocs++
}

// Delete tombstones doc. Postings are filtered lazily at query time;
// Compact reclaims them. Deleting an unknown or already deleted doc is
// a no-op.
func (ix *Index) Delete(doc DocID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[doc]; !ok || ix.deleted[doc] {
		return
	}
	ix.deleted[doc] = true
	ix.totalLen -= int64(ix.docLen[doc])
	ix.liveDocs--
}

// Compact removes tombstoned postings and reclaims memory. Amortised
// callers should invoke it when DeletedRatio grows past a threshold.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.deleted) == 0 {
		return
	}
	for t, ps := range ix.postings {
		live := ps[:0]
		for _, p := range ps {
			if !ix.deleted[p.doc] {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			delete(ix.postings, t)
			continue
		}
		ix.postings[t] = live
	}
	for doc := range ix.deleted {
		delete(ix.docLen, doc)
	}
	ix.deleted = make(map[DocID]bool)
}

// Docs returns the number of live documents.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// Terms returns the vocabulary size (including terms only present in
// tombstoned docs until Compact runs).
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// DeletedRatio reports the fraction of known documents that are
// tombstoned, the Compact trigger signal.
func (ix *Index) DeletedRatio() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docLen) == 0 {
		return 0
	}
	return float64(len(ix.deleted)) / float64(len(ix.docLen))
}

// Hit is one ranked search result.
type Hit struct {
	Doc   DocID
	Score float64
}

// Search ranks live documents against the term bag by BM25 and returns
// the top k hits, best first. Documents matching more query terms score
// higher through summation; no coordination factor is applied beyond
// that.
func (ix *Index) Search(terms []string, k int) []Hit {
	if k <= 0 || len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(ix.liveDocs)
	if avgdl <= 0 {
		avgdl = 1
	}

	// Accumulate BM25 contributions per candidate document.
	scores := make(map[DocID]float64)
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		ps := ix.postings[t]
		if len(ps) == 0 {
			continue
		}
		df := 0
		for _, p := range ps {
			if !ix.deleted[p.doc] {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (float64(ix.liveDocs)-float64(df)+0.5)/(float64(df)+0.5))
		for _, p := range ps {
			if ix.deleted[p.doc] {
				continue
			}
			dl := float64(ix.docLen[p.doc])
			tf := float64(p.tf)
			norm := tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgdl))
			scores[p.doc] += idf * norm
		}
	}
	return topK(scores, k)
}

// Conjunction returns the live documents containing every term, in
// ascending DocID order. Empty terms yield nil.
func (ix *Index) Conjunction(terms []string) []DocID {
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var lists [][]posting
	for _, t := range terms {
		ps, ok := ix.postings[t]
		if !ok {
			return nil
		}
		lists = append(lists, ps)
	}
	// Intersect starting from the rarest list.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	candidates := make(map[DocID]int, len(lists[0]))
	for _, p := range lists[0] {
		if !ix.deleted[p.doc] {
			candidates[p.doc] = 1
		}
	}
	for _, ps := range lists[1:] {
		for _, p := range ps {
			if n, ok := candidates[p.doc]; ok {
				candidates[p.doc] = n + 1
			}
		}
	}
	var out []DocID
	for doc, n := range candidates {
		if n == len(lists) {
			out = append(out, doc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hitHeap is a min-heap over scores (ties broken by larger DocID so the
// final ascending-score pop order yields deterministic results).
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h hitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x interface{}) { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK selects the k best-scoring hits, best first; ties break toward
// smaller DocID for determinism.
func topK(scores map[DocID]float64, k int) []Hit {
	h := make(hitHeap, 0, k)
	heap.Init(&h)
	for doc, s := range scores {
		if len(h) < k {
			heap.Push(&h, Hit{Doc: doc, Score: s})
			continue
		}
		if s > h[0].Score || (s == h[0].Score && doc < h[0].Doc) {
			h[0] = Hit{Doc: doc, Score: s}
			heap.Fix(&h, 0)
		}
	}
	if len(h) == 0 {
		return nil
	}
	out := make([]Hit, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}
