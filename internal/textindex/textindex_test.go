package textindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func buildIndex(docs map[DocID][]string) *Index {
	ix := New()
	ids := make([]DocID, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ix.Add(id, docs[id])
	}
	return ix
}

func hitDocs(hits []Hit) []DocID {
	out := make([]DocID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	return out
}

func TestSearchBasic(t *testing.T) {
	ix := buildIndex(map[DocID][]string{
		1: {"yankee", "stadium", "win"},
		2: {"redsox", "lester", "ovation"},
		3: {"yankee", "redsox", "game"},
	})
	hits := ix.Search([]string{"yankee", "redsox"}, 10)
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(hits))
	}
	if hits[0].Doc != 3 {
		t.Errorf("best hit = doc %d, want 3 (matches both terms)", hits[0].Doc)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("hits not sorted descending: %v", hits)
		}
	}
}

func TestSearchUnknownTerm(t *testing.T) {
	ix := buildIndex(map[DocID][]string{1: {"a"}})
	if hits := ix.Search([]string{"zzz"}, 5); hits != nil {
		t.Errorf("unknown term returned %v", hits)
	}
	if hits := ix.Search(nil, 5); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
	if hits := ix.Search([]string{"a"}, 0); hits != nil {
		t.Errorf("k=0 returned %v", hits)
	}
}

func TestSearchTermFrequencyMatters(t *testing.T) {
	ix := buildIndex(map[DocID][]string{
		1: {"game", "game", "game", "other"},
		2: {"game", "w1", "w2", "w3"},
	})
	hits := ix.Search([]string{"game"}, 2)
	if len(hits) != 2 || hits[0].Doc != 1 {
		t.Errorf("higher-tf doc should rank first: %v", hits)
	}
}

func TestSearchIDFMatters(t *testing.T) {
	docs := map[DocID][]string{}
	// "common" appears everywhere; "rare" in one doc. A doc matching
	// rare must outrank docs matching only common.
	for i := DocID(1); i <= 20; i++ {
		docs[i] = []string{"common", fmt.Sprintf("filler%d", i)}
	}
	docs[21] = []string{"rare", "filler21b"}
	ix := buildIndex(docs)
	hits := ix.Search([]string{"common", "rare"}, 5)
	if hits[0].Doc != 21 {
		t.Errorf("rare-term doc should rank first, got %v", hits[:2])
	}
}

func TestTopKCut(t *testing.T) {
	docs := map[DocID][]string{}
	for i := DocID(1); i <= 100; i++ {
		docs[i] = []string{"term"}
	}
	ix := buildIndex(docs)
	hits := ix.Search([]string{"term"}, 7)
	if len(hits) != 7 {
		t.Fatalf("k=7 returned %d hits", len(hits))
	}
}

func TestDeleteHidesDoc(t *testing.T) {
	ix := buildIndex(map[DocID][]string{
		1: {"a", "b"},
		2: {"a", "c"},
	})
	ix.Delete(1)
	hits := ix.Search([]string{"a"}, 10)
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Errorf("deleted doc still surfaces: %v", hits)
	}
	if ix.Docs() != 1 {
		t.Errorf("Docs = %d, want 1", ix.Docs())
	}
	// Deleting twice or deleting unknown docs is a no-op.
	ix.Delete(1)
	ix.Delete(999)
	if ix.Docs() != 1 {
		t.Errorf("no-op deletes changed Docs to %d", ix.Docs())
	}
}

func TestCompact(t *testing.T) {
	ix := buildIndex(map[DocID][]string{
		1: {"only_in_one"},
		2: {"shared"},
		3: {"shared"},
	})
	ix.Delete(1)
	ix.Delete(2)
	if r := ix.DeletedRatio(); r < 0.6 || r > 0.7 {
		t.Errorf("DeletedRatio = %v, want 2/3", r)
	}
	ix.Compact()
	if ix.Terms() != 1 {
		t.Errorf("Terms after compact = %d, want 1", ix.Terms())
	}
	if r := ix.DeletedRatio(); r != 0 {
		t.Errorf("DeletedRatio after compact = %v", r)
	}
	hits := ix.Search([]string{"shared"}, 10)
	if len(hits) != 1 || hits[0].Doc != 3 {
		t.Errorf("post-compact search wrong: %v", hits)
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	ix := New()
	ix.Add(1, []string{"a"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	ix.Add(1, []string{"b"})
}

func TestConjunction(t *testing.T) {
	ix := buildIndex(map[DocID][]string{
		1: {"a", "b", "c"},
		2: {"a", "b"},
		3: {"a"},
		4: {"b", "c"},
	})
	got := ix.Conjunction([]string{"a", "b"})
	want := []DocID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Conjunction(a,b) = %v, want %v", got, want)
	}
	if got := ix.Conjunction([]string{"a", "zzz"}); got != nil {
		t.Errorf("Conjunction with unknown term = %v, want nil", got)
	}
	ix.Delete(1)
	got = ix.Conjunction([]string{"a", "b"})
	want = []DocID{2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Conjunction after delete = %v, want %v", got, want)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ix.Add(DocID(w*1000+i), []string{"shared", fmt.Sprintf("t%d", i%17)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix.Search([]string{"shared"}, 10)
			}
		}()
	}
	wg.Wait()
	if ix.Docs() != 2000 {
		t.Errorf("Docs = %d, want 2000", ix.Docs())
	}
	if len(ix.Search([]string{"shared"}, 3000)) != 2000 {
		t.Error("not all docs searchable after concurrent build")
	}
}

// Property: every hit returned actually contains at least one query
// term, scores are positive, and results never exceed k.
func TestSearchSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e", "f", "g"}
		docs := map[DocID][]string{}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var terms []string
			for j := 0; j <= rng.Intn(5); j++ {
				terms = append(terms, vocab[rng.Intn(len(vocab))])
			}
			docs[DocID(i+1)] = terms
		}
		ix := buildIndex(docs)
		query := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		k := 1 + rng.Intn(10)
		hits := ix.Search(query, k)
		if len(hits) > k {
			return false
		}
		for _, h := range hits {
			if h.Score <= 0 {
				return false
			}
			match := false
			for _, dt := range docs[h.Doc] {
				for _, qt := range query {
					if dt == qt {
						match = true
					}
				}
			}
			if !match {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Compact never changes live search results.
func TestCompactEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"a", "b", "c", "d", "e"}
		ix := New()
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			terms := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
			ix.Add(DocID(i+1), terms)
		}
		for i := 0; i < n/3; i++ {
			ix.Delete(DocID(rng.Intn(n) + 1))
		}
		before := ix.Search(vocab, 50)
		ix.Compact()
		after := ix.Search(vocab, 50)
		return reflect.DeepEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := New()
	vocab := make([]string, 2000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%d", i)
	}
	for i := 0; i < 50000; i++ {
		terms := make([]string, 8)
		for j := range terms {
			terms[j] = vocab[rng.Intn(len(vocab))]
		}
		ix.Add(DocID(i+1), terms)
	}
	query := []string{"term1", "term42", "term999"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search(query, 10)
	}
}
