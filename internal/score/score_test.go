package score

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var base = time.Date(2009, 9, 26, 0, 0, 0, 0, time.UTC)

func doc(id tweet.ID, user, text string, at time.Time) Doc {
	m := tweet.Parse(id, user, at, text)
	return Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

func TestClassifyTableII(t *testing.T) {
	a := doc(1, "amaliebenjamin", "Lester getting an ovation #redsox http://bit.ly/x", base)
	tests := []struct {
		name string
		b    Doc
		want ConnectionType
	}{
		{"rt", doc(2, "abcdude", "Classy RT @AmalieBenjamin: Lester getting an ovation", base.Add(time.Minute)), ConnRT},
		{"url", doc(3, "u3", "check http://bit.ly/x now", base.Add(time.Minute)), ConnURL},
		{"hashtag", doc(4, "u4", "sigh #redsox", base.Add(time.Minute)), ConnHashtag},
		{"text", doc(5, "u5", "what an ovation moment", base.Add(time.Minute)), ConnText},
		{"none", doc(6, "u6", "totally unrelated chatter", base.Add(time.Minute)), ConnNone},
	}
	for _, tc := range tests {
		if got := Classify(a, tc.b); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyPriority(t *testing.T) {
	a := doc(1, "src", "original #tag http://bit.ly/z words here", base)
	// b re-shares AND shares url/tag/text: RT must win.
	b := doc(2, "u", "wow RT @src: original #tag http://bit.ly/z words here", base.Add(time.Minute))
	if got := Classify(a, b); got != ConnRT {
		t.Errorf("Classify = %v, want ConnRT (strongest wins)", got)
	}
}

func TestConnectionTypeString(t *testing.T) {
	want := map[ConnectionType]string{
		ConnNone: "none", ConnText: "text", ConnHashtag: "hashtag",
		ConnURL: "url", ConnRT: "rt",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("String(%d) = %q, want %q", c, c.String(), s)
		}
	}
}

func TestOverlap(t *testing.T) {
	tests := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b"}, []string{"b", "c"}, 1},
		{[]string{"a", "b"}, []string{"a", "b"}, 2},
		{[]string{"a", "a"}, []string{"a"}, 2}, // caller guarantees dedup; raw count documented
	}
	for _, tc := range tests {
		if got := Overlap(tc.a, tc.b); got != tc.want {
			t.Errorf("Overlap(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEquation2URL(t *testing.T) {
	a := doc(1, "u1", "first http://bit.ly/x http://ow.ly/y", base)
	b := doc(2, "u2", "second http://bit.ly/x", base.Add(time.Hour))
	if got := U(a.Msg, b.Msg); got != 1.0 {
		t.Errorf("U = %v, want 1.0 (all of later's URLs shared)", got)
	}
	if got := U(b.Msg, a.Msg); got != 0.5 {
		t.Errorf("U reversed = %v, want 0.5", got)
	}
	c := doc(3, "u3", "no urls", base)
	if got := U(a.Msg, c.Msg); got != 0 {
		t.Errorf("U with no URLs = %v, want 0", got)
	}
}

func TestEquation3Hashtag(t *testing.T) {
	a := doc(1, "u1", "#redsox #yankees game", base)
	b := doc(2, "u2", "#redsox night", base.Add(time.Hour))
	if got := H(a.Msg, b.Msg); got != 1.0 {
		t.Errorf("H = %v, want 1.0", got)
	}
	if got := H(b.Msg, a.Msg); got != 0.5 {
		t.Errorf("H reversed = %v, want 0.5", got)
	}
}

func TestEquation4Time(t *testing.T) {
	a := doc(1, "u1", "x", base)
	b := doc(2, "u2", "y", base.Add(time.Hour))
	if got := T(a.Msg, b.Msg); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("T one hour apart = %v, want 0.5", got)
	}
	if got := T(a.Msg, a.Msg); got != 1.0 {
		t.Errorf("T same instant = %v, want 1.0", got)
	}
	// Symmetric in argument order.
	if T(a.Msg, b.Msg) != T(b.Msg, a.Msg) {
		t.Error("T not symmetric")
	}
}

func TestEquation5MessageSim(t *testing.T) {
	w := DefaultMessageWeights()
	a := doc(1, "src", "lester ovation #redsox http://bit.ly/x", base)
	rt := doc(2, "fan", "classy RT @src: lester ovation #redsox http://bit.ly/x", base.Add(time.Minute))
	unrelated := doc(3, "other", "totally different topic", base.Add(time.Minute))
	sRT := MessageSim(w, a, rt)
	sUn := MessageSim(w, a, unrelated)
	if sRT <= sUn {
		t.Errorf("RT sim %v not above unrelated sim %v", sRT, sUn)
	}
	if sRT < w.RT {
		t.Errorf("RT sim %v below RT bonus %v", sRT, w.RT)
	}
	// Freshness monotonicity: same content, later copy scores lower.
	near := doc(4, "u", "lester ovation #redsox", base.Add(time.Minute))
	far := doc(5, "u", "lester ovation #redsox", base.Add(48*time.Hour))
	if MessageSim(w, a, near) <= MessageSim(w, a, far) {
		t.Error("nearer message should score higher than older twin")
	}
}

// fakeBundle implements BundleStats for Eq. 1 tests.
type fakeBundle struct {
	tags, urls, kws map[string]int
	users           map[string]bool
	last            time.Time
}

func (f *fakeBundle) TagCount(s string) int     { return f.tags[s] }
func (f *fakeBundle) URLCount(s string) int     { return f.urls[s] }
func (f *fakeBundle) KeywordCount(s string) int { return f.kws[s] }
func (f *fakeBundle) HasUser(u string) bool     { return f.users[u] }
func (f *fakeBundle) LastDate() time.Time       { return f.last }

func TestEquation1BundleSim(t *testing.T) {
	w := DefaultBundleWeights()
	b := &fakeBundle{
		tags:  map[string]int{"redsox": 5, "yankees": 2},
		urls:  map[string]int{"bit.ly/x": 1},
		kws:   map[string]int{"lester": 4, "game": 9},
		users: map[string]bool{"amaliebenjamin": true},
		last:  base,
	}
	match := doc(1, "u", "lester hurt #redsox http://bit.ly/x", base.Add(time.Minute))
	s := BundleSim(w, match, b)
	if s < w.URL+w.Tag+w.Keyword {
		t.Errorf("matching message scored %v, want >= %v", s, w.URL+w.Tag+w.Keyword)
	}
	if s < w.Threshold {
		t.Errorf("clear match %v under threshold %v", s, w.Threshold)
	}

	miss := doc(2, "u", "nothing in common whatsoever", base.Add(time.Minute))
	if got := BundleSim(w, miss, b); got != 0 {
		t.Errorf("unrelated message scored %v, want 0 (no freshness without overlap)", got)
	}

	rt := doc(3, "u", "so true RT @AmalieBenjamin: lester ovation", base.Add(time.Minute))
	if got := BundleSim(w, rt, b); got < w.RT {
		t.Errorf("RT-into-bundle scored %v, want >= RT bonus %v", got, w.RT)
	}
}

func TestEquation1FreshnessTiebreak(t *testing.T) {
	w := DefaultBundleWeights()
	msg := doc(1, "u", "game on #redsox", base.Add(time.Hour))
	fresh := &fakeBundle{tags: map[string]int{"redsox": 1}, last: base.Add(55 * time.Minute)}
	stale := &fakeBundle{tags: map[string]int{"redsox": 1}, last: base.Add(-72 * time.Hour)}
	if BundleSim(w, msg, fresh) <= BundleSim(w, msg, stale) {
		t.Error("under equal overlap, fresher bundle must score higher (paper's stated intuition)")
	}
}

func TestEquation6EvictionRank(t *testing.T) {
	curr := base.Add(24 * time.Hour)
	oldSmall := EvictionRank(curr, base, 1)
	oldBig := EvictionRank(curr, base, 1000)
	freshSmall := EvictionRank(curr, base.Add(23*time.Hour), 1)
	if oldSmall <= oldBig {
		t.Error("smaller bundle of equal age must rank higher for eviction")
	}
	if oldSmall <= freshSmall {
		t.Error("older bundle of equal size must rank higher for eviction")
	}
	if got := EvictionRank(curr, base, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("size 0 produced %v", got)
	}
}

// Property: MessageSim is non-negative and finite for arbitrary
// well-formed inputs, and adding the RT relation never lowers it.
func TestMessageSimProperty(t *testing.T) {
	w := DefaultMessageWeights()
	f := func(textA, textB string, minutes uint16) bool {
		a := doc(1, "alice", "seed "+textA, base)
		b := doc(2, "bob", "seed "+textB, base.Add(time.Duration(minutes)*time.Minute))
		s := MessageSim(w, a, b)
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return false
		}
		brt := doc(3, "bob", "RT @alice: seed "+textB, b.Msg.Date)
		return MessageSim(w, a, brt) >= w.RT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: BundleSim of a message against an empty bundle is zero.
func TestBundleSimEmptyProperty(t *testing.T) {
	w := DefaultBundleWeights()
	empty := &fakeBundle{last: base}
	f := func(text string) bool {
		d := doc(1, "u", "x "+text, base)
		d.Msg.RTOf = "" // ensure no RT path
		return BundleSim(w, d, empty) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randDoc builds a message from pooled vocabulary so random pairs
// overlap on URLs, hashtags and keywords with realistic frequency.
func randDoc(rng *rand.Rand, id tweet.ID) Doc {
	words := []string{"lester", "ovation", "game", "tsunami", "samoa", "quake", "warning", "rescue", "coast", "boston"}
	tags := []string{"#redsox", "#yankees", "#tsunami", "#samoa"}
	urls := []string{"http://bit.ly/x", "http://bit.ly/y", "http://t.co/z"}
	parts := []string{}
	if rng.Intn(4) == 0 {
		parts = append(parts, "RT @src"+strconv.Itoa(rng.Intn(3))+":")
	}
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		parts = append(parts, words[rng.Intn(len(words))])
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		parts = append(parts, tags[rng.Intn(len(tags))])
	}
	if rng.Intn(2) == 0 {
		parts = append(parts, urls[rng.Intn(len(urls))])
	}
	at := base.Add(time.Duration(rng.Intn(72*3600)) * time.Second)
	return doc(id, "src"+strconv.Itoa(rng.Intn(3)), strings.Join(parts, " "), at)
}

// TestMessageSimPartsBitEqual pins the tracing contract: the traced
// breakdown accumulates in the exact sequence MessageSim uses, so its
// Total is bit-identical — tracing can never flip a near-tie.
func TestMessageSimPartsBitEqual(t *testing.T) {
	w := DefaultMessageWeights()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a := randDoc(rng, tweet.ID(2*i+1))
		b := randDoc(rng, tweet.ID(2*i+2))
		if b.Msg.Date.Before(a.Msg.Date) {
			a, b = b, a
		}
		p := MessageSimWithParts(w, a, b)
		if plain := MessageSim(w, a, b); p.Total != plain {
			t.Fatalf("case %d: parts total %v != MessageSim %v", i, p.Total, plain)
		}
		if sum := p.U + p.H + p.T + p.Keyword + p.RT; math.Abs(sum-p.Total) > 1e-12 {
			t.Fatalf("case %d: components sum %v vs total %v", i, sum, p.Total)
		}
	}
}

// TestBundleSimPartsBitEqual is the Eq. 1 analogue: the traced
// candidate breakdown must reproduce the engine's threshold comparison
// bit-for-bit.
func TestBundleSimPartsBitEqual(t *testing.T) {
	w := DefaultBundleWeights()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		d := randDoc(rng, tweet.ID(i+1))
		b := &fakeBundle{
			tags: map[string]int{"redsox": rng.Intn(5), "tsunami": rng.Intn(5)},
			urls: map[string]int{"bit.ly/x": rng.Intn(2), "t.co/z": rng.Intn(2)},
			kws:  map[string]int{"lester": rng.Intn(6), "quake": rng.Intn(6), "game": rng.Intn(6)},
			users: map[string]bool{
				"src0": rng.Intn(2) == 0, "src1": rng.Intn(2) == 0,
			},
			last: base.Add(time.Duration(rng.Intn(48*3600)) * time.Second),
		}
		p := BundleSimWithParts(w, d, b)
		if plain := BundleSim(w, d, b); p.Total != plain {
			t.Fatalf("case %d: parts total %v != BundleSim %v", i, p.Total, plain)
		}
		if sum := p.URL + p.Tag + p.Keyword + p.RT + p.Freshness; math.Abs(sum-p.Total) > 1e-12 {
			t.Fatalf("case %d: components sum %v vs total %v", i, sum, p.Total)
		}
	}
}
