// Package score implements every similarity and ranking function of the
// paper: the Table II connection types between messages, the
// message-to-message similarity of Equations 2–5 (used by Algorithm 2,
// message allocation inside a bundle), the message-to-bundle relevance
// of Equation 1 (used by Algorithm 1, bundle match), and the eviction
// rank of Equation 6.
//
// All functions are pure and deterministic so the Full Index ground
// truth and the Partial Index approximations differ only through what
// state each retains, never through scoring noise.
package score

import (
	"time"

	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

// ConnectionType classifies the provenance edge between two messages —
// Table II of the paper.
type ConnectionType uint8

// Connection types in priority order: when several hold, the edge is
// labelled with the strongest.
const (
	ConnNone    ConnectionType = iota
	ConnText                   // shared keywords
	ConnHashtag                // shared hashtag
	ConnURL                    // shared short-link
	ConnRT                     // explicit re-share
)

// String names the connection type.
func (c ConnectionType) String() string {
	switch c {
	case ConnRT:
		return "rt"
	case ConnURL:
		return "url"
	case ConnHashtag:
		return "hashtag"
	case ConnText:
		return "text"
	default:
		return "none"
	}
}

// Doc couples a message with its extracted keyword set. Keyword
// extraction costs a tokenizer pass, so it happens once at ingest and
// rides along with the message through matching, allocation and
// summary maintenance.
type Doc struct {
	Msg      *tweet.Message
	Keywords []string
}

// NewDoc runs the keyword extraction pass for m and returns the Doc the
// scoring functions consume. It is pure (no shared state beyond the
// tokenizer's concurrency-safe intern table), which is what lets the
// pipeline's prepare stage run it on many messages concurrently.
func NewDoc(m *tweet.Message) Doc {
	return Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)}
}

// overlap counts common elements of two small string slices. The slices
// on micro-blog messages hold a handful of entries, so the quadratic
// scan beats building maps.
func overlap(a, b []string) int {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				n++
				break
			}
		}
	}
	return n
}

// Overlap is the exported helper used by bundle summaries and tests.
func Overlap(a, b []string) int { return overlap(a, b) }

// Classify labels the strongest Table II connection from earlier
// message a to later message b, ConnNone when unrelated.
func Classify(a, b Doc) ConnectionType {
	switch {
	case b.Msg.IsRT() && b.Msg.RTOf == a.Msg.User:
		return ConnRT
	case overlap(a.Msg.URLs, b.Msg.URLs) > 0:
		return ConnURL
	case overlap(a.Msg.Hashtags, b.Msg.Hashtags) > 0:
		return ConnHashtag
	case overlap(a.Keywords, b.Keywords) > 0:
		return ConnText
	default:
		return ConnNone
	}
}

// MessageWeights are the α, β, γ of Equation 5 plus the keyword and RT
// extensions the equation's trailing "…" leaves open.
type MessageWeights struct {
	URL     float64 // α: weight of U(ti,tj), Eq. 2
	Tag     float64 // β: weight of H(ti,tj), Eq. 3
	Time    float64 // γ: weight of T(ti,tj), Eq. 4
	Keyword float64 // weight of shared-keyword ratio
	RT      float64 // additive bonus for an explicit re-share edge
}

// DefaultMessageWeights favour explicit signals (RT, URL) over tags over
// plain text, with freshness as a tiebreaker — the ordering the paper's
// Table II discussion implies.
func DefaultMessageWeights() MessageWeights {
	return MessageWeights{URL: 1.0, Tag: 0.8, Time: 0.4, Keyword: 0.5, RT: 2.0}
}

// U is Equation 2: the fraction of the later message's URLs shared with
// the earlier one. Zero when the later message has no URLs.
func U(earlier, later *tweet.Message) float64 {
	if len(later.URLs) == 0 {
		return 0
	}
	return float64(overlap(later.URLs, earlier.URLs)) / float64(len(later.URLs))
}

// H is Equation 3, the hashtag analogue of U.
func H(earlier, later *tweet.Message) float64 {
	if len(later.Hashtags) == 0 {
		return 0
	}
	return float64(overlap(later.Hashtags, earlier.Hashtags)) / float64(len(later.Hashtags))
}

// T is Equation 4: inverse time gap, measured in hours so that the
// scale is meaningful against the unit-interval overlap ratios (the
// paper leaves the unit open; hours make one-hour-apart messages score
// 0.5 and day-apart messages 0.04).
func T(a, b *tweet.Message) float64 {
	gap := a.Date.Sub(b.Date)
	if gap < 0 {
		gap = -gap
	}
	return 1 / (gap.Hours() + 1)
}

// keywordSim is the keyword analogue of U/H over extracted keyword sets.
func keywordSim(earlier, later Doc) float64 {
	if len(later.Keywords) == 0 {
		return 0
	}
	return float64(overlap(later.Keywords, earlier.Keywords)) / float64(len(later.Keywords))
}

// MessageSim is Equation 5: the weighted similarity of a later message
// to an earlier one, used to pick the parent node inside a bundle.
func MessageSim(w MessageWeights, earlier, later Doc) float64 {
	s := w.URL*U(earlier.Msg, later.Msg) +
		w.Tag*H(earlier.Msg, later.Msg) +
		w.Time*T(earlier.Msg, later.Msg) +
		w.Keyword*keywordSim(earlier, later)
	if later.Msg.IsRT() && later.Msg.RTOf == earlier.Msg.User {
		s += w.RT
	}
	return s
}

// MessageSimParts is the per-component breakdown of Equation 5, used
// by the decision tracer. Total accumulates in exactly the same order
// as MessageSim, so it is bit-identical to the score Algorithm 2
// actually compared — a traced run can never pick a different parent.
type MessageSimParts struct {
	U       float64 // weighted Eq. 2 term
	H       float64 // weighted Eq. 3 term
	T       float64 // weighted Eq. 4 term
	Keyword float64 // weighted keyword-ratio term
	RT      float64 // re-share bonus (0 or w.RT)
	Total   float64
}

// MessageSimWithParts is MessageSim with the component split exposed.
func MessageSimWithParts(w MessageWeights, earlier, later Doc) MessageSimParts {
	p := MessageSimParts{
		U:       w.URL * U(earlier.Msg, later.Msg),
		H:       w.Tag * H(earlier.Msg, later.Msg),
		T:       w.Time * T(earlier.Msg, later.Msg),
		Keyword: w.Keyword * keywordSim(earlier, later),
	}
	// Identical association order to MessageSim: ((U+H)+T)+Keyword,
	// then the RT bonus.
	s := p.U + p.H + p.T + p.Keyword
	if later.Msg.IsRT() && later.Msg.RTOf == earlier.Msg.User {
		p.RT = w.RT
		s += w.RT
	}
	p.Total = s
	return p
}

// BundleWeights parameterise Equation 1 — message-to-bundle relevance.
type BundleWeights struct {
	URL     float64 // α: per shared URL
	Tag     float64 // β: per shared hashtag
	Keyword float64 // per shared keyword
	RT      float64 // bonus when the bundle contains the re-shared user
	Time    float64 // γ: freshness factor weight

	// Threshold is the minimum Eq. 1 score at which a message joins an
	// existing bundle; below it a fresh bundle is created. It realises
	// Algorithm 1's "if bundle is null" branch for indicant-free or
	// unrelated messages.
	Threshold float64
}

// DefaultBundleWeights mirror DefaultMessageWeights at bundle
// granularity. The threshold requires at least one hard indicant match
// (URL, tag, RT): the keyword term is a ratio bounded by w.Keyword and
// the freshness term by w.Time, so keyword overlap plus freshness
// (0.22+0.30) can never reach the 0.55 threshold on their own. That
// bound is what stops a large bundle — which contains nearly every
// common keyword — from snowballing the whole stream into itself.
func DefaultBundleWeights() BundleWeights {
	return BundleWeights{URL: 1.0, Tag: 0.9, Keyword: 0.22, RT: 1.5, Time: 0.3, Threshold: 0.55}
}

// BundleStats is the view of a bundle the Eq. 1 scorer needs. It is a
// narrow interface so score does not depend on the bundle package.
type BundleStats interface {
	// TagCount / URLCount / KeywordCount return how many messages of
	// the bundle carry the given indicant.
	TagCount(tag string) int
	URLCount(url string) int
	KeywordCount(kw string) int
	// HasUser reports whether the user posted inside the bundle.
	HasUser(user string) bool
	// LastDate is the newest message date in the bundle.
	LastDate() time.Time
}

// BundleSim is Equation 1: S(t,B). The hard-indicant terms count
// distinct indicants of t present in B (the |url(t) ∩ url(B)| and
// |tag(t) ∩ tag(B)| of the paper). The keyword extension (the
// equation's trailing "…") is the *fraction* of t's keywords present in
// B, bounded by w.Keyword — an unbounded per-keyword count would let a
// large bundle, which accumulates every common word, attract every
// subsequent message and snowball. The freshness term is
// γ·1/(1+Δt_hours) per the documented reading of the paper's time
// factor (see DESIGN.md).
func BundleSim(w BundleWeights, t Doc, b BundleStats) float64 {
	var s float64
	for _, u := range t.Msg.URLs {
		if b.URLCount(u) > 0 {
			s += w.URL
		}
	}
	for _, h := range t.Msg.Hashtags {
		if b.TagCount(h) > 0 {
			s += w.Tag
		}
	}
	if len(t.Keywords) > 0 {
		shared := 0
		for _, k := range t.Keywords {
			if b.KeywordCount(k) > 0 {
				shared++
			}
		}
		s += w.Keyword * float64(shared) / float64(len(t.Keywords))
	}
	if t.Msg.IsRT() && b.HasUser(t.Msg.RTOf) {
		s += w.RT
	}
	if s > 0 && w.Time > 0 {
		gap := t.Msg.Date.Sub(b.LastDate())
		if gap < 0 {
			gap = -gap
		}
		s += w.Time / (gap.Hours() + 1)
	}
	return s
}

// BundleSimParts is the per-component breakdown of Equation 1, used by
// the decision tracer. Total accumulates in exactly the same sequence
// as BundleSim — bit-identical to the score the match stage compared
// against the join threshold, so tracing can never flip a near-tie.
type BundleSimParts struct {
	URL       float64 // hard URL indicant matches
	Tag       float64 // hard hashtag indicant matches
	Keyword   float64 // bounded keyword-ratio term
	RT        float64 // re-share bonus (0 or w.RT)
	Freshness float64 // γ·1/(1+Δt_hours), only when s > 0
	Total     float64
}

// BundleSimWithParts is BundleSim with the component split exposed.
func BundleSimWithParts(w BundleWeights, t Doc, b BundleStats) BundleSimParts {
	var p BundleSimParts
	var s float64
	for _, u := range t.Msg.URLs {
		if b.URLCount(u) > 0 {
			s += w.URL
			p.URL += w.URL
		}
	}
	for _, h := range t.Msg.Hashtags {
		if b.TagCount(h) > 0 {
			s += w.Tag
			p.Tag += w.Tag
		}
	}
	if len(t.Keywords) > 0 {
		shared := 0
		for _, k := range t.Keywords {
			if b.KeywordCount(k) > 0 {
				shared++
			}
		}
		kw := w.Keyword * float64(shared) / float64(len(t.Keywords))
		s += kw
		p.Keyword = kw
	}
	if t.Msg.IsRT() && b.HasUser(t.Msg.RTOf) {
		s += w.RT
		p.RT = w.RT
	}
	if s > 0 && w.Time > 0 {
		gap := t.Msg.Date.Sub(b.LastDate())
		if gap < 0 {
			gap = -gap
		}
		fresh := w.Time / (gap.Hours() + 1)
		s += fresh
		p.Freshness = fresh
	}
	p.Total = s
	return p
}

// Score upper bounds (DESIGN.md §2g). The pruned ingest paths skip a
// candidate only when its bound falls below the running best, so a
// bound must never under-estimate the true score. Each similarity
// component is a ratio in [0,1] scaled by its weight, which makes the
// clamped weight itself the component ceiling; BoundSlop absorbs the
// few ulps by which a differently-associated floating-point sum could
// exceed the bound arithmetic. Inflating a bound can only make pruning
// more conservative — it can never change which candidate wins — so
// the slop is safe by construction.

// BoundSlop is added to every score upper bound to dominate
// floating-point association error. Real scores are O(1) sums of at
// most a few hundred terms, so accumulated rounding stays below 1e-12;
// 1e-9 leaves three orders of magnitude of margin while remaining far
// below any meaningful score difference.
const BoundSlop = 1e-9

// ceil0 is the contribution ceiling of one weighted component whose
// ratio term is bounded by [0,1]: w for positive weights, 0 for
// negative ones (a negative weight times a non-negative ratio can only
// lower the score).
func ceil0(w float64) float64 {
	if w < 0 {
		return 0
	}
	return w
}

// MessageSimCeil bounds MessageSim(w, earlier, later) from above for
// any earlier node whose shared-indicant classes are exactly those
// flagged: url/tag/keyword report whether the node shares at least one
// URL, hashtag or keyword with the later message, rt whether the later
// message is an explicit re-share of the node's author. Eq. 2–4 and
// the keyword ratio are each ≤ 1, the time factor is ≤ 1, and absent
// classes contribute exactly 0, so the clamped-weight sum plus
// BoundSlop dominates every achievable score for that class mask.
func MessageSimCeil(w MessageWeights, url, tag, kw, rt bool) float64 {
	s := ceil0(w.Time) + BoundSlop
	if url {
		s += ceil0(w.URL)
	}
	if tag {
		s += ceil0(w.Tag)
	}
	if kw {
		s += ceil0(w.Keyword)
	}
	if rt {
		s += ceil0(w.RT)
	}
	return s
}

// BundleSimCeil bounds BundleSim(w, t, b) from above for a candidate
// bundle known (from summary-index postings) to carry urlHits of t's
// URLs, tagHits of its hashtags and kwHits of its kwTotal keywords,
// with rt reporting whether the bundle contains the re-shared user.
// The slack counts cover postings the fetch did NOT traverse (fanout
// cut or disabled class): each untraversed list may or may not contain
// the bundle, so the bound assumes it does, at the clamped weight.
// The freshness term is ≤ w.Time. BoundSlop covers the difference
// between this multiply-based arithmetic and BundleSim's running sum.
func BundleSimCeil(w BundleWeights, t Doc, urlHits, tagHits, kwHits int, rt bool,
	slackURL, slackTag, slackKw int, slackRT bool) float64 {
	s := w.URL*float64(urlHits) + w.Tag*float64(tagHits) + BoundSlop
	if kwTotal := len(t.Keywords); kwTotal > 0 {
		s += w.Keyword * float64(kwHits) / float64(kwTotal)
		if slackKw > 0 {
			s += ceil0(w.Keyword) * float64(slackKw) / float64(kwTotal)
		}
	}
	if rt {
		s += w.RT
	} else if slackRT {
		s += ceil0(w.RT)
	}
	s += ceil0(w.URL)*float64(slackURL) + ceil0(w.Tag)*float64(slackTag)
	s += ceil0(w.Time)
	return s
}

// EvictionRank is Equation 6: G(B) = curr − date(B) + 1/|B|, where the
// age term is measured in hours (the unit again left open by the paper;
// hours keep the 1/|B| size term relevant for bundles hours-old rather
// than vanishing instantly). Higher ranks evict first.
func EvictionRank(curr, lastUpdate time.Time, size int) float64 {
	ageHours := curr.Sub(lastUpdate).Hours()
	if size < 1 {
		size = 1
	}
	return ageHours + 1/float64(size)
}
