package shard

// Sharded-vs-serial equivalence and determinism: at Batch=1 with no
// candidate caps the sharded engine must partition messages into
// bundles EXACTLY like the serial engine (same bundles, same node
// order, same provenance edges); at any batch size the result must be
// a pure function of (stream, shard count, batch size) — repeated runs
// and the sequential phase mode all agree bit-for-bit.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tweet"
)

func smallGen(seed int64) *gen.Generator {
	cfg := gen.DefaultConfig()
	cfg.Seed = seed
	cfg.MsgsPerDay = 20000
	cfg.Users = 800
	cfg.VocabSize = 900
	cfg.EventsPerDay = 400
	return gen.New(cfg)
}

func genMessages(seed int64, n int) []*tweet.Message {
	g := smallGen(seed)
	msgs := make([]*tweet.Message, n)
	for i := range msgs {
		msgs[i] = g.Next()
	}
	return msgs
}

// uncappedConfig is the exact-equivalence configuration: no candidate
// caps, no pool limits — every relaxation documented in DESIGN.md §2i
// switched off.
func uncappedConfig() core.Config {
	cfg := core.FullIndexConfig()
	cfg.MaxCandidates = 0
	cfg.MaxFanout = 0
	return cfg
}

type edge struct {
	parent, child tweet.ID
	conn          score.ConnectionType
}

// edgeCollector is a concurrency-safe EdgeFunc (sharded commit runs
// one goroutine per shard).
type edgeCollector struct {
	mu    sync.Mutex
	edges []edge
}

func (c *edgeCollector) fn(parent, child tweet.ID, conn score.ConnectionType) {
	c.mu.Lock()
	c.edges = append(c.edges, edge{parent, child, conn})
	c.mu.Unlock()
}

func (c *edgeCollector) sorted() []edge {
	sort.Slice(c.edges, func(i, j int) bool {
		a, b := c.edges[i], c.edges[j]
		if a.child != b.child {
			return a.child < b.child
		}
		return a.parent < b.parent
	})
	return c.edges
}

// livePartition maps each live bundle (keyed by the ID of its first
// message — a shard-independent name) to its message IDs in node
// order.
func livePartition(engines ...*core.Engine) map[tweet.ID][]tweet.ID {
	part := make(map[tweet.ID][]tweet.ID)
	for _, e := range engines {
		e.Pool().All(func(b *bundle.Bundle) {
			nodes := b.Nodes()
			ids := make([]tweet.ID, len(nodes))
			for i, n := range nodes {
				ids[i] = n.Doc.Msg.ID
			}
			part[ids[0]] = ids
		})
	}
	return part
}

func assertPartitionsEqual(t *testing.T, want, got map[tweet.ID][]tweet.ID) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("bundle counts differ: got %d, want %d", len(got), len(want))
	}
	for first, w := range want {
		g, ok := got[first]
		if !ok {
			t.Fatalf("bundle opened by msg %d missing", first)
		}
		if len(g) != len(w) {
			t.Fatalf("bundle opened by msg %d: %d messages, want %d", first, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("bundle opened by msg %d: node %d is msg %d, want %d", first, i, g[i], w[i])
			}
		}
	}
}

func shardEngines(e *Engine) []*core.Engine {
	engs := make([]*core.Engine, e.Shards())
	for i := range engs {
		engs[i] = e.ShardEngine(i)
	}
	return engs
}

func TestShardedEquivalenceWithSerial(t *testing.T) {
	const total = 6000
	msgs := genMessages(11, total)
	cfg := uncappedConfig()

	var refEdges edgeCollector
	ref := core.New(cfg, nil, refEdges.fn)
	for _, m := range msgs {
		ref.Insert(m)
	}
	refPart := livePartition(ref)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			var edges edgeCollector
			e, err := New(cfg, Options{Shards: n, Batch: 1}, nil, edges.fn)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				if err := e.Ingest(m); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			st := e.Snapshot()
			rs := ref.Snapshot()
			if st.Messages != rs.Messages || st.BundlesCreated != rs.BundlesCreated ||
				st.EdgesCreated != rs.EdgesCreated || st.BundlesLive != rs.BundlesLive {
				t.Fatalf("aggregate stats differ:\n got msgs=%d bundles=%d live=%d edges=%d\nwant msgs=%d bundles=%d live=%d edges=%d",
					st.Messages, st.BundlesCreated, st.BundlesLive, st.EdgesCreated,
					rs.Messages, rs.BundlesCreated, rs.BundlesLive, rs.EdgesCreated)
			}
			assertPartitionsEqual(t, refPart, livePartition(shardEngines(e)...))
			w, g := refEdges.sorted(), edges.sorted()
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("edge %d differs: got %+v, want %+v", i, g[i], w[i])
				}
			}
		})
	}
}

// TestShardedDeterminism pins the protocol's core promise: the result
// is a function of (stream, N, B) alone. Two concurrent runs and one
// sequential-phase run must agree exactly, per shard — including each
// shard's bundle ID watermark and clock.
func TestShardedDeterminism(t *testing.T) {
	const (
		total = 8000
		n     = 4
		batch = 64
	)
	msgs := genMessages(13, total)
	cfg := core.PartialIndexConfig(400)

	run := func(sequential bool) *Engine {
		e, err := New(cfg, Options{Shards: n, Batch: batch, Sequential: sequential}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if err := e.Ingest(m); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		return e
	}

	a, b, seq := run(false), run(false), run(true)
	for _, other := range []*Engine{b, seq} {
		for i := 0; i < n; i++ {
			ae, oe := a.ShardEngine(i), other.ShardEngine(i)
			as, os := ae.Snapshot(), oe.Snapshot()
			if as.Messages != os.Messages || as.BundlesCreated != os.BundlesCreated ||
				as.EdgesCreated != os.EdgesCreated || as.Pool != os.Pool {
				t.Fatalf("shard %d stats differ:\n  %+v\nvs %+v", i, as, os)
			}
			if ae.Pool().NextID() != oe.Pool().NextID() {
				t.Fatalf("shard %d NextID %d vs %d", i, ae.Pool().NextID(), oe.Pool().NextID())
			}
			if !ae.Now().Equal(oe.Now()) {
				t.Fatalf("shard %d clock %v vs %v", i, ae.Now(), oe.Now())
			}
		}
		assertPartitionsEqual(t, livePartition(shardEngines(a)...), livePartition(shardEngines(other)...))
	}
}

// TestShardIDSpaces pins the stride allocation: every bundle a shard
// creates lies in its own residue class, so Owner inverts allocation.
func TestShardIDSpaces(t *testing.T) {
	const n = 3
	msgs := genMessages(17, 3000)
	e, err := New(uncappedConfig(), Options{Shards: n, Batch: 32}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := e.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e.ShardEngine(i).Pool().All(func(b *bundle.Bundle) {
			if Owner(b.ID(), n) != i {
				t.Fatalf("bundle %d lives on shard %d but Owner says %d", b.ID(), i, Owner(b.ID(), n))
			}
		})
	}
	if e.Snapshot().BundlesCreated == 0 {
		t.Fatal("no bundles created")
	}
}

// TestSplitConfigBounds: the per-shard pool limits must cover the
// global bound without undershooting it.
func TestSplitConfigBounds(t *testing.T) {
	cfg := core.PartialIndexConfig(10000)
	for _, n := range []int{1, 2, 3, 8} {
		sum := 0
		for i := 0; i < n; i++ {
			sc := splitConfig(cfg, i, n)
			sum += sc.Pool.MaxBundles
			if sc.Pool.IDStart != bundle.ID(i+1) || sc.Pool.IDStride != n {
				t.Fatalf("shard %d/%d: IDStart=%d IDStride=%d", i, n, sc.Pool.IDStart, sc.Pool.IDStride)
			}
		}
		if sum < cfg.Pool.MaxBundles {
			t.Fatalf("n=%d: split pools sum to %d < %d", n, sum, cfg.Pool.MaxBundles)
		}
	}
}
