// Round ledger: the durable record of completed two-phase rounds. One
// fixed-layout record is appended and fsynced after each round's WAL
// appends are synced on every shard; the newest valid record therefore
// names a globally consistent cut — "the stream prefix up to global
// sequence G is fully durable, and shard s's share of it ends at local
// WAL sequence W[s]".
//
// Recovery reads the newest record and trims every shard's WAL replay
// to its watermark (pipeline.DurableOptions.ReplayLimit): records a
// crashed round managed to sync on SOME shards are discarded, because
// the round never completed and was never acknowledged. What remains
// is exactly a stream prefix, which is what lets a feeder resume from
// "total recovered messages" with no duplicates and no holes.
//
// The file is a sequence of [len u32][crc32 u32][payload] frames
// (little endian, CRC over the payload); the payload is uvarints:
// global seq, shard count, then one local watermark per shard. A torn
// tail — the crash hit mid-append — invalidates only the final frame;
// earlier frames still parse, so the ledger degrades to the previous
// round's cut, never to garbage. The checkpoint barrier resets the
// ledger (all state is then covered by the per-shard checkpoints and
// the manifest).

package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"provex/internal/fsx"
)

// ledgerCut is one decoded ledger record: the consistent cut after a
// completed round.
type ledgerCut struct {
	global     uint64   // stream position: messages durable across all shards
	watermarks []uint64 // per-shard local WAL sequence at the cut
}

// ledger is the writer-side handle. Writer-goroutine only.
type ledger struct {
	fs   fsx.FS
	path string
	f    fsx.File
	buf  []byte
}

// openLedger opens (creating if needed) the ledger for appends and
// returns the newest valid cut, ok=false when the file is empty or
// unreadable past frame zero.
func openLedger(fsys fsx.FS, path string) (*ledger, ledgerCut, bool, error) {
	l := &ledger{fs: fsys, path: path}
	cut, ok := ledgerCut{}, false
	if f, err := fsys.Open(path); err == nil {
		cut, ok = scanLedger(f)
		f.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, ledgerCut{}, false, fmt.Errorf("shard: ledger open: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, ledgerCut{}, false, fmt.Errorf("shard: ledger open: %w", err)
	}
	l.f = f
	return l, cut, ok, nil
}

// scanLedger walks the frames and returns the last one that parses.
// Torn or corrupt tails end the scan without error: the previous frame
// is still a valid (if older) consistent cut.
func scanLedger(f fsx.File) (ledgerCut, bool) {
	cut, ok := ledgerCut{}, false
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return cut, ok
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > 1<<20 {
			return cut, ok
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return cut, ok
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return cut, ok
		}
		c, err := decodeCut(payload)
		if err != nil {
			return cut, ok
		}
		cut, ok = c, true
	}
}

func decodeCut(p []byte) (ledgerCut, error) {
	var c ledgerCut
	var n uint64
	var k int
	if c.global, k = binary.Uvarint(p); k <= 0 {
		return c, errors.New("shard: ledger: bad global seq")
	}
	p = p[k:]
	if n, k = binary.Uvarint(p); k <= 0 || n > 1<<16 {
		return c, errors.New("shard: ledger: bad shard count")
	}
	p = p[k:]
	c.watermarks = make([]uint64, n)
	for i := range c.watermarks {
		if c.watermarks[i], k = binary.Uvarint(p); k <= 0 {
			return c, errors.New("shard: ledger: truncated watermarks")
		}
		p = p[k:]
	}
	return c, nil
}

// append writes and fsyncs one cut. On error the round is not
// acknowledged; a torn frame is tolerated by the next scan.
func (l *ledger) append(global uint64, watermarks []uint64) error {
	l.buf = l.buf[:0]
	l.buf = binary.AppendUvarint(l.buf, global)
	l.buf = binary.AppendUvarint(l.buf, uint64(len(watermarks)))
	for _, w := range watermarks {
		l.buf = binary.AppendUvarint(l.buf, w)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(l.buf))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: ledger append: %w", err)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("shard: ledger append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("shard: ledger sync: %w", err)
	}
	return nil
}

// reset empties the ledger after a checkpoint barrier: everything it
// recorded is now covered by the per-shard checkpoints + manifest. A
// crash mid-reset leaves either the old frames (stale — recovery
// ignores cuts at or below the manifest's global seq) or an empty file;
// both recover correctly.
func (l *ledger) reset() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("shard: ledger reset: %w", err)
	}
	f, err := l.fs.Create(l.path)
	if err != nil {
		return fmt.Errorf("shard: ledger reset: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shard: ledger reset: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: ledger reset: %w", err)
	}
	nf, err := l.fs.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shard: ledger reset: %w", err)
	}
	l.f = nf
	return nil
}

func (l *ledger) close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}
