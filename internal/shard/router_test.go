package shard

import (
	"fmt"
	"testing"
	"time"

	"provex/internal/score"
	"provex/internal/tweet"
)

func doc(m tweet.Message, keywords ...string) score.Doc {
	return score.Doc{Msg: &m, Keywords: keywords}
}

func TestRouteKeyClassPrecedence(t *testing.T) {
	// A retweet routes by its original regardless of other indicants;
	// stripping indicants walks down the precedence chain.
	full := tweet.Message{
		User: "alice", RTOf: "origin",
		URLs: []string{"http://a"}, Hashtags: []string{"x"},
	}
	cases := []struct {
		name string
		a, b score.Doc
		same bool
	}{
		{"rt dominates", doc(full, "k"), doc(tweet.Message{User: "bob", RTOf: "origin"}), true},
		{"url next", doc(tweet.Message{User: "a", URLs: []string{"http://a"}, Hashtags: []string{"y"}}),
			doc(tweet.Message{User: "b", URLs: []string{"http://a"}}), true},
		{"tag next", doc(tweet.Message{User: "a", Hashtags: []string{"x"}}, "k1"),
			doc(tweet.Message{User: "b", Hashtags: []string{"x"}}), true},
		{"keyword next", doc(tweet.Message{User: "a"}, "k1", "k2"),
			doc(tweet.Message{User: "b"}, "k1"), true},
		{"user last", doc(tweet.Message{User: "a"}), doc(tweet.Message{User: "a"}), true},
		// Class salting: the same string in different classes must not
		// collide structurally.
		{"tag vs keyword salted", doc(tweet.Message{User: "a", Hashtags: []string{"x"}}),
			doc(tweet.Message{User: "b"}, "x"), false},
	}
	for _, c := range cases {
		if got := RouteKey(c.a) == RouteKey(c.b); got != c.same {
			t.Errorf("%s: keys equal=%v, want %v", c.name, got, c.same)
		}
	}
}

func TestRouteStableAndBounded(t *testing.T) {
	g := smallGen(7)
	for i := 0; i < 1000; i++ {
		m := g.Next()
		d := score.NewDoc(m)
		for _, n := range []int{1, 2, 5, 8} {
			s := Route(d, n)
			if s < 0 || s >= n {
				t.Fatalf("Route(_, %d) = %d out of range", n, s)
			}
			if s != Route(d, n) {
				t.Fatalf("Route not stable at n=%d", n)
			}
		}
	}
}

func TestRouteSpread(t *testing.T) {
	// Burst affinity skews routing on purpose; this only pins that no
	// shard starves outright on a generic stream.
	const n = 8
	counts := make([]int, n)
	g := smallGen(9)
	const total = 20000
	for i := 0; i < total; i++ {
		counts[Route(score.NewDoc(g.Next()), n)]++
	}
	for s, c := range counts {
		if c < total/(n*10) {
			t.Fatalf("shard %d starves: %d of %d (spread %v)", s, c, total, counts)
		}
	}
}

func TestRouteTimeIndependent(t *testing.T) {
	// The key must ignore everything but the dominant indicant — two
	// messages of one RT storm land together whatever their time/text.
	a := doc(tweet.Message{ID: 1, User: "u1", RTOf: "celebrity", Date: time.Unix(0, 0)})
	b := doc(tweet.Message{ID: 9, User: "u2", RTOf: "celebrity", Date: time.Unix(9999, 0), Text: "x"}, "extra")
	if RouteKey(a) != RouteKey(b) {
		t.Fatal("RT storm split across shards")
	}
	for n := 1; n <= 16; n++ {
		if Route(a, n) != Route(b, n) {
			t.Fatalf("split at n=%d", n)
		}
	}
}

func ExampleRoute() {
	d := doc(tweet.Message{User: "alice", Hashtags: []string{"breaking"}})
	fmt.Println(Route(d, 1) == 0, Route(d, 4) == Route(d, 4))
	// Output: true true
}
