// Package shard partitions the provenance engine into N independent
// shards — each with its own bundle pool, summary index and (when
// durable) WAL segment and checkpoint — coordinated by a deterministic
// two-phase protocol that keeps bundle assignment a pure function of
// (stream, shard count, batch size), independent of goroutine
// scheduling. DESIGN.md §2i derives the protocol and its equivalence
// to the serial engine; ARCHITECTURE.md places the package in the
// ingest path.
//
// The round protocol: ingest buffers up to Batch prepared messages,
// then resolves them in one round.
//
//   - Phase 1 (probe, read-only, parallel): every shard scores every
//     buffered message against its local start-of-round state with the
//     Eq. 1 match (core.Engine.Probe).
//   - Reduce (serial, deterministic): per message in stream order, the
//     best probe wins — highest Eq. 1 score, ties broken to the bundle
//     created earliest (the serial engine's lowest-bundle-ID rule,
//     expressed in shard-independent terms). Messages no shard matched
//     go to their home shard, the indicant hash of Route.
//   - Phase 2 (commit, parallel): each shard WAL-logs and applies its
//     assigned messages in stream order via the full local insert —
//     the commit-time re-match links same-round messages that joined
//     the same shard — then every shard advances its clock to the
//     round's newest message date so refinement ages pools in lockstep.
//
// Shards=1 skips the probe phase entirely: the engine degenerates to
// the serial apply loop behind the same API, which is both the honest
// scaling baseline and the exact-equivalence anchor.
package shard

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/storage"
	"provex/internal/tweet"
)

// DefaultBatch is the round size when Options.Batch is unset: large
// enough to amortise the per-round barrier, small enough that the
// intra-round visibility gap (see DESIGN.md §2i) stays negligible.
const DefaultBatch = 256

// Options assemble a sharded engine.
type Options struct {
	// Shards is the partition count N; <=1 runs one shard (serial
	// semantics behind the sharded API).
	Shards int
	// Batch is the round size B; <=0 uses DefaultBatch. B=1 resolves
	// every message in its own round, which makes sharded assignment
	// exactly equivalent to the serial engine (the differential test's
	// configuration); larger B trades an intra-round cross-shard
	// visibility gap for fewer barriers.
	Batch int
	// Sequential runs both phases on the calling goroutine, one shard
	// after another. Results are identical by construction — the
	// protocol never depends on scheduling — so this mode exists for
	// accurate per-shard busy timing (the provbench span measurement)
	// and for deterministic debugging.
	Sequential bool
	// Query, when non-nil, wraps every shard engine in a query
	// processor so the engine can serve the HTTP surface (Service).
	// Nil skips per-message indexing overhead — the right choice for
	// pure ingest tools.
	Query *query.Options
}

func (o Options) normalized() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	return o
}

// splitConfig derives shard i's engine config from the global one:
// the bundle ID space is strided (shard i of n allocates i+1, i+1+n,
// ...; Owner inverts the map) and pool occupancy bounds are divided so
// the aggregate pool honours the configured limit.
func splitConfig(cfg core.Config, i, n int) core.Config {
	cfg.Pool.IDStart = bundle.ID(i + 1)
	cfg.Pool.IDStride = n
	if cfg.Pool.MaxBundles > 0 {
		cfg.Pool.MaxBundles = ceilDiv(cfg.Pool.MaxBundles, n)
	}
	if cfg.Pool.LowerLimit > 0 {
		cfg.Pool.LowerLimit = ceilDiv(cfg.Pool.LowerLimit, n)
	}
	return cfg
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Owner maps a bundle ID back to the shard whose pool allocated it —
// the inverse of the splitConfig stride. Queries route point lookups
// with it.
func Owner(id bundle.ID, n int) int {
	if n <= 1 || id == 0 {
		return 0
	}
	return int((uint64(id) - 1) % uint64(n))
}

// shardState is one shard: its engine plus optional durability shell
// and query processor, and the per-round scratch owned by that shard's
// phase goroutine.
type shardState struct {
	eng  *core.Engine
	dur  *pipeline.Durable
	proc *query.Processor

	probes []core.ProbeResult // phase-1 output, one per batched message
	assign []core.Prepared    // phase-2 input, stream order
	busy   time.Duration      // this phase's busy time on this shard

	msgs metrics.Counter // messages committed to this shard
	err  error           // this shard's phase-2 failure, if any
}

// SpanStats is the measured critical path of the rounds so far: per
// round the slowest shard's probe time, the serial reduce time, and
// the slowest shard's commit time. Span is what an ideal scheduler
// with one core per shard could not beat — provbench reports
// throughput against it next to wall clock (EXPERIMENTS.md explains
// why both numbers matter on core-starved hardware).
type SpanStats struct {
	Probe  time.Duration // Σ rounds: max over shards of phase-1 busy
	Reduce time.Duration // Σ rounds: serial reduce
	Commit time.Duration // Σ rounds: max over shards of phase-2 busy
}

// Total is the whole critical path.
func (s SpanStats) Total() time.Duration { return s.Probe + s.Reduce + s.Commit }

// Engine is the sharded provenance engine. The ingest side
// (Ingest/IngestPrepared/Flush) is single-goroutine: one owner feeds
// the stream in date order, exactly like core.Engine — the parallelism
// lives inside the round, not around it. Reads of individual shard
// engines are safe between rounds under whatever lock the caller uses
// for queries (Service wraps one around the whole round).
type Engine struct {
	opts   Options
	shards []*shardState

	pending []core.Prepared
	global  uint64 // messages committed across all shards (stream prefix length)
	led     *ledger
	marks   []uint64 // ledger watermark scratch

	err error // first round failure; the engine refuses further ingest

	// Critical-path accounting in atomic nanosecond counters so the
	// metrics gauges may render during a round (scrapes take no engine
	// lock).
	spanProbe  metrics.Counter
	spanReduce metrics.Counter
	spanCommit metrics.Counter

	rounds metrics.Counter
	cross  metrics.Counter
}

// New builds a memory-only sharded engine (no WALs, no checkpoints).
// stores may be nil (no disk back-end anywhere) or hold one store per
// shard; onEdge, when non-nil, observes provenance edges from every
// shard — it must be safe for concurrent use unless Sequential is set,
// because commit goroutines run side by side.
func New(cfg core.Config, opts Options, stores []*storage.Store, onEdge core.EdgeFunc) (*Engine, error) {
	opts = opts.normalized()
	if stores != nil && len(stores) != opts.Shards {
		return nil, fmt.Errorf("shard: %d stores for %d shards", len(stores), opts.Shards)
	}
	states := make([]*shardState, opts.Shards)
	for i := range states {
		var st *storage.Store
		if stores != nil {
			st = stores[i]
		}
		states[i] = &shardState{eng: core.New(splitConfig(cfg, i, opts.Shards), st, onEdge)}
	}
	return assemble(opts, states), nil
}

// assemble finishes construction from prepared shard states (New for
// memory engines, OpenDurable for recovered ones).
func assemble(opts Options, states []*shardState) *Engine {
	for _, sh := range states {
		if opts.Query != nil {
			sh.proc = query.New(sh.eng, *opts.Query)
		}
	}
	return &Engine{
		opts:   opts,
		shards: states,
		marks:  make([]uint64, len(states)),
	}
}

// Shards returns the partition count N.
func (e *Engine) Shards() int { return len(e.shards) }

// Batch returns the effective round size B.
func (e *Engine) Batch() int { return e.opts.Batch }

// Global returns the number of messages committed across all shards —
// the length of the durable stream prefix once Flush has returned.
func (e *Engine) Global() uint64 { return e.global }

// Pending returns the messages buffered for the next round.
func (e *Engine) Pending() int { return len(e.pending) }

// Span returns the accumulated critical-path timing of all rounds.
func (e *Engine) Span() SpanStats {
	return SpanStats{
		Probe:  time.Duration(e.spanProbe.Value()),
		Reduce: time.Duration(e.spanReduce.Value()),
		Commit: time.Duration(e.spanCommit.Value()),
	}
}

// ShardEngine exposes shard i's engine for read-only use (tests,
// per-shard stats reporting). Mutating it directly violates the round
// protocol.
func (e *Engine) ShardEngine(i int) *core.Engine { return e.shards[i].eng }

// Reindex rebuilds every shard processor's baseline message index
// from its recovered pool. Call it once after OpenDurable on engines
// built with Options.Query: recovery replays through the engines,
// bypassing the processors, so searches would otherwise only cover
// post-recovery messages (same contract as query.Processor.Reindex).
func (e *Engine) Reindex() {
	for _, sh := range e.shards {
		if sh.proc != nil {
			sh.proc.Reindex()
		}
	}
}

// Rounds returns the number of two-phase rounds resolved so far.
func (e *Engine) Rounds() int { return int(e.rounds.Value()) }

// Cross returns how many messages the best-shard-wins reduce committed
// to a shard other than their indicant-hash home.
func (e *Engine) Cross() int { return int(e.cross.Value()) }

// Ingest prepares and buffers one message, flushing a full batch.
func (e *Engine) Ingest(m *tweet.Message) error {
	return e.IngestPrepared(core.Prepare(m))
}

// IngestPrepared buffers one prepared message, resolving a round when
// the batch is full. Messages must arrive in stream (date) order. A
// returned error means the round could not be made durable — the
// engine latches it and refuses further work; recover by reopening
// from disk (OpenDurable trims to the last consistent cut).
func (e *Engine) IngestPrepared(p core.Prepared) error {
	if e.err != nil {
		return e.err
	}
	e.pending = append(e.pending, p)
	if len(e.pending) >= e.opts.Batch {
		return e.Flush()
	}
	return nil
}

// Flush resolves the buffered messages in one round (no-op when the
// buffer is empty). After a nil return every buffered message is
// applied — and, for durable engines, WAL-synced and ledgered: Flush
// returning is the acknowledgement boundary.
func (e *Engine) Flush() error {
	if e.err != nil {
		return e.err
	}
	if len(e.pending) == 0 {
		return nil
	}
	err := e.round(e.pending)
	e.pending = e.pending[:0]
	if err != nil {
		e.err = err
	}
	return err
}

// round runs the two-phase protocol over batch. See the package doc
// for the protocol; this function is its direct transcription.
func (e *Engine) round(batch []core.Prepared) error {
	n := len(e.shards)

	// Phase 1: probe. Read-only against start-of-round state, so the
	// shard goroutines are independent. One shard skips it — there is
	// nothing to arbitrate.
	if n > 1 {
		e.runPhase(func(sh *shardState) {
			t0 := time.Now()
			sh.probes = sh.probes[:0]
			for _, p := range batch {
				sh.probes = append(sh.probes, sh.eng.Probe(p.Doc))
			}
			sh.busy = time.Since(t0)
		})
		e.spanProbe.Add(int64(e.maxBusy()))
	}

	// Reduce: deterministic winner per message, in stream order.
	t0 := time.Now()
	for _, sh := range e.shards {
		sh.assign = sh.assign[:0]
	}
	var maxDate time.Time
	for mi, p := range batch {
		win := -1
		var best core.ProbeResult
		if n > 1 {
			for si, sh := range e.shards {
				pr := sh.probes[mi]
				if !pr.OK {
					continue
				}
				if win < 0 || better(pr, best) {
					win, best = si, pr
				}
			}
		}
		if win < 0 {
			win = Route(p.Doc, n)
		} else if win != Route(p.Doc, n) {
			e.cross.Inc()
		}
		e.shards[win].assign = append(e.shards[win].assign, p)
		if d := p.Doc.Msg.Date; d.After(maxDate) {
			maxDate = d
		}
	}
	e.spanReduce.Add(int64(time.Since(t0)))

	// Phase 2: commit. Each shard owns its engine and WAL exclusively;
	// stream order within a shard is preserved because assign was
	// filled in stream order.
	e.runPhase(func(sh *shardState) {
		t0 := time.Now()
		defer func() { sh.busy = time.Since(t0) }()
		for _, p := range sh.assign {
			if sh.dur != nil {
				if err := sh.dur.Log(p.Doc.Msg); err != nil {
					sh.err = err
					return
				}
			}
			if sh.proc != nil {
				sh.proc.InsertPrepared(p)
			} else {
				sh.eng.InsertPrepared(p)
			}
			sh.msgs.Inc()
		}
		if sh.dur != nil {
			if err := sh.dur.SyncWAL(); err != nil {
				sh.err = err
				return
			}
		}
		sh.eng.AdvanceClock(maxDate)
	})
	e.spanCommit.Add(int64(e.maxBusy()))
	for _, sh := range e.shards {
		if sh.err != nil {
			return fmt.Errorf("shard: commit: %w", sh.err)
		}
	}

	e.global += uint64(len(batch))
	e.rounds.Inc()

	// Ledger: one fsynced record naming the consistent cut this round
	// extended the durable prefix to. Only after it lands is the round
	// acknowledged.
	if e.led != nil {
		for i, sh := range e.shards {
			e.marks[i] = sh.dur.Seq()
		}
		if err := e.led.append(e.global, e.marks); err != nil {
			return err
		}
	}
	return nil
}

// better orders probe results: higher Eq. 1 score wins; exact ties go
// to the bundle created earliest (older first-message date, then lower
// first-message ID). Bundle IDs are allocated in creation order within
// a shard and creation events are globally ordered by the stream, so
// this reproduces the serial engine's lowest-bundle-ID tie-break
// without comparing IDs across stride-disjoint spaces (DESIGN.md §2i
// gives the argument).
//
//provex:hotpath reduce step compares shards-many probe results per message
func better(a, b core.ProbeResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if !a.Created.Equal(b.Created) {
		return a.Created.Before(b.Created)
	}
	return a.FirstMsg < b.FirstMsg
}

// runPhase executes f once per shard — concurrently, one goroutine per
// shard, unless Sequential is set. Phase results never depend on which
// mode ran: shards share no mutable state during a phase.
func (e *Engine) runPhase(f func(*shardState)) {
	if e.opts.Sequential || len(e.shards) == 1 {
		for _, sh := range e.shards {
			f(sh)
		}
		return
	}
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			f(sh)
		}(sh)
	}
	wg.Wait()
}

// maxBusy returns the slowest shard's busy time for the phase that
// just ran — the phase's contribution to the critical path.
func (e *Engine) maxBusy() time.Duration {
	var m time.Duration
	for _, sh := range e.shards {
		if sh.busy > m {
			m = sh.busy
		}
	}
	return m
}

// Err returns the engine's first failure: a round that could not
// commit or ledger, else the first shard engine's latched background
// error (a bundle lost after exhausting flush retries).
func (e *Engine) Err() error {
	if e.err != nil {
		return e.err
	}
	for _, sh := range e.shards {
		if err := sh.eng.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot aggregates every shard's engine statistics into one global
// view — counters and timings sum; the stage timers therefore report
// CPU time across shards, not wall time (same reading as parallel
// prepare, see core.Stats.PrepareTime).
func (e *Engine) Snapshot() core.Stats {
	agg := core.Stats{ConnCounts: make(map[string]int64, 5)}
	for _, sh := range e.shards {
		st := sh.eng.Snapshot()
		agg.Messages += st.Messages
		agg.BundlesCreated += st.BundlesCreated
		agg.BundlesLive += st.BundlesLive
		agg.EdgesCreated += st.EdgesCreated
		for k, v := range st.ConnCounts {
			agg.ConnCounts[k] += v
		}
		agg.MemBundles += st.MemBundles
		agg.MemIndex += st.MemIndex
		agg.MessagesInMemory += st.MessagesInMemory
		agg.PrepareTime += st.PrepareTime
		agg.MatchTime += st.MatchTime
		agg.PlaceTime += st.PlaceTime
		agg.RefineTime += st.RefineTime
		agg.FlushRetries += st.FlushRetries
		agg.FlushDropped += st.FlushDropped
		agg.FlushParked += st.FlushParked
		agg.Pool.Created += st.Pool.Created
		agg.Pool.Refines += st.Pool.Refines
		agg.Pool.DeletedTiny += st.Pool.DeletedTiny
		agg.Pool.FlushedClosed += st.Pool.FlushedClosed
		agg.Pool.FlushedRanked += st.Pool.FlushedRanked
	}
	return agg
}

// ShardSnapshot captures shard i's statistics alone.
func (e *Engine) ShardSnapshot(i int) core.Stats { return e.shards[i].eng.Snapshot() }

// RegisterMetrics exposes the sharded engine on reg: the shard-level
// families (rounds, cross-shard resolutions, per-shard committed
// messages, per-phase critical-path gauges — OBSERVABILITY.md) plus
// every shard engine's full provex_* instrument set labeled
// shard="i", so per-shard series coexist in one registry and roll up
// with sum by (). Durable series are registered by Durable, keeping
// the memory/durable split of the serial layers.
func (e *Engine) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("provex_shard_rounds_total",
		"Two-phase rounds resolved by the sharded ingest engine (DESIGN.md section 2i).", &e.rounds)
	reg.RegisterCounter("provex_shard_cross_resolutions_total",
		"Messages the best-shard-wins reduce committed to a shard other than their indicant-hash home (cross-shard bundle matches).", &e.cross)
	for _, p := range []struct {
		phase string
		c     *metrics.Counter
	}{
		{"probe", &e.spanProbe},
		{"reduce", &e.spanReduce},
		{"commit", &e.spanCommit},
	} {
		c := p.c
		reg.RegisterGaugeFunc("provex_shard_span_seconds",
			"Accumulated critical path per round phase: slowest shard's probe, serial reduce, slowest shard's commit (the denominator of provbench's span throughput).",
			func() float64 { return float64(c.Value()) / 1e9 }, "phase", p.phase)
	}
	for i, sh := range e.shards {
		label := strconv.Itoa(i)
		reg.RegisterCounter("provex_shard_messages_total",
			"Messages committed per shard by the phase-2 apply (imbalance = skewed indicant distribution).",
			&sh.msgs, "shard", label)
		sh.eng.RegisterMetrics(reg, "shard", label)
	}
}
