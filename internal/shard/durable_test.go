package shard

// Durable sharding: recovery equals per-shard checkpoint + WAL replay
// trimmed to the round ledger's newest consistent cut; acknowledged
// rounds survive crashes exactly; the manifest pins the shard count.

import (
	"strings"
	"testing"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/tweet"
)

func testDurableOpts(fs fsx.FS) DurableOptions {
	return DurableOptions{
		FS:           fs,
		Dir:          "shards",
		ManifestPath: "manifest.json",
		WALSyncEvery: 1,
	}
}

func feed(t *testing.T, d *Durable, msgs []*tweet.Message) {
	t.Helper()
	for _, m := range msgs {
		if err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedDurableFreshOpenAndReopen(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	opts := Options{Shards: 3, Batch: 32}
	msgs := genMessages(31, 2000)

	d, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, msgs[:1216])
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feed(t, d, msgs[1216:])
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: checkpoints hold the first 1216 (38 aligned rounds), the WALs + ledger the
	// remaining 784.
	d2, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Replayed() != 784 {
		t.Fatalf("Replayed = %d, want 784", d2.Replayed())
	}
	if d2.Global() != 2000 {
		t.Fatalf("recovered Global = %d, want 2000", d2.Global())
	}

	// Reference: uninterrupted memory run with identical (N, B) —
	// rounds are deterministic, so the recovered state must match it
	// per shard.
	ref, err := New(cfg, opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := ref.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	assertPartitionsEqual(t, livePartition(shardEngines(ref)...), livePartition(shardEngines(d2.Engine)...))
}

func TestShardedCrashRecoversAcknowledgedRounds(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	opts := Options{Shards: 2, Batch: 50}
	msgs := genMessages(37, 1500)

	d, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, msgs[:600])
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// 8 full rounds acknowledged past the barrier, then the process
	// dies with its batch buffer holding 10 unacknowledged messages.
	for _, m := range msgs[600:1010] {
		if err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()

	d2, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Global(); got != 1000 {
		t.Fatalf("recovered Global = %d, want the 1000 acknowledged", got)
	}
	// Resume exactly at the recovered prefix and finish the stream;
	// the result must match an uninterrupted run.
	feed(t, d2, msgs[1000:])
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := New(cfg, opts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := ref.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	assertPartitionsEqual(t, livePartition(shardEngines(ref)...), livePartition(shardEngines(d2.Engine)...))
}

func TestShardedReshardingRefused(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	d, err := OpenDurable(cfg, Options{Shards: 2, Batch: 16}, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, genMessages(41, 200))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(cfg, Options{Shards: 3, Batch: 16}, testDurableOpts(mem))
	if err == nil || !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("reopen with different shard count: err = %v, want resharding refusal", err)
	}
}

// TestShardedTornRoundTrimmed forges the worst mid-round crash by
// hand: one shard's WAL holds a synced record of a round the ledger
// never acknowledged. Recovery must trim it, not replay it.
func TestShardedTornRoundTrimmed(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	opts := Options{Shards: 2, Batch: 10}
	msgs := genMessages(43, 510)

	d, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, msgs[:500])
	// Torn round: append straight to shard 0's Durable, bypassing the
	// round protocol — exactly what a crash between phase-2 WAL syncs
	// and the ledger append leaves behind.
	sh := d.shards[0]
	if err := sh.dur.Log(msgs[500]); err != nil {
		t.Fatal(err)
	}
	if err := sh.dur.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	mem.Crash()

	d2, err := OpenDurable(cfg, opts, testDurableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Global(); got != 500 {
		t.Fatalf("recovered Global = %d, want 500 (torn record replayed?)", got)
	}
	if got := d2.Engine.Snapshot().Messages; got != 500 {
		t.Fatalf("recovered messages = %d, want 500", got)
	}
}
