// Durable sharding: N pipeline.Durable shells (one WAL segment and
// checkpoint file per shard) coordinated by the round ledger and a
// manifest, so a crash anywhere recovers to an exact stream prefix.
//
// On-disk layout under DurableOptions.Dir:
//
//	shard-000/engine.ckpt   per-shard checkpoint
//	shard-000/wal/          per-shard write-ahead log
//	shard-000/store/        per-shard bundle store (optional)
//	shard-001/...
//	rounds.ledger           consistent cuts (see ledger.go)
//
// plus the manifest at DurableOptions.ManifestPath: shard count,
// global sequence and per-shard counts at the last checkpoint barrier,
// written atomically (tmp + sync + rename) AFTER every shard's
// checkpoint and BEFORE the ledger reset. That ordering makes each
// crash window recoverable:
//
//   - mid-round: the ledger's newest cut predates the torn round;
//     recovery trims every shard's WAL replay to its watermark.
//   - mid-barrier, before the manifest: shards with the new checkpoint
//     recovered it (it matches the barrier cut exactly — the barrier
//     runs between rounds); shards without it replay their WAL to the
//     same cut, which the ledger still holds.
//   - after the manifest, before the ledger reset: the stale cuts are
//     at or below the manifest's global sequence and are ignored.
//
// Recovery finishes with a full checkpoint barrier of its own, which
// truncates the trimmed WAL tails before any new append could re-issue
// their sequence numbers.

package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/storage"
)

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// manifest is the barrier-consistent summary of the sharded state.
type manifest struct {
	Version int      `json:"version"`
	Shards  int      `json:"shards"`
	Global  uint64   `json:"global_seq"`
	Counts  []uint64 `json:"shard_counts"`
}

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// FS is the filesystem all durable state goes through; nil uses the
	// real one.
	FS fsx.FS
	// Dir is the shard state root (per-shard subdirectories plus the
	// round ledger).
	Dir string
	// ManifestPath is the manifest file.
	ManifestPath string
	// WALSyncEvery is each shard WAL's batching cadence; the round
	// commit ends with an explicit sync regardless, so this only
	// shapes intra-round append cost.
	WALSyncEvery int
	// Store, when non-nil, opens one bundle store per shard at
	// Dir/shard-NNN/store (its FS defaults to FS above).
	Store *storage.Options
	// OnEdge observes provenance edges from every shard; it must be
	// safe for concurrent use unless Options.Sequential is set.
	OnEdge core.EdgeFunc
}

// Durable is the crash-safe sharded engine: the Engine ingest API plus
// the coordinated checkpoint barrier.
type Durable struct {
	*Engine
	fs     fsx.FS
	dopts  DurableOptions
	stores []*storage.Store // stores this Durable opened (closed by Close)

	ckpts       metrics.Counter
	barrierHist *metrics.Histogram
}

// barrierBounds bucket checkpoint-barrier latency (ns) from 1ms to a
// minute: N checkpoints + a manifest + a ledger reset per observation.
var barrierBounds = []int64{
	1e6, 5e6, 25e6, 1e8, 5e8, 2_500e6, 10_000e6, 60_000e6,
}

func shardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// OpenDurable opens (creating if needed) the sharded state under
// dopts and recovers it to the newest consistent cut: each shard loads
// its checkpoint and replays its WAL no further than the cut's
// watermark, then a full checkpoint barrier persists the recovered
// state and clears the trimmed tails. The manifest pins the shard
// count — reopening with a different opts.Shards is an error
// (resharding is not supported; DESIGN.md §2i).
func OpenDurable(cfg core.Config, opts Options, dopts DurableOptions) (*Durable, error) {
	opts = opts.normalized()
	fsys := fsx.Default(dopts.FS)
	if dopts.Dir == "" || dopts.ManifestPath == "" {
		return nil, errors.New("shard: durable: Dir and ManifestPath are required")
	}
	if err := fsys.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: durable: %w", err)
	}
	n := opts.Shards

	man, haveMan, err := readManifest(fsys, dopts.ManifestPath)
	if err != nil {
		return nil, err
	}
	if haveMan && man.Shards != n {
		return nil, fmt.Errorf("shard: durable: state has %d shards, opened with %d (resharding is not supported)", man.Shards, n)
	}

	led, cut, haveCut, err := openLedger(fsys, filepath.Join(dopts.Dir, "rounds.ledger"))
	if err != nil {
		return nil, err
	}

	// The recovery cut: the ledger's newest record when it postdates
	// the last barrier, else the barrier itself (manifest counts), else
	// nothing durable (zeros).
	limits := make([]uint64, n)
	switch {
	case haveCut && cut.global > man.Global:
		if len(cut.watermarks) != n {
			led.close()
			return nil, fmt.Errorf("shard: durable: ledger cut has %d shards, state has %d", len(cut.watermarks), n)
		}
		copy(limits, cut.watermarks)
	case haveMan:
		copy(limits, man.Counts)
	}

	d := &Durable{
		fs:          fsys,
		dopts:       dopts,
		barrierHist: metrics.NewHistogram(barrierBounds...),
	}
	states := make([]*shardState, n)
	fail := func(err error) (*Durable, error) {
		led.close()
		d.closeShards(states)
		return nil, err
	}
	for i := range states {
		dir := shardDir(dopts.Dir, i)
		var st *storage.Store
		if dopts.Store != nil {
			sopts := *dopts.Store
			if sopts.FS == nil {
				sopts.FS = fsys
			}
			st, err = storage.Open(filepath.Join(dir, "store"), sopts)
			if err != nil {
				return fail(fmt.Errorf("shard: durable: shard %d store: %w", i, err))
			}
			d.stores = append(d.stores, st)
		}
		walDir := filepath.Join(dir, "wal")
		if limits[i] == 0 {
			// Nothing on this shard was ever acknowledged: any WAL
			// records are a torn round's. ReplayLimit cannot express
			// "replay none" (0 is its disabled sentinel), so drop the
			// files outright.
			if err := wipeDir(fsys, walDir); err != nil {
				return fail(fmt.Errorf("shard: durable: shard %d wal wipe: %w", i, err))
			}
		}
		dur, err := pipeline.OpenDurable(splitConfig(cfg, i, n), st, dopts.OnEdge, pipeline.DurableOptions{
			FS:             fsys,
			CheckpointPath: filepath.Join(dir, "engine.ckpt"),
			WALDir:         walDir,
			WALSyncEvery:   dopts.WALSyncEvery,
			ReplayLimit:    limits[i],
		})
		if err != nil {
			return fail(fmt.Errorf("shard: durable: shard %d: %w", i, err))
		}
		states[i] = &shardState{eng: dur.Engine(), dur: dur}
	}

	d.Engine = assemble(opts, states)
	d.Engine.led = led
	for _, sh := range states {
		d.Engine.global += uint64(sh.eng.Snapshot().Messages)
	}

	// Persist the recovered cut before accepting new work: the barrier
	// truncates every trimmed WAL tail, so no re-issued sequence number
	// can ever collide with a stale record.
	if err := d.Checkpoint(); err != nil {
		d.Close()
		return nil, fmt.Errorf("shard: durable: recovery checkpoint: %w", err)
	}
	return d, nil
}

// Replayed sums the messages each shard's WAL contributed at open —
// the work the last crash would have lost without the logs.
func (d *Durable) Replayed() int {
	n := 0
	for _, sh := range d.shards {
		n += sh.dur.Replayed()
	}
	return n
}

// Checkpoint flushes any buffered round, then runs the coordinated
// barrier: every shard drains its flush retries and checkpoints (store
// sync, atomic checkpoint write, WAL truncate) in parallel, the
// manifest records the new cut atomically, and the ledger resets. A
// crash at any point recovers to either the previous cut or this one
// (see the file comment's window analysis).
func (d *Durable) Checkpoint() error {
	if err := d.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	d.runPhase(func(sh *shardState) {
		sh.dur.DrainRetries()
		sh.err = sh.dur.Checkpoint()
	})
	for i, sh := range d.shards {
		if sh.err != nil {
			err := sh.err
			sh.err = nil
			return fmt.Errorf("shard: checkpoint shard %d: %w", i, err)
		}
	}
	man := manifest{Version: manifestVersion, Shards: len(d.shards), Global: d.global}
	for _, sh := range d.shards {
		man.Counts = append(man.Counts, uint64(sh.eng.Snapshot().Messages))
	}
	if err := writeManifest(d.fs, d.dopts.ManifestPath, man); err != nil {
		return err
	}
	if err := d.led.reset(); err != nil {
		return err
	}
	d.ckpts.Inc()
	d.barrierHist.Observe(int64(time.Since(t0)))
	return nil
}

// Checkpoints counts completed barriers (including the recovery one).
func (d *Durable) Checkpoints() int64 { return d.ckpts.Value() }

// LogSize sums the shards' active WAL byte lengths.
func (d *Durable) LogSize() int64 {
	var n int64
	for _, sh := range d.shards {
		n += sh.dur.LogSize()
	}
	return n
}

// RegisterMetrics exposes the durability side on reg: each shard's WAL
// and replay series labeled shard="i" (per-shard WAL size gauges fall
// out of this), plus the barrier counter and duration histogram.
// Pair with Engine.RegisterMetrics for the full sharded instrument
// set.
func (d *Durable) RegisterMetrics(reg *metrics.Registry) {
	for i, sh := range d.shards {
		sh.dur.RegisterMetrics(reg, "shard", fmt.Sprintf("%d", i))
	}
	reg.RegisterCounter("provex_shard_checkpoints_total",
		"Coordinated checkpoint barriers completed across all shards.", &d.ckpts)
	reg.RegisterHistogram("provex_shard_checkpoint_barrier_seconds",
		"Latency of the coordinated checkpoint barrier (per-shard drains and checkpoints, manifest write, ledger reset).",
		d.barrierHist, 1e9)
}

// Close closes every shard's WAL, the ledger, and any stores this
// Durable opened. It does NOT checkpoint — un-checkpointed rounds
// recover from the WALs and ledger.
func (d *Durable) Close() error {
	var first error
	if d.Engine != nil {
		d.closeShards(d.shards)
		if err := d.led.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeShards releases per-shard resources for whichever states were
// opened so far (construction failure paths included).
func (d *Durable) closeShards(states []*shardState) {
	for _, sh := range states {
		if sh != nil && sh.dur != nil {
			sh.dur.Close()
		}
	}
	for _, st := range d.stores {
		st.Close()
	}
	d.stores = nil
}

// readManifest loads the manifest; a missing file is a fresh state.
func readManifest(fsys fsx.FS, path string) (manifest, bool, error) {
	f, err := fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("shard: manifest: %w", err)
	}
	defer f.Close()
	var m manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return manifest{}, false, fmt.Errorf("shard: manifest: decode: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("shard: manifest: unsupported version %d", m.Version)
	}
	if len(m.Counts) != m.Shards {
		return manifest{}, false, fmt.Errorf("shard: manifest: %d counts for %d shards", len(m.Counts), m.Shards)
	}
	return m, true, nil
}

// writeManifest persists m atomically: tmp file, sync, rename — the
// same recipe as core.SaveCheckpoint, so a reader never sees a partial
// manifest.
func writeManifest(fsys fsx.FS, path string, m manifest) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: manifest: %w", err)
	}
	if err := json.NewEncoder(f).Encode(m); err != nil {
		f.Close()
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("shard: manifest: encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("shard: manifest: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("shard: manifest: close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("shard: manifest: rename: %w", err)
	}
	return nil
}

// wipeDir removes every entry in dir (non-recursively — WAL dirs are
// flat), tolerating a missing dir.
func wipeDir(fsys fsx.FS, dir string) error {
	ents, err := fsys.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, name := range ents {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
