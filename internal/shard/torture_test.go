package shard

// Sharded crash-torture capstone: ingest a fixed stream through the
// sharded durable engine under randomized frozen fault injection —
// every mutating filesystem op on any shard's WAL, checkpoint, store,
// the manifest or the round ledger is a potential failure point; each
// failure is followed by a simulated crash (the in-memory disk reverts
// to its last-synced image) and a fresh recovery — and assert the
// final state is IDENTICAL, per shard, to an uninterrupted sharded run
// over the same stream. This exercises every barrier window: crashes
// land mid-round (ledger trim), mid-barrier (mixed old/new shard
// checkpoints) and post-manifest (stale ledger cuts ignored).
//
// The resume contract under test is the strong one the round ledger
// buys: recovery always lands on an exact stream prefix, so the feeder
// resumes from Global() with no duplicates and no holes.

import (
	"fmt"
	"math/rand"
	"testing"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/storage"
)

func TestShardedCrashTorture(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			shardedTortureRun(t, seed)
		})
	}
}

func shardedTortureRun(t *testing.T, seed int64) {
	const (
		total     = 2500
		shards    = 4
		batch     = 50
		ckptEvery = 500 // multiple of batch: barriers sit on round boundaries
		maxRounds = 80
	)
	rng := rand.New(rand.NewSource(seed))
	msgs := genMessages(seed, total)

	cfg := core.PartialIndexConfig(300)
	// Transient faults must never escalate to permanent drops — a drop
	// is real data loss and would (correctly) break state equality.
	cfg.FlushRetry.MaxAttempts = 1 << 30
	cfg.FlushRetry.MaxQueue = 1 << 20
	opts := Options{Shards: shards, Batch: batch}
	storeOpts := storage.Options{SegmentSize: 8192, SyncEvery: 4}
	dOpts := func(fs fsx.FS) DurableOptions {
		o := testDurableOpts(fs)
		o.Store = &storeOpts
		return o
	}

	// Uninterrupted reference run on a pristine disk, same (N, B) and
	// the same checkpoint cadence (barriers flush, so cadence shapes
	// round boundaries — though at ckptEvery%batch==0 it must not).
	refMem := fsx.NewMem()
	ref, err := OpenDurable(cfg, opts, dOpts(refMem))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if err := ref.Ingest(m); err != nil {
			t.Fatal(err)
		}
		if (i+1)%ckptEvery == 0 {
			if err := ref.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ref.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Tortured run: same stream, same config, hostile disk.
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	ops := fsx.MutatingOps()
	crashes := 0
	for round := 0; ; round++ {
		if round >= maxRounds {
			t.Fatalf("seed %d: still not converged after %d rounds", seed, maxRounds)
		}
		d, err := OpenDurable(cfg, opts, dOpts(ff))
		if err != nil {
			t.Fatalf("seed %d round %d: recovery failed: %v", seed, round, err)
		}
		done := int(d.Global())
		if done%batch != 0 {
			t.Fatalf("seed %d round %d: recovered prefix %d is not a round boundary", seed, round, done)
		}

		// Arm one randomized frozen fault: once it trips, the armed op
		// class keeps failing until the crash — a dying disk, not a
		// blip. Alternate between "any mutating op" (deep trigger
		// counts) and a single op class (shallow counts, so rare ops
		// like rename and remove get hit too).
		fault := fsx.Fault{Freeze: true}
		switch rng.Intn(3) {
		case 0:
			fault.Err = fsx.ErrNoSpace
		case 1:
			fault.TornBytes = rng.Intn(8)
			fault.Err = fsx.ErrNoSpace
		}
		// Round 0 always arms across every op class: the full stream
		// runs thousands of mutating ops, so at least one crash is
		// certain.
		if round == 0 || rng.Intn(2) == 0 {
			ff.Arm(1+rng.Int63n(2000), fault, ops...)
		} else {
			ff.Arm(1+rng.Int63n(60), fault, ops[rng.Intn(len(ops))])
		}

		crashed := false
		for i := done; i < total; i++ {
			if err := d.Ingest(msgs[i]); err != nil {
				crashed = true
				break
			}
			if (i+1)%ckptEvery == 0 {
				if err := d.Checkpoint(); err != nil {
					crashed = true
					break
				}
			}
		}
		ff.Disarm()
		if !crashed {
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("seed %d round %d: clean-path checkpoint: %v", seed, round, err)
			}
			// A fault may have latched a shard's open store
			// (unrepairable tail) without surfacing through Ingest;
			// parked bundles then need one more recovery cycle.
			if d.Snapshot().FlushParked > 0 {
				crashed = true
			}
		}
		if crashed {
			crashes++
			mem.Crash()
			continue
		}
		d.Close()
		break
	}
	t.Logf("seed %d: survived %d crashes", seed, crashes)
	if crashes == 0 {
		t.Fatalf("seed %d: no fault ever tripped — the torture is not torturing", seed)
	}

	// One last crash: the clean shutdown must have made everything
	// durable, so the post-crash image recovers to full state, equal to
	// the reference per shard — engines, ID watermarks, clocks, stores.
	mem.Crash()
	d, err := OpenDurable(cfg, opts, dOpts(mem))
	if err != nil {
		t.Fatalf("seed %d: final recovery: %v", seed, err)
	}
	defer d.Close()
	if err := d.Err(); err != nil {
		t.Fatalf("seed %d: recovered engine degraded: %v", seed, err)
	}
	if d.Global() != total {
		t.Fatalf("seed %d: recovered Global = %d, want %d", seed, d.Global(), total)
	}
	for i := 0; i < shards; i++ {
		we, ge := ref.ShardEngine(i), d.ShardEngine(i)
		ws, gs := we.Snapshot(), ge.Snapshot()
		if ws.Messages != gs.Messages || ws.EdgesCreated != gs.EdgesCreated ||
			ws.BundlesCreated != gs.BundlesCreated || ws.BundlesLive != gs.BundlesLive ||
			ws.Pool != gs.Pool {
			t.Fatalf("seed %d shard %d: stats differ:\n got %+v\nwant %+v", seed, i, gs, ws)
		}
		if we.Pool().NextID() != ge.Pool().NextID() {
			t.Fatalf("seed %d shard %d: NextID %d, want %d", seed, i, ge.Pool().NextID(), we.Pool().NextID())
		}
		if !we.Now().Equal(ge.Now()) {
			t.Fatalf("seed %d shard %d: clock %v, want %v", seed, i, ge.Now(), we.Now())
		}
		assertShardStoresEqual(t, seed, i, we.Store(), ge.Store())
	}
	assertPartitionsEqual(t, livePartition(shardEngines(ref.Engine)...), livePartition(shardEngines(d.Engine)...))
}

// assertShardStoresEqual compares the logical content of two bundle
// stores.
func assertShardStoresEqual(t *testing.T, seed int64, shard int, want, got *storage.Store) {
	t.Helper()
	wids, gids := want.IDs(), got.IDs()
	if len(wids) != len(gids) {
		t.Fatalf("seed %d shard %d: store sizes differ: got %d want %d", seed, shard, len(gids), len(wids))
	}
	for _, id := range wids {
		wb, err := want.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.Get(id)
		if err != nil {
			t.Fatalf("seed %d shard %d: bundle %d missing: %v", seed, shard, id, err)
		}
		if string(wb.Marshal()) != string(gb.Marshal()) {
			t.Fatalf("seed %d shard %d: stored bundle %d differs", seed, shard, id)
		}
	}
}
