package shard

import (
	"testing"

	"provex/internal/score"
	"provex/internal/tweet"
)

// TestHotPathZeroAlloc pins the router at zero allocations per op:
// RouteKey and Route run once per ingested message in the reduce step,
// so a single hidden allocation there taxes every message of every
// round. Covers each indicant class so no branch smuggles one in.
func TestHotPathZeroAlloc(t *testing.T) {
	docs := []score.Doc{
		doc(tweet.Message{User: "a", RTOf: "origin"}),
		doc(tweet.Message{User: "a", URLs: []string{"http://a"}}),
		doc(tweet.Message{User: "a", Hashtags: []string{"x"}}),
		doc(tweet.Message{User: "a"}, "keyword"),
		doc(tweet.Message{User: "a"}),
	}
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() {
		for _, d := range docs {
			sink += RouteKey(d)
			sink += uint64(Route(d, 8))
		}
	}); n != 0 {
		t.Errorf("RouteKey/Route allocate %.1f per op, want 0", n)
	}
	_ = sink
}
