package shard

// Service shell: concurrent submit + queries against the sharded
// engine, durable checkpointing on cadence, and resumability across a
// stop/reopen cycle.

import (
	"testing"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/query"
)

func newTestService(t *testing.T, fs fsx.FS, svcOpts ServiceOptions) (*Service, *Durable) {
	t.Helper()
	q := query.DefaultOptions()
	d, err := OpenDurable(core.PartialIndexConfig(500), Options{Shards: 3, Batch: 16, Query: &q}, testDurableOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewService(d.Engine, d, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestServiceIngestQueryResume(t *testing.T) {
	mem := fsx.NewMem()
	s, d := newTestService(t, mem, ServiceOptions{CheckpointEvery: 1000})
	s.Start()
	g := smallGen(3)
	const n = 4000
	for i := 0; i < n; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Ingested() != n {
		t.Fatalf("Ingested = %d, want %d", s.Ingested(), n)
	}
	if s.Checkpoints() < 2 {
		t.Fatalf("Checkpoints = %d, want cadence + final", s.Checkpoints())
	}
	st := s.Snapshot()
	if st.Messages != n || st.BundlesCreated == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Queries merge across shards under the serial tie order.
	bundles := s.SearchBundles("the", 10)
	if len(bundles) > 10 {
		t.Fatalf("SearchBundles overflowed k: %d", len(bundles))
	}
	for i := 1; i < len(bundles); i++ {
		a, b := bundles[i-1], bundles[i]
		if a.Score < b.Score || (a.Score == b.Score && a.ID > b.ID) {
			t.Fatalf("merge order violated at %d: %+v then %+v", i, a, b)
		}
	}
	if top := s.Trending(5); len(top) > 5 {
		t.Fatalf("Trending overflowed k: %d", len(top))
	}
	// Point lookups route by ownership: every live bundle on every
	// shard must resolve through the service facade.
	var ids []bundle.ID
	for i := 0; i < d.Shards(); i++ {
		d.ShardEngine(i).Pool().All(func(b *bundle.Bundle) {
			ids = append(ids, b.ID())
		})
	}
	if len(ids) == 0 {
		t.Fatal("no live bundles to look up")
	}
	for _, id := range ids {
		if _, err := s.Bundle(id); err != nil {
			t.Fatalf("Bundle(%d): %v", id, err)
		}
	}
	if _, err := s.Trail(ids[0]); err != nil {
		t.Fatalf("Trail(%d): %v", ids[0], err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the stopped service checkpointed everything, so the
	// recovered state resumes at the full stream.
	s2, d2 := newTestService(t, mem, ServiceOptions{})
	if got := s2.Ingested(); got != n {
		t.Fatalf("resumed Ingested = %d, want %d", got, n)
	}
	if d2.Replayed() != 0 {
		t.Fatalf("Replayed = %d after clean stop, want 0", d2.Replayed())
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceRequiresQueryProcessors(t *testing.T) {
	e, err := New(core.PartialIndexConfig(100), Options{Shards: 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(e, nil, ServiceOptions{}); err == nil {
		t.Fatal("NewService accepted an engine without query processors")
	}
}

func TestServiceSubmitAfterStop(t *testing.T) {
	mem := fsx.NewMem()
	s, d := newTestService(t, mem, ServiceOptions{})
	s.Start()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(nil); err != ErrClosed {
		t.Fatalf("Submit after Stop = %v, want ErrClosed", err)
	}
	d.Close()
}
