// Service: the concurrent deployment shell around the sharded engine,
// mirroring pipeline.Service — one writer goroutine owns ingest (the
// stream is inherently sequential; the parallelism lives inside each
// round), any number of query goroutines read under a shared lock, and
// durable engines checkpoint on a message cadence plus at Stop.
//
// Queries fan out: search and trending ask every shard's processor and
// merge top-k under the serial tie order (score desc, ID asc); point
// lookups (Bundle, Trail) route straight to the owning shard via the
// bundle ID stride. The service registers the same provex_pipeline_*
// metric families as the serial service, so dashboards work unchanged
// whichever shell a deployment runs.

package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/trending"
	"provex/internal/tweet"
)

// ErrClosed is returned by Submit after Stop.
var ErrClosed = errors.New("shard: service closed")

// ServiceOptions configure a Service.
type ServiceOptions struct {
	// Buffer is the ingest queue capacity; Submit blocks when full
	// (backpressure). 0 uses 1024.
	Buffer int
	// CheckpointEvery runs the coordinated checkpoint barrier after
	// every n committed messages; 0 disables periodic barriers (the
	// Stop barrier still runs for durable engines).
	CheckpointEvery int
	// Workers sets the concurrent prepare goroutines feeding the
	// writer. 0 defers to the engine config's Parallel.Workers; <=1
	// prepares inline.
	Workers int
}

// Service is the concurrent facade over a sharded Engine (or Durable —
// pass the embedded Engine plus the Durable for checkpointing). The
// engine must have been built with Options.Query set: queries need the
// per-shard processors.
type Service struct {
	opts ServiceOptions
	eng  *Engine
	dur  *Durable // nil for memory-only engines

	mu sync.RWMutex // guards all engine/shard state

	in     chan *tweet.Message
	done   chan struct{}
	stopMu sync.Mutex
	closed bool // guarded by stopMu

	// sinceCkpt is owned by the writer goroutine (run/maybeCheckpoint)
	// and never read elsewhere, so it needs no lock.
	sinceCkpt int
	ckptErr   error // guarded by stopMu
	ckptTimer metrics.StageTimer
}

// NewService wraps eng. dur may be nil (no durability); when set it
// must be the Durable whose embedded Engine eng is.
func NewService(eng *Engine, dur *Durable, opts ServiceOptions) (*Service, error) {
	if eng.opts.Query == nil {
		return nil, errors.New("shard: service requires an engine built with Options.Query")
	}
	if dur != nil && dur.Engine != eng {
		return nil, errors.New("shard: service: dur does not wrap eng")
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	return &Service{
		opts: opts,
		eng:  eng,
		dur:  dur,
		in:   make(chan *tweet.Message, opts.Buffer),
		done: make(chan struct{}),
	}, nil
}

// RegisterMetrics exposes the service on reg under the same
// provex_pipeline_* families as the serial pipeline.Service, so the
// deployment surface is shell-agnostic; pair with the engine's and
// durable's own RegisterMetrics for the shard-level families.
func (s *Service) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounterFunc("provex_pipeline_ingested_total",
		"Messages applied by the ingest writer.",
		func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(s.eng.Global()) })
	reg.RegisterCounterFunc("provex_pipeline_checkpoints_total",
		"Durable checkpoints written.",
		func() float64 { return float64(s.Checkpoints()) })
	reg.RegisterTimer("provex_pipeline_checkpoint_seconds",
		"Cumulative checkpoint time (retry drain, store sync, atomic write, WAL truncate).",
		&s.ckptTimer)
	reg.RegisterGaugeFunc("provex_pipeline_queue_depth",
		"Messages waiting in the ingest queue (capacity reached = producers blocked on backpressure).",
		func() float64 { return float64(len(s.in)) })
	reg.RegisterGaugeFunc("provex_pipeline_queue_capacity",
		"Capacity of the ingest queue.",
		func() float64 { return float64(cap(s.in)) })
}

// Start launches the writer goroutine.
func (s *Service) Start() {
	go s.run()
}

// run is the writer loop: prepare (possibly on a worker pool), buffer
// into the engine under the write lock, and flush a partial round
// whenever the queue runs dry so a live tail never sits invisible and
// non-durable in the batch buffer.
func (s *Service) run() {
	defer close(s.done)
	workers := s.opts.Workers
	if workers == 0 {
		workers = s.eng.shards[0].eng.Config().Parallel.Workers
	}
	next := s.sequentialNext()
	if workers > 1 {
		next = s.parallelNext(workers)
	}
	for {
		p, ok, idle := next()
		if ok {
			s.apply(p)
		}
		if idle || !ok {
			s.flush()
		}
		if !ok {
			break
		}
	}
	if s.dur != nil && s.eng.Global() > 0 {
		s.checkpoint()
	}
}

// sequentialNext prepares inline. The third return reports an empty
// queue at the time the message was taken — the flush-on-idle signal.
func (s *Service) sequentialNext() func() (core.Prepared, bool, bool) {
	return func() (core.Prepared, bool, bool) {
		m, ok := <-s.in
		if !ok {
			return core.Prepared{}, false, true
		}
		return core.Prepare(m), true, len(s.in) == 0
	}
}

// parallelNext fans prepare over a PreparePool while keeping apply
// order equal to submission order.
func (s *Service) parallelNext(workers int) func() (core.Prepared, bool, bool) {
	pool := pipeline.NewPreparePool(workers, 0)
	go func() {
		for m := range s.in {
			pool.Dispatch(m)
		}
		pool.Close()
	}()
	return func() (core.Prepared, bool, bool) {
		p, ok := pool.Next()
		if !ok {
			return core.Prepared{}, false, true
		}
		return p, true, len(s.in) == 0
	}
}

// apply buffers one prepared message; a full batch resolves a round
// in-line. Engine mutations happen under the write lock, so queries
// see only between-round (or between-message, at Batch=1) state.
func (s *Service) apply(p core.Prepared) {
	s.mu.Lock()
	err := s.eng.IngestPrepared(p)
	s.mu.Unlock()
	if err != nil {
		// Latched by the engine; surfaced by Err. The queue keeps
		// draining so Stop does not deadlock producers.
		return
	}
	s.maybeCheckpoint()
}

// flush resolves a partial round so the live tail becomes visible and
// durable.
func (s *Service) flush() {
	s.mu.Lock()
	pending := s.eng.Pending()
	var err error
	if pending > 0 {
		err = s.eng.Flush()
	}
	s.mu.Unlock()
	if pending > 0 && err == nil {
		s.maybeCheckpoint()
	}
}

// maybeCheckpoint runs the barrier when the cadence has elapsed.
func (s *Service) maybeCheckpoint() {
	if s.dur == nil || s.opts.CheckpointEvery <= 0 {
		return
	}
	s.mu.RLock()
	committed := int(s.eng.Global())
	s.mu.RUnlock()
	if committed-s.sinceCkpt < s.opts.CheckpointEvery {
		return
	}
	s.sinceCkpt = committed
	s.checkpoint()
}

// checkpoint runs the coordinated barrier under the write lock (the
// per-shard drains mutate engines, and the barrier must sit between
// rounds). Failures are latched and surfaced by Err.
func (s *Service) checkpoint() {
	start := time.Now()
	s.mu.Lock()
	err := s.dur.Checkpoint()
	s.mu.Unlock()
	s.ckptTimer.Observe(time.Since(start))
	if err != nil {
		s.stopMu.Lock()
		if s.ckptErr == nil {
			s.ckptErr = fmt.Errorf("shard: service checkpoint: %w", err)
		}
		s.stopMu.Unlock()
	}
}

// Submit enqueues one message for ingest, blocking when the buffer is
// full. Messages must be submitted in stream (date) order.
func (s *Service) Submit(m *tweet.Message) error {
	s.stopMu.Lock()
	if s.closed {
		s.stopMu.Unlock()
		return ErrClosed
	}
	defer s.stopMu.Unlock()
	s.in <- m
	return nil
}

// Stop drains the queue, waits for the writer (including the final
// flush and barrier) and returns the first background error, if any.
func (s *Service) Stop() error {
	s.stopMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.in)
	}
	s.stopMu.Unlock()
	<-s.done
	return s.Err()
}

// Err surfaces the first background failure without stopping.
func (s *Service) Err() error {
	s.stopMu.Lock()
	ckptErr := s.ckptErr
	s.stopMu.Unlock()
	if ckptErr != nil {
		return ckptErr
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Err()
}

// Ingested returns the committed stream prefix length.
func (s *Service) Ingested() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.eng.Global())
}

// Checkpoints returns completed barriers (0 for memory engines).
func (s *Service) Checkpoints() int {
	if s.dur == nil {
		return 0
	}
	return int(s.dur.Checkpoints())
}

// Snapshot aggregates engine statistics under the read lock.
func (s *Service) Snapshot() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Snapshot()
}

// SearchMessages answers a conventional message query: every shard's
// top k merged under (score desc, message ID asc).
func (s *Service) SearchMessages(q string, k int) []query.MessageHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var all []query.MessageHit
	for _, sh := range s.eng.shards {
		all = append(all, sh.proc.SearchMessages(q, k)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Msg.ID < all[j].Msg.ID
	})
	return truncate(all, k)
}

// SearchBundles answers a provenance bundle query (Eq. 7): every
// shard's top k merged under (score desc, bundle ID asc).
func (s *Service) SearchBundles(q string, k int) []query.BundleHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var all []query.BundleHit
	for _, sh := range s.eng.shards {
		all = append(all, sh.proc.SearchBundles(q, k)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	return truncate(all, k)
}

// Trending merges every shard's leaderboard under (score desc, bundle
// ID asc).
func (s *Service) Trending(k int) []trending.Topic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var all []trending.Topic
	for _, sh := range s.eng.shards {
		all = append(all, sh.proc.Trending(k)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	return truncate(all, k)
}

// Bundle resolves a bundle on its owning shard (pool, then that
// shard's disk back-end).
func (s *Service) Bundle(id bundle.ID) (*bundle.Bundle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.shards[Owner(id, len(s.eng.shards))].proc.Bundle(id)
}

// Trail renders a bundle's provenance forest from its owning shard.
func (s *Service) Trail(id bundle.ID) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.shards[Owner(id, len(s.eng.shards))].proc.Trail(id)
}

func truncate[T any](hits []T, k int) []T {
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
