// Router: the deterministic indicant-hash that assigns a message a
// "home" shard. The home shard only decides where a message lands when
// NO existing bundle matches it (phase 1 of the two-phase protocol
// found no Eq. 1 score above the join threshold on any shard) — the
// messages that open new bundles. Everything else follows the bundle it
// matched, wherever that bundle lives.
//
// The key is the message's dominant indicant, in the order the Eq. 1
// weights rank their routing signal: the retweeted user (an RT joins
// its original's conversation), else the first URL, else the first
// hashtag, else the first extracted keyword, else the author. Messages
// of one burst — an RT storm, a breaking-news URL, a hashtag campaign —
// therefore share a home shard, so the bundle a burst opens and the
// burst's follow-up messages meet on the same shard even within a
// single round (the commit phase's full local re-match links them).

package shard

import (
	"provex/internal/score"
)

// FNV-1a, inlined so the hot path stays allocation-free.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashString folds s into h without allocating.
//
//provex:hotpath inner loop of RouteKey, per byte of the dominant indicant
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// RouteKey hashes the message's dominant indicant. Each indicant class
// salts the hash with a distinct byte so equal strings in different
// classes ("#x" vs a keyword "x") do not collide structurally. Pure:
// the same document always yields the same key, on any shard count —
// which is what makes sharded ingest a function of (stream, N, batch)
// alone, independent of goroutine scheduling.
//
//provex:hotpath router hash runs once per ingested message
func RouteKey(doc score.Doc) uint64 {
	m := doc.Msg
	switch {
	case m.RTOf != "":
		return hashString(fnvOffset^1, m.RTOf)
	case len(m.URLs) > 0:
		return hashString(fnvOffset^2, m.URLs[0])
	case len(m.Hashtags) > 0:
		return hashString(fnvOffset^3, m.Hashtags[0])
	case len(doc.Keywords) > 0:
		return hashString(fnvOffset^4, doc.Keywords[0])
	default:
		return hashString(fnvOffset^5, m.User)
	}
}

// Route maps doc onto one of n shards.
//
//provex:hotpath runs once per ingested message in the reduce step
func Route(doc score.Doc, n int) int {
	if n <= 1 {
		return 0
	}
	return int(RouteKey(doc) % uint64(n))
}
