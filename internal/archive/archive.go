// Package archive makes disk-resident bundles searchable. The paper's
// framework (Figure 4) flushes finished bundles to the storage
// back-end; without a retrieval path those bundles would vanish from
// query results the moment the pool evicts them. Archive maintains a
// full-text index over each flushed bundle's summary terms (keywords,
// hashtags, URLs) so the query module can surface archived bundles next
// to live ones.
//
// The index is memory-resident and rebuilt from the store on Open —
// the store itself stays the single source of durability. Each flush
// gets a fresh internal document ID (re-flushing a bundle supersedes
// its terms; the old document is tombstoned and reclaimed by lazy
// compaction), so the full-text index never resurrects stale terms.
package archive

import (
	"sort"
	"time"

	"provex/internal/bundle"
	"provex/internal/storage"
	"provex/internal/textindex"
)

// summaryTerms is how many top summary words represent a bundle in the
// archive index.
const summaryTerms = 24

// compactRatio triggers posting compaction when this fraction of
// archive documents are tombstoned supersedes.
const compactRatio = 0.3

// Index is the archived-bundle search index. Not safe for concurrent
// writers; the engine's single-writer ingest discipline covers it.
type Index struct {
	store *storage.Store
	ix    *textindex.Index

	nextDoc   textindex.DocID
	docBundle map[textindex.DocID]bundle.ID
	bundleDoc map[bundle.ID]textindex.DocID
	ends      map[bundle.ID]time.Time
}

// Open builds an archive index over store, scanning any bundles already
// present (recovery after restart).
func Open(store *storage.Store) (*Index, error) {
	a := &Index{
		store:     store,
		ix:        textindex.New(),
		nextDoc:   1,
		docBundle: make(map[textindex.DocID]bundle.ID),
		bundleDoc: make(map[bundle.ID]textindex.DocID),
		ends:      make(map[bundle.ID]time.Time),
	}
	err := store.Scan(func(b *bundle.Bundle) error {
		a.Note(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Note indexes a freshly flushed bundle. Re-flushing the same bundle ID
// (a supersede) replaces its terms.
func (a *Index) Note(b *bundle.Bundle) {
	if old, ok := a.bundleDoc[b.ID()]; ok {
		a.ix.Delete(old)
		delete(a.docBundle, old)
	}
	doc := a.nextDoc
	a.nextDoc++

	terms := b.SummaryWords(summaryTerms)
	tags, urls, _ := b.Indicants()
	terms = append(terms, tags...)
	terms = append(terms, urls...)
	a.ix.Add(doc, terms)

	a.docBundle[doc] = b.ID()
	a.bundleDoc[b.ID()] = doc
	a.ends[b.ID()] = b.EndTime()

	if a.ix.DeletedRatio() > compactRatio {
		a.ix.Compact()
	}
}

// Len returns the number of archived bundles indexed.
func (a *Index) Len() int { return len(a.bundleDoc) }

// Hit is one archived-bundle search result.
type Hit struct {
	ID       bundle.ID
	Text     float64 // BM25 over summary terms, normalised to [0,1]
	LastPost time.Time
}

// Search returns the top k archived bundles for the term bag, ranked by
// summary-term BM25 with the score normalised against the best hit.
func (a *Index) Search(terms []string, k int) []Hit {
	raw := a.ix.Search(terms, k)
	if len(raw) == 0 {
		return nil
	}
	max := raw[0].Score
	if max <= 0 {
		return nil
	}
	out := make([]Hit, 0, len(raw))
	for _, h := range raw {
		id, ok := a.docBundle[h.Doc]
		if !ok {
			continue
		}
		out = append(out, Hit{ID: id, Text: h.Score / max, LastPost: a.ends[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Text != out[j].Text {
			return out[i].Text > out[j].Text
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Load fetches an archived bundle from the store.
func (a *Index) Load(id bundle.ID) (*bundle.Bundle, error) { return a.store.Get(id) }
