package archive

import (
	"fmt"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/score"
	"provex/internal/storage"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 20, 0, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

// topicBundle builds a bundle of n messages about the given topic word.
func topicBundle(id bundle.ID, topic string, n int) *bundle.Bundle {
	b := bundle.New(id)
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("%s update number %d #%s", topic, i, topic)
		m := tweet.Parse(tweet.ID(uint64(id)*100+uint64(i)), "u", base.Add(time.Duration(i)*time.Minute), text)
		b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)})
	}
	return b
}

func openArchive(t *testing.T) (*Index, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	a, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	return a, st
}

func TestNoteAndSearch(t *testing.T) {
	a, st := openArchive(t)
	for id, topic := range map[bundle.ID]string{1: "tsunami", 2: "baseball", 3: "election"} {
		b := topicBundle(id, topic, 4)
		if err := st.Put(b); err != nil {
			t.Fatal(err)
		}
		a.Note(b)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	hits := a.Search([]string{"tsunami"}, 5)
	if len(hits) != 1 || hits[0].ID != 1 {
		t.Fatalf("Search(tsunami) = %v", hits)
	}
	if hits[0].Text != 1 {
		t.Errorf("best hit normalised score = %v, want 1", hits[0].Text)
	}
	if hits[0].LastPost.IsZero() {
		t.Error("LastPost not cached")
	}
	b, err := a.Load(1)
	if err != nil || b.Size() != 4 {
		t.Fatalf("Load = (%v, %v)", b, err)
	}
}

func TestSearchMiss(t *testing.T) {
	a, _ := openArchive(t)
	if hits := a.Search([]string{"anything"}, 5); hits != nil {
		t.Errorf("empty archive returned %v", hits)
	}
}

func TestOpenRecoversExistingStore(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := bundle.ID(1); id <= 5; id++ {
		if err := st.Put(topicBundle(id, "storm", 3)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	a, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5", a.Len())
	}
	if hits := a.Search([]string{"storm"}, 10); len(hits) != 5 {
		t.Errorf("Search over recovered archive = %d hits, want 5", len(hits))
	}
}

func TestNoteSupersede(t *testing.T) {
	a, st := openArchive(t)
	b1 := topicBundle(1, "quake", 2)
	st.Put(b1)
	a.Note(b1)
	// Re-flush the same bundle grown bigger and re-topiced.
	b2 := topicBundle(1, "aftershock", 6)
	st.Put(b2)
	a.Note(b2)
	if a.Len() != 1 {
		t.Fatalf("Len after supersede = %d", a.Len())
	}
	if hits := a.Search([]string{"quake"}, 5); len(hits) != 0 {
		t.Errorf("stale terms still searchable: %v", hits)
	}
	hits := a.Search([]string{"aftershock"}, 5)
	if len(hits) != 1 {
		t.Fatalf("new terms not searchable: %v", hits)
	}
}

func TestSearchRanking(t *testing.T) {
	a, st := openArchive(t)
	// Bundle 1 is entirely about floods; bundle 2 mentions flood once
	// among other topics.
	b1 := topicBundle(1, "flood", 6)
	mixed := bundle.New(2)
	for i, topic := range []string{"flood", "game", "vote", "show", "market", "tour"} {
		text := fmt.Sprintf("%s news item %d #%s", topic, i, topic)
		m := tweet.Parse(tweet.ID(200+i), "u", base.Add(time.Duration(i)*time.Minute), text)
		mixed.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)})
	}
	st.Put(b1)
	a.Note(b1)
	st.Put(mixed)
	a.Note(mixed)

	hits := a.Search([]string{"flood"}, 5)
	if len(hits) != 2 || hits[0].ID != 1 {
		t.Fatalf("ranking wrong: %v", hits)
	}
	if hits[1].Text >= hits[0].Text {
		t.Errorf("normalised scores not descending: %v", hits)
	}
}
