package promtext

import (
	"strings"
	"testing"
)

func TestParseWellFormed(t *testing.T) {
	in := `# HELP provex_ingest_total Messages ingested.
# TYPE provex_ingest_total counter
provex_ingest_total 12345
provex_stage_seconds{stage="match"} 0.25
provex_stage_seconds{stage="place"} 1e-3
provex_queue_depth -3
provex_ratio NaN
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["provex_ingest_total"] != 12345 {
		t.Errorf("counter = %v, want 12345", got["provex_ingest_total"])
	}
	if got[`provex_stage_seconds{stage="match"}`] != 0.25 {
		t.Errorf("labelled series = %v, want 0.25", got[`provex_stage_seconds{stage="match"}`])
	}
	if got[`provex_stage_seconds{stage="place"}`] != 1e-3 {
		t.Errorf("scientific value = %v, want 1e-3", got[`provex_stage_seconds{stage="place"}`])
	}
	if got["provex_queue_depth"] != -3 {
		t.Errorf("negative gauge = %v, want -3", got["provex_queue_depth"])
	}
	if v := got["provex_ratio"]; v == v {
		t.Errorf("NaN value parsed as %v", v)
	}
	if len(got) != 5 {
		t.Errorf("got %d series, want 5", len(got))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"# COMMENT free-form\n",   // comment that is neither HELP nor TYPE
		"loneseries\n",            // sample with no value
		"series notanumber\n",     // unparsable value
		"series{label=\"open 1\n", // unterminated label block
		" 5\n",                    // empty series name
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", in)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	got, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input produced %d series", len(got))
	}
}
