package promtext

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the exposition parser: it must
// never panic, and anything it accepts must round-trip — re-rendering
// the parsed series as `name value` lines and parsing again yields
// the same map.
func FuzzParse(f *testing.F) {
	f.Add("# HELP x y\n# TYPE x counter\nx 1\n")
	f.Add("series{label=\"v\"} 2.5\n")
	f.Add("a 1\nb NaN\nc +Inf\nd -Inf\n")
	f.Add("# BAD comment\n")
	f.Add("truncated")
	f.Add("\x00\xff 1\n")
	f.Add(strings.Repeat("a", 100) + " 1\n")

	f.Fuzz(func(t *testing.T, input string) {
		got, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var b strings.Builder
		for name, v := range got {
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte('\n')
		}
		again, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("accepted input did not round-trip: %v\nrendered:\n%s", err, b.String())
		}
		if len(again) != len(got) {
			t.Fatalf("round-trip changed series count: %d -> %d", len(got), len(again))
		}
		for name, v := range got {
			w, ok := again[name]
			if !ok {
				t.Fatalf("round-trip lost series %q", name)
			}
			if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				t.Fatalf("round-trip changed %q: %v -> %v", name, v, w)
			}
		}
	})
}
