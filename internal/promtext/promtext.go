// Package promtext parses the Prometheus text exposition format
// produced by internal/metrics (and scraped back by provload). It is
// deliberately strict: provload doubles as the CI check that a live
// /metrics scrape is well-formed, so malformed lines are errors, not
// skips.
//
// The dialect accepted is the subset the repo emits: `# HELP` and
// `# TYPE` comments, then `series value` samples where series may
// carry a {label="..."} block and value is any strconv-parsable float
// (including NaN and +/-Inf).
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxLine bounds one exposition line; a scrape with a longer line is
// malformed rather than worth buffering without limit.
const maxLine = 1 << 20

// Parse reads Prometheus text format into series → value. The series
// key keeps its label block verbatim (`name{k="v"}`), matching what
// the exposition printed.
func Parse(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return nil, fmt.Errorf("malformed comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		name, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			return nil, fmt.Errorf("unterminated labels in %q", line)
		}
		out[name] = v
	}
	return out, sc.Err()
}
