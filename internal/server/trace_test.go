package server

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/trace"
	"provex/internal/tweet"

	"net/http/httptest"
)

// newTracedServer builds a server over an engine with SampleEvery=1
// tracing, so every ingested message has an /explain breakdown.
func newTracedServer(t *testing.T) (*httptest.Server, *trace.Recorder) {
	t.Helper()
	eng := core.New(core.FullIndexConfig(), nil, nil)
	rec := trace.New(trace.Options{SampleEvery: 1, Buffer: 64})
	eng.SetTracer(rec)
	proc := query.New(eng, query.DefaultOptions())
	base := time.Date(2009, 9, 17, 2, 0, 0, 0, time.UTC)
	msgs := []struct {
		user, text string
	}{
		{"wharman", "Lester down #redsox"},
		{"amaliebenjamin", "Lester getting an ovation from the #yankee crowd #redsox"},
		{"abcdude", "Classy RT @amaliebenjamin: Lester getting an ovation from the #yankee crowd #redsox"},
	}
	for i, m := range msgs {
		proc.Insert(tweet.Parse(tweet.ID(i+1), m.user, base.Add(time.Duration(i)*time.Minute), m.text))
	}
	srv := httptest.NewServer(New(proc, WithTrace(rec)))
	t.Cleanup(srv.Close)
	return srv, rec
}

func TestExplain(t *testing.T) {
	srv, _ := newTracedServer(t)
	// Message 3 is the RT: it joins message 2's bundle with an rt edge,
	// so its breakdown exercises every section.
	out := getJSON(t, srv.URL+"/explain?id=3", 200)
	if out["msg_id"].(float64) != 3 {
		t.Errorf("msg_id = %v", out["msg_id"])
	}
	if out["new_bundle"].(bool) {
		t.Error("RT reply recorded as a new bundle")
	}
	if th := out["threshold"].(float64); th <= 0 {
		t.Errorf("threshold = %v", th)
	}
	cands, ok := out["candidates"].([]interface{})
	if !ok || len(cands) == 0 {
		t.Fatalf("candidates = %v", out["candidates"])
	}
	c0 := cands[0].(map[string]interface{})
	for _, key := range []string{"bundle", "url", "hashtag", "keyword", "rt", "freshness", "total"} {
		if _, ok := c0[key]; !ok {
			t.Errorf("candidate missing component %q: %v", key, c0)
		}
	}
	if out["conn"].(string) != "rt" {
		t.Errorf("conn = %v, want rt", out["conn"])
	}
	parents, ok := out["parent_scores"].([]interface{})
	if !ok || len(parents) == 0 {
		t.Fatalf("parent_scores = %v", out["parent_scores"])
	}
	p0 := parents[0].(map[string]interface{})
	for _, key := range []string{"node", "conn", "u", "h", "t", "keyword", "rt", "total"} {
		if _, ok := p0[key]; !ok {
			t.Errorf("parent score missing component %q: %v", key, p0)
		}
	}
	if out["margin"].(float64) < 0 {
		t.Errorf("margin = %v", out["margin"])
	}
}

func TestExplainUnsampled(t *testing.T) {
	srv, _ := newTracedServer(t)
	out := getJSON(t, srv.URL+"/explain?id=99999", 404)
	if _, ok := out["error"]; !ok {
		t.Errorf("404 body missing error: %v", out)
	}
	hint, ok := out["hint"].(string)
	if !ok || !strings.Contains(hint, "-trace-sample") {
		t.Errorf("404 hint does not mention sampling: %v", out)
	}
	getJSON(t, srv.URL+"/explain?id=notanumber", 400)
	getJSON(t, srv.URL+"/explain", 400)
}

func TestTraceRecent(t *testing.T) {
	srv, _ := newTracedServer(t)
	out := getJSON(t, srv.URL+"/trace/recent?n=2", 200)
	if out["sample_every"].(float64) != 1 || out["buffer"].(float64) != 64 {
		t.Errorf("ring header = %v", out)
	}
	ds, ok := out["decisions"].([]interface{})
	if !ok || len(ds) != 2 {
		t.Fatalf("decisions = %v", out["decisions"])
	}
	// Newest first: message 3, then 2.
	first := ds[0].(map[string]interface{})
	if first["msg_id"].(float64) != 3 {
		t.Errorf("decisions[0].msg_id = %v, want 3", first["msg_id"])
	}
	id := strconv.Itoa(int(first["msg_id"].(float64)))
	full := getJSON(t, srv.URL+"/explain?id="+id, 200)
	if full["msg_id"].(float64) != first["msg_id"].(float64) {
		t.Error("/trace/recent id does not resolve via /explain")
	}
	getJSON(t, srv.URL+"/trace/recent?n=0", 400)
	getJSON(t, srv.URL+"/trace/recent?n=x", 400)
}

func TestTraceRefinements(t *testing.T) {
	srv, rec := newTracedServer(t)
	// The full-index config never refines in a 3-message test; record
	// events directly to exercise the endpoint.
	rec.RecordRefine(trace.RefineEvent{Bundle: 7, Reason: "ranked", Size: 3, GScore: 1.5, Rank: 1, Flushed: true})
	rec.RecordRefine(trace.RefineEvent{Bundle: 8, Reason: "aging-tiny", Size: 1})
	out := getJSON(t, srv.URL+"/trace/refinements?n=10", 200)
	evs, ok := out["refinements"].([]interface{})
	if !ok || len(evs) != 2 {
		t.Fatalf("refinements = %v", out["refinements"])
	}
	newest := evs[0].(map[string]interface{})
	if newest["bundle"].(float64) != 8 || newest["reason"].(string) != "aging-tiny" {
		t.Errorf("refinements[0] = %v", newest)
	}
}

func TestTraceEndpointsAbsentWithoutRecorder(t *testing.T) {
	srv, _ := newTestServer(t) // no WithTrace
	for _, path := range []string{"/explain?id=1", "/trace/recent", "/trace/refinements"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d without a recorder, want 404", path, resp.StatusCode)
		}
	}
}

func TestTraceMethodNotAllowed(t *testing.T) {
	srv, _ := newTracedServer(t)
	for _, path := range []string{"/explain?id=1", "/trace/recent", "/trace/refinements"} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}
