package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/metrics"
	"provex/internal/query"
	"provex/internal/tweet"
)

func newMetricsServer(t *testing.T) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	eng := core.New(core.FullIndexConfig(), nil, nil)
	proc := query.New(eng, query.DefaultOptions())
	base := time.Date(2009, 9, 17, 2, 0, 0, 0, time.UTC)
	proc.Insert(tweet.Parse(1, "wharman", base, "Lester down #redsox"))
	proc.Insert(tweet.Parse(2, "amaliebenjamin", base.Add(time.Minute),
		"Lester getting an ovation from the #yankee crowd #redsox"))
	reg := metrics.NewRegistry()
	eng.RegisterMetrics(reg)
	srv := httptest.NewServer(New(proc, WithRegistry(reg)))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint checks the live exposition: correct content type,
// engine series present, and the HTTP middleware counting the requests
// that produced it.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newMetricsServer(t)
	if code, _ := get(t, srv.URL+"/search?q=lester"); code != 200 {
		t.Fatalf("search = %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE provex_http_requests_total counter",
		`provex_http_requests_total{code="2xx",path="/search"} 1`,
		`provex_http_request_duration_seconds_count{path="/search"} 1`,
		"# TYPE provex_ingest_stage_seconds summary",
		`provex_ingest_stage_seconds_count{stage="match"} 2`,
		"provex_ingest_messages_total 2",
		"provex_pool_bundles_live 1",
		"provex_http_in_flight_requests 1", // the /metrics request itself
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMiddlewareConcurrent hammers endpoints from many goroutines and
// asserts every request landed exactly once in the counters and the
// latency histogram, with the in-flight gauge back at zero.
func TestMiddlewareConcurrent(t *testing.T) {
	srv, reg := newMetricsServer(t)
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(srv.URL + "/search?q=lester")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	total := workers * perWorker
	if want := `provex_http_requests_total{code="2xx",path="/search"} ` + strconv.Itoa(total); !strings.Contains(text, want+"\n") {
		t.Errorf("missing %q in:\n%s", want, grepLines(text, "requests_total"))
	}
	if want := `provex_http_request_duration_seconds_count{path="/search"} ` + strconv.Itoa(total); !strings.Contains(text, want+"\n") {
		t.Errorf("missing %q in:\n%s", want, grepLines(text, "duration_seconds_count"))
	}
	if !strings.Contains(text, "provex_http_in_flight_requests 0\n") {
		t.Errorf("in-flight gauge not back to zero:\n%s", grepLines(text, "in_flight"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMethodNotAllowed checks every endpoint rejects non-GET methods
// uniformly: 405, an Allow header, and a JSON error body.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newMetricsServer(t)
	for _, path := range []string{"/", "/search?q=x", "/prov?q=x", "/bundle?id=1", "/stats", "/trending", "/metrics"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodHead} {
			req, err := http.NewRequest(method, srv.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s: Allow = %q, want GET", method, path, allow)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("%s %s: Content-Type = %q", method, path, ct)
			}
			if method != http.MethodHead && !strings.Contains(string(body), "error") {
				t.Errorf("%s %s: missing error body %q", method, path, body)
			}
		}
	}
}

// TestMethodNotAllowedCounted: a 405 is traffic and must land in the
// 4xx class of the endpoint it probed.
func TestMethodNotAllowedCounted(t *testing.T) {
	srv, reg := newMetricsServer(t)
	resp, err := http.Post(srv.URL+"/search", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if want := `provex_http_requests_total{code="4xx",path="/search"} 1`; !strings.Contains(b.String(), want+"\n") {
		t.Errorf("405 not counted: %s", grepLines(b.String(), "4xx"))
	}
}

// TestNoRegistryNoMetricsEndpoint: without WithRegistry the /metrics
// path does not exist but method checking still applies everywhere.
func TestNoRegistryNoMetricsEndpoint(t *testing.T) {
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	srv := httptest.NewServer(New(proc))
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", code)
	}
	resp, err := http.Post(srv.URL+"/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d, want 405", resp.StatusCode)
	}
}

// TestPprofOptIn: the profile index answers only when WithPprof is set.
func TestPprofOptIn(t *testing.T) {
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	with := httptest.NewServer(New(proc, WithPprof()))
	defer with.Close()
	if code, body := get(t, with.URL+"/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("pprof index = %d", code)
	}
	without := httptest.NewServer(New(proc))
	defer without.Close()
	if code, _ := get(t, without.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", code)
	}
}
