// Package server exposes the query module over HTTP — the analogue of
// the paper's demo site (t.pku.edu.cn/tweet): conventional message
// search, provenance bundle search, bundle trail visualisation and
// engine statistics, all as JSON plus a minimal HTML landing page and
// an optional Prometheus-format metrics endpoint.
//
// Endpoints (all GET-only; other methods get 405 with an Allow header):
//
//	GET /               — landing page with usage
//	GET /search?q=&k=   — Figure 1: ranked individual messages
//	GET /prov?q=&k=     — Figure 2(a): ranked provenance bundles
//	GET /bundle?id=     — Figure 2(b)/10: one bundle's trail as JSON
//	GET /trending?k=    — hot bundles right now
//	GET /stats          — engine snapshot as JSON
//	GET /healthz        — liveness: 200 whenever the process serves HTTP
//	GET /readyz         — readiness: 200 when recovery/catch-up is complete (WithHealth)
//	GET /metrics        — Prometheus text exposition (WithRegistry only)
//	GET /debug/pprof/*  — runtime profiles (WithPprof only)
//	GET /repl/*         — WAL-shipping replication surface (WithReplication only)
//	GET /explain?id=            — full decision trace of a sampled message (WithTrace only)
//	GET /trace/recent?n=        — newest sampled decisions, compact (WithTrace only)
//	GET /trace/refinements?n=   — Algorithm 3 eviction audit log (WithTrace only)
//
// Degradation contract: every 503 the package emits goes through
// Unavailable and therefore carries a Retry-After header. When a
// WithHealth status reports not-ready with GateReads set (a follower
// whose replica lag passed its bound, or one still bootstrapping), the
// data endpoints — /search, /prov, /bundle, /trending — answer 503
// while the operational surface (/stats, /metrics, /healthz, /readyz,
// /repl/*) stays up, so operators and the leader can still see and
// feed the node while clients are told to back off.
//
// Concurrency contract: a Server owns no state of its own beyond its
// metrics instruments — every handler is a stateless translation
// between HTTP and the Backend, so the mux serves any number of
// requests concurrently and thread safety is entirely the Backend's
// contract. *pipeline.Service answers queries under its read lock
// while its single writer ingests; *query.Processor is safe only once
// ingest has finished (the build-then-serve mode). The metrics
// middleware uses atomic instruments and internally locked histograms,
// adding no shared mutable state of its own.
//
// With WithRegistry the server also becomes the metrics aggregation
// point: per-endpoint request counters, an in-flight gauge and latency
// histograms are registered at construction (so every series exists
// from the first scrape, traffic or not), and a render-time collector
// snapshots Backend.Snapshot() once per scrape to publish the
// lock-guarded engine gauges (pool occupancy, memory estimates, flush
// parking) that the hot-path instruments cannot expose atomically.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/metrics"
	"provex/internal/query"
	"provex/internal/storage"
	"provex/internal/trace"
	"provex/internal/trending"
)

// Backend is what the HTTP layer needs from the indexing side. Both
// *query.Processor (single-threaded, build-then-serve) and
// *pipeline.Service (concurrent live ingest) satisfy it.
type Backend interface {
	SearchMessages(q string, k int) []query.MessageHit
	SearchBundles(q string, k int) []query.BundleHit
	Bundle(id bundle.ID) (*bundle.Bundle, error)
	Snapshot() core.Stats
	Trending(k int) []trending.Topic
}

// HealthStatus is one readiness verdict from a HealthFunc.
type HealthStatus struct {
	// Ready is the /readyz verdict: recovery and catch-up are complete
	// and the node is within its staleness bounds.
	Ready bool
	// Reason explains a false Ready (shown in /readyz and 503 bodies).
	Reason string
	// RetryAfter hints when the client should try again; 0 uses the
	// package default.
	RetryAfter time.Duration
	// GateReads additionally refuses the data endpoints (503) while not
	// ready — a replica past its staleness bound serves no unbounded-
	// stale results. Operational endpoints are never gated.
	GateReads bool
	// Detail is merged into the /readyz JSON body (lag, applied
	// sequence, ...).
	Detail map[string]interface{}
}

// HealthFunc reports the backend's current readiness. It is called on
// every /readyz probe and every gated data request, so it must be
// cheap and safe for concurrent use.
type HealthFunc func() HealthStatus

// Server wires HTTP handlers around a Backend.
// All Server fields are set during New (via Options) and immutable
// afterwards; handler goroutines only read them, so no field needs a
// lock. Mutable state lives behind the Backend and metrics types.
type Server struct {
	backend Backend
	mux     *http.ServeMux

	reg      *metrics.Registry
	pprof    bool
	inFlight *metrics.Gauge
	trace    *trace.Recorder
	health   HealthFunc
	repl     http.Handler
}

// Option customises a Server.
type Option func(*Server)

// WithRegistry instruments every endpoint (request counters by status
// class, latency histograms, an in-flight gauge), registers the
// backend's snapshot-derived gauges, and serves the whole registry at
// GET /metrics in Prometheus text exposition format.
func WithRegistry(reg *metrics.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithPprof mounts net/http/pprof's handlers under /debug/pprof/ on the
// server's own mux (the server never uses http.DefaultServeMux). Opt-in
// because profiles expose internals and cost CPU while sampling.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithTrace mounts the decision-tracing endpoints (/explain,
// /trace/recent, /trace/refinements) over rec. The recorder's own
// counters are the caller's to register (provserve registers them
// alongside the engine's).
func WithTrace(rec *trace.Recorder) Option {
	return func(s *Server) { s.trace = rec }
}

// WithHealth wires a readiness source into /readyz and, when a status
// asks for it, gates the data endpoints. Servers without it report
// always-ready (the pre-replication behaviour: by the time a serving
// mux exists, recovery has finished).
func WithHealth(fn HealthFunc) Option {
	return func(s *Server) { s.health = fn }
}

// WithReplication mounts a WAL-shipping handler (repl.NewSource) under
// /repl/. The handler is mounted raw — its responses are streamed
// binary with its own shed/retry semantics, so it bypasses the JSON
// middleware the data endpoints share.
func WithReplication(h http.Handler) Option {
	return func(s *Server) { s.repl = h }
}

// New builds a Server.
func New(backend Backend, opts ...Option) *Server {
	s := &Server{backend: backend, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg != nil {
		s.inFlight = s.reg.Gauge("provex_http_in_flight_requests",
			"Requests currently being handled.")
		metrics.RegisterProcess(s.reg)
		registerBackendMetrics(s.reg, backend)
	}
	s.handle("/", s.handleIndex)
	s.handleData("/search", s.handleSearch)
	s.handleData("/prov", s.handleProv)
	s.handleData("/bundle", s.handleBundle)
	s.handle("/stats", s.handleStats)
	s.handleData("/trending", s.handleTrending)
	s.handle("/healthz", s.handleHealthz)
	s.handle("/readyz", s.handleReadyz)
	if s.reg != nil {
		s.handle("/metrics", s.handleMetrics)
	}
	if s.repl != nil {
		s.mux.Handle("/repl/", s.repl)
	}
	if s.trace != nil {
		s.handle("/explain", s.handleExplain)
		s.handle("/trace/recent", s.handleTraceRecent)
		s.handle("/trace/refinements", s.handleTraceRefinements)
	}
	if s.pprof {
		// pprof handlers stay uninstrumented: profile downloads run for
		// tens of seconds by design and would dominate every latency
		// histogram they land in.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// latencyBounds bucket endpoint latency from 100µs to 10s.
var latencyBounds = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// statusClasses are the response-class labels of the request counter.
// All four are registered eagerly so scrapes see a stable series set.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// endpointMetrics is the per-path instrument set of the middleware.
type endpointMetrics struct {
	classes  [4]*metrics.Counter
	duration *metrics.Histogram
}

func newEndpointMetrics(reg *metrics.Registry, path string) *endpointMetrics {
	em := &endpointMetrics{}
	for i, class := range statusClasses {
		em.classes[i] = reg.Counter("provex_http_requests_total",
			"HTTP requests by endpoint and status class.",
			"path", path, "code", class)
	}
	em.duration = reg.DurationHistogram("provex_http_request_duration_seconds",
		"HTTP request latency by endpoint.", latencyBounds, "path", path)
	return em
}

// observe records one finished request.
func (em *endpointMetrics) observe(code int, d time.Duration) {
	em.duration.Observe(int64(d))
	if i := code/100 - 2; i >= 0 && i < len(em.classes) {
		em.classes[i].Inc()
	}
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handle mounts h at path behind the shared middleware: every endpoint
// uniformly rejects non-GET methods with 405 plus an Allow header, and
// when a registry is configured the request is counted, timed and
// tracked in-flight (405s included — probing with the wrong method is
// traffic too).
func (s *Server) handle(path string, h http.HandlerFunc) {
	checked := func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
			return
		}
		h(w, r)
	}
	if s.reg == nil {
		s.mux.HandleFunc(path, checked)
		return
	}
	em := newEndpointMetrics(s.reg, path)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		checked(sw, r)
		em.observe(sw.code, time.Since(start))
	})
}

// handleData mounts h like handle, but refuses the request with a 503
// when the health source reports not-ready with GateReads — the
// graceful-degradation path for replicas past their staleness bound.
func (s *Server) handleData(path string, h http.HandlerFunc) {
	s.handle(path, func(w http.ResponseWriter, r *http.Request) {
		if s.health != nil {
			if st := s.health(); !st.Ready && st.GateReads {
				Unavailable(w, st.RetryAfter, "not ready: %s", st.Reason)
				return
			}
		}
		h(w, r)
	})
}

// handleHealthz is liveness: if the process can run this handler it is
// alive. Readiness is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{"alive": true})
}

// handleReadyz reports serving fitness: 200 once recovery/catch-up is
// complete and within bounds, 503 + Retry-After otherwise. Probes and
// load balancers key on the status code; the body carries the reason
// and any health detail (replica lag etc.) for humans.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.health == nil {
		writeJSON(w, map[string]interface{}{"ready": true})
		return
	}
	st := s.health()
	body := map[string]interface{}{"ready": st.Ready}
	if st.Reason != "" {
		body["reason"] = st.Reason
	}
	for k, v := range st.Detail {
		body[k] = v
	}
	if !st.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", retryAfterValue(st.RetryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
		return
	}
	writeJSON(w, body)
}

// defaultRetryAfter is the Retry-After attached to 503s whose source
// gave no hint.
const defaultRetryAfter = time.Second

// Unavailable is the package's single 503 emitter: every 503 carries a
// Retry-After header (whole seconds, minimum 1) so well-behaved
// clients back off instead of hammering a degraded node.
func Unavailable(w http.ResponseWriter, retryAfter time.Duration, format string, args ...interface{}) {
	w.Header().Set("Retry-After", retryAfterValue(retryAfter))
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

// retryAfterValue renders a Retry-After duration as whole seconds,
// minimum 1 (a zero duration takes the package default).
func retryAfterValue(d time.Duration) string {
	if d <= 0 {
		d = defaultRetryAfter
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleMetrics renders the registry in text exposition format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Expose(w); err != nil {
		// Headers already sent; the scrape is torn and the client's
		// parser will reject it.
		_ = err
	}
}

// registerBackendMetrics publishes the lock-guarded half of the engine
// snapshot — the values the hot path cannot expose atomically. One
// collector snapshots the backend per scrape (Backend.Snapshot applies
// whatever locking the backend requires); the registered funcs then
// read the captured copy, all under the registry's render lock.
func registerBackendMetrics(reg *metrics.Registry, backend Backend) {
	var st core.Stats
	reg.AddCollector(func() { st = backend.Snapshot() })
	reg.RegisterGaugeFunc("provex_pool_bundles_live",
		"Bundles currently in the in-memory pool.",
		func() float64 { return float64(st.BundlesLive) })
	reg.RegisterGaugeFunc("provex_pool_messages_in_memory",
		"Messages held by pooled bundles (Figure 11(b)'s memory metric).",
		func() float64 { return float64(st.MessagesInMemory) })
	reg.RegisterCounterFunc("provex_pool_bundles_created_total",
		"Bundles ever created.",
		func() float64 { return float64(st.Pool.Created) })
	reg.RegisterCounterFunc("provex_pool_refines_total",
		"Refinement passes run (Algorithm 3).",
		func() float64 { return float64(st.Pool.Refines) })
	for _, ev := range []struct {
		reason string
		count  func() float64
	}{
		{"aging-tiny", func() float64 { return float64(st.Pool.DeletedTiny) }},
		{"closed", func() float64 { return float64(st.Pool.FlushedClosed) }},
		{"ranked", func() float64 { return float64(st.Pool.FlushedRanked) }},
	} {
		reg.RegisterCounterFunc("provex_pool_evictions_total",
			"Pool evictions by Algorithm 3 reason (aging-tiny deleted; closed and ranked flushed to disk).",
			ev.count, "reason", ev.reason)
	}
	reg.RegisterGaugeFunc("provex_mem_bundles_bytes",
		"Analytic memory estimate of the bundle pool (Figure 11(a)).",
		func() float64 { return float64(st.MemBundles) })
	reg.RegisterGaugeFunc("provex_mem_index_bytes",
		"Analytic memory estimate of the summary index (Figure 11(a)).",
		func() float64 { return float64(st.MemIndex) })
	reg.RegisterGaugeFunc("provex_flush_parked",
		"Bundles parked awaiting a storage flush retry (non-zero = degraded mode).",
		func() float64 { return float64(st.FlushParked) })
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>provex</title>
<h1>provex — provenance-based micro-blog indexing</h1>
<ul>
<li><code>/search?q=yankee+redsox</code> — message search (Fig. 1)</li>
<li><code>/prov?q=yankee+redsox</code> — provenance bundle search (Fig. 2)</li>
<li><code>/bundle?id=N</code> — bundle provenance trail</li>
<li><code>/trending?k=10</code> — hot bundles right now</li>
<li><code>/stats</code> — engine statistics</li>
<li><code>/healthz</code> / <code>/readyz</code> — liveness and readiness probes</li>
<li><code>/metrics</code> — Prometheus text exposition</li>
<li><code>/explain?id=N</code> — full ingest decision trace of a sampled message</li>
<li><code>/trace/recent?n=20</code> — newest sampled ingest decisions</li>
<li><code>/trace/refinements?n=20</code> — Algorithm 3 eviction audit log</li>
</ul>`)
}

// messageJSON is the wire form of one message hit.
type messageJSON struct {
	ID    uint64  `json:"id"`
	User  string  `json:"user"`
	Date  string  `json:"date"`
	Text  string  `json:"text"`
	Score float64 `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, k, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	hits := s.backend.SearchMessages(q, k)
	out := make([]messageJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, messageJSON{
			ID:    uint64(h.Msg.ID),
			User:  h.Msg.User,
			Date:  h.Msg.Date.Format(time.RFC3339),
			Text:  h.Msg.Text,
			Score: h.Score,
		})
	}
	writeJSON(w, map[string]interface{}{"query": q, "hits": out})
}

// bundleHitJSON is the wire form of one Figure 2(a) result row.
type bundleHitJSON struct {
	ID       uint64   `json:"id"`
	Score    float64  `json:"score"`
	Size     int      `json:"size"`
	LastPost string   `json:"last_post"`
	Summary  []string `json:"summary"`
}

func (s *Server) handleProv(w http.ResponseWriter, r *http.Request) {
	q, k, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	hits := s.backend.SearchBundles(q, k)
	out := make([]bundleHitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, bundleHitJSON{
			ID:       uint64(h.ID),
			Score:    h.Score,
			Size:     h.Size,
			LastPost: h.LastPost.Format(time.RFC3339),
			Summary:  h.Summary,
		})
	}
	writeJSON(w, map[string]interface{}{"query": q, "bundles": out})
}

// nodeJSON is one provenance trail node.
type nodeJSON struct {
	Index  int     `json:"index"`
	Parent int     `json:"parent"` // -1 for roots
	User   string  `json:"user"`
	Date   string  `json:"date"`
	Text   string  `json:"text"`
	Conn   string  `json:"conn,omitempty"`
	Score  float64 `json:"score,omitempty"`
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	idRaw := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idRaw, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid id %q", idRaw)
		return
	}
	b, err := s.backend.Bundle(bundle.ID(id))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) {
			status = http.StatusNotFound
		}
		httpError(w, status, "%v", err)
		return
	}
	nodes := make([]nodeJSON, 0, b.Size())
	for i, n := range b.Nodes() {
		nj := nodeJSON{
			Index:  i,
			Parent: int(n.Parent),
			User:   n.Doc.Msg.User,
			Date:   n.Doc.Msg.Date.Format(time.RFC3339),
			Text:   n.Doc.Msg.Text,
		}
		if n.Parent != bundle.NoParent {
			nj.Conn = n.Conn.String()
			nj.Score = n.Score
		}
		nodes = append(nodes, nj)
	}
	writeJSON(w, map[string]interface{}{
		"id":      b.ID(),
		"size":    b.Size(),
		"closed":  b.Closed(),
		"start":   b.StartTime().Format(time.RFC3339),
		"end":     b.EndTime().Format(time.RFC3339),
		"summary": b.SummaryWords(10),
		"nodes":   nodes,
	})
}

// trendingJSON is the wire form of one hot-bundle row.
type trendingJSON struct {
	ID       uint64   `json:"id"`
	Score    float64  `json:"score"`
	Recent   int      `json:"recent"`
	Size     int      `json:"size"`
	LastPost string   `json:"last_post"`
	Summary  []string `json:"summary"`
}

func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	k := 10
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		v, err := strconv.Atoi(kRaw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "invalid k %q", kRaw)
			return
		}
		k = v
	}
	if k > 100 {
		k = 100
	}
	topics := s.backend.Trending(k)
	out := make([]trendingJSON, 0, len(topics))
	for _, t := range topics {
		out = append(out, trendingJSON{
			ID:       uint64(t.ID),
			Score:    t.Score,
			Recent:   t.Recent,
			Size:     t.Size,
			LastPost: t.LastPost.Format(time.RFC3339),
			Summary:  t.Summary,
		})
	}
	writeJSON(w, map[string]interface{}{"trending": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.backend.Snapshot()
	writeJSON(w, map[string]interface{}{
		"messages":           st.Messages,
		"bundles_created":    st.BundlesCreated,
		"bundles_live":       st.BundlesLive,
		"edges":              st.EdgesCreated,
		"conn_counts":        st.ConnCounts,
		"mem_bundles_bytes":  st.MemBundles,
		"mem_index_bytes":    st.MemIndex,
		"messages_in_memory": st.MessagesInMemory,
		"match_ms":           st.MatchTime.Milliseconds(),
		"place_ms":           st.PlaceTime.Milliseconds(),
		"refine_ms":          st.RefineTime.Milliseconds(),
		"flush_retries":      st.FlushRetries,
		"flush_dropped":      st.FlushDropped,
		"flush_parked":       st.FlushParked,
		"degraded":           st.Degraded(),
	})
}

// handleExplain serves the full decision breakdown for one traced
// message. Unsampled (or rotated-out) IDs get a 404 whose hint
// explains how to widen sampling, since "not traced" is the expected
// case at any sampling rate above 1.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	idRaw := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idRaw, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid id %q", idRaw)
		return
	}
	d, ok := s.trace.Explain(id)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error": fmt.Sprintf("message %d has no recorded decision", id),
			"hint": fmt.Sprintf("tracing samples 1 in %d inserts and retains the last %d decisions; "+
				"lower -trace-sample / raise -trace-buffer and re-ingest, or pick an id from /trace/recent",
				max(s.trace.SampleEvery(), 1), s.trace.Buffer()),
		})
		return
	}
	writeJSON(w, d)
}

// traceRecentJSON is the compact wire form of one decision in
// /trace/recent — enough to scan for interesting messages (and for
// provload's quality digest) without the full candidate lists.
type traceRecentJSON struct {
	Seq        uint64  `json:"seq"`
	MsgID      uint64  `json:"msg_id"`
	Bundle     uint64  `json:"bundle"`
	NewBundle  bool    `json:"new_bundle"`
	Candidates int     `json:"candidates"`
	BestScore  float64 `json:"best_score"`
	Margin     float64 `json:"margin"`
	Parent     int     `json:"parent"`
	Conn       string  `json:"conn"`
}

func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	n, ok := countParam(w, r, 20)
	if !ok {
		return
	}
	ds := s.trace.Recent(n)
	out := make([]traceRecentJSON, 0, len(ds))
	for _, d := range ds {
		out = append(out, traceRecentJSON{
			Seq:        d.Seq,
			MsgID:      d.MsgID,
			Bundle:     d.Bundle,
			NewBundle:  d.NewBundle,
			Candidates: len(d.Candidates),
			BestScore:  d.BestScore,
			Margin:     d.Margin,
			Parent:     d.Parent,
			Conn:       d.Conn,
		})
	}
	writeJSON(w, map[string]interface{}{
		"sample_every": s.trace.SampleEvery(),
		"buffer":       s.trace.Buffer(),
		"decisions":    out,
	})
}

func (s *Server) handleTraceRefinements(w http.ResponseWriter, r *http.Request) {
	n, ok := countParam(w, r, 20)
	if !ok {
		return
	}
	writeJSON(w, map[string]interface{}{
		"refinements": s.trace.Refinements(n),
	})
}

// countParam extracts n (bounded by the recorder's ring size, so the
// default cap grows with -trace-buffer) or writes a 400.
func countParam(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	n := def
	if nRaw := r.URL.Query().Get("n"); nRaw != "" {
		v, err := strconv.Atoi(nRaw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "invalid n %q", nRaw)
			return 0, false
		}
		n = v
	}
	return n, true
}

// queryParams extracts q and k (default 10, max 100) or writes a 400.
func (s *Server) queryParams(w http.ResponseWriter, r *http.Request) (string, int, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return "", 0, false
	}
	k := 10
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		v, err := strconv.Atoi(kRaw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "invalid k %q", kRaw)
			return "", 0, false
		}
		k = v
	}
	if k > 100 {
		k = 100
	}
	return q, k, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing recoverable.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
