// Package server exposes the query module over HTTP — the analogue of
// the paper's demo site (t.pku.edu.cn/tweet): conventional message
// search, provenance bundle search, bundle trail visualisation and
// engine statistics, all as JSON plus a minimal HTML landing page.
//
// Endpoints:
//
//	GET /               — landing page with usage
//	GET /search?q=&k=   — Figure 1: ranked individual messages
//	GET /prov?q=&k=     — Figure 2(a): ranked provenance bundles
//	GET /bundle?id=     — Figure 2(b)/10: one bundle's trail as JSON
//	GET /stats          — engine snapshot
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/storage"
	"provex/internal/trending"
)

// Backend is what the HTTP layer needs from the indexing side. Both
// *query.Processor (single-threaded, build-then-serve) and
// *pipeline.Service (concurrent live ingest) satisfy it.
type Backend interface {
	SearchMessages(q string, k int) []query.MessageHit
	SearchBundles(q string, k int) []query.BundleHit
	Bundle(id bundle.ID) (*bundle.Bundle, error)
	Snapshot() core.Stats
	Trending(k int) []trending.Topic
}

// Server wires HTTP handlers around a Backend.
type Server struct {
	backend Backend
	mux     *http.ServeMux
}

// New builds a Server.
func New(backend Backend) *Server {
	s := &Server{backend: backend, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/prov", s.handleProv)
	s.mux.HandleFunc("/bundle", s.handleBundle)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/trending", s.handleTrending)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>provex</title>
<h1>provex — provenance-based micro-blog indexing</h1>
<ul>
<li><code>/search?q=yankee+redsox</code> — message search (Fig. 1)</li>
<li><code>/prov?q=yankee+redsox</code> — provenance bundle search (Fig. 2)</li>
<li><code>/bundle?id=N</code> — bundle provenance trail</li>
<li><code>/trending?k=10</code> — hot bundles right now</li>
<li><code>/stats</code> — engine statistics</li>
</ul>`)
}

// messageJSON is the wire form of one message hit.
type messageJSON struct {
	ID    uint64  `json:"id"`
	User  string  `json:"user"`
	Date  string  `json:"date"`
	Text  string  `json:"text"`
	Score float64 `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, k, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	hits := s.backend.SearchMessages(q, k)
	out := make([]messageJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, messageJSON{
			ID:    uint64(h.Msg.ID),
			User:  h.Msg.User,
			Date:  h.Msg.Date.Format(time.RFC3339),
			Text:  h.Msg.Text,
			Score: h.Score,
		})
	}
	writeJSON(w, map[string]interface{}{"query": q, "hits": out})
}

// bundleHitJSON is the wire form of one Figure 2(a) result row.
type bundleHitJSON struct {
	ID       uint64   `json:"id"`
	Score    float64  `json:"score"`
	Size     int      `json:"size"`
	LastPost string   `json:"last_post"`
	Summary  []string `json:"summary"`
}

func (s *Server) handleProv(w http.ResponseWriter, r *http.Request) {
	q, k, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	hits := s.backend.SearchBundles(q, k)
	out := make([]bundleHitJSON, 0, len(hits))
	for _, h := range hits {
		out = append(out, bundleHitJSON{
			ID:       uint64(h.ID),
			Score:    h.Score,
			Size:     h.Size,
			LastPost: h.LastPost.Format(time.RFC3339),
			Summary:  h.Summary,
		})
	}
	writeJSON(w, map[string]interface{}{"query": q, "bundles": out})
}

// nodeJSON is one provenance trail node.
type nodeJSON struct {
	Index  int     `json:"index"`
	Parent int     `json:"parent"` // -1 for roots
	User   string  `json:"user"`
	Date   string  `json:"date"`
	Text   string  `json:"text"`
	Conn   string  `json:"conn,omitempty"`
	Score  float64 `json:"score,omitempty"`
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	idRaw := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idRaw, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid id %q", idRaw)
		return
	}
	b, err := s.backend.Bundle(bundle.ID(id))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) {
			status = http.StatusNotFound
		}
		httpError(w, status, "%v", err)
		return
	}
	nodes := make([]nodeJSON, 0, b.Size())
	for i, n := range b.Nodes() {
		nj := nodeJSON{
			Index:  i,
			Parent: int(n.Parent),
			User:   n.Doc.Msg.User,
			Date:   n.Doc.Msg.Date.Format(time.RFC3339),
			Text:   n.Doc.Msg.Text,
		}
		if n.Parent != bundle.NoParent {
			nj.Conn = n.Conn.String()
			nj.Score = n.Score
		}
		nodes = append(nodes, nj)
	}
	writeJSON(w, map[string]interface{}{
		"id":      b.ID(),
		"size":    b.Size(),
		"closed":  b.Closed(),
		"start":   b.StartTime().Format(time.RFC3339),
		"end":     b.EndTime().Format(time.RFC3339),
		"summary": b.SummaryWords(10),
		"nodes":   nodes,
	})
}

// trendingJSON is the wire form of one hot-bundle row.
type trendingJSON struct {
	ID       uint64   `json:"id"`
	Score    float64  `json:"score"`
	Recent   int      `json:"recent"`
	Size     int      `json:"size"`
	LastPost string   `json:"last_post"`
	Summary  []string `json:"summary"`
}

func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	k := 10
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		v, err := strconv.Atoi(kRaw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "invalid k %q", kRaw)
			return
		}
		k = v
	}
	if k > 100 {
		k = 100
	}
	topics := s.backend.Trending(k)
	out := make([]trendingJSON, 0, len(topics))
	for _, t := range topics {
		out = append(out, trendingJSON{
			ID:       uint64(t.ID),
			Score:    t.Score,
			Recent:   t.Recent,
			Size:     t.Size,
			LastPost: t.LastPost.Format(time.RFC3339),
			Summary:  t.Summary,
		})
	}
	writeJSON(w, map[string]interface{}{"trending": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.backend.Snapshot()
	writeJSON(w, map[string]interface{}{
		"messages":           st.Messages,
		"bundles_created":    st.BundlesCreated,
		"bundles_live":       st.BundlesLive,
		"edges":              st.EdgesCreated,
		"conn_counts":        st.ConnCounts,
		"mem_bundles_bytes":  st.MemBundles,
		"mem_index_bytes":    st.MemIndex,
		"messages_in_memory": st.MessagesInMemory,
		"match_ms":           st.MatchTime.Milliseconds(),
		"place_ms":           st.PlaceTime.Milliseconds(),
		"refine_ms":          st.RefineTime.Milliseconds(),
		"flush_retries":      st.FlushRetries,
		"flush_dropped":      st.FlushDropped,
		"flush_parked":       st.FlushParked,
		"degraded":           st.Degraded(),
	})
}

// queryParams extracts q and k (default 10, max 100) or writes a 400.
func (s *Server) queryParams(w http.ResponseWriter, r *http.Request) (string, int, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return "", 0, false
	}
	k := 10
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		v, err := strconv.Atoi(kRaw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "invalid k %q", kRaw)
			return "", 0, false
		}
		k = v
	}
	if k > 100 {
		k = 100
	}
	return q, k, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing recoverable.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
