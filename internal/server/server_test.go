package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/tweet"
)

func newTestServer(t *testing.T) (*httptest.Server, *query.Processor) {
	t.Helper()
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	base := time.Date(2009, 9, 17, 2, 0, 0, 0, time.UTC)
	msgs := []struct {
		user, text string
	}{
		{"wharman", "Lester down #redsox"},
		{"amaliebenjamin", "Lester getting an ovation from the #yankee crowd #redsox"},
		{"abcdude", "Classy RT @amaliebenjamin: Lester getting an ovation from the #yankee crowd #redsox"},
	}
	for i, m := range msgs {
		proc.Insert(tweet.Parse(tweet.ID(i+1), m.user, base.Add(time.Duration(i)*time.Minute), m.text))
	}
	srv := httptest.NewServer(New(proc))
	t.Cleanup(srv.Close)
	return srv, proc
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out
}

func TestIndexPage(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("index: status=%d type=%s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if _, err := http.Get(srv.URL + "/nope"); err != nil {
		t.Fatal(err)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/search?q=lester+redsox", 200)
	hits := out["hits"].([]interface{})
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	first := hits[0].(map[string]interface{})
	if !strings.Contains(strings.ToLower(first["text"].(string)), "lester") {
		t.Errorf("top hit: %v", first)
	}
}

func TestProvEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/prov?q=yankee+redsox&k=5", 200)
	bundles := out["bundles"].([]interface{})
	if len(bundles) == 0 {
		t.Fatal("no bundles")
	}
	top := bundles[0].(map[string]interface{})
	if top["size"].(float64) != 3 {
		t.Errorf("top bundle size = %v, want 3", top["size"])
	}
	if len(top["summary"].([]interface{})) == 0 {
		t.Error("empty summary")
	}
}

func TestBundleEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	prov := getJSON(t, srv.URL+"/prov?q=redsox", 200)
	id := prov["bundles"].([]interface{})[0].(map[string]interface{})["id"].(float64)

	out := getJSON(t, srv.URL+"/bundle?id="+jsonNum(id), 200)
	nodes := out["nodes"].([]interface{})
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(nodes))
	}
	// The RT node carries conn metadata.
	foundRT := false
	for _, n := range nodes {
		nm := n.(map[string]interface{})
		if nm["conn"] == "rt" {
			foundRT = true
			if nm["parent"].(float64) < 0 {
				t.Error("rt node has no parent")
			}
		}
	}
	if !foundRT {
		t.Error("no rt edge in bundle JSON")
	}
}

func jsonNum(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/stats", 200)
	if out["messages"].(float64) != 3 {
		t.Errorf("messages = %v", out["messages"])
	}
	if out["edges"].(float64) < 1 {
		t.Errorf("edges = %v", out["edges"])
	}
}

func TestErrorResponses(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		path   string
		status int
	}{
		{"/search", 400},
		{"/prov", 400},
		{"/search?q=x&k=bogus", 400},
		{"/search?q=x&k=-1", 400},
		{"/bundle?id=abc", 400},
		{"/bundle?id=99999", 404},
	}
	for _, tc := range cases {
		out := getJSON(t, srv.URL+tc.path, tc.status)
		if out["error"] == "" {
			t.Errorf("%s: missing error body", tc.path)
		}
	}
}

func TestKClamped(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/search?q=redsox&k=5000", 200)
	if hits := out["hits"].([]interface{}); len(hits) > 100 {
		t.Errorf("k clamp failed: %d hits", len(hits))
	}
}

func TestTrendingEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/trending?k=5", 200)
	topics := out["trending"].([]interface{})
	if len(topics) == 0 {
		t.Fatal("no trending topics (3 fresh messages should trend)")
	}
	top := topics[0].(map[string]interface{})
	if top["recent"].(float64) < 3 {
		t.Errorf("recent = %v", top["recent"])
	}
	if _, err := http.Get(srv.URL + "/trending?k=bogus"); err != nil {
		t.Fatal(err)
	}
	outBad := getJSON(t, srv.URL+"/trending?k=bogus", 400)
	if outBad["error"] == "" {
		t.Error("missing error body")
	}
}
