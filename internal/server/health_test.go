package server

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/query"
)

// healthServer builds a server whose readiness is test-controlled.
func healthServer(t *testing.T, st *atomic.Pointer[HealthStatus]) *httptest.Server {
	t.Helper()
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	srv := httptest.NewServer(New(proc, WithHealth(func() HealthStatus { return *st.Load() })))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthzAlwaysAlive(t *testing.T) {
	var st atomic.Pointer[HealthStatus]
	st.Store(&HealthStatus{Ready: false, Reason: "bootstrapping", GateReads: true})
	srv := healthServer(t, &st)
	body := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if body["alive"] != true {
		t.Fatalf("healthz body: %v", body)
	}
}

func TestReadyzWithoutHealthFunc(t *testing.T) {
	srv, _ := newTestServer(t)
	body := getJSON(t, srv.URL+"/readyz", http.StatusOK)
	if body["ready"] != true {
		t.Fatalf("readyz body: %v", body)
	}
}

func TestReadyzFlipsWithHealth(t *testing.T) {
	var st atomic.Pointer[HealthStatus]
	st.Store(&HealthStatus{
		Ready:      false,
		Reason:     "replica lag 1234 messages exceeds 500",
		RetryAfter: 3 * time.Second,
		GateReads:  true,
		Detail:     map[string]interface{}{"lag": 1234},
	})
	srv := healthServer(t, &st)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while lagging = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q", got)
	}
	body := getJSON(t, srv.URL+"/readyz", http.StatusServiceUnavailable)
	if body["ready"] != false || body["lag"] != float64(1234) {
		t.Fatalf("readyz body: %v", body)
	}

	st.Store(&HealthStatus{Ready: true})
	body = getJSON(t, srv.URL+"/readyz", http.StatusOK)
	if body["ready"] != true {
		t.Fatalf("readyz after recovery: %v", body)
	}
}

func TestGateReadsRefusesDataEndpointsOnly(t *testing.T) {
	var st atomic.Pointer[HealthStatus]
	st.Store(&HealthStatus{Ready: false, Reason: "stale", RetryAfter: 2 * time.Second, GateReads: true})
	srv := healthServer(t, &st)

	for _, path := range []string{"/search?q=x", "/prov?q=x", "/bundle?id=1", "/trending"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while gated = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "2" {
			t.Fatalf("GET %s: 503 without usable Retry-After (%q)", path, resp.Header.Get("Retry-After"))
		}
	}
	// The operational surface stays up for operators and probes.
	for _, path := range []string{"/stats", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while gated = %d, want 200", path, resp.StatusCode)
		}
	}

	// Not-ready without GateReads (a leader still warming caches, say)
	// keeps serving data.
	st.Store(&HealthStatus{Ready: false, Reason: "warming"})
	resp, err := http.Get(srv.URL + "/trending")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ungated not-ready trending = %d", resp.StatusCode)
	}
}

func TestWithReplicationMount(t *testing.T) {
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	marker := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Repl", r.URL.Path)
	})
	srv := httptest.NewServer(New(proc, WithReplication(marker)))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Repl") != "/repl/status" {
		t.Fatal("replication handler not mounted under /repl/")
	}
}
