// Package pool implements the in-memory bundle pool of the paper's
// framework and its maintenance policy (Section V-B, Algorithm 3): a
// periodic refinement that directly deletes aging tiny bundles, flushes
// aging closed bundles to the disk back-end, and ranks the remainder by
// the Equation 6 eviction score G(B) = age + 1/|B|, eliminating from
// the top until the pool is back under its bound.
//
// The paper deletes second-stage victims outright (Algorithm 3 lines
// 15–19) while its prose says "median bundles are backup onto disk";
// we follow the prose — second-stage victims are flushed, not dropped —
// since that strictly preserves more provenance at identical pool size.
// DESIGN.md records this reading.
package pool

import (
	"fmt"
	"sort"
	"time"

	"provex/internal/bundle"
	"provex/internal/metrics"
	"provex/internal/score"
)

// Config is the maintenance policy. The zero value disables every
// limit — the Full Index baseline.
type Config struct {
	// MaxBundles is the bundle pool limitation M; 0 = unlimited.
	// Refinement triggers when the pool exceeds it.
	MaxBundles int
	// RefineSize R: bundles smaller than this AND older than RefineAge
	// are deleted directly as "aging tiny".
	RefineSize int
	// RefineAge T: the age beyond which a quiet bundle is a
	// refinement victim candidate.
	RefineAge time.Duration
	// LowerLimit is the minimum number of bundles each refinement pass
	// must remove (the paper's refine_lower_limit); it stops the pool
	// from hovering at the boundary and re-scanning every insert.
	LowerLimit int
	// MaxBundleSize closes bundles that reach this many messages
	// (Section V-B's bundle size constraint); 0 = unlimited.
	MaxBundleSize int
	// CheckEvery throttles the pool-status check to every n inserts;
	// 0 defaults to 1024.
	CheckEvery int

	// IDStart/IDStride partition the bundle ID space when several pools
	// coexist (the sharded engine, DESIGN.md §2i): this pool allocates
	// the arithmetic progression IDStart, IDStart+IDStride, ... so shard
	// i of N (IDStart=i+1, IDStride=N) can never collide with its
	// siblings. The zero values mean 1/1 — the serial sequence 1,2,3,...
	IDStart  bundle.ID
	IDStride int
}

// DefaultConfig mirrors the paper's experimental setting: pool limit
// 10k, refinement drops at least 1/4 of the limit, tiny means < 3
// messages, aging means quiet for 24 simulated hours.
func DefaultConfig() Config {
	return Config{
		MaxBundles: 10000,
		RefineSize: 3,
		RefineAge:  24 * time.Hour,
		LowerLimit: 2500,
		CheckEvery: 1024,
	}
}

// EvictReason classifies why a bundle left the pool.
type EvictReason uint8

// Eviction reasons.
const (
	EvictAgingTiny EvictReason = iota // deleted: old and below RefineSize
	EvictClosed                       // flushed: old and closed
	EvictRanked                       // flushed: top of the G(B) ranking
)

// String names the reason.
func (r EvictReason) String() string {
	switch r {
	case EvictAgingTiny:
		return "aging-tiny"
	case EvictClosed:
		return "closed"
	case EvictRanked:
		return "ranked"
	default:
		return fmt.Sprintf("reason%d", uint8(r))
	}
}

// EvictFunc receives each evicted bundle. flush reports whether the
// bundle should be persisted to the disk back-end (true) or dropped
// (false). The engine hooks summary-index cleanup and storage here.
type EvictFunc func(b *bundle.Bundle, reason EvictReason, flush bool)

// Stats counts pool activity.
type Stats struct {
	Created       int64
	Refines       int64
	DeletedTiny   int64
	FlushedClosed int64
	FlushedRanked int64
}

// Pool holds the live bundles. Not safe for concurrent use.
type Pool struct {
	cfg     Config
	bundles map[bundle.ID]*bundle.Bundle
	nextID  bundle.ID
	onEvict EvictFunc
	inserts int
	stats   Stats
	gHist   *metrics.Histogram // optional: Eq. 6 scores of ranked evictions

	onRefine RefineObserver // optional: per-victim refinement audit
}

// RefineObserver receives every Algorithm 3 eviction verdict: the
// victim, the reason, its quiet age in hours, its Eq. 6 score G(B),
// and — for ranked (second-stage) evictions — its 1-based position in
// the G ranking (0 for stage-one verdicts, which are categorical, not
// ranked). The decision tracer subscribes here.
type RefineObserver func(b *bundle.Bundle, reason EvictReason, ageHours, g float64, rank int)

// SetRefineObserver registers fn (nil unregisters). Called from the
// single ingest goroutine during refinement, before the EvictFunc for
// the same victim.
func (p *Pool) SetRefineObserver(fn RefineObserver) { p.onRefine = fn }

// SetGScoreHistogram registers a histogram that observes the Equation 6
// eviction score of every second-stage (ranked) eviction victim, in
// milli-G units (G × 1000, G measured in hours + 1/|B|). The
// distribution shows how aggressively refinement digs into the pool: a
// mass near zero means fresh, large bundles are being flushed — the
// pool limit is too tight for the stream. The histogram carries its own
// lock, so a metrics scrape may read it while refinement writes.
func (p *Pool) SetGScoreHistogram(h *metrics.Histogram) { p.gHist = h }

// New creates a pool with the given policy and eviction hook (which may
// be nil when the caller does not track evictions).
func New(cfg Config, onEvict EvictFunc) *Pool {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1024
	}
	if cfg.IDStart == 0 {
		cfg.IDStart = 1
	}
	if cfg.IDStride <= 0 {
		cfg.IDStride = 1
	}
	if onEvict == nil {
		onEvict = func(*bundle.Bundle, EvictReason, bool) {}
	}
	return &Pool{
		cfg:     cfg,
		bundles: make(map[bundle.ID]*bundle.Bundle),
		nextID:  cfg.IDStart,
		onEvict: onEvict,
	}
}

// Create allocates a fresh bundle in the pool.
func (p *Pool) Create() *bundle.Bundle {
	b := bundle.New(p.nextID)
	p.bundles[p.nextID] = b
	p.nextID += bundle.ID(p.cfg.IDStride)
	p.stats.Created++
	return b
}

// alignID returns the smallest value >= id that lies on this pool's
// (IDStart, IDStride) arithmetic progression — the only values the
// allocator may hand out.
func (p *Pool) alignID(id bundle.ID) bundle.ID {
	if id <= p.cfg.IDStart {
		return p.cfg.IDStart
	}
	stride := uint64(p.cfg.IDStride)
	d := uint64(id - p.cfg.IDStart)
	if r := d % stride; r != 0 {
		d += stride - r
	}
	return p.cfg.IDStart + bundle.ID(d)
}

// Get returns the live bundle with id, nil when absent.
func (p *Pool) Get(id bundle.ID) *bundle.Bundle { return p.bundles[id] }

// Adopt inserts an existing bundle (checkpoint restore); the ID
// allocator advances past it so future Create calls never collide.
// Adopting an ID already in the pool panics.
func (p *Pool) Adopt(b *bundle.Bundle) {
	if _, ok := p.bundles[b.ID()]; ok {
		panic("pool: Adopt of duplicate bundle ID")
	}
	p.bundles[b.ID()] = b
	if next := p.alignID(b.ID() + 1); next > p.nextID {
		p.nextID = next
	}
}

// SetStats overwrites the activity counters (checkpoint restore).
func (p *Pool) SetStats(s Stats) { p.stats = s }

// Inserts returns the NoteInsert counter — the phase of the periodic
// pool check. Checkpoints persist it so a restored engine refines at
// exactly the stream positions an uninterrupted run would.
func (p *Pool) Inserts() int { return p.inserts }

// SetInserts overwrites the NoteInsert counter (checkpoint restore).
func (p *Pool) SetInserts(n int) { p.inserts = n }

// NextID exposes the next bundle ID the pool would allocate — saved in
// checkpoints so restored engines continue the same ID sequence even
// when the newest bundles were evicted before the snapshot.
func (p *Pool) NextID() bundle.ID { return p.nextID }

// SetNextID raises the ID allocator (checkpoint restore); lower values
// are ignored so Adopt-derived floors stay safe, and the value is
// aligned onto the pool's (IDStart, IDStride) progression.
func (p *Pool) SetNextID(id bundle.ID) {
	if v := p.alignID(id); v > p.nextID {
		p.nextID = v
	}
}

// Len is the number of live bundles.
func (p *Pool) Len() int { return len(p.bundles) }

// Stats returns activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// All iterates the live bundles in unspecified order.
func (p *Pool) All(fn func(*bundle.Bundle)) {
	for _, b := range p.bundles {
		fn(b)
	}
}

// MemBytes sums the analytic memory estimate over live bundles.
func (p *Pool) MemBytes() int64 {
	var total int64
	for _, b := range p.bundles {
		total += b.MemBytes()
	}
	return total
}

// MessageCount sums the messages held in memory — Figure 11(b)'s
// hardware-independent memory metric.
func (p *Pool) MessageCount() int64 {
	var total int64
	for _, b := range p.bundles {
		total += int64(b.Size())
	}
	return total
}

// NoteInsert must be called after every message insertion into b: it
// applies the bundle size constraint and advances the periodic check
// counter. It returns true when the caller should run MaybeRefine.
func (p *Pool) NoteInsert(b *bundle.Bundle) bool {
	if p.cfg.MaxBundleSize > 0 && !b.Closed() && b.Size() >= p.cfg.MaxBundleSize {
		b.Close()
	}
	p.inserts++
	return p.inserts%p.cfg.CheckEvery == 0
}

// MaybeRefine runs the refinement pass if the pool exceeds its bound.
// It reports whether a pass ran.
func (p *Pool) MaybeRefine(now time.Time) bool {
	if p.cfg.MaxBundles <= 0 || len(p.bundles) <= p.cfg.MaxBundles {
		return false
	}
	p.refine(now)
	return true
}

// rankedBundle pairs a bundle with its Equation 6 score for the
// second-stage ranking.
type rankedBundle struct {
	b *bundle.Bundle
	g float64
}

// refine is Algorithm 3. Stage one deletes aging tiny bundles and
// flushes aging closed ones; stage two ranks the rest by G(B)
// descending and flushes from the top until both the lower limit is met
// and the pool is back under MaxBundles.
func (p *Pool) refine(now time.Time) {
	p.stats.Refines++
	count := 0
	waiting := make([]rankedBundle, 0, len(p.bundles))
	for id, b := range p.bundles {
		age := now.Sub(b.LastUpdate())
		switch {
		case age > p.cfg.RefineAge && b.Size() < p.cfg.RefineSize:
			delete(p.bundles, id)
			if p.onRefine != nil {
				p.onRefine(b, EvictAgingTiny, age.Hours(), score.EvictionRank(now, b.LastUpdate(), b.Size()), 0)
			}
			p.onEvict(b, EvictAgingTiny, false)
			p.stats.DeletedTiny++
			count++
		case age > p.cfg.RefineAge && b.Closed():
			delete(p.bundles, id)
			if p.onRefine != nil {
				p.onRefine(b, EvictClosed, age.Hours(), score.EvictionRank(now, b.LastUpdate(), b.Size()), 0)
			}
			p.onEvict(b, EvictClosed, true)
			p.stats.FlushedClosed++
			count++
		default:
			waiting = append(waiting, rankedBundle{b: b, g: score.EvictionRank(now, b.LastUpdate(), b.Size())})
		}
	}
	sort.Slice(waiting, func(i, j int) bool {
		if waiting[i].g != waiting[j].g {
			return waiting[i].g > waiting[j].g
		}
		return waiting[i].b.ID() < waiting[j].b.ID()
	})
	for rank, rb := range waiting {
		if count >= p.cfg.LowerLimit && len(p.bundles) <= p.cfg.MaxBundles {
			break
		}
		delete(p.bundles, rb.b.ID())
		if p.onRefine != nil {
			p.onRefine(rb.b, EvictRanked, now.Sub(rb.b.LastUpdate()).Hours(), rb.g, rank+1)
		}
		p.onEvict(rb.b, EvictRanked, true)
		p.stats.FlushedRanked++
		count++
		if p.gHist != nil {
			p.gHist.Observe(int64(rb.g * 1000))
		}
	}
}
