package pool

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/bundle"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

// fill adds n messages dated at to b, each carrying a bundle-unique tag.
func fill(b *bundle.Bundle, n int, at time.Time) {
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("message %d of bundle %d #b%d", i, b.ID(), b.ID())
		m := tweet.Parse(tweet.ID(uint64(b.ID())*1000+uint64(i)), "u", at, text)
		b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)})
	}
}

type evictLog struct {
	events []struct {
		id     bundle.ID
		reason EvictReason
		flush  bool
	}
}

func (l *evictLog) hook(b *bundle.Bundle, r EvictReason, flush bool) {
	l.events = append(l.events, struct {
		id     bundle.ID
		reason EvictReason
		flush  bool
	}{b.ID(), r, flush})
}

func TestCreateAndGet(t *testing.T) {
	p := New(Config{}, nil)
	b1 := p.Create()
	b2 := p.Create()
	if b1.ID() == b2.ID() {
		t.Fatal("Create reused an ID")
	}
	if p.Get(b1.ID()) != b1 || p.Get(999) != nil {
		t.Error("Get wrong")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Stats().Created != 2 {
		t.Errorf("Created = %d", p.Stats().Created)
	}
}

func TestUnlimitedPoolNeverRefines(t *testing.T) {
	p := New(Config{}, nil) // zero config = Full Index
	for i := 0; i < 500; i++ {
		fill(p.Create(), 1, base)
	}
	if p.MaybeRefine(base.Add(100 * time.Hour)) {
		t.Error("unlimited pool ran refinement")
	}
	if p.Len() != 500 {
		t.Errorf("Len = %d, want 500", p.Len())
	}
}

func TestNoteInsertClosesAtSizeCap(t *testing.T) {
	p := New(Config{MaxBundleSize: 3}, nil)
	b := p.Create()
	fill(b, 2, base)
	p.NoteInsert(b)
	if b.Closed() {
		t.Fatal("closed below cap")
	}
	fill(b, 1, base)
	p.NoteInsert(b)
	if !b.Closed() {
		t.Fatal("not closed at cap")
	}
}

func TestNoteInsertCheckCadence(t *testing.T) {
	p := New(Config{CheckEvery: 4}, nil)
	b := p.Create()
	checks := 0
	for i := 0; i < 12; i++ {
		if p.NoteInsert(b) {
			checks++
		}
	}
	if checks != 3 {
		t.Errorf("checks = %d, want 3 (every 4th insert)", checks)
	}
}

func TestRefineDeletesAgingTiny(t *testing.T) {
	cfg := Config{MaxBundles: 2, RefineSize: 3, RefineAge: time.Hour, LowerLimit: 1}
	var log evictLog
	p := New(cfg, log.hook)

	old := p.Create()
	fill(old, 1, base) // tiny, will age

	fresh := p.Create()
	fill(fresh, 5, base.Add(2*time.Hour))
	big := p.Create()
	fill(big, 10, base.Add(2*time.Hour))

	now := base.Add(90 * time.Minute) // old aged 90m > 1h; others fresh
	if !p.MaybeRefine(now.Add(time.Hour)) {
		t.Fatal("refinement did not run over limit")
	}
	if p.Get(old.ID()) != nil {
		t.Error("aging tiny bundle survived")
	}
	found := false
	for _, e := range log.events {
		if e.id == old.ID() {
			found = true
			if e.reason != EvictAgingTiny || e.flush {
				t.Errorf("aging tiny evicted as %v flush=%v", e.reason, e.flush)
			}
		}
	}
	if !found {
		t.Error("eviction hook not called for aging tiny bundle")
	}
	if p.Stats().DeletedTiny != 1 {
		t.Errorf("DeletedTiny = %d", p.Stats().DeletedTiny)
	}
}

func TestRefineFlushesAgingClosed(t *testing.T) {
	cfg := Config{MaxBundles: 1, RefineSize: 2, RefineAge: time.Hour, LowerLimit: 1}
	var log evictLog
	p := New(cfg, log.hook)

	closed := p.Create()
	fill(closed, 6, base)
	closed.Close()

	fresh := p.Create()
	fill(fresh, 3, base.Add(3*time.Hour))

	p.MaybeRefine(base.Add(4 * time.Hour))
	if p.Get(closed.ID()) != nil {
		t.Fatal("aging closed bundle survived")
	}
	for _, e := range log.events {
		if e.id == closed.ID() && (e.reason != EvictClosed || !e.flush) {
			t.Errorf("closed bundle evicted as %v flush=%v, want closed/flush", e.reason, e.flush)
		}
	}
	if p.Stats().FlushedClosed != 1 {
		t.Errorf("FlushedClosed = %d", p.Stats().FlushedClosed)
	}
}

func TestRefineRankedEviction(t *testing.T) {
	// No bundle is aging; the pass must fall through to G(B) ranking
	// and evict the stalest/smallest first, flushing them.
	cfg := Config{MaxBundles: 2, RefineSize: 2, RefineAge: 100 * time.Hour, LowerLimit: 2}
	var log evictLog
	p := New(cfg, log.hook)

	staleSmall := p.Create()
	fill(staleSmall, 1, base)
	staleBig := p.Create()
	fill(staleBig, 50, base)
	freshBig := p.Create()
	fill(freshBig, 50, base.Add(10*time.Hour))
	freshSmall := p.Create()
	fill(freshSmall, 2, base.Add(10*time.Hour))

	p.MaybeRefine(base.Add(11 * time.Hour))

	if len(log.events) != 2 {
		t.Fatalf("evictions = %v, want 2", log.events)
	}
	if log.events[0].id != staleSmall.ID() {
		t.Errorf("first eviction = bundle %d, want stale small %d", log.events[0].id, staleSmall.ID())
	}
	if log.events[1].id != staleBig.ID() {
		t.Errorf("second eviction = bundle %d, want stale big %d", log.events[1].id, staleBig.ID())
	}
	for _, e := range log.events {
		if e.reason != EvictRanked || !e.flush {
			t.Errorf("ranked eviction %v flush=%v, want ranked/flush", e.reason, e.flush)
		}
	}
	if p.Len() != 2 {
		t.Errorf("Len after refine = %d, want 2", p.Len())
	}
}

func TestRefineRespectsLowerLimit(t *testing.T) {
	// Pool barely over the cap, but LowerLimit forces extra evictions.
	cfg := Config{MaxBundles: 4, RefineSize: 1, RefineAge: 100 * time.Hour, LowerLimit: 3}
	var log evictLog
	p := New(cfg, log.hook)
	for i := 0; i < 5; i++ {
		fill(p.Create(), 2, base.Add(time.Duration(i)*time.Hour))
	}
	p.MaybeRefine(base.Add(10 * time.Hour))
	if len(log.events) != 3 {
		t.Errorf("evictions = %d, want LowerLimit 3", len(log.events))
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestRefineNotTriggeredUnderLimit(t *testing.T) {
	cfg := Config{MaxBundles: 10, RefineAge: time.Hour, RefineSize: 2, LowerLimit: 1}
	p := New(cfg, nil)
	for i := 0; i < 10; i++ {
		fill(p.Create(), 1, base)
	}
	if p.MaybeRefine(base.Add(100 * time.Hour)) {
		t.Error("refinement ran at exactly the limit (trigger is 'exceeds')")
	}
}

func TestMemAndMessageCounts(t *testing.T) {
	p := New(Config{}, nil)
	b1 := p.Create()
	fill(b1, 3, base)
	b2 := p.Create()
	fill(b2, 4, base)
	if got := p.MessageCount(); got != 7 {
		t.Errorf("MessageCount = %d, want 7", got)
	}
	if p.MemBytes() != b1.MemBytes()+b2.MemBytes() {
		t.Error("MemBytes not additive")
	}
}

func TestAllVisitsEverything(t *testing.T) {
	p := New(Config{}, nil)
	want := map[bundle.ID]bool{}
	for i := 0; i < 5; i++ {
		want[p.Create().ID()] = true
	}
	p.All(func(b *bundle.Bundle) { delete(want, b.ID()) })
	if len(want) != 0 {
		t.Errorf("All missed bundles: %v", want)
	}
}

func TestEvictReasonString(t *testing.T) {
	for r, want := range map[EvictReason]string{
		EvictAgingTiny: "aging-tiny", EvictClosed: "closed", EvictRanked: "ranked",
	} {
		if r.String() != want {
			t.Errorf("String = %q, want %q", r.String(), want)
		}
	}
}

// Property: after any refinement pass, the pool size is at most
// MaxBundles, and every evicted bundle is gone from the pool.
func TestRefineInvariantProperty(t *testing.T) {
	f := func(sizes []uint8, maxRaw, lowerRaw uint8) bool {
		if len(sizes) == 0 || len(sizes) > 60 {
			return true
		}
		max := int(maxRaw%20) + 1
		cfg := Config{
			MaxBundles: max,
			RefineSize: 3,
			RefineAge:  time.Hour,
			LowerLimit: int(lowerRaw % 10),
		}
		var log evictLog
		p := New(cfg, log.hook)
		for i, s := range sizes {
			b := p.Create()
			fill(b, int(s%9)+1, base.Add(time.Duration(i)*time.Minute))
		}
		p.MaybeRefine(base.Add(48 * time.Hour))
		if p.Len() > max {
			return false
		}
		for _, e := range log.events {
			if p.Get(e.id) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: stats counters always sum to the number of eviction events.
func TestStatsConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 50 {
			sizes = sizes[:50]
		}
		cfg := Config{MaxBundles: 5, RefineSize: 3, RefineAge: time.Hour, LowerLimit: 2, MaxBundleSize: 6}
		var log evictLog
		p := New(cfg, log.hook)
		for i, s := range sizes {
			b := p.Create()
			fill(b, int(s%9)+1, base.Add(time.Duration(i)*time.Minute))
			p.NoteInsert(b)
			p.MaybeRefine(base.Add(time.Duration(i)*time.Minute + 30*time.Hour))
		}
		st := p.Stats()
		return st.DeletedTiny+st.FlushedClosed+st.FlushedRanked == int64(len(log.events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdoptAndNextID(t *testing.T) {
	p := New(Config{}, nil)
	b := bundle.New(50)
	p.Adopt(b)
	if p.Get(50) != b {
		t.Fatal("adopted bundle not retrievable")
	}
	if p.NextID() != 51 {
		t.Errorf("NextID = %d, want 51", p.NextID())
	}
	// Create after Adopt must not collide.
	if c := p.Create(); c.ID() != 51 {
		t.Errorf("Create after Adopt = %d, want 51", c.ID())
	}
	// SetNextID only moves forward.
	p.SetNextID(10)
	if p.NextID() != 52 {
		t.Errorf("SetNextID lowered the allocator to %d", p.NextID())
	}
	p.SetNextID(100)
	if p.NextID() != 100 {
		t.Errorf("SetNextID = %d, want 100", p.NextID())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Adopt did not panic")
		}
	}()
	p.Adopt(bundle.New(50))
}

func TestInsertsCounter(t *testing.T) {
	p := New(Config{CheckEvery: 100}, nil)
	b := p.Create()
	for i := 0; i < 7; i++ {
		p.NoteInsert(b)
	}
	if p.Inserts() != 7 {
		t.Errorf("Inserts = %d", p.Inserts())
	}
	p.SetInserts(99)
	if !p.NoteInsert(b) {
		t.Error("restored counter lost check phase: insert 100 should trigger")
	}
}
