package trending

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/pool"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 29, 12, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

// addMsgs puts n same-topic messages into a fresh pool bundle, spaced
// by step and starting at start.
func addMsgs(p *pool.Pool, topic string, n int, start time.Time, step time.Duration) {
	b := p.Create()
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("%s development %d #%s", topic, i, topic)
		m := tweet.Parse(tweet.ID(uint64(b.ID())*1000+uint64(i)), "u", start.Add(time.Duration(i)*step), text)
		b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)})
	}
}

func TestDetectRanksBurstFirst(t *testing.T) {
	p := pool.New(pool.Config{}, nil)
	now := base.Add(3 * time.Hour)
	// Bursting: 20 messages in the last half hour.
	addMsgs(p, "tsunami", 20, now.Add(-30*time.Minute), time.Minute)
	// Steady old topic: 40 messages spread over 3 days, few recent.
	addMsgs(p, "baseball", 40, now.Add(-72*time.Hour), 108*time.Minute)
	// Dead topic: finished yesterday.
	addMsgs(p, "election", 30, now.Add(-30*time.Hour), time.Minute)

	topics := Detect(p, now, 10, Options{})
	if len(topics) == 0 {
		t.Fatal("nothing trending")
	}
	if !strings.Contains(strings.Join(topics[0].Summary, " "), "tsunami") {
		t.Errorf("top trend = %v, want the tsunami burst", topics[0])
	}
	for _, tp := range topics {
		if strings.Contains(strings.Join(tp.Summary, " "), "election") {
			t.Errorf("dead topic surfaced: %v", tp)
		}
	}
}

func TestDetectMinRecentFilter(t *testing.T) {
	p := pool.New(pool.Config{}, nil)
	now := base
	addMsgs(p, "whisper", 2, now.Add(-10*time.Minute), time.Minute) // below MinRecent
	if topics := Detect(p, now, 5, Options{}); len(topics) != 0 {
		t.Errorf("2-message bundle trended: %v", topics)
	}
	if topics := Detect(p, now, 5, Options{MinRecent: 1}); len(topics) != 1 {
		t.Errorf("MinRecent=1 should surface it: %v", topics)
	}
}

func TestDetectKAndZero(t *testing.T) {
	p := pool.New(pool.Config{}, nil)
	now := base
	for i := 0; i < 6; i++ {
		addMsgs(p, fmt.Sprintf("topic%c", 'a'+i), 5+i, now.Add(-20*time.Minute), time.Minute)
	}
	if got := Detect(p, now, 3, Options{}); len(got) != 3 {
		t.Errorf("k=3 returned %d", len(got))
	}
	if got := Detect(p, now, 0, Options{}); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	full := Detect(p, now, 100, Options{})
	for i := 1; i < len(full); i++ {
		if full[i].Score > full[i-1].Score {
			t.Error("topics not sorted by score")
		}
	}
}

func TestTopicString(t *testing.T) {
	p := pool.New(pool.Config{}, nil)
	addMsgs(p, "storm", 5, base.Add(-10*time.Minute), time.Minute)
	topics := Detect(p, base, 1, Options{})
	if len(topics) != 1 || !strings.Contains(topics[0].String(), "bundle") {
		t.Errorf("String = %v", topics)
	}
}

// TestDetectOverEngine: end to end over a generated stream with a
// scripted burst, the burst must rank first at the stream's end.
func TestDetectOverEngine(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 40000
	cfg.Scripts = []gen.EventScript{{
		Name:     "breaking quake",
		Hashtags: []string{"quake", "chile"},
		Topic:    []string{"quake", "chile", "magnitude", "epicenter"},
		URLs:     2,
		// Burst right at the end of the ~12h stream window.
		Start:    11 * time.Hour,
		HalfLife: 2 * time.Hour,
		Weight:   60,
	}}
	g := gen.New(cfg)
	e := core.New(core.FullIndexConfig(), nil, nil)
	for i := 0; i < 20000; i++ {
		e.Insert(g.Next())
	}
	topics := Detect(e.Pool(), e.Now(), 5, Options{})
	if len(topics) == 0 {
		t.Fatal("nothing trending at stream end")
	}
	found := false
	for _, tp := range topics[:1] {
		s := strings.Join(tp.Summary, " ")
		if strings.Contains(s, "quake") || strings.Contains(s, "chile") {
			found = true
		}
	}
	if !found {
		t.Errorf("scripted burst not the top trend: %v", topics)
	}
}
