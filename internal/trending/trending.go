// Package trending detects hot bundles — the "breaking events and
// famous stars" the paper observes users monitoring with repeated
// searches (Section I, citing the #twittersearch study). Because the
// provenance index already groups related messages into bundles, burst
// detection reduces to scoring each live bundle's recent growth
// against its age: no separate event-detection pipeline is needed,
// which is exactly the organisational payoff the paper argues for.
//
// The detector is stateless over the pool: each call scans live
// bundles and scores them at the engine's current simulated time.
package trending

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"provex/internal/bundle"
	"provex/internal/pool"
)

// Window is the recency horizon: only messages newer than now-Window
// count as "recent activity".
const DefaultWindow = 2 * time.Hour

// Options tune the detector.
type Options struct {
	// Window bounds the recent-activity horizon; 0 uses DefaultWindow.
	Window time.Duration
	// MinRecent filters bundles with fewer recent messages than this
	// (default 3) — a single fresh message is not a trend.
	MinRecent int
}

// Topic is one trending bundle.
type Topic struct {
	ID       bundle.ID
	Score    float64 // recent message rate (msgs/hour) scaled by burst ratio
	Recent   int     // messages inside the window
	Size     int     // total messages
	LastPost time.Time
	Summary  []string
}

// String renders the topic as a leaderboard row.
func (t Topic) String() string {
	return fmt.Sprintf("bundle %d  score=%.1f  recent=%d/%d  last=%s  %s",
		t.ID, t.Score, t.Recent, t.Size, t.LastPost.Format("15:04:05"),
		strings.Join(t.Summary, ", "))
}

// Detect scans the live pool at simulated time now and returns the top
// k trending bundles, hottest first.
func Detect(p *pool.Pool, now time.Time, k int, opts Options) []Topic {
	if k <= 0 {
		return nil
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	minRecent := opts.MinRecent
	if minRecent <= 0 {
		minRecent = 3
	}
	cutoff := now.Add(-window)

	var topics []Topic
	p.All(func(b *bundle.Bundle) {
		if b.EndTime().Before(cutoff) {
			return // quiet bundle
		}
		recent := 0
		for _, n := range b.Nodes() {
			if n.Doc.Msg.Date.After(cutoff) {
				recent++
			}
		}
		if recent < minRecent {
			return
		}
		// Rate of recent arrivals...
		rate := float64(recent) / window.Hours()
		// ...scaled by the burst ratio: what fraction of the bundle's
		// life happened inside the window. A steady old topic has a
		// low ratio; a fresh burst approaches 1.
		ratio := float64(recent) / float64(b.Size())
		topics = append(topics, Topic{
			ID:       b.ID(),
			Score:    rate * (0.5 + ratio),
			Recent:   recent,
			Size:     b.Size(),
			LastPost: b.EndTime(),
			Summary:  b.SummaryWords(6),
		})
	})
	sort.Slice(topics, func(i, j int) bool {
		if topics[i].Score != topics[j].Score {
			return topics[i].Score > topics[j].Score
		}
		return topics[i].ID < topics[j].ID
	})
	if len(topics) > k {
		topics = topics[:k]
	}
	return topics
}
