package core

import (
	"testing"

	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tweet"
)

// differentialRun ingests msgs and returns every insert result plus the
// discovered edge set, for equality comparison across engine configs.
type diffEdge struct {
	parent, child tweet.ID
	conn          score.ConnectionType
}

func differentialRun(t *testing.T, cfg Config, msgs []*tweet.Message) ([]InsertResult, []diffEdge) {
	t.Helper()
	var edges []diffEdge
	e := New(cfg, nil, func(p, c tweet.ID, conn score.ConnectionType) {
		edges = append(edges, diffEdge{p, c, conn})
	})
	results := make([]InsertResult, 0, len(msgs))
	for _, m := range msgs {
		results = append(results, e.Insert(m))
	}
	return results, edges
}

// TestPrunedMatchesExhaustiveEndToEnd is the whole-engine differential
// property test: over a seeded synthetic stream with pool pressure
// (evictions, refinement, closed bundles), the pruned match+placement
// hot paths must produce bundle assignments, parent nodes and edges
// byte-identical to Config.Exhaustive — including under parallel match,
// whose chunk-local pruning must compose with the deterministic
// reduction. Run under -race by ci.sh.
func TestPrunedMatchesExhaustiveEndToEnd(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		g := gen.DefaultConfig()
		g.Seed = seed
		msgs := gen.New(g).Generate(4000)

		base := PartialIndexConfig(150) // small pool: constant eviction churn
		base.Pool.MaxBundleSize = 40    // closed bundles appear in candidate lists

		exhaustive := base
		exhaustive.Exhaustive = true
		wantRes, wantEdges := differentialRun(t, exhaustive, msgs)

		pruned := base
		gotRes, gotEdges := differentialRun(t, pruned, msgs)
		compareRuns(t, "pruned serial", seed, wantRes, wantEdges, gotRes, gotEdges)

		parallel := base
		parallel.Parallel.MatchWorkers = 4
		parallel.Parallel.MatchThreshold = 8
		gotRes, gotEdges = differentialRun(t, parallel, msgs)
		compareRuns(t, "pruned parallel", seed, wantRes, wantEdges, gotRes, gotEdges)
	}
}

func compareRuns(t *testing.T, name string, seed int64, wantRes []InsertResult, wantEdges []diffEdge, gotRes []InsertResult, gotEdges []diffEdge) {
	t.Helper()
	for i := range wantRes {
		if gotRes[i] != wantRes[i] {
			t.Fatalf("%s seed %d: message %d diverged: got %+v, want %+v", name, seed, i, gotRes[i], wantRes[i])
		}
	}
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("%s seed %d: %d edges, want %d", name, seed, len(gotEdges), len(wantEdges))
	}
	for i := range wantEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("%s seed %d: edge %d diverged: got %+v, want %+v", name, seed, i, gotEdges[i], wantEdges[i])
		}
	}
}

// TestPruningActuallyPrunes guards against the differential test
// passing vacuously: on the same workload the pruned engine must report
// a substantial amount of skipped Eq. 5 and Eq. 1 work.
func TestPruningActuallyPrunes(t *testing.T) {
	g := gen.DefaultConfig()
	msgs := gen.New(g).Generate(4000)
	e := New(PartialIndexConfig(150), nil, nil)
	for _, m := range msgs {
		e.Insert(m)
	}
	if skipped := e.placeSkipped.Value(); skipped == 0 {
		t.Error("placement pruning skipped zero nodes over 4000 messages")
	}
	if pruned := e.matchPruned.Value(); pruned == 0 {
		t.Error("match pruning skipped zero candidates over 4000 messages")
	}
	if scored := e.placeScored.Value(); scored == 0 {
		t.Error("placement scored zero nodes — stats wiring broken")
	}
}
