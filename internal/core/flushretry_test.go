package core

// Degraded-mode behaviour of the flush retry queue: park on Put
// failure, heal on retry, bounded queue, permanent drop latching Err.

import (
	"fmt"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/fsx"
	"provex/internal/score"
	"provex/internal/storage"
	"provex/internal/tweet"
)

func retryBundle(id bundle.ID) *bundle.Bundle {
	b := bundle.New(id)
	base := time.Date(2009, 9, 29, 12, 0, 0, 0, time.UTC)
	m := tweet.Parse(tweet.ID(id), fmt.Sprintf("user%d", id), base,
		fmt.Sprintf("retry fixture %d #queue", id))
	b.Add(score.DefaultMessageWeights(), score.NewDoc(m))
	return b
}

func faultStore(t *testing.T) (*fsx.FaultFS, *storage.Store) {
	t.Helper()
	ff := fsx.NewFault(fsx.NewMem())
	st, err := storage.Open("store", storage.Options{FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	return ff, st
}

func TestFlushParkAndHeal(t *testing.T) {
	ff, st := faultStore(t)
	e := New(FullIndexConfig(), st, nil)

	ff.Arm(1, fsx.Fault{Freeze: true}, fsx.OpWrite)
	e.evict(retryBundle(1), 0, true)
	e.evict(retryBundle(2), 0, true)

	s := e.Snapshot()
	if s.FlushParked != 2 {
		t.Fatalf("FlushParked = %d, want 2", s.FlushParked)
	}
	if e.Err() != nil {
		t.Fatalf("transient failure latched Err: %v", e.Err())
	}
	if !s.Degraded() {
		t.Fatal("Degraded() false with parked bundles")
	}

	ff.Disarm()
	if err := e.DrainFlushRetries(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !st.Has(1) || !st.Has(2) {
		t.Fatal("parked bundles missing from store after heal")
	}
	s = e.Snapshot()
	if s.FlushParked != 0 || s.FlushRetries == 0 {
		t.Fatalf("after heal: parked=%d retries=%d", s.FlushParked, s.FlushRetries)
	}
	if s.FlushDropped != 0 {
		t.Fatalf("healed queue dropped %d bundles", s.FlushDropped)
	}
}

func TestFlushDropAfterMaxAttempts(t *testing.T) {
	ff, st := faultStore(t)
	cfg := FullIndexConfig()
	cfg.FlushRetry.MaxAttempts = 1
	e := New(cfg, st, nil)

	ff.Arm(1, fsx.Fault{Freeze: true}, fsx.OpWrite)
	e.evict(retryBundle(1), 0, true)
	if err := e.DrainFlushRetries(); err == nil {
		t.Fatal("drain against a dead disk returned nil")
	}
	ff.Disarm()

	s := e.Snapshot()
	if s.FlushDropped != 1 {
		t.Fatalf("FlushDropped = %d, want 1", s.FlushDropped)
	}
	if s.FlushParked != 0 {
		t.Fatalf("dropped bundle still parked: %d", s.FlushParked)
	}
	if e.Err() == nil {
		t.Fatal("permanent loss did not latch Err")
	}
	if !s.Degraded() {
		t.Fatal("Degraded() false after a drop")
	}
}

func TestFlushQueueBounded(t *testing.T) {
	ff, st := faultStore(t)
	cfg := FullIndexConfig()
	cfg.FlushRetry.MaxQueue = 3
	e := New(cfg, st, nil)

	ff.Arm(1, fsx.Fault{Freeze: true}, fsx.OpWrite)
	for id := bundle.ID(1); id <= 5; id++ {
		e.evict(retryBundle(id), 0, true)
	}
	ff.Disarm()

	s := e.Snapshot()
	if s.FlushParked != 3 {
		t.Fatalf("FlushParked = %d, want cap 3", s.FlushParked)
	}
	if s.FlushDropped != 2 {
		t.Fatalf("FlushDropped = %d, want 2 (overflow)", s.FlushDropped)
	}
	// The newest three survive; the two oldest were sacrificed.
	if err := e.DrainFlushRetries(); err == nil {
		t.Fatal("drain after drops must surface the latched error")
	}
	for id := bundle.ID(3); id <= 5; id++ {
		if !st.Has(id) {
			t.Fatalf("surviving bundle %d not flushed", id)
		}
	}
	if st.Has(1) || st.Has(2) {
		t.Fatal("dropped bundle reappeared in store")
	}
}

// TestFlushRetryBackoff: a parked bundle is not retried on every tick —
// attempts are spaced by the exponential schedule.
func TestFlushRetryBackoff(t *testing.T) {
	ff, st := faultStore(t)
	e := New(FullIndexConfig(), st, nil)

	ff.Arm(1, fsx.Fault{Freeze: true}, fsx.OpWrite)
	e.evict(retryBundle(1), 0, true)
	// Run many ticks against the dead disk, then count Put attempts.
	for i := 0; i < 64; i++ {
		e.flushTick++
		e.processRetries(false)
	}
	retries := e.Snapshot().FlushRetries
	if retries == 0 {
		t.Fatal("no retries over 64 ticks")
	}
	if retries > 10 {
		t.Fatalf("%d retries over 64 ticks — backoff not applied", retries)
	}
	ff.Disarm()
	if err := e.DrainFlushRetries(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !st.Has(1) {
		t.Fatal("bundle lost")
	}
}
