package core

// Engine checkpointing: serialise the live in-memory state (bundle
// pool, simulated clock, counters) so a stream processor can restart
// without re-ingesting the stream — the "stability requirement of
// provenance discovery" of the paper's Section V. The summary index is
// NOT stored: it is a deterministic function of the pool's bundles and
// is rebuilt on restore, which keeps checkpoints small and immune to
// index-format drift.
//
// Format v2 (little-endian, varint-coded):
//
//	magic "PROVCKP1"
//	version byte (2)
//	clock unix-nanos (varint)
//	engine counters: messages, edges, conn counts [5]
//	pool counters: nextID, created, refines, deletedTiny,
//	               flushedClosed, flushedRanked, inserts, live count
//	flush counters: retries, dropped
//	per live bundle: payload length, CRC32C, payload (bundle.Marshal)
//	parked count, then per parked flush-retry entry: attempts,
//	  payload length, CRC32C, payload
//
// The parked section exists so degraded mode survives a restart: a
// bundle evicted from the pool whose flush failed lives only in the
// retry queue, and the WAL that could rebuild it is truncated right
// after a checkpoint — so the checkpoint must carry it.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"time"

	"provex/internal/bundle"
	"provex/internal/fsx"
	"provex/internal/pool"
	"provex/internal/storage"
	"provex/internal/sumindex"
)

var ckptMagic = [8]byte{'P', 'R', 'O', 'V', 'C', 'K', 'P', '1'}

const ckptVersion = 2

// maxCkptRecord caps one serialised bundle so a corrupt length field
// cannot drive an absurd allocation during restore.
const maxCkptRecord = 64 << 20

// ErrBadCheckpoint reports an unreadable or corrupt checkpoint stream.
var ErrBadCheckpoint = errors.New("core: bad checkpoint")

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint serialises the engine's in-memory state to w.
// The engine must not ingest concurrently.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := bw.WriteByte(ckptVersion); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	var hdr []byte
	hdr = binary.AppendVarint(hdr, e.clock.Now().UnixNano())
	hdr = binary.AppendUvarint(hdr, uint64(e.messages.Value()))
	hdr = binary.AppendUvarint(hdr, uint64(e.edges.Value()))
	for i := range e.connCounts {
		hdr = binary.AppendUvarint(hdr, uint64(e.connCounts[i].Value()))
	}
	ps := e.pool.Stats()
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.NextID()))
	hdr = binary.AppendUvarint(hdr, uint64(ps.Created))
	hdr = binary.AppendUvarint(hdr, uint64(ps.Refines))
	hdr = binary.AppendUvarint(hdr, uint64(ps.DeletedTiny))
	hdr = binary.AppendUvarint(hdr, uint64(ps.FlushedClosed))
	hdr = binary.AppendUvarint(hdr, uint64(ps.FlushedRanked))
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.Inserts()))
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.Len()))
	hdr = binary.AppendUvarint(hdr, uint64(e.flushRetries.Value()))
	hdr = binary.AppendUvarint(hdr, uint64(e.flushDropped.Value()))
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}

	writeRec := func(payload []byte) error {
		var rec []byte
		rec = binary.AppendUvarint(rec, uint64(len(payload)))
		rec = binary.AppendUvarint(rec, uint64(crc32.Checksum(payload, ckptCRC)))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}

	var werr error
	e.pool.All(func(b *bundle.Bundle) {
		if werr != nil {
			return
		}
		werr = writeRec(b.Marshal())
	})
	if werr != nil {
		return fmt.Errorf("core: checkpoint: %w", werr)
	}

	// Parked flush-retry entries: bundles already evicted from the pool
	// that still await a successful flush.
	var parked []byte
	parked = binary.AppendUvarint(parked, uint64(len(e.retryq)))
	if _, err := bw.Write(parked); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	for _, r := range e.retryq {
		var att []byte
		att = binary.AppendUvarint(att, uint64(r.attempts))
		if _, err := bw.Write(att); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
		if err := writeRec(r.b.Marshal()); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
	}

	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// RestoreCheckpoint rebuilds an engine from a checkpoint written by
// WriteCheckpoint. cfg, store and onEdge play the same roles as in New
// and must match the original engine's configuration for the restored
// behaviour to be equivalent (the checkpoint carries state, not
// configuration). The summary index is reconstructed from the restored
// bundles; stage timers restart from zero (they measure the current
// process, not the stream's history); onEdge is not replayed for
// historical edges.
func RestoreCheckpoint(cfg Config, store *storage.Store, onEdge EdgeFunc, r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	version, err := br.ReadByte()
	if err != nil || version != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadCheckpoint)
	}

	clockNanos, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}
	readU := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(br)
		return v
	}
	messages := readU()
	edges := readU()
	var conns [5]uint64
	for i := range conns {
		conns[i] = readU()
	}
	nextID := readU()
	created := readU()
	refines := readU()
	deletedTiny := readU()
	flushedClosed := readU()
	flushedRanked := readU()
	inserts := readU()
	bundleCount := readU()
	flushRetries := readU()
	flushDropped := readU()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}

	e := New(cfg, store, onEdge)
	e.clock.AdvanceTo(time.Unix(0, clockNanos).UTC())
	e.messages.Add(int64(messages))
	e.edges.Add(int64(edges))
	for i := range conns {
		e.connCounts[i].Add(int64(conns[i]))
	}
	e.pool.SetStats(pool.Stats{
		Created:       int64(created),
		Refines:       int64(refines),
		DeletedTiny:   int64(deletedTiny),
		FlushedClosed: int64(flushedClosed),
		FlushedRanked: int64(flushedRanked),
	})
	e.pool.SetInserts(int(inserts))
	e.flushRetries.Add(int64(flushRetries))
	e.flushDropped.Add(int64(flushDropped))

	readRec := func(what string, i uint64) (*bundle.Bundle, error) {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at %s %d", ErrBadCheckpoint, what, i)
		}
		if length > maxCkptRecord {
			return nil, fmt.Errorf("%w: %s %d: absurd length %d", ErrBadCheckpoint, what, i, length)
		}
		wantCRC, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at %s %d", ErrBadCheckpoint, what, i)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated at %s %d", ErrBadCheckpoint, what, i)
		}
		if crc32.Checksum(payload, ckptCRC) != uint32(wantCRC) {
			return nil, fmt.Errorf("%w: checksum mismatch at %s %d", ErrBadCheckpoint, what, i)
		}
		b, err := bundle.Unmarshal(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %s %d: %v", ErrBadCheckpoint, what, i, err)
		}
		return b, nil
	}

	for i := uint64(0); i < bundleCount; i++ {
		b, err := readRec("bundle", i)
		if err != nil {
			return nil, err
		}
		e.pool.Adopt(b)
		// Rebuild summary-index postings from the bundle's messages.
		for _, n := range b.Nodes() {
			e.index.Observe(sumindex.BundleID(b.ID()), n.Doc)
		}
	}
	e.pool.SetNextID(bundle.ID(nextID))

	// Parked flush-retry entries: re-queued as immediately due. They were
	// already Forgotten from the summary index when first evicted, so
	// they rejoin the retry queue only — not the pool or index.
	parkedCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated parked section", ErrBadCheckpoint)
	}
	for i := uint64(0); i < parkedCount; i++ {
		attempts, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at parked %d", ErrBadCheckpoint, i)
		}
		b, err := readRec("parked", i)
		if err != nil {
			return nil, err
		}
		e.retryq = append(e.retryq, flushRetry{b: b, attempts: int(attempts)})
	}

	// Detect trailing garbage (an appended or doubled checkpoint).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrBadCheckpoint)
	}
	return e, nil
}

// SaveCheckpoint atomically writes the engine's checkpoint to path on
// fsys: the stream goes to a temporary sibling first, is fsynced, and
// is renamed over path, so a crash at any point leaves either the old
// checkpoint or the new one — never a torn hybrid.
func (e *Engine) SaveCheckpoint(fsys fsx.FS, path string) error {
	fsys = fsx.Default(fsys)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := e.WriteCheckpoint(f); err != nil {
		f.Close()
		fsx.BestEffortRemove(fsys, tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsx.BestEffortRemove(fsys, tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores an engine from the checkpoint file at path on
// fsys. A missing file is reported as-is (test with errors.Is against
// io/fs.ErrNotExist) so callers can fall back to a fresh engine.
func LoadCheckpoint(cfg Config, store *storage.Store, onEdge EdgeFunc, fsys fsx.FS, path string) (*Engine, error) {
	fsys = fsx.Default(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	defer f.Close()
	return RestoreCheckpoint(cfg, store, onEdge, f)
}
