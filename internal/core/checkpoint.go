package core

// Engine checkpointing: serialise the live in-memory state (bundle
// pool, simulated clock, counters) so a stream processor can restart
// without re-ingesting the stream — the "stability requirement of
// provenance discovery" of the paper's Section V. The summary index is
// NOT stored: it is a deterministic function of the pool's bundles and
// is rebuilt on restore, which keeps checkpoints small and immune to
// index-format drift.
//
// Format (little-endian, varint-coded):
//
//	magic "PROVCKP1"
//	version byte
//	clock unix-nanos (varint)
//	engine counters: messages, edges, conn counts [5]
//	pool counters: nextID, created, refines, deletedTiny,
//	               flushedClosed, flushedRanked
//	bundle count, then per bundle: payload length, CRC32C, payload
//	  (bundle.Marshal)

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"provex/internal/bundle"
	"provex/internal/pool"
	"provex/internal/storage"
	"provex/internal/sumindex"
)

var ckptMagic = [8]byte{'P', 'R', 'O', 'V', 'C', 'K', 'P', '1'}

const ckptVersion = 1

// ErrBadCheckpoint reports an unreadable or corrupt checkpoint stream.
var ErrBadCheckpoint = errors.New("core: bad checkpoint")

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint serialises the engine's in-memory state to w.
// The engine must not ingest concurrently.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := bw.WriteByte(ckptVersion); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	var hdr []byte
	hdr = binary.AppendVarint(hdr, e.clock.Now().UnixNano())
	hdr = binary.AppendUvarint(hdr, uint64(e.messages.Value()))
	hdr = binary.AppendUvarint(hdr, uint64(e.edges.Value()))
	for i := range e.connCounts {
		hdr = binary.AppendUvarint(hdr, uint64(e.connCounts[i].Value()))
	}
	ps := e.pool.Stats()
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.NextID()))
	hdr = binary.AppendUvarint(hdr, uint64(ps.Created))
	hdr = binary.AppendUvarint(hdr, uint64(ps.Refines))
	hdr = binary.AppendUvarint(hdr, uint64(ps.DeletedTiny))
	hdr = binary.AppendUvarint(hdr, uint64(ps.FlushedClosed))
	hdr = binary.AppendUvarint(hdr, uint64(ps.FlushedRanked))
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.Inserts()))
	hdr = binary.AppendUvarint(hdr, uint64(e.pool.Len()))
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}

	var werr error
	e.pool.All(func(b *bundle.Bundle) {
		if werr != nil {
			return
		}
		payload := b.Marshal()
		var rec []byte
		rec = binary.AppendUvarint(rec, uint64(len(payload)))
		rec = binary.AppendUvarint(rec, uint64(crc32.Checksum(payload, ckptCRC)))
		if _, err := bw.Write(rec); err != nil {
			werr = err
			return
		}
		if _, err := bw.Write(payload); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return fmt.Errorf("core: checkpoint: %w", werr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// RestoreCheckpoint rebuilds an engine from a checkpoint written by
// WriteCheckpoint. cfg, store and onEdge play the same roles as in New
// and must match the original engine's configuration for the restored
// behaviour to be equivalent (the checkpoint carries state, not
// configuration). The summary index is reconstructed from the restored
// bundles; stage timers restart from zero (they measure the current
// process, not the stream's history); onEdge is not replayed for
// historical edges.
func RestoreCheckpoint(cfg Config, store *storage.Store, onEdge EdgeFunc, r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	version, err := br.ReadByte()
	if err != nil || version != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadCheckpoint)
	}

	clockNanos, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}
	readU := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(br)
		return v
	}
	messages := readU()
	edges := readU()
	var conns [5]uint64
	for i := range conns {
		conns[i] = readU()
	}
	nextID := readU()
	created := readU()
	refines := readU()
	deletedTiny := readU()
	flushedClosed := readU()
	flushedRanked := readU()
	inserts := readU()
	bundleCount := readU()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}

	e := New(cfg, store, onEdge)
	e.clock.AdvanceTo(time.Unix(0, clockNanos).UTC())
	e.messages.Add(int64(messages))
	e.edges.Add(int64(edges))
	for i := range conns {
		e.connCounts[i].Add(int64(conns[i]))
	}
	e.pool.SetStats(pool.Stats{
		Created:       int64(created),
		Refines:       int64(refines),
		DeletedTiny:   int64(deletedTiny),
		FlushedClosed: int64(flushedClosed),
		FlushedRanked: int64(flushedRanked),
	})
	e.pool.SetInserts(int(inserts))

	for i := uint64(0); i < bundleCount; i++ {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at bundle %d", ErrBadCheckpoint, i)
		}
		wantCRC, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at bundle %d", ErrBadCheckpoint, i)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated at bundle %d", ErrBadCheckpoint, i)
		}
		if crc32.Checksum(payload, ckptCRC) != uint32(wantCRC) {
			return nil, fmt.Errorf("%w: checksum mismatch at bundle %d", ErrBadCheckpoint, i)
		}
		b, err := bundle.Unmarshal(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: bundle %d: %v", ErrBadCheckpoint, i, err)
		}
		e.pool.Adopt(b)
		// Rebuild summary-index postings from the bundle's messages.
		for _, n := range b.Nodes() {
			e.index.Observe(sumindex.BundleID(b.ID()), n.Doc)
		}
	}
	e.pool.SetNextID(bundle.ID(nextID))
	// Detect trailing garbage (an appended or doubled checkpoint).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrBadCheckpoint)
	}
	return e, nil
}
