package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tweet"
)

func genSmall(seed int64) *gen.Generator {
	cfg := gen.DefaultConfig()
	cfg.Seed = seed
	cfg.MsgsPerDay = 20000
	cfg.Users = 1000
	cfg.VocabSize = 1200
	cfg.EventsPerDay = 500
	return gen.New(cfg)
}

// snapshotComparable strips the stage timers (which legitimately differ
// across processes) from a Stats for equality checks.
func snapshotComparable(s Stats) Stats {
	s.PrepareTime, s.MatchTime, s.PlaceTime, s.RefineTime = 0, 0, 0, 0
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := genSmall(3)
	cfg := PartialIndexConfig(300)
	orig := New(cfg, nil, nil)
	for i := 0; i < 6000; i++ {
		orig.Insert(g.Next())
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	restored, err := RestoreCheckpoint(cfg, nil, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}

	// Snapshots (modulo timers) must match exactly.
	got := snapshotComparable(restored.Snapshot())
	want := snapshotComparable(orig.Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot differs after restore:\n got: %+v\nwant: %+v", got, want)
	}
	if !restored.Now().Equal(orig.Now()) {
		t.Errorf("clock differs: %v vs %v", restored.Now(), orig.Now())
	}

	// Every live bundle survived byte-for-byte and validates.
	orig.pool.All(func(b *bundle.Bundle) {
		r := restored.pool.Get(b.ID())
		if r == nil {
			t.Fatalf("bundle %d missing after restore", b.ID())
		}
		if !bytes.Equal(r.Marshal(), b.Marshal()) {
			t.Fatalf("bundle %d differs after restore", b.ID())
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("restored bundle %d invalid: %v", b.ID(), err)
		}
	})
}

// TestCheckpointResumeEquivalence: a run that checkpoints midway and
// resumes must end in exactly the state of an uninterrupted run — the
// property that makes checkpoints usable at all.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const half, total = 4000, 8000
	cfg := PartialIndexConfig(300)

	// Uninterrupted reference run.
	gRef := genSmall(7)
	ref := New(cfg, nil, nil)
	for i := 0; i < total; i++ {
		ref.Insert(gRef.Next())
	}

	// Interrupted run: ingest half, checkpoint, restore, ingest rest.
	gCkpt := genSmall(7)
	first := New(cfg, nil, nil)
	for i := 0; i < half; i++ {
		first.Insert(gCkpt.Next())
	}
	var buf bytes.Buffer
	if err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreCheckpoint(cfg, nil, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < total; i++ {
		resumed.Insert(gCkpt.Next())
	}

	got := snapshotComparable(resumed.Snapshot())
	want := snapshotComparable(ref.Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed run diverged from reference:\n got: %+v\nwant: %+v", got, want)
	}

	// Bundle IDs allocated after resume must not collide: spot-check by
	// comparing the live bundle ID sets.
	refIDs := map[bundle.ID]bool{}
	ref.pool.All(func(b *bundle.Bundle) { refIDs[b.ID()] = true })
	resumed.pool.All(func(b *bundle.Bundle) {
		if !refIDs[b.ID()] {
			t.Errorf("resumed pool holds unexpected bundle %d", b.ID())
		}
	})
}

// TestCheckpointNextIDSurvivesEviction: even when the newest bundle was
// evicted before the snapshot, the restored engine must not reuse its
// ID.
func TestCheckpointNextIDSurvivesEviction(t *testing.T) {
	cfg := PartialIndexConfig(4)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 10 // everything aging is tiny -> deleted
	cfg.Pool.LowerLimit = 4
	cfg.Pool.CheckEvery = 1
	e := New(cfg, nil, nil)
	base := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		text := "standalone" + string(rune('a'+i)) + " #solo" + string(rune('a'+i))
		e.Insert(tweet.Parse(tweet.ID(i+1), "u", base.Add(time.Duration(i)*time.Hour), text))
	}
	nextBefore := e.pool.NextID()

	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCheckpoint(cfg, nil, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.pool.NextID(); got != nextBefore {
		t.Errorf("NextID = %d after restore, want %d", got, nextBefore)
	}
}

// TestCheckpointRestoredEngineQueries: the rebuilt summary index must
// route new related messages into the restored bundles.
func TestCheckpointRestoredEngineQueries(t *testing.T) {
	base := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	e := New(FullIndexConfig(), nil, nil)
	r1 := e.Insert(tweet.Parse(1, "a", base, "game on tonight #redsox"))

	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCheckpoint(FullIndexConfig(), nil, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2 := restored.Insert(tweet.Parse(2, "b", base.Add(time.Minute), "what a game #redsox"))
	if r2.Created || r2.Bundle != r1.Bundle {
		t.Errorf("restored index failed to route: %+v (original bundle %d)", r2, r1.Bundle)
	}
	if r2.Conn != score.ConnHashtag {
		t.Errorf("conn = %v", r2.Conn)
	}
}

func TestCheckpointCorruption(t *testing.T) {
	g := genSmall(5)
	e := New(FullIndexConfig(), nil, nil)
	for i := 0; i < 500; i++ {
		e.Insert(g.Next())
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{'X'}, data[1:]...),
		"bad version": append(append([]byte{}, data[:8]...), append([]byte{99}, data[9:]...)...),
		"truncated":   data[:len(data)/3],
		"payload flip": func() []byte {
			mut := append([]byte{}, data...)
			mut[len(mut)/2] ^= 0xFF
			return mut
		}(),
		"trailing": append(append([]byte{}, data...), 1, 2, 3),
	}
	for name, c := range cases {
		if _, err := RestoreCheckpoint(FullIndexConfig(), nil, nil, bytes.NewReader(c)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err = %v, want ErrBadCheckpoint", name, err)
		}
	}
}

func TestCheckpointEmptyEngine(t *testing.T) {
	e := New(FullIndexConfig(), nil, nil)
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCheckpoint(FullIndexConfig(), nil, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Snapshot().Messages != 0 || restored.Pool().Len() != 0 {
		t.Error("empty engine restore not empty")
	}
}
