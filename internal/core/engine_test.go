package core

import (
	"fmt"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/storage"
	"provex/internal/stream"
	"provex/internal/tweet"
)

var base = time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)

func msg(id tweet.ID, user, text string, at time.Time) *tweet.Message {
	return tweet.Parse(id, user, at, text)
}

func TestInsertGroupsRelatedMessages(t *testing.T) {
	e := New(FullIndexConfig(), nil, nil)
	r1 := e.Insert(msg(1, "a", "game seven tonight #redsox", base))
	r2 := e.Insert(msg(2, "b", "unbelievable inning #redsox", base.Add(5*time.Minute)))
	r3 := e.Insert(msg(3, "c", "totally different #politics story", base.Add(6*time.Minute)))

	if !r1.Created {
		t.Error("first message should open a bundle")
	}
	if r2.Created || r2.Bundle != r1.Bundle {
		t.Errorf("shared-tag message split off: %+v vs %+v", r2, r1)
	}
	if !r3.Created || r3.Bundle == r1.Bundle {
		t.Errorf("unrelated message joined the bundle: %+v", r3)
	}
	if r2.Conn != score.ConnHashtag {
		t.Errorf("conn = %v, want hashtag", r2.Conn)
	}
}

func TestInsertRTRouting(t *testing.T) {
	e := New(FullIndexConfig(), nil, nil)
	r1 := e.Insert(msg(1, "amaliebenjamin", "lester ovation from the crowd", base))
	// The re-share has no tags/URLs; the user class must route it.
	r2 := e.Insert(msg(2, "fan", "RT @amaliebenjamin: lester ovation from the crowd", base.Add(time.Minute)))
	if r2.Bundle != r1.Bundle {
		t.Fatalf("RT routed to bundle %d, want %d", r2.Bundle, r1.Bundle)
	}
	if r2.Conn != score.ConnRT {
		t.Errorf("conn = %v, want rt", r2.Conn)
	}
}

func TestEdgeCallback(t *testing.T) {
	type edge struct{ p, c tweet.ID }
	var edges []edge
	e := New(FullIndexConfig(), nil, func(p, c tweet.ID, _ score.ConnectionType) {
		edges = append(edges, edge{p, c})
	})
	e.Insert(msg(1, "a", "start #topic", base))
	e.Insert(msg(2, "b", "follow #topic", base.Add(time.Minute)))
	e.Insert(msg(3, "c", "isolated #other", base.Add(2*time.Minute)))
	if len(edges) != 1 || edges[0] != (edge{1, 2}) {
		t.Errorf("edges = %v, want [{1 2}]", edges)
	}
	if got := e.Snapshot().EdgesCreated; got != 1 {
		t.Errorf("EdgesCreated = %d, want 1", got)
	}
}

func TestThresholdOpensNewBundle(t *testing.T) {
	cfg := FullIndexConfig()
	cfg.BundleWeights.Threshold = 100 // unreachable
	e := New(cfg, nil, nil)
	e.Insert(msg(1, "a", "same thing #tag", base))
	r := e.Insert(msg(2, "b", "same thing #tag", base.Add(time.Minute)))
	if !r.Created {
		t.Error("with an unreachable threshold every message must open a bundle")
	}
}

func TestClosedBundleNotMatched(t *testing.T) {
	cfg := FullIndexConfig()
	cfg.Pool.MaxBundleSize = 2
	e := New(cfg, nil, nil)
	e.Insert(msg(1, "a", "game #redsox", base))
	e.Insert(msg(2, "b", "game again #redsox", base.Add(time.Minute)))
	// Bundle hit its size cap and closed; the next related message must
	// open a fresh bundle rather than panic or join.
	r := e.Insert(msg(3, "c", "game still #redsox", base.Add(2*time.Minute)))
	if !r.Created {
		t.Error("message joined a closed bundle")
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	cfg := FullIndexConfig()
	cfg.MaxCandidates = 1
	e := New(cfg, nil, nil)
	// Two bundles share the query tag; the cap must still find the one
	// with more indicant hits (ranked first).
	e.Insert(msg(1, "a", "alpha #shared", base))
	e.Insert(msg(2, "b", "beta #shared #extra http://bit.ly/q", base.Add(time.Minute)))
	r := e.Insert(msg(3, "c", "gamma #shared #extra http://bit.ly/q", base.Add(2*time.Minute)))
	if r.Created {
		t.Error("capped candidates missed the top-ranked bundle")
	}
}

func TestPartialIndexEviction(t *testing.T) {
	cfg := PartialIndexConfig(10)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 2
	cfg.Pool.LowerLimit = 3
	cfg.Pool.CheckEvery = 1
	e := New(cfg, nil, nil)
	for i := 0; i < 40; i++ {
		// Fully disjoint vocabulary per message so each opens a bundle.
		word := fmt.Sprintf("topic%dword", i)
		text := fmt.Sprintf("%s #t%d", word, i)
		e.Insert(msg(tweet.ID(i+1), "u", text, base.Add(time.Duration(i)*time.Hour)))
	}
	if got := e.Pool().Len(); got > 10 {
		t.Errorf("pool size %d exceeds limit 10", got)
	}
	if e.Snapshot().Pool.Refines == 0 {
		t.Error("no refinement ran")
	}
}

func TestEvictionFlushesToStore(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := BundleLimitConfig(3, 2)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 1 // nothing is "tiny": closed bundles flush
	cfg.Pool.LowerLimit = 1
	cfg.Pool.CheckEvery = 1
	e := New(cfg, st, nil)
	for i := 0; i < 30; i++ {
		tag := string(rune('a' + i/2%13))
		e.Insert(msg(tweet.ID(i+1), "u", "pair message #tag"+tag, base.Add(time.Duration(i)*time.Hour)))
	}
	if e.Err() != nil {
		t.Fatalf("engine error: %v", e.Err())
	}
	if st.Count() == 0 {
		t.Fatal("no bundles flushed to storage")
	}
	// Every flushed bundle is retrievable through the engine facade.
	for _, id := range st.IDs() {
		b, err := e.Bundle(id)
		if err != nil {
			t.Fatalf("Bundle(%d): %v", id, err)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("flushed bundle %d invalid: %v", id, err)
		}
	}
}

func TestEvictedBundleNotACandidate(t *testing.T) {
	cfg := PartialIndexConfig(2)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 10 // everything old is tiny -> deleted
	cfg.Pool.LowerLimit = 2
	cfg.Pool.CheckEvery = 1
	e := New(cfg, nil, nil)
	e.Insert(msg(1, "a", "original #evicted", base))
	// Push unrelated bundles until the first is evicted.
	for i := 0; i < 10; i++ {
		tag := "#x" + string(rune('a'+i))
		e.Insert(msg(tweet.ID(i+2), "u", "filler "+tag, base.Add(time.Duration(i+1)*time.Hour)))
	}
	// A message matching only the evicted bundle must open a new one.
	r := e.Insert(msg(99, "b", "late arrival #evicted", base.Add(20*time.Hour)))
	if !r.Created {
		t.Error("message matched an evicted bundle via stale postings")
	}
}

func TestInsertAll(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 5000
	cfg.Users = 300
	cfg.VocabSize = 600
	cfg.EventsPerDay = 150
	msgs := gen.New(cfg).Generate(2000)
	e := New(FullIndexConfig(), nil, nil)
	n, err := e.InsertAll(stream.NewSliceSource(msgs))
	if err != nil || n != 2000 {
		t.Fatalf("InsertAll = (%d, %v)", n, err)
	}
	st := e.Snapshot()
	if st.Messages != 2000 {
		t.Errorf("Messages = %d", st.Messages)
	}
	if st.BundlesCreated == 0 || st.EdgesCreated == 0 {
		t.Errorf("no bundles or edges created: %+v", st)
	}
	if st.MemTotal() <= 0 {
		t.Error("memory estimate not positive")
	}
	// Full index keeps everything live.
	if int64(st.BundlesLive) != st.BundlesCreated {
		t.Errorf("full index evicted bundles: live=%d created=%d", st.BundlesLive, st.BundlesCreated)
	}
	if st.MessagesInMemory != 2000 {
		t.Errorf("MessagesInMemory = %d, want 2000", st.MessagesInMemory)
	}
}

func TestPoolBundlesValid(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 5000
	cfg.Users = 300
	cfg.VocabSize = 600
	cfg.EventsPerDay = 150
	msgs := gen.New(cfg).Generate(3000)
	e := New(BundleLimitConfig(200, 50), nil, nil)
	for _, m := range msgs {
		e.Insert(m)
	}
	e.Pool().All(func(b *bundle.Bundle) {
		if err := b.Validate(); err != nil {
			t.Errorf("live bundle %d invalid: %v", b.ID(), err)
		}
	})
}

func TestStageTimersAdvance(t *testing.T) {
	e := New(PartialIndexConfig(5), nil, nil)
	for i := 0; i < 2000; i++ {
		e.Insert(msg(tweet.ID(i+1), "u", "msg #t"+string(rune('a'+i%20)), base.Add(time.Duration(i)*time.Minute)))
	}
	st := e.Snapshot()
	if st.MatchTime <= 0 || st.PlaceTime <= 0 {
		t.Errorf("stage timers did not advance: %+v", st)
	}
}

func TestSnapshotConnCounts(t *testing.T) {
	e := New(FullIndexConfig(), nil, nil)
	e.Insert(msg(1, "a", "story #tag http://bit.ly/x", base))
	e.Insert(msg(2, "b", "more #tag", base.Add(time.Minute)))
	e.Insert(msg(3, "c", "link http://bit.ly/x", base.Add(2*time.Minute)))
	e.Insert(msg(4, "d", "RT @a: story #tag http://bit.ly/x", base.Add(3*time.Minute)))
	st := e.Snapshot()
	if st.ConnCounts["hashtag"] != 1 || st.ConnCounts["rt"] != 1 {
		t.Errorf("ConnCounts = %v", st.ConnCounts)
	}
	var total int64
	for _, v := range st.ConnCounts {
		total += v
	}
	if total != st.EdgesCreated {
		t.Errorf("conn counts sum %d != edges %d", total, st.EdgesCreated)
	}
}

func TestBundleNotFound(t *testing.T) {
	e := New(FullIndexConfig(), nil, nil)
	if _, err := e.Bundle(12345); err == nil {
		t.Error("missing bundle did not error")
	}
}

// TestFlushObserver verifies the archive hook fires exactly once per
// persisted bundle.
func TestFlushObserver(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := BundleLimitConfig(3, 2)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 1
	cfg.Pool.LowerLimit = 1
	cfg.Pool.CheckEvery = 1
	e := New(cfg, st, nil)
	flushed := map[bundle.ID]int{}
	e.SetFlushObserver(func(b *bundle.Bundle) { flushed[b.ID()]++ })
	for i := 0; i < 30; i++ {
		tag := string(rune('a' + i/2%13))
		e.Insert(msg(tweet.ID(i+1), "u", "pair message #tag"+tag, base.Add(time.Duration(i)*time.Hour)))
	}
	if len(flushed) == 0 {
		t.Fatal("observer never fired")
	}
	if len(flushed) != st.Count() {
		t.Errorf("observer saw %d bundles, store has %d", len(flushed), st.Count())
	}
	for id, n := range flushed {
		if n != 1 {
			t.Errorf("bundle %d observed %d times", id, n)
		}
	}
}
