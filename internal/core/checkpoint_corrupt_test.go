package core

// Satellite coverage for checkpoint restore under corruption: a
// truncation sweep over EVERY proper prefix of a valid stream and a
// bit-flip sweep over every byte. Restore must never panic, must report
// ErrBadCheckpoint for every truncation, and any error from a flipped
// byte must still be ErrBadCheckpoint (some flips — e.g. in a header
// counter varint — legitimately decode as a different, valid
// checkpoint, so "no error" is acceptable; a crash never is).

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/fsx"
	"provex/internal/score"
	"provex/internal/storage"
	"provex/internal/tweet"
)

// ckptFixture builds a small but section-complete checkpoint: live
// bundles in the pool AND a parked flush-retry entry, so every format
// section is exercised by the sweeps.
func ckptFixture(t *testing.T) []byte {
	t.Helper()
	// Keep the stream small: the sweeps are quadratic in its length.
	g := genSmall(11)
	e := New(FullIndexConfig(), nil, nil)
	for i := 0; i < 40; i++ {
		e.Insert(g.Next())
	}
	// A parked entry with a non-trivial attempt count.
	pb := bundle.New(9001)
	base := time.Date(2009, 9, 29, 12, 0, 0, 0, time.UTC)
	m := tweet.Parse(77, "parked", base, "orphaned flush #retry")
	pb.Add(score.DefaultMessageWeights(), score.NewDoc(m))
	e.retryq = append(e.retryq, flushRetry{b: pb, attempts: 3})

	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreNoPanic(t *testing.T, label string, data []byte) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: restore panicked: %v", label, r)
		}
	}()
	_, err = RestoreCheckpoint(FullIndexConfig(), nil, nil, bytes.NewReader(data))
	return err
}

func TestCheckpointTruncationSweep(t *testing.T) {
	data := ckptFixture(t)
	for n := 0; n < len(data); n++ {
		if err := restoreNoPanic(t, "truncate", data[:n]); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadCheckpoint",
				n, len(data), err)
		}
	}
}

func TestCheckpointBitFlipSweep(t *testing.T) {
	data := ckptFixture(t)
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(mut, data)
		mut[i] ^= 0xFF
		err := restoreNoPanic(t, "flip", mut)
		if err != nil && !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("flip at byte %d/%d: err = %v, want nil or ErrBadCheckpoint",
				i, len(data), err)
		}
	}
}

// TestCheckpointParkedRoundTrip: parked flush-retry entries survive a
// checkpoint cycle and flush into the store once it heals.
func TestCheckpointParkedRoundTrip(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	st, err := storage.Open("store", storage.Options{FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	cfg := FullIndexConfig()
	e := New(cfg, st, nil)

	b := bundle.New(1)
	base := time.Date(2009, 9, 29, 12, 0, 0, 0, time.UTC)
	b.Add(score.DefaultMessageWeights(),
		score.NewDoc(tweet.Parse(1, "u", base, "will not flush yet #stuck")))

	ff.Arm(1, fsx.Fault{Freeze: true}, fsx.OpWrite)
	e.evict(b, 0, true)
	if got := e.Snapshot().FlushParked; got != 1 {
		t.Fatalf("FlushParked = %d after failed flush, want 1", got)
	}
	if !e.Snapshot().Degraded() {
		t.Fatal("engine not degraded with a parked bundle")
	}

	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ff.Disarm()

	restored, err := RestoreCheckpoint(cfg, st, nil, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Snapshot().FlushParked; got != 1 {
		t.Fatalf("FlushParked = %d after restore, want 1", got)
	}
	if err := restored.DrainFlushRetries(); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	if !st.Has(1) {
		t.Fatal("parked bundle never reached the store")
	}
	if restored.Snapshot().FlushParked != 0 {
		t.Fatal("queue not empty after drain")
	}
}
