package core

import (
	"sync"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/trace"
)

// TestTracedIngestConsistency drives the parallel match path with
// sampling on while readers race the ingest goroutine (run it under
// -race), then replays every recorded decision against the engine's
// actual insert results and the recorder's own invariants:
//
//   - the decision agrees with InsertResult (bundle, node, connection,
//     new-bundle verdict);
//   - the winner is the argmax over the non-skipped candidates,
//     strictly above the threshold, ties to the lowest bundle ID —
//     i.e. the parallel per-chunk merge reproduced the serial rule;
//   - the margin is top1−top2 (threshold-floored) recomputed from the
//     recorded candidate scores;
//   - the chosen parent is the first maximum of the recorded
//     Algorithm 2 scores.
func TestTracedIngestConsistency(t *testing.T) {
	cfg := PartialIndexConfig(400)
	// MatchThreshold 2 forces nearly every candidate list through the
	// parallel scorer, the path whose per-chunk trace sinks must merge
	// back into one coherent record.
	cfg.Parallel = ParallelOptions{MatchWorkers: 4, MatchThreshold: 2}
	eng := New(cfg, nil, nil)
	rec := trace.New(trace.Options{SampleEvery: 1, Buffer: 8192})
	eng.SetTracer(rec)

	g := gen.New(gen.DefaultConfig())
	const n = 3000
	results := make(map[uint64]InsertResult, n)

	// Concurrent readers exercise the recorder's locking while ingest
	// commits: this is the /explain-under-live-ingest scenario.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Pace the readers: the point is interleaving reads with
			// commits, not starving the ingest loop (CI may be 1-CPU).
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				rec.Recent(50)
				rec.Refinements(50)
				if d, ok := rec.Explain(i % n); ok && d.MsgID != i%n {
					t.Errorf("Explain(%d) returned decision for %d", i%n, d.MsgID)
					return
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		m := g.Next()
		results[uint64(m.ID)] = eng.InsertPrepared(Prepare(m))
	}
	close(stop)
	wg.Wait()

	ds := rec.Recent(rec.Buffer())
	if len(ds) == 0 {
		t.Fatal("no decisions recorded at SampleEvery=1")
	}
	joins := 0
	for _, d := range ds {
		res, ok := results[d.MsgID]
		if !ok {
			t.Fatalf("decision for unknown message %d", d.MsgID)
		}
		if d.NewBundle == res.Created && d.Bundle != uint64(res.Bundle) {
			t.Fatalf("msg %d: decision bundle %d != result %d", d.MsgID, d.Bundle, res.Bundle)
		}
		if d.NewBundle != res.Created {
			t.Fatalf("msg %d: NewBundle=%v but Created=%v", d.MsgID, d.NewBundle, res.Created)
		}
		if d.Node != res.Node || d.Conn != res.Conn.String() {
			t.Fatalf("msg %d: node/conn %d/%s != result %d/%s",
				d.MsgID, d.Node, d.Conn, res.Node, res.Conn)
		}
		if got := len(d.Candidates) + d.CandidatesDropped; got != d.CandidatesFetched {
			t.Fatalf("msg %d: %d candidates + %d dropped != %d fetched",
				d.MsgID, len(d.Candidates), d.CandidatesDropped, d.CandidatesFetched)
		}

		// Recompute the match verdict from the recorded scores.
		var winner uint64
		top1, top2, found := d.Threshold, d.Threshold, false
		for _, c := range d.Candidates {
			if c.Skipped != "" {
				continue
			}
			switch {
			case c.Total > top1 || (c.Total == top1 && found && c.Bundle < winner):
				if c.Total > top1 {
					top2 = top1
				}
				top1, winner, found = c.Total, c.Bundle, true
			case c.Total > top2:
				top2 = c.Total
			}
		}
		if d.NewBundle {
			if found {
				t.Fatalf("msg %d: new bundle but candidate %d scored %v > threshold %v",
					d.MsgID, winner, top1, d.Threshold)
			}
		} else {
			joins++
			if !found || winner != d.Winner {
				t.Fatalf("msg %d: recomputed winner %d (found=%v) != recorded %d",
					d.MsgID, winner, found, d.Winner)
			}
			if d.BestScore != top1 || d.Margin != top1-top2 {
				t.Fatalf("msg %d: best/margin %v/%v != recomputed %v/%v",
					d.MsgID, d.BestScore, d.Margin, top1, top1-top2)
			}
			if d.Margin < 0 {
				t.Fatalf("msg %d: negative margin %v", d.MsgID, d.Margin)
			}
		}

		// Recompute the Algorithm 2 parent: maximum score, ties to the
		// lowest node id. (The pruned scan records Parents in
		// bound-group order, not node order, so "first maximum" is no
		// longer the right recompute — the id tie-break is.)
		if len(d.Parents) == 0 {
			if d.Parent != int(bundle.NoParent) {
				t.Fatalf("msg %d: parent %d with no recorded candidates", d.MsgID, d.Parent)
			}
		} else {
			best := d.Parents[0]
			for _, p := range d.Parents[1:] {
				if p.Total > best.Total || (p.Total == best.Total && p.Node < best.Node) {
					best = p
				}
			}
			if d.Parent != best.Node || d.ParentScore != best.Total {
				t.Fatalf("msg %d: parent %d score %v != recomputed %d score %v",
					d.MsgID, d.Parent, d.ParentScore, best.Node, best.Total)
			}
			if d.Conn != best.Conn {
				t.Fatalf("msg %d: conn %s != parent candidate conn %s", d.MsgID, d.Conn, best.Conn)
			}
		}
	}
	if joins == 0 {
		t.Error("stream produced no joins; consistency checks did not exercise the match path")
	}

	// The partial-index pool (limit 400) must have refined: every event
	// carries a valid reason and the ranked ones a 1-based rank.
	evs := rec.Refinements(rec.Buffer())
	if len(evs) == 0 {
		t.Fatal("no refinement events despite pool limit 400")
	}
	for _, ev := range evs {
		switch ev.Reason {
		case "aging-tiny":
			if ev.Flushed || ev.Rank != 0 {
				t.Fatalf("aging-tiny event flushed=%v rank=%d", ev.Flushed, ev.Rank)
			}
		case "closed":
			if !ev.Flushed || ev.Rank != 0 {
				t.Fatalf("closed event flushed=%v rank=%d", ev.Flushed, ev.Rank)
			}
		case "ranked":
			if !ev.Flushed || ev.Rank < 1 {
				t.Fatalf("ranked event flushed=%v rank=%d", ev.Flushed, ev.Rank)
			}
		default:
			t.Fatalf("unknown refine reason %q", ev.Reason)
		}
		if ev.Size < 0 || ev.AgeHours < 0 {
			t.Fatalf("refine event with negative size/age: %+v", ev)
		}
	}
}

// TestTracedMatchesUntraced pins the zero-observer-effect contract:
// the same stream ingested with and without tracing lands every
// message in the same bundle, node and connection.
func TestTracedMatchesUntraced(t *testing.T) {
	build := func(tracing bool) []InsertResult {
		cfg := PartialIndexConfig(400)
		cfg.Parallel = ParallelOptions{MatchWorkers: 4, MatchThreshold: 2}
		eng := New(cfg, nil, nil)
		if tracing {
			eng.SetTracer(trace.New(trace.Options{SampleEvery: 1, Buffer: 1024}))
		}
		g := gen.New(gen.DefaultConfig())
		out := make([]InsertResult, 0, 3000)
		for i := 0; i < 3000; i++ {
			out = append(out, eng.InsertPrepared(Prepare(g.Next())))
		}
		return out
	}
	plain, traced := build(false), build(true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("message %d: traced result %+v != untraced %+v", i, traced[i], plain[i])
		}
	}
}

// TestTraceRecordsPruning pins the truthfulness of /explain under the
// pruned hot paths (DESIGN.md §2g): every sampled decision must account
// for the match candidates the upper bound skipped and the bundle nodes
// the placement scan never scored, the winner must never be a pruned
// candidate, and at least some decisions must actually show pruning (so
// the assertions are not vacuous).
func TestTraceRecordsPruning(t *testing.T) {
	cfg := PartialIndexConfig(400)
	eng := New(cfg, nil, nil)
	rec := trace.New(trace.Options{SampleEvery: 1, Buffer: 8192})
	eng.SetTracer(rec)

	g := gen.New(gen.DefaultConfig())
	for i := 0; i < 3000; i++ {
		eng.Insert(g.Next())
	}

	sawCandPrune, sawParentPrune := false, false
	for _, d := range rec.Recent(rec.Buffer()) {
		prunedN := 0
		for _, c := range d.Candidates {
			if c.Skipped != "pruned" {
				continue
			}
			prunedN++
			if !d.NewBundle && c.Bundle == d.Winner {
				t.Fatalf("msg %d: winning bundle %d was recorded as pruned", d.MsgID, d.Winner)
			}
		}
		if d.CandidatesPruned != prunedN {
			t.Fatalf("msg %d: CandidatesPruned %d != %d pruned entries", d.MsgID, d.CandidatesPruned, prunedN)
		}
		if d.ParentsScored != len(d.Parents) {
			t.Fatalf("msg %d: ParentsScored %d != %d recorded parents", d.MsgID, d.ParentsScored, len(d.Parents))
		}
		if d.ParentsPruned < 0 {
			t.Fatalf("msg %d: negative ParentsPruned %d", d.MsgID, d.ParentsPruned)
		}
		if prunedN > 0 {
			sawCandPrune = true
		}
		if d.ParentsPruned > 0 {
			sawParentPrune = true
		}
	}
	if !sawCandPrune {
		t.Error("no decision recorded a pruned match candidate over 3000 messages")
	}
	if !sawParentPrune {
		t.Error("no decision recorded pruned placement nodes over 3000 messages")
	}
}
