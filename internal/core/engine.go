// Package core assembles the provenance-based indexing engine of the
// paper's Figure 4: an in-memory processing unit (summary index +
// bundle pool) in front of an on-disk bundle storage back-end.
//
// Engine.Insert is Algorithm 1 end to end: fetch candidate bundles from
// the summary index, pick the best by Equation 1, allocate the message
// inside the chosen bundle by Algorithm 2 / Equation 5 (or open a new
// bundle), update the summary index, and run the periodic Algorithm 3
// pool refinement. Each stage is timed separately, which is what the
// paper's Figure 13 plots.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"provex/internal/bundle"
	"provex/internal/metrics"
	"provex/internal/pool"
	"provex/internal/score"
	"provex/internal/storage"
	"provex/internal/stream"
	"provex/internal/sumindex"
	"provex/internal/trace"
	"provex/internal/tweet"
)

// Config assembles an engine. The three method variants of the paper's
// Section VI-A map onto it as:
//
//   - Full Index:    FullIndexConfig()    — no pool limits at all;
//   - Partial Index: PartialIndexConfig() — pool limit + refinement;
//   - Bundle Limit:  BundleLimitConfig()  — partial + max bundle size.
type Config struct {
	Pool          pool.Config
	MsgWeights    score.MessageWeights
	BundleWeights score.BundleWeights

	// MaxCandidates caps how many summary-index candidates are scored
	// per message, taking them in descending indicant-hit order.
	// 0 scores every candidate (the paper's literal description); the
	// default config caps at 256, which the candidate-fetch ablation
	// shows is accuracy-neutral while bounding per-message match cost
	// (candidates are hit-ranked, and low-hit keyword-only candidates
	// cannot pass the Eq. 1 threshold under the default weights).
	MaxCandidates int

	// MaxFanout skips summary-index postings longer than this during
	// candidate fetch (0 = unlimited). Hyper-frequent keywords appear
	// in thousands of bundles and carry no routing signal; with the
	// default Eq. 1 weights a keyword-only candidate cannot pass the
	// join threshold anyway, so the cut changes at most tie ranking
	// while keeping ingest cost bounded per message.
	MaxFanout int

	// Exhaustive forces the reference O(n) implementations of both
	// ingest hot stages: every bundle node is scored with Eq. 5 during
	// placement and every fetched candidate with Eq. 1 during match,
	// with no upper-bound pruning. Assignments are identical either way
	// (the differential tests pin it); this switch exists as the
	// specification baseline and an escape hatch.
	Exhaustive bool

	// Parallel configures the concurrent ingest pipeline. The zero
	// value keeps every stage serial — the paper's original
	// single-threaded loop.
	Parallel ParallelOptions

	// FlushRetry bounds the degraded mode entered when the disk
	// back-end errors: failed bundle flushes are parked and retried
	// instead of dropped.
	FlushRetry FlushRetryOptions
}

// FlushRetryOptions bound the flush retry queue. A bundle whose flush
// to the disk back-end fails is parked and re-attempted on later
// refinement ticks with exponential backoff; only when MaxAttempts is
// exhausted (or the queue overflows) is it dropped — and that loss is
// counted and latched as the engine's background error.
type FlushRetryOptions struct {
	// MaxAttempts is the number of Put attempts per bundle before it is
	// dropped; 0 means DefaultFlushMaxAttempts. Set very high to never
	// give up while memory allows.
	MaxAttempts int
	// MaxQueue caps parked bundles; beyond it the oldest is dropped
	// (bounded memory in degraded mode). 0 means DefaultFlushMaxQueue.
	MaxQueue int
}

// Flush retry defaults: 8 attempts spaced exponentially over refine
// ticks, at most 1024 parked bundles.
const (
	DefaultFlushMaxAttempts = 8
	DefaultFlushMaxQueue    = 1024
)

// ParallelOptions sizes the concurrent parts of the ingest pipeline.
// Both stages preserve the exact serial semantics: prepare results are
// applied strictly in stream order, and the parallel match reduction is
// deterministic, so bundle assignment is byte-identical to a serial
// run at any worker count.
type ParallelOptions struct {
	// Workers is the prepare-stage worker count consumed by the
	// pipeline helpers (pipeline.IngestAll, pipeline.Service): parse
	// and keyword extraction for up to this many messages run
	// concurrently ahead of the single apply goroutine. <=1 prepares
	// inline.
	Workers int
	// MatchWorkers fans the Eq. 1 scoring of one message's candidate
	// list across this many goroutines when the list is at least
	// MatchThreshold long. <=1 scores serially.
	MatchWorkers int
	// MatchThreshold is the minimum candidate-list length that
	// justifies fanning out (goroutine handoff costs a few µs; short
	// lists score faster inline). 0 uses DefaultMatchThreshold.
	MatchThreshold int
}

// DefaultMatchThreshold is the candidate-list length at which the
// parallel match starts paying for its goroutine handoff.
const DefaultMatchThreshold = 64

// FullIndexConfig is the unlimited baseline whose output the paper
// treats as provenance ground truth.
func FullIndexConfig() Config {
	return Config{
		MsgWeights:    score.DefaultMessageWeights(),
		BundleWeights: score.DefaultBundleWeights(),
		MaxFanout:     1024,
		MaxCandidates: 256,
	}
}

// PartialIndexConfig bounds the pool at maxBundles with the default
// refinement policy (the paper's "Partial Index" with limit 10k).
func PartialIndexConfig(maxBundles int) Config {
	cfg := FullIndexConfig()
	p := pool.DefaultConfig()
	p.MaxBundles = maxBundles
	p.LowerLimit = maxBundles / 4
	// Scale the periodic pool check with the pool so overshoot between
	// checks stays a bounded fraction of the limit at any scale.
	p.CheckEvery = clamp(maxBundles/8, 64, 4096)
	cfg.Pool = p
	return cfg
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BundleLimitConfig adds the bundle size constraint on top of the
// partial index (the paper's "Bundle Limit" variant).
func BundleLimitConfig(maxBundles, maxBundleSize int) Config {
	cfg := PartialIndexConfig(maxBundles)
	cfg.Pool.MaxBundleSize = maxBundleSize
	return cfg
}

// InsertResult reports where a message landed.
type InsertResult struct {
	Bundle  bundle.ID
	Node    int
	Created bool // a fresh bundle was opened for the message
	Conn    score.ConnectionType
}

// EdgeFunc observes each provenance connection as it is discovered.
// The evaluation harness collects the per-method edge sets here.
type EdgeFunc func(parent, child tweet.ID, conn score.ConnectionType)

// Stats is a point-in-time engine snapshot.
type Stats struct {
	Messages       int64
	BundlesCreated int64
	BundlesLive    int
	EdgesCreated   int64
	ConnCounts     map[string]int64

	MemBundles       int64 // analytic bytes in the pool
	MemIndex         int64 // analytic bytes in the summary index
	MessagesInMemory int64

	// PrepareTime accumulates the tokenize/precompute stage. Under
	// parallel ingest the work runs concurrently on several workers, so
	// this is CPU time, not wall time.
	PrepareTime time.Duration
	MatchTime   time.Duration
	PlaceTime   time.Duration
	RefineTime  time.Duration

	// Flush durability counters: retry attempts after a failed flush,
	// bundles permanently dropped (data loss, also latched by Err), and
	// bundles currently parked awaiting retry (non-zero = the engine is
	// in degraded mode).
	FlushRetries int64
	FlushDropped int64
	FlushParked  int

	Pool pool.Stats
}

// Degraded reports whether the engine is operating in degraded mode:
// bundles are parked awaiting a storage retry, or have been lost.
func (s Stats) Degraded() bool { return s.FlushParked > 0 || s.FlushDropped > 0 }

// MemTotal is the full in-memory footprint estimate — Figure 11(a)'s
// metric.
func (s Stats) MemTotal() int64 { return s.MemBundles + s.MemIndex }

// Engine is the provenance indexing engine. Not safe for concurrent
// use: the paper's pipeline is a single temporally ordered stream, so
// one goroutine must own every Insert/InsertPrepared call. Concurrency
// lives around that invariant, not inside it — Prepare is pure and runs
// on the pipeline package's worker pool ahead of the apply loop, and
// ParallelOptions.MatchWorkers fans the Eq. 1 candidate scan over
// read-only goroutines within a single insert (see DESIGN.md §2c).
//
// The sharded engine (internal/shard, DESIGN.md §2i) runs N Engines
// side by side, one goroutine per shard per phase; the contract is
// per-engine: a given Engine is still owned by exactly one goroutine at
// a time. Probe is the read-only exception — it may run on one shard's
// engine while sibling engines insert, because it touches only that
// engine's own pool/index state plus atomic counters.
type Engine struct {
	cfg   Config
	pool  *pool.Pool
	index *sumindex.Index
	store *storage.Store // optional; nil drops flushed bundles
	clock stream.Clock

	onEdge EdgeFunc

	prepTimer   metrics.StageTimer
	matchTimer  metrics.StageTimer
	placeTimer  metrics.StageTimer
	refineTimer metrics.StageTimer

	messages   metrics.Counter
	edges      metrics.Counter
	connCounts [5]metrics.Counter

	// Pruning instrumentation (DESIGN.md §2g): how much Eq. 1 / Eq. 5
	// work the sublinear hot paths avoided. All atomic; the histogram is
	// internally locked.
	placeScored    metrics.Counter
	placeSkipped   metrics.Counter
	placeEarlyStop metrics.Counter
	matchPruned    metrics.Counter
	placeSkipHist  *metrics.Histogram

	// placeScratch is the engine-owned scratch of the pruned Algorithm 2
	// scan, shared across every bundle (inserts are single-goroutine).
	placeScratch *bundle.Scratch

	// gHist observes the Eq. 6 score of ranked pool evictions (wired
	// into the pool at construction, exposed via RegisterMetrics).
	gHist *metrics.Histogram

	flushErr error // first permanent storage loss, surfaced by Err

	// Flush retry queue: bundles whose Put to the disk back-end failed,
	// parked for re-attempts on later refinement ticks (see evict).
	retryq       []flushRetry
	flushTick    int64
	flushRetries metrics.Counter
	flushDropped metrics.Counter

	// onFlush observes each bundle successfully persisted to the disk
	// back-end (archive indexing). Nil when unused.
	onFlush func(*bundle.Bundle)

	// tracer records sampled ingest decisions and refinement verdicts;
	// nil when tracing is off (trace.Recorder methods accept a nil
	// receiver, so the hot path pays one branch, no indirection).
	tracer *trace.Recorder
}

// flushRetry is one parked bundle awaiting a storage retry.
type flushRetry struct {
	b        *bundle.Bundle
	attempts int   // failed Put attempts so far
	due      int64 // flushTick at which the next attempt runs
}

// New builds an engine. store may be nil (flushed bundles are then
// discarded — sufficient for pure indexing experiments); onEdge may be
// nil.
func New(cfg Config, store *storage.Store, onEdge EdgeFunc) *Engine {
	if onEdge == nil {
		onEdge = func(tweet.ID, tweet.ID, score.ConnectionType) {}
	}
	e := &Engine{cfg: cfg, index: sumindex.New(), store: store, onEdge: onEdge}
	e.index.SetMaxFanout(cfg.MaxFanout)
	e.pool = pool.New(cfg.Pool, e.evict)
	// Milli-G buckets from 0.1 G to 1000 G (G ≈ hours of quiet age).
	e.gHist = metrics.NewHistogram(
		100, 250, 500, 1_000, 2_500, 5_000, 10_000,
		25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000)
	e.pool.SetGScoreHistogram(e.gHist)
	e.placeSkipHist = metrics.NewPow2Histogram(12)
	e.placeScratch = bundle.NewScratch()
	return e
}

// RegisterMetrics exposes the engine's always-on instruments on reg
// under canonical provex_* names (documented in OBSERVABILITY.md).
// Every instrument registered here is atomic (counters, stage timers)
// or internally locked (the G-score histogram), so a scrape may render
// them while the single ingest goroutine writes. State that is NOT
// atomically readable — pool occupancy, memory estimates, the flush
// retry queue — is intentionally absent: the HTTP layer exports it from
// lock-guarded Stats snapshots instead (see server.New).
//
// labels are extra key/value pairs baked into every series — the
// sharded engine registers each shard's engine with ("shard", "i") so
// per-shard series coexist in one registry and roll up with sum by ().
func (e *Engine) RegisterMetrics(reg *metrics.Registry, labels ...string) {
	with := func(extra ...string) []string { return append(append([]string(nil), labels...), extra...) }
	reg.RegisterCounter("provex_ingest_messages_total",
		"Messages ingested (Algorithm 1 applications).", &e.messages, labels...)
	reg.RegisterCounter("provex_ingest_edges_total",
		"Provenance edges discovered between messages.", &e.edges, labels...)
	for c := score.ConnText; c <= score.ConnRT; c++ {
		reg.RegisterCounter("provex_ingest_connections_total",
			"Provenance edges by connection type (Table II).",
			&e.connCounts[c], with("conn", c.String())...)
	}
	for _, s := range []struct {
		stage string
		t     *metrics.StageTimer
	}{
		{"prepare", &e.prepTimer},
		{"match", &e.matchTimer},
		{"place", &e.placeTimer},
		{"refine", &e.refineTimer},
	} {
		reg.RegisterTimer("provex_ingest_stage_seconds",
			"Cumulative ingest time per Algorithm 1 stage (Figure 13's match/placement/refinement split; prepare is the parallel tokenize stage).",
			s.t, with("stage", s.stage)...)
	}
	reg.RegisterCounter("provex_place_nodes_scored_total",
		"Bundle nodes scored with Eq. 5 during message placement.", &e.placeScored, labels...)
	reg.RegisterCounter("provex_place_nodes_skipped_total",
		"Bundle nodes the pruned placement skipped (node-index pruning + score-bound early stop; DESIGN.md section 2g).", &e.placeSkipped, labels...)
	reg.RegisterCounter("provex_place_early_stop_total",
		"Placements whose bound-ordered candidate scan stopped before the last group (early-termination rate = this / provex_ingest_messages_total).", &e.placeEarlyStop, labels...)
	reg.RegisterCounter("provex_match_candidates_pruned_total",
		"Match candidates skipped before Eq. 1 scoring because their score upper bound could not beat the running best.", &e.matchPruned, labels...)
	reg.RegisterHistogram("provex_place_skipped_nodes",
		"Distribution of nodes skipped per placement by the pruned Algorithm 2 scan.",
		e.placeSkipHist, 1, labels...)
	reg.RegisterCounter("provex_flush_retries_total",
		"Re-attempted bundle flushes after a storage failure.", &e.flushRetries, labels...)
	reg.RegisterCounter("provex_flush_dropped_total",
		"Bundles permanently lost after exhausting flush retries.", &e.flushDropped, labels...)
	reg.RegisterHistogram("provex_pool_eviction_g_score",
		"Equation 6 eviction score G(B) of ranked refinement victims (unit: G, i.e. hours of quiet age + 1/|B|).",
		e.gHist, 1000, labels...)
}

// SetTracer attaches a decision recorder: sampled inserts capture the
// full Eq. 1 candidate scoring, the Algorithm 2 parent choice and the
// Table II connection type, and every Algorithm 3 refinement verdict
// is appended to the recorder's audit ring. Must be set before ingest
// starts; nil detaches.
func (e *Engine) SetTracer(r *trace.Recorder) {
	e.tracer = r
	if r == nil {
		e.pool.SetRefineObserver(nil)
		return
	}
	e.pool.SetRefineObserver(func(b *bundle.Bundle, reason pool.EvictReason, ageHours, g float64, rank int) {
		r.RecordRefine(trace.RefineEvent{
			Now:      e.clock.Now(),
			Bundle:   uint64(b.ID()),
			Reason:   reason.String(),
			Size:     b.Size(),
			AgeHours: ageHours,
			GScore:   g,
			Rank:     rank,
			Flushed:  reason != pool.EvictAgingTiny,
		})
	})
}

// Tracer returns the attached decision recorder, nil when tracing is
// off.
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// SetKeywordClass toggles the summary index's keyword class (ablation).
func (e *Engine) SetKeywordClass(on bool) {
	e.index.SetEnabled(sumindex.ClassKeyword, on)
}

// evict is the pool's eviction hook: drop the bundle's postings from
// the summary index and persist flushed bundles to the back-end. A
// failed Put does not lose the bundle — it is parked in the flush
// retry queue and re-attempted on later refinement ticks (degraded
// mode); only exhausting FlushRetryOptions drops it, counted and
// latched as the engine's background error.
func (e *Engine) evict(b *bundle.Bundle, _ pool.EvictReason, flush bool) {
	tags, urls, keys := b.Indicants()
	users := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, n := range b.Nodes() {
		u := n.Doc.Msg.User
		if !seen[u] {
			seen[u] = true
			users = append(users, u)
		}
	}
	e.index.Forget(sumindex.BundleID(b.ID()), tags, urls, keys, users)
	if flush && e.store != nil {
		if err := e.store.Put(b); err != nil {
			e.park(b, err)
			return
		}
		if e.onFlush != nil {
			e.onFlush(b)
		}
	}
}

// park enqueues a bundle whose flush failed, evicting the oldest entry
// if the queue is at capacity (bounded memory in degraded mode).
func (e *Engine) park(b *bundle.Bundle, cause error) {
	maxQueue := e.cfg.FlushRetry.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultFlushMaxQueue
	}
	for len(e.retryq) >= maxQueue {
		e.drop(e.retryq[0].b, fmt.Errorf("retry queue full (cause: %w)", cause))
		e.retryq = e.retryq[1:]
	}
	e.retryq = append(e.retryq, flushRetry{b: b, attempts: 1, due: e.flushTick + 1})
}

// drop records the permanent loss of a bundle that could not be
// flushed: counted, and latched as the engine's background error.
func (e *Engine) drop(b *bundle.Bundle, cause error) {
	e.flushDropped.Inc()
	if e.flushErr == nil {
		e.flushErr = fmt.Errorf("core: flush bundle %d dropped: %w", b.ID(), cause)
	}
}

// processRetries re-attempts parked flushes. When force is set, backoff
// schedules are ignored and every parked bundle is tried once (drain
// before checkpoint/shutdown); otherwise only entries due at the
// current flush tick run, with exponential backoff between attempts.
func (e *Engine) processRetries(force bool) {
	if len(e.retryq) == 0 || e.store == nil {
		return
	}
	maxAttempts := e.cfg.FlushRetry.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultFlushMaxAttempts
	}
	keep := e.retryq[:0]
	for _, r := range e.retryq {
		if !force && r.due > e.flushTick {
			keep = append(keep, r)
			continue
		}
		e.flushRetries.Inc()
		err := e.store.Put(r.b)
		if err == nil {
			if e.onFlush != nil {
				e.onFlush(r.b)
			}
			continue
		}
		r.attempts++
		if r.attempts > maxAttempts {
			e.drop(r.b, err)
			continue
		}
		// Exponential backoff in refinement ticks, capped at 64.
		backoff := int64(1) << min(r.attempts, 6)
		r.due = e.flushTick + backoff
		keep = append(keep, r)
	}
	e.retryq = keep
}

// DrainFlushRetries attempts every parked flush immediately, returning
// an error when bundles remain parked (the store is still failing).
// The durability layer calls it before checkpoints and on shutdown.
func (e *Engine) DrainFlushRetries() error {
	e.processRetries(true)
	if n := len(e.retryq); n > 0 {
		return fmt.Errorf("core: %d bundles still parked for flush retry", n)
	}
	return e.flushErr
}

// SetFlushObserver registers a hook invoked after each bundle is
// persisted to the disk back-end. The query module's archive index
// subscribes here. Must be set before ingest starts.
func (e *Engine) SetFlushObserver(fn func(*bundle.Bundle)) { e.onFlush = fn }

// Err returns the first permanent background failure (a bundle lost
// after exhausting flush retries), nil when healthy. Transient storage
// failures do not latch here — they park bundles in the retry queue,
// visible as Stats.FlushParked.
func (e *Engine) Err() error { return e.flushErr }

// Prepared is the output of the pure precompute stage of Algorithm 1:
// the message with its extracted keyword set (and the stage's measured
// cost, charged to the engine's prepare timer at apply time). Prepare
// touches no engine state, so any number of messages can be prepared
// concurrently; InsertPrepared then applies them strictly in stream
// order.
type Prepared struct {
	Doc  score.Doc
	cost time.Duration
}

// Prepare runs the parse/tokenize precompute for m. Pure and safe for
// concurrent use.
func Prepare(m *tweet.Message) Prepared {
	start := time.Now()
	doc := score.NewDoc(m)
	return Prepared{Doc: doc, cost: time.Since(start)}
}

// Insert runs Algorithm 1 for one message and returns where it landed.
// Messages must arrive in stream (date) order.
func (e *Engine) Insert(m *tweet.Message) InsertResult {
	return e.InsertPrepared(Prepare(m))
}

// InsertPrepared is the sequential apply stage of Algorithm 1: match,
// place, index update and periodic refinement for one prepared message.
// Prepared messages must be applied in stream (date) order — the
// pipeline package's order-preserving prepare pool guarantees that even
// when Prepare ran out of order across workers.
func (e *Engine) InsertPrepared(p Prepared) InsertResult {
	doc := p.Doc
	m := doc.Msg
	e.prepTimer.Observe(p.cost)
	e.clock.Observe(m)
	e.messages.Inc()

	// Decision tracing: nil unless this message is sampled. Everything
	// below guards on td so the untraced path stays allocation-free.
	td := e.tracer.Begin(uint64(m.ID))
	if td != nil {
		td.User = m.User
		td.Date = m.Date
	}

	// Step 1+2a: fetch candidates and pick the best bundle by Eq. 1.
	var chosen *bundle.Bundle
	e.matchTimer.Time(func() {
		chosen = e.matchBundle(doc, td)
	})

	// Step 2b: allocate inside the bundle (Algorithm 2) or open a new
	// one.
	var res InsertResult
	e.placeTimer.Time(func() {
		if chosen == nil {
			chosen = e.pool.Create()
			res.Created = true
		}
		res.Bundle = chosen.ID()
		var obs bundle.ParentObserver
		if td != nil {
			obs = func(pc bundle.ParentCandidate) {
				td.Parents = append(td.Parents, trace.ParentScore{
					Node:    pc.Node,
					MsgID:   uint64(pc.Msg),
					Conn:    pc.Conn.String(),
					U:       pc.Parts.U,
					H:       pc.Parts.H,
					T:       pc.Parts.T,
					Keyword: pc.Parts.Keyword,
					RT:      pc.Parts.RT,
					Total:   pc.Parts.Total,
				})
			}
		}
		var ps bundle.PlaceStats
		if e.cfg.Exhaustive {
			res.Node = chosen.AddExhaustive(e.cfg.MsgWeights, doc, obs)
		} else {
			res.Node, ps = chosen.AddScratch(e.cfg.MsgWeights, doc, obs, e.placeScratch)
			e.placeScored.Add(int64(ps.Scored))
			skipped := int64(ps.Skipped())
			e.placeSkipped.Add(skipped)
			e.placeSkipHist.Observe(skipped)
			if ps.EarlyStop {
				e.placeEarlyStop.Inc()
			}
		}
		node := chosen.Nodes()[res.Node]
		res.Conn = node.Conn
		if node.Parent != bundle.NoParent {
			parent := chosen.Nodes()[node.Parent].Doc.Msg.ID
			e.edges.Inc()
			e.connCounts[node.Conn].Inc()
			e.onEdge(parent, m.ID, node.Conn)
		}
		if td != nil {
			td.NewBundle = res.Created
			td.Bundle = uint64(res.Bundle)
			if !res.Created {
				td.Winner = uint64(res.Bundle)
			}
			td.Node = res.Node
			td.Parent = int(node.Parent)
			td.ParentScore = node.Score
			td.Conn = node.Conn.String()
			td.ParentsPruned = ps.Skipped()
		}
	})

	// Step 3: update the summary index with the new message's indicants.
	e.index.Observe(sumindex.BundleID(chosen.ID()), doc)

	e.tracer.Commit(td)

	// Periodic maintenance (Section V-B), plus the flush retry queue:
	// parked bundles re-attempt storage on the same cadence.
	if e.pool.NoteInsert(chosen) {
		e.refineTimer.Time(func() {
			e.pool.MaybeRefine(e.clock.Now())
		})
		e.flushTick++
		e.processRetries(false)
	}
	return res
}

// ProbeResult is the outcome of a read-only Eq. 1 match probe. Created
// and FirstMsg identify the winning bundle by its creation event (the
// date and ID of the message that opened it) — a shard-independent
// total order the sharded router uses to break exact score ties the
// same way the serial engine's lowest-bundle-ID rule does (bundle IDs
// are allocated in creation order, so "lowest ID" and "earliest
// creation" coincide; see DESIGN.md §2i).
type ProbeResult struct {
	Bundle   bundle.ID
	Score    float64
	Created  time.Time // date of the bundle's first message
	FirstMsg tweet.ID  // ID of the bundle's first message
	OK       bool      // a bundle scored strictly above the join threshold
}

// Probe runs the match stage of Algorithm 1 without mutating anything:
// candidate fetch plus the serial Eq. 1 scoring loop, returning the
// best open bundle strictly above the join threshold. It is the phase-1
// primitive of the sharded two-phase protocol: every shard probes the
// same message against its local state, and the router commits the
// message to the shard with the globally best result.
//
// Probe may run concurrently with other engines' inserts but not with
// this engine's own mutations (it shares the summary index's candidate
// scratch buffer with matchBundle). The pruning counter it bumps is
// atomic.
func (e *Engine) Probe(doc score.Doc) ProbeResult {
	cands := e.index.Candidates(doc)
	fetch := e.index.LastFetch()
	if e.cfg.MaxCandidates > 0 && len(cands) > e.cfg.MaxCandidates {
		cands = cands[:e.cfg.MaxCandidates]
	}
	b, s := e.matchRange(doc, cands, fetch, nil)
	if b == nil {
		return ProbeResult{}
	}
	first := b.Nodes()[0].Doc.Msg
	return ProbeResult{
		Bundle:   b.ID(),
		Score:    s,
		Created:  first.Date,
		FirstMsg: first.ID,
		OK:       true,
	}
}

// AdvanceClock moves the engine's simulated clock forward to t (older
// instants are ignored). The sharded commit phase calls it so shards
// that won no message in a round still age their pools in lockstep with
// the stream — Algorithm 3 refinement and trending decay stay globally
// timed.
func (e *Engine) AdvanceClock(t time.Time) { e.clock.AdvanceTo(t) }

// matchBundle scores the summary-index candidates with Eq. 1 and
// returns the best open bundle above the threshold, nil when none
// qualifies. Long candidate lists fan out across MatchWorkers
// goroutines; the reduction is deterministic (max score, ties to the
// lowest bundle ID — exactly the serial loop's invariant), so the
// parallel and serial paths always pick the same bundle.
func (e *Engine) matchBundle(doc score.Doc, td *trace.Decision) *bundle.Bundle {
	cands := e.index.Candidates(doc)
	fetch := e.index.LastFetch()
	if td != nil {
		td.CandidatesFetched = len(cands)
		td.Threshold = e.cfg.BundleWeights.Threshold
	}
	if e.cfg.MaxCandidates > 0 && len(cands) > e.cfg.MaxCandidates {
		cands = cands[:e.cfg.MaxCandidates]
	}
	if td != nil {
		td.CandidatesDropped = td.CandidatesFetched - len(cands)
	}
	threshold := e.cfg.Parallel.MatchThreshold
	if threshold <= 0 {
		threshold = DefaultMatchThreshold
	}
	if w := e.cfg.Parallel.MatchWorkers; w > 1 && len(cands) >= threshold {
		return e.matchParallel(doc, cands, fetch, w, td)
	}
	var sink *[]trace.CandidateScore
	if td != nil {
		sink = &td.Candidates
	}
	best, _ := e.matchRange(doc, cands, fetch, sink)
	return best
}

// matchRange is the serial Eq. 1 scoring loop over one candidate
// slice: the best open bundle scoring strictly above the join
// threshold, ties broken toward the lowest bundle ID. Safe to run
// concurrently over disjoint slices — it only reads pool and bundle
// state, which no one mutates during the match stage (the pruning
// counter is atomic). A non-nil sink receives one CandidateScore per
// fetched candidate (skipped ones included); the traced path scores
// via BundleSimWithParts, whose Total is bit-identical to BundleSim,
// so tracing never changes which bundle wins.
//
// Unless Config.Exhaustive is set, each candidate is first tested
// against its Eq. 1 upper bound (score.BundleSimCeil over the exact
// per-class hit counts plus fetch's skipped-list slack) and skipped
// when it cannot beat the running best: a candidate is pruned only if
// ub < bestScore, or ub == bestScore when the tie could not go its way
// (no bundle chosen yet — joining needs a strictly-above-threshold
// score — or a lower-ID bundle already holds the tie). Since the true
// score never exceeds ub, a pruned candidate could never have been
// selected, so the returned (bundle, score) pair is identical to the
// exhaustive loop's — which also makes chunk-local pruning compose
// with matchParallel's reduction.
//
//provex:hotpath Eq. 1 scoring loop runs per ingested message
func (e *Engine) matchRange(doc score.Doc, cands []sumindex.Candidate, fetch sumindex.FetchInfo, sink *[]trace.CandidateScore) (*bundle.Bundle, float64) {
	prune := !e.cfg.Exhaustive
	pruned := int64(0)
	var best *bundle.Bundle
	bestScore := e.cfg.BundleWeights.Threshold
	for _, c := range cands {
		if prune {
			ub := score.BundleSimCeil(e.cfg.BundleWeights, doc,
				int(c.URLHits), int(c.TagHits), int(c.KeyHits), c.RTHit,
				fetch.SkippedURL, fetch.SkippedTag, fetch.SkippedKey, fetch.SkippedRT)
			skip := false
			if best == nil {
				skip = ub <= bestScore
			} else {
				skip = ub < bestScore || (ub == bestScore && bundle.ID(c.ID) > best.ID())
			}
			if skip {
				pruned++
				if sink != nil {
					*sink = append(*sink, trace.CandidateScore{
						Bundle: uint64(c.ID), Hits: c.Hits, Skipped: "pruned",
					})
				}
				continue
			}
		}
		b := e.pool.Get(bundle.ID(c.ID))
		if b == nil || b.Closed() {
			if sink != nil {
				skip := "evicted"
				if b != nil {
					skip = "closed"
				}
				*sink = append(*sink, trace.CandidateScore{
					Bundle: uint64(c.ID), Hits: c.Hits, Skipped: skip,
				})
			}
			continue
		}
		var s float64
		if sink == nil {
			s = score.BundleSim(e.cfg.BundleWeights, doc, b)
		} else {
			parts := score.BundleSimWithParts(e.cfg.BundleWeights, doc, b)
			s = parts.Total
			*sink = append(*sink, trace.CandidateScore{
				Bundle:    uint64(c.ID),
				Hits:      c.Hits,
				URL:       parts.URL,
				Hashtag:   parts.Tag,
				Keyword:   parts.Keyword,
				RT:        parts.RT,
				Freshness: parts.Freshness,
				Total:     s,
			})
		}
		if s > bestScore || (s == bestScore && best != nil && b.ID() < best.ID()) {
			bestScore, best = s, b
		}
	}
	if pruned > 0 {
		e.matchPruned.Add(pruned)
	}
	return best, bestScore
}

// matchParallel splits the candidate list into contiguous chunks, runs
// matchRange on each concurrently and reduces the per-chunk winners
// under the same (score desc, ID asc) order the serial loop applies.
// When tracing, each worker appends to its own chunk-local sink (no
// shared mutable state between goroutines); the chunks concatenate in
// chunk order after the barrier, so the merged candidate list is in
// the exact order the serial loop would have produced.
func (e *Engine) matchParallel(doc score.Doc, cands []sumindex.Candidate, fetch sumindex.FetchInfo, workers int, td *trace.Decision) *bundle.Bundle {
	type chunkBest struct {
		b *bundle.Bundle
		s float64
	}
	chunk := (len(cands) + workers - 1) / workers
	results := make([]chunkBest, workers)
	var chunkSinks [][]trace.CandidateScore
	if td != nil {
		chunkSinks = make([][]trace.CandidateScore, workers)
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := k * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(k int, part []sumindex.Candidate) {
			defer wg.Done()
			var sink *[]trace.CandidateScore
			if td != nil {
				sink = &chunkSinks[k]
			}
			b, s := e.matchRange(doc, part, fetch, sink)
			results[k] = chunkBest{b: b, s: s}
		}(k, cands[lo:hi])
	}
	wg.Wait()
	if td != nil {
		for _, cs := range chunkSinks {
			td.Candidates = append(td.Candidates, cs...)
		}
	}
	var best *bundle.Bundle
	bestScore := e.cfg.BundleWeights.Threshold
	for _, r := range results {
		if r.b == nil {
			continue
		}
		if r.s > bestScore || (r.s == bestScore && best != nil && r.b.ID() < best.ID()) {
			bestScore, best = r.s, r.b
		}
	}
	return best
}

// InsertAll drains src through the engine, returning the number of
// messages ingested.
func (e *Engine) InsertAll(src stream.Source) (int, error) {
	n := 0
	for {
		m, err := src.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		e.Insert(m)
		n++
	}
}

// Config returns the engine's configuration (read-only copy). The
// pipeline helpers consult Parallel through it.
func (e *Engine) Config() Config { return e.cfg }

// Pool exposes the live bundle pool (read-only use by query/eval).
func (e *Engine) Pool() *pool.Pool { return e.pool }

// SummaryIndex exposes the summary index (read-only use by query).
func (e *Engine) SummaryIndex() *sumindex.Index { return e.index }

// Store returns the disk back-end, nil when the engine runs memory-only.
func (e *Engine) Store() *storage.Store { return e.store }

// Now is the simulated current time (the newest message date seen).
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Bundle resolves id in the pool first, then the disk back-end.
func (e *Engine) Bundle(id bundle.ID) (*bundle.Bundle, error) {
	if b := e.pool.Get(id); b != nil {
		return b, nil
	}
	if e.store != nil {
		return e.store.Get(id)
	}
	return nil, fmt.Errorf("core: bundle %d: %w", id, storage.ErrNotFound)
}

// Snapshot captures current statistics.
func (e *Engine) Snapshot() Stats {
	conn := make(map[string]int64, 4)
	for c := score.ConnText; c <= score.ConnRT; c++ {
		conn[c.String()] = e.connCounts[c].Value()
	}
	return Stats{
		Messages:         e.messages.Value(),
		BundlesCreated:   e.pool.Stats().Created,
		BundlesLive:      e.pool.Len(),
		EdgesCreated:     e.edges.Value(),
		ConnCounts:       conn,
		MemBundles:       e.pool.MemBytes(),
		MemIndex:         e.index.MemBytes(),
		MessagesInMemory: e.pool.MessageCount(),
		PrepareTime:      e.prepTimer.Total(),
		MatchTime:        e.matchTimer.Total(),
		PlaceTime:        e.placeTimer.Total(),
		RefineTime:       e.refineTimer.Total(),
		FlushRetries:     e.flushRetries.Value(),
		FlushDropped:     e.flushDropped.Value(),
		FlushParked:      len(e.retryq),
		Pool:             e.pool.Stats(),
	}
}
