package core

import (
	"testing"

	"provex/internal/gen"
)

// benchEngine measures steady-state ingest cost per message for one
// method configuration.
func benchEngine(b *testing.B, cfg Config) {
	b.Helper()
	g := gen.New(gen.DefaultConfig())
	e := New(cfg, nil, nil)
	// Warm to steady state so the measurement reflects a loaded pool.
	for i := 0; i < 20000; i++ {
		e.Insert(g.Next())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Insert(g.Next())
	}
}

func BenchmarkInsertFullIndex(b *testing.B)    { benchEngine(b, FullIndexConfig()) }
func BenchmarkInsertPartialIndex(b *testing.B) { benchEngine(b, PartialIndexConfig(1500)) }
func BenchmarkInsertBundleLimit(b *testing.B) {
	benchEngine(b, BundleLimitConfig(1500, 300))
}
