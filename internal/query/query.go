// Package query implements the retrieval support of Section V-C: the
// bundle-granularity search of Equation 7,
//
//	r(q,B) = α·s(q,B) + β·i(q,B) + (1−α−β)·t(B)
//
// combining textual similarity, summary-index indicant closeness and
// bundle freshness — next to the conventional per-message keyword
// search (the paper's Figure 1 baseline) built on the embedded
// full-text index.
//
// A Processor wraps an engine: route ingest through Processor.Insert so
// the message index stays in sync, then call SearchMessages (Figure 1
// behaviour) or SearchBundles (Figure 2 behaviour).
package query

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"provex/internal/archive"
	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/sumindex"
	"provex/internal/textindex"
	"provex/internal/tokenizer"
	"provex/internal/trending"
	"provex/internal/tweet"
)

// Options tune Eq. 7. Alpha weights textual similarity, Beta indicant
// closeness; freshness receives 1−Alpha−Beta.
type Options struct {
	Alpha float64
	Beta  float64
	// KeepMessages disables per-message indexing when false — engines
	// ingesting millions of messages for pure bundle experiments can
	// skip the baseline index.
	KeepMessages bool
	// IncludeArchive extends SearchBundles over the disk back-end:
	// bundles evicted from the pool remain retrievable through the
	// archive index. Requires the engine to have a store.
	IncludeArchive bool
}

// DefaultOptions weight text 0.6, indicants 0.3, freshness 0.1.
func DefaultOptions() Options {
	return Options{Alpha: 0.6, Beta: 0.3, KeepMessages: true}
}

// MessageHit is one result of the conventional message search.
type MessageHit struct {
	Msg   *tweet.Message
	Score float64
}

// BundleHit is one result of the provenance bundle search — the row
// shape of the paper's Figure 2(a): bundle ID, summary words, size,
// last post time.
type BundleHit struct {
	ID       bundle.ID
	Score    float64
	Size     int
	LastPost time.Time
	Summary  []string
}

// String renders the hit like a Figure 2 result row.
func (h BundleHit) String() string {
	return fmt.Sprintf("bundle %d  score=%.3f  size=%d  last=%s  %s",
		h.ID, h.Score, h.Size, h.LastPost.Format("2006-01-02 15:04:05"),
		strings.Join(h.Summary, ", "))
}

// Processor serves queries over an engine's live pool and message
// history. Not safe for concurrent use with ingest.
type Processor struct {
	opts Options
	eng  *core.Engine

	msgIndex *textindex.Index
	messages map[textindex.DocID]*tweet.Message

	arch *archive.Index
}

// New wraps eng. With Options.IncludeArchive it opens an archive index
// over the engine's store (panicking if the engine has none — that is
// a configuration error) and subscribes to flush events.
func New(eng *core.Engine, opts Options) *Processor {
	p := &Processor{opts: opts, eng: eng}
	if opts.KeepMessages {
		p.msgIndex = textindex.New()
		p.messages = make(map[textindex.DocID]*tweet.Message)
	}
	if opts.IncludeArchive {
		st := eng.Store()
		if st == nil {
			panic("query: IncludeArchive requires an engine with a store")
		}
		arch, err := archive.Open(st)
		if err != nil {
			panic("query: open archive: " + err.Error())
		}
		p.arch = arch
		eng.SetFlushObserver(arch.Note)
	}
	return p
}

// Archived reports how many disk-resident bundles are searchable.
func (p *Processor) Archived() int {
	if p.arch == nil {
		return 0
	}
	return p.arch.Len()
}

// Insert routes a message through the engine and mirrors it into the
// baseline message index.
func (p *Processor) Insert(m *tweet.Message) core.InsertResult {
	return p.InsertPrepared(core.Prepare(m))
}

// InsertPrepared applies an already-prepared message (see core.Prepare),
// reusing its keyword extraction for the baseline message index instead
// of running the tokenizer a second time. This is the apply half the
// parallel pipeline calls from its single writer goroutine.
func (p *Processor) InsertPrepared(prep core.Prepared) core.InsertResult {
	res := p.eng.InsertPrepared(prep)
	if p.msgIndex != nil {
		m := prep.Doc.Msg
		kws := prep.Doc.Keywords
		// Fresh slice: appending to prep.Doc.Keywords would alias the
		// engine-retained keyword set.
		terms := make([]string, 0, len(kws)+len(m.Hashtags))
		terms = append(terms, kws...)
		terms = append(terms, m.Hashtags...)
		p.msgIndex.Add(textindex.DocID(m.ID), terms)
		p.messages[textindex.DocID(m.ID)] = m
	}
	return res
}

// Reindex rebuilds the baseline message index from the engine's live
// pool and returns the number of messages indexed. This is the
// recovery companion: checkpoint restore and WAL replay insert
// straight into the engine, so a resumed Processor starts with an
// empty message index even though every pool node still carries its
// message and extracted keywords. Messages evicted to disk before the
// checkpoint are not recoverable here; under an unbounded pool
// (FullIndexConfig) the rebuilt index covers the full history. No-op
// without KeepMessages.
func (p *Processor) Reindex() int {
	if p.msgIndex == nil {
		return 0
	}
	p.msgIndex = textindex.New()
	p.messages = make(map[textindex.DocID]*tweet.Message)
	n := 0
	p.eng.Pool().All(func(b *bundle.Bundle) {
		for _, node := range b.Nodes() {
			m := node.Doc.Msg
			terms := make([]string, 0, len(node.Doc.Keywords)+len(m.Hashtags))
			terms = append(terms, node.Doc.Keywords...)
			terms = append(terms, m.Hashtags...)
			p.msgIndex.Add(textindex.DocID(m.ID), terms)
			p.messages[textindex.DocID(m.ID)] = m
			n++
		}
	})
	return n
}

// Engine exposes the wrapped engine.
func (p *Processor) Engine() *core.Engine { return p.eng }

// Bundle resolves a bundle in the pool or the disk back-end.
func (p *Processor) Bundle(id bundle.ID) (*bundle.Bundle, error) { return p.eng.Bundle(id) }

// Snapshot returns engine statistics.
func (p *Processor) Snapshot() core.Stats { return p.eng.Snapshot() }

// Trending returns the k hottest live bundles at the engine's current
// simulated time.
func (p *Processor) Trending(k int) []trending.Topic {
	return trending.Detect(p.eng.Pool(), p.eng.Now(), k, trending.Options{})
}

// queryTerms normalises a free-text query into search terms: keywords
// plus any explicit hashtags (with and without '#').
func queryTerms(q string) []string {
	kws := tokenizer.Keywords(q)
	// Raw tokens too, so exact tag words below the keyword length
	// threshold still match.
	for _, tok := range tokenizer.Tokenize(q) {
		dup := false
		for _, k := range kws {
			if k == tok {
				dup = true
				break
			}
		}
		if !dup && len(tok) >= 2 {
			kws = append(kws, tok)
		}
	}
	return kws
}

// SearchMessages is the conventional keyword search of Figure 1:
// BM25-ranked individual messages.
func (p *Processor) SearchMessages(q string, k int) []MessageHit {
	if p.msgIndex == nil {
		return nil
	}
	hits := p.msgIndex.Search(queryTerms(q), k)
	out := make([]MessageHit, 0, len(hits))
	for _, h := range hits {
		if m, ok := p.messages[h.Doc]; ok {
			out = append(out, MessageHit{Msg: m, Score: h.Score})
		}
	}
	return out
}

// SearchBundles is Eq. 7: rank live bundles against the query and
// return the top k with their Figure 2 summary rows.
func (p *Processor) SearchBundles(q string, k int) []BundleHit {
	if k <= 0 {
		return nil
	}
	terms := queryTerms(q)
	if len(terms) == 0 {
		return nil
	}
	idx := p.eng.SummaryIndex()
	now := p.eng.Now()

	// Candidate bundles: union of the query terms' postings over the
	// keyword, hashtag and URL classes.
	cands := make(map[bundle.ID]struct{})
	for _, t := range terms {
		for _, cls := range []sumindex.Class{sumindex.ClassKeyword, sumindex.ClassTag, sumindex.ClassURL} {
			for _, p := range idx.Postings(cls, t) {
				cands[bundle.ID(p.ID)] = struct{}{}
			}
		}
	}
	hits := make([]BundleHit, 0, len(cands))
	for id := range cands {
		b := p.eng.Pool().Get(id)
		if b == nil {
			continue
		}
		r := p.relevance(terms, b, now)
		if r <= 0 {
			continue
		}
		hits = append(hits, BundleHit{
			ID:       id,
			Score:    r,
			Size:     b.Size(),
			LastPost: b.EndTime(),
			Summary:  b.SummaryWords(10),
		})
	}
	hits = append(hits, p.archivedHits(terms, k, now)...)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// archivedHits extends a bundle search over the disk back-end: the
// archive index surfaces up to k candidates by summary-term BM25, the
// candidates are loaded from the store, and each is scored with the
// same Eq. 7 relevance as live bundles so merged ranking is coherent.
func (p *Processor) archivedHits(terms []string, k int, now time.Time) []BundleHit {
	if p.arch == nil {
		return nil
	}
	var out []BundleHit
	for _, ah := range p.arch.Search(terms, k) {
		b, err := p.arch.Load(ah.ID)
		if err != nil {
			continue // a corrupt archived record should not fail a query
		}
		r := p.relevance(terms, b, now)
		if r <= 0 {
			continue
		}
		out = append(out, BundleHit{
			ID:       ah.ID,
			Score:    r,
			Size:     b.Size(),
			LastPost: b.EndTime(),
			Summary:  b.SummaryWords(10),
		})
	}
	return out
}

// relevance is Eq. 7 for one bundle.
func (p *Processor) relevance(terms []string, b *bundle.Bundle, now time.Time) float64 {
	s := textualSim(terms, b)
	i := indicantSim(terms, b)
	t := freshness(now, b.EndTime())
	return p.opts.Alpha*s + p.opts.Beta*i + (1-p.opts.Alpha-p.opts.Beta)*t
}

// textualSim s(q,B): mean normalised term frequency of the query terms
// over the bundle's keyword summary — the common textual similarity of
// the paper, computed from the summary rather than re-reading member
// messages.
func textualSim(terms []string, b *bundle.Bundle) float64 {
	if b.Size() == 0 {
		return 0
	}
	var sum float64
	for _, t := range terms {
		tf := float64(b.KeywordCount(t))
		sum += tf / float64(b.Size())
	}
	return sum / float64(len(terms))
}

// indicantSim i(q,B): the fraction of query terms that appear as hard
// indicants (hashtags or URLs) of the bundle.
func indicantSim(terms []string, b *bundle.Bundle) float64 {
	n := 0
	for _, t := range terms {
		if b.TagCount(t) > 0 || b.URLCount(t) > 0 {
			n++
		}
	}
	return float64(n) / float64(len(terms))
}

// freshness t(B): inverse hours since the bundle's last post.
func freshness(now, last time.Time) float64 {
	age := now.Sub(last).Hours()
	if age < 0 {
		age = 0
	}
	return 1 / (age + 1)
}

// Trail loads a bundle wherever it lives (pool or disk) and renders its
// provenance forest — the Figure 2(b)/Figure 10 visualisation.
func (p *Processor) Trail(id bundle.ID) (string, error) {
	b, err := p.eng.Bundle(id)
	if err != nil {
		return "", err
	}
	return b.Render(), nil
}
