package query

import (
	"strings"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/gen"
	"provex/internal/tweet"
)

var base = time.Date(2009, 9, 17, 0, 0, 0, 0, time.UTC)

// newGameProcessor ingests a small two-topic corpus.
func newGameProcessor(t *testing.T) *Processor {
	t.Helper()
	p := New(core.New(core.FullIndexConfig(), nil, nil), DefaultOptions())
	msgs := []struct {
		user, text string
		offset     time.Duration
	}{
		{"wharman", "Lester down #redsox", 0},
		{"dims", "unbelievable!! #redsox", 10 * time.Minute},
		{"amaliebenjamin", "Lester getting an ovation from the #yankee crowd #redsox", 20 * time.Minute},
		{"abcdude", "Classy RT @amaliebenjamin: Lester getting an ovation from the #yankee crowd #redsox", 25 * time.Minute},
		{"trader", "market rally continues #stocks", 30 * time.Minute},
		{"analyst", "stocks surge on earnings #stocks http://bit.ly/mkt", 40 * time.Minute},
	}
	for i, m := range msgs {
		p.Insert(tweet.Parse(tweet.ID(i+1), m.user, base.Add(m.offset), m.text))
	}
	return p
}

func TestSearchMessages(t *testing.T) {
	p := newGameProcessor(t)
	hits := p.SearchMessages("lester redsox", 10)
	if len(hits) == 0 {
		t.Fatal("no message hits")
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("message hits not sorted")
		}
	}
	// Top hit mentions lester.
	if !strings.Contains(strings.ToLower(hits[0].Msg.Text), "lester") {
		t.Errorf("top hit %q does not mention lester", hits[0].Msg.Text)
	}
	// Stocks messages don't match a lester query.
	for _, h := range hits {
		if strings.Contains(h.Msg.Text, "stocks") && !strings.Contains(h.Msg.Text, "redsox") {
			t.Errorf("unrelated message surfaced: %q", h.Msg.Text)
		}
	}
}

// TestReindexRebuildsMessageSearch: the recovery path (checkpoint
// restore, WAL replay) inserts straight into the engine, leaving the
// Processor's baseline message index empty; Reindex must rebuild it
// from the pool so SearchMessages matches an uninterrupted run.
func TestReindexRebuildsMessageSearch(t *testing.T) {
	p := newGameProcessor(t)
	want := p.SearchMessages("lester redsox", 10)
	if len(want) == 0 {
		t.Fatal("no reference hits")
	}

	// Simulate recovery: round-trip the engine through a checkpoint and
	// wrap it in a fresh Processor that never saw an Insert.
	mem := fsx.NewMem()
	if err := p.Engine().SaveCheckpoint(mem, "ckpt"); err != nil {
		t.Fatal(err)
	}
	eng, err := core.LoadCheckpoint(core.FullIndexConfig(), nil, nil, mem, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(eng, DefaultOptions())
	if hits := p2.SearchMessages("lester redsox", 10); len(hits) != 0 {
		t.Fatalf("resumed processor unexpectedly indexed: %d hits", len(hits))
	}
	if n := p2.Reindex(); n != 6 {
		t.Fatalf("Reindex = %d messages, want 6", n)
	}
	got := p2.SearchMessages("lester redsox", 10)
	if len(got) != len(want) {
		t.Fatalf("hits after reindex = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Msg.ID != want[i].Msg.ID || got[i].Score != want[i].Score {
			t.Fatalf("hit %d: got (%d, %g) want (%d, %g)",
				i, got[i].Msg.ID, got[i].Score, want[i].Msg.ID, want[i].Score)
		}
	}
}

func TestSearchBundles(t *testing.T) {
	p := newGameProcessor(t)
	hits := p.SearchBundles("yankee redsox", 10)
	if len(hits) == 0 {
		t.Fatal("no bundle hits")
	}
	top := hits[0]
	if top.Size != 4 {
		t.Errorf("top bundle size = %d, want 4 (the game bundle)", top.Size)
	}
	summary := strings.Join(top.Summary, " ")
	if !strings.Contains(summary, "redsox") {
		t.Errorf("summary %v missing redsox", top.Summary)
	}
	if top.LastPost.Before(base) {
		t.Errorf("LastPost = %v", top.LastPost)
	}
}

func TestSearchBundlesRanksTopicApart(t *testing.T) {
	p := newGameProcessor(t)
	stockHits := p.SearchBundles("stocks market", 10)
	if len(stockHits) == 0 {
		t.Fatal("no hits for stocks")
	}
	if stockHits[0].Size != 2 {
		t.Errorf("top stocks bundle size = %d, want 2", stockHits[0].Size)
	}
	gameHits := p.SearchBundles("redsox", 10)
	if gameHits[0].ID == stockHits[0].ID {
		t.Error("distinct topics returned the same top bundle")
	}
}

func TestSearchEmptyAndMissing(t *testing.T) {
	p := newGameProcessor(t)
	if hits := p.SearchBundles("", 5); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
	if hits := p.SearchBundles("zzznotaword", 5); len(hits) != 0 {
		t.Errorf("unknown term returned %v", hits)
	}
	if hits := p.SearchBundles("redsox", 0); hits != nil {
		t.Errorf("k=0 returned %v", hits)
	}
	if hits := p.SearchMessages("zzznotaword", 5); len(hits) != 0 {
		t.Errorf("unknown message term returned %v", hits)
	}
}

func TestFreshnessBreaksTies(t *testing.T) {
	p := New(core.New(core.FullIndexConfig(), nil, nil), DefaultOptions())
	// Two bundles a week apart sharing only the queried keyword — one
	// shared keyword stays under the Eq. 1 threshold, so they do not
	// merge.
	p.Insert(tweet.Parse(1, "a", base, "concert tonight amazing #old_show"))
	p.Insert(tweet.Parse(2, "b", base.Add(7*24*time.Hour), "concert lineup revealed #new_show"))
	hits := p.SearchBundles("concert", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want 2 bundles", hits)
	}
	if !hits[0].LastPost.After(hits[1].LastPost) {
		t.Error("fresher bundle should rank first on equal content")
	}
}

func TestKeepMessagesFalse(t *testing.T) {
	p := New(core.New(core.FullIndexConfig(), nil, nil), Options{Alpha: 0.6, Beta: 0.3})
	p.Insert(tweet.Parse(1, "a", base, "something #tag"))
	if hits := p.SearchMessages("something", 5); hits != nil {
		t.Errorf("message search without message index returned %v", hits)
	}
	if hits := p.SearchBundles("something", 5); len(hits) == 0 {
		t.Error("bundle search should still work without the message index")
	}
}

func TestTrail(t *testing.T) {
	p := newGameProcessor(t)
	hits := p.SearchBundles("redsox", 1)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	trail, err := p.Trail(hits[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trail, "[rt") {
		t.Errorf("trail missing RT edge:\n%s", trail)
	}
	if _, err := p.Trail(9999); err == nil {
		t.Error("missing bundle trail did not error")
	}
}

func TestHitString(t *testing.T) {
	p := newGameProcessor(t)
	hits := p.SearchBundles("redsox", 1)
	s := hits[0].String()
	if !strings.Contains(s, "bundle") || !strings.Contains(s, "size=4") {
		t.Errorf("String = %q", s)
	}
}

func TestQueryOverGeneratedStream(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 10000
	cfg.Users = 500
	cfg.VocabSize = 800
	cfg.EventsPerDay = 300
	cfg.Scripts = []gen.EventScript{{
		Name:     "samoa tsunami",
		Hashtags: []string{"tsunami", "samoa"},
		Topic:    []string{"tsunami", "warning", "samoa", "rescue", "coast"},
		URLs:     2,
		Start:    time.Hour,
		HalfLife: 5 * time.Hour,
		Weight:   50,
	}}
	g := gen.New(cfg)
	p := New(core.New(core.FullIndexConfig(), nil, nil), DefaultOptions())
	for i := 0; i < 8000; i++ {
		p.Insert(g.Next())
	}
	hits := p.SearchBundles("tsunami samoa", 5)
	if len(hits) == 0 {
		t.Fatal("scripted event not retrievable")
	}
	if hits[0].Size < 10 {
		t.Errorf("tsunami bundle size = %d, want a substantial bundle", hits[0].Size)
	}
	summary := strings.Join(hits[0].Summary, " ")
	if !strings.Contains(summary, "tsunami") && !strings.Contains(summary, "samoa") {
		t.Errorf("summary %v unrelated to query", hits[0].Summary)
	}
}
