package query

import (
	"strings"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/storage"
	"provex/internal/tweet"
)

// newArchivedProcessor builds a processor over a tiny-pool engine with
// a disk store, so early bundles are evicted and only reachable through
// the archive.
func newArchivedProcessor(t *testing.T) *Processor {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	cfg := core.PartialIndexConfig(3)
	cfg.Pool.RefineAge = time.Minute
	cfg.Pool.RefineSize = 1 // nothing is tiny: everything evicted flushes
	cfg.Pool.LowerLimit = 2
	cfg.Pool.CheckEvery = 1
	opts := DefaultOptions()
	opts.IncludeArchive = true
	return New(core.New(cfg, st, nil), opts)
}

func TestSearchBundlesIncludesArchived(t *testing.T) {
	p := newArchivedProcessor(t)
	base := time.Date(2009, 8, 1, 0, 0, 0, 0, time.UTC)

	// An early topical burst that will be evicted...
	p.Insert(tweet.Parse(1, "a", base, "tsunami warning for samoa #tsunami"))
	p.Insert(tweet.Parse(2, "b", base.Add(time.Minute), "tsunami waves reported #tsunami"))
	// ...followed by hours of unrelated traffic pushing it out.
	for i := 0; i < 20; i++ {
		text := "filler" + string(rune('a'+i)) + " story #f" + string(rune('a'+i))
		p.Insert(tweet.Parse(tweet.ID(i+10), "u", base.Add(time.Duration(i+2)*time.Hour), text))
	}

	eng := p.Engine()
	if eng.Err() != nil {
		t.Fatal(eng.Err())
	}
	if p.Archived() == 0 {
		t.Fatal("nothing archived — test setup wrong")
	}
	hits := p.SearchBundles("tsunami samoa", 5)
	if len(hits) == 0 {
		t.Fatal("archived bundle not found via search")
	}
	top := hits[0]
	if top.Size != 2 {
		t.Errorf("top hit size = %d, want the 2-message tsunami bundle", top.Size)
	}
	if !strings.Contains(strings.Join(top.Summary, " "), "tsunami") {
		t.Errorf("summary = %v", top.Summary)
	}
	// And the trail is renderable through the engine facade (disk path).
	trail, err := p.Trail(top.ID)
	if err != nil {
		t.Fatalf("Trail: %v", err)
	}
	if !strings.Contains(trail, "tsunami") {
		t.Errorf("trail = %q", trail)
	}
}

func TestArchiveDisabledByDefault(t *testing.T) {
	p := newGameProcessor(t)
	if p.Archived() != 0 {
		t.Error("archive active without IncludeArchive")
	}
}

func TestIncludeArchiveWithoutStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IncludeArchive without store did not panic")
		}
	}()
	opts := DefaultOptions()
	opts.IncludeArchive = true
	New(core.New(core.FullIndexConfig(), nil, nil), opts)
}
