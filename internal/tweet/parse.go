package tweet

import (
	"strings"
	"time"
	"unicode"
)

// Parse builds a Message from raw text, extracting every annotated
// indicant the paper's Table I shows: hashtags ("#redsox"), URLs
// ("http://bit.ly/Uvcpr"), mentions ("@AmalieBenjamin") and the RT
// re-share marker ("comment RT @user: original text").
//
// Extraction is deterministic and normalising:
//
//   - hashtags are lower-cased, '#' stripped, deduplicated, order kept;
//   - URLs are lower-cased, scheme ("http://", "https://") stripped,
//     trailing punctuation trimmed, deduplicated;
//   - mentions are lower-cased, '@' stripped, deduplicated;
//   - the FIRST "RT @user" marker determines RTOf; text before it is the
//     re-sharer's comment. Nested re-shares ("WHEW!! RT @MLB: RT
//     @IanMBrowne ...") attribute the message to the outermost source,
//     matching how the paper treats chains of re-shares as one hop to the
//     immediately re-shared user.
func Parse(id ID, user string, date time.Time, text string) *Message {
	m := &Message{ID: id, User: user, Date: date, Text: text}
	extractEntities(m)
	return m
}

// extractEntities scans m.Text once and fills URLs, Hashtags, Mentions,
// RTOf and RTComment.
func extractEntities(m *Message) {
	text := m.Text
	var (
		tagSeen, urlSeen, menSeen map[string]bool
	)
	add := func(dst *[]string, seen *map[string]bool, v string) {
		if v == "" {
			return
		}
		if *seen == nil {
			*seen = make(map[string]bool, 4)
		}
		if (*seen)[v] {
			return
		}
		(*seen)[v] = true
		*dst = append(*dst, v)
	}

	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '#':
			tag, next := scanTag(text, i+1)
			add(&m.Hashtags, &tagSeen, strings.ToLower(tag))
			i = next
		case c == '@':
			men, next := scanTag(text, i+1)
			add(&m.Mentions, &menSeen, strings.ToLower(men))
			i = next
		case hasURLPrefix(text[i:]):
			u, next := scanURL(text, i)
			add(&m.URLs, &urlSeen, NormalizeURL(u))
			i = next
		case c == 'R' || c == 'r':
			if m.RTOf == "" && isRTMarker(text, i) {
				user, _ := rtUser(text, i)
				if user != "" {
					m.RTOf = strings.ToLower(user)
					m.RTComment = strings.TrimSpace(strings.TrimRight(text[:i], " :;-,"))
				}
			}
			i++
		default:
			i++
		}
	}
}

// scanTag consumes a hashtag or mention body starting at position start
// (the byte after '#' or '@') and returns the token plus the index of the
// first unconsumed byte. Tokens are letters, digits and underscores.
func scanTag(s string, start int) (string, int) {
	i := start
	for i < len(s) && isTagByte(s[i]) {
		i++
	}
	return s[start:i], i
}

func isTagByte(c byte) bool {
	return c == '_' ||
		('a' <= c && c <= 'z') ||
		('A' <= c && c <= 'Z') ||
		('0' <= c && c <= '9')
}

func hasURLPrefix(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

// scanURL consumes a URL starting at position start and returns it raw
// (normalisation happens in NormalizeURL) plus the next index.
func scanURL(s string, start int) (string, int) {
	i := start
	for i < len(s) && !isURLStop(rune(s[i])) {
		i++
	}
	return s[start:i], i
}

func isURLStop(r rune) bool {
	return unicode.IsSpace(r) || r == '"' || r == '\'' || r == '<' || r == '>' || r == ')'
}

// NormalizeURL canonicalises a URL indicant: lower-case, scheme stripped,
// trailing punctuation that sentence context attaches (".", ",", "!", …)
// trimmed. Two messages sharing a link then compare equal on the
// normalised form, which is what the URL connection type of Table II
// intersects.
func NormalizeURL(u string) string {
	u = strings.ToLower(strings.TrimSpace(u))
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	u = strings.TrimRight(u, ".,;:!?")
	u = strings.TrimSuffix(u, "/")
	return u
}

// isRTMarker reports whether text[i:] begins a re-share marker: the
// literal "RT" (any case) followed by whitespace and '@', at a word
// boundary.
func isRTMarker(s string, i int) bool {
	if i > 0 && isTagByte(s[i-1]) {
		return false
	}
	if i+2 > len(s) {
		return false
	}
	if !(s[i] == 'R' || s[i] == 'r') || !(s[i+1] == 'T' || s[i+1] == 't') {
		return false
	}
	j := i + 2
	if j >= len(s) || s[j] != ' ' {
		return false
	}
	for j < len(s) && s[j] == ' ' {
		j++
	}
	return j < len(s) && s[j] == '@'
}

// rtUser extracts the user named by the RT marker at position i and the
// index just past the user name.
func rtUser(s string, i int) (string, int) {
	j := i + 2
	for j < len(s) && s[j] == ' ' {
		j++
	}
	if j >= len(s) || s[j] != '@' {
		return "", i
	}
	return scanTag(s, j+1)
}
