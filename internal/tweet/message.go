// Package tweet defines the micro-blog message model used throughout
// provex and a parser that extracts the annotated indicants the paper's
// provenance model is built on: hashtags, URLs, user mentions, and the
// re-share (RT) relation.
//
// Definition 1 of the paper represents each message as the multi-field
// tuple [date, user, msg, urls, hashtags, rt]; Message mirrors that tuple
// and adds a stable identifier so connections between messages can be
// recorded as (parent ID, child ID) edges.
package tweet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ID is a stable message identifier, assigned by the producer of a stream
// (the crawler in the paper, the generator or loader here). IDs increase
// with publication order within a single stream but carry no other meaning.
type ID uint64

// MaxTextLen is the classic micro-blog message length limit. The parser
// does not reject longer texts (real crawls contain them after entity
// expansion) but the generator honours it.
const MaxTextLen = 140

// Message is one micro-blog post: Definition 1's multi-field tuple.
//
// The annotated indicants (URLs, Hashtags, Mentions, RT) are extracted by
// Parse; code receiving a Message may rely on them being normalised:
// hashtags lower-cased without '#', mentions lower-cased without '@',
// URLs lower-cased with scheme stripped.
type Message struct {
	ID   ID
	Date time.Time
	User string
	Text string

	// Extracted indicants.
	URLs     []string
	Hashtags []string
	Mentions []string

	// RTOf names the user whose message this one re-shares ("RT @user:"),
	// empty when the message is original. RTComment holds any text the
	// re-sharer prepended before the RT marker.
	RTOf      string
	RTComment string
}

// IsRT reports whether the message re-shares a previous one.
func (m *Message) IsRT() bool { return m.RTOf != "" }

// Clone returns a deep copy of the message. Slices are copied so the
// clone may be mutated independently.
func (m *Message) Clone() *Message {
	c := *m
	c.URLs = append([]string(nil), m.URLs...)
	c.Hashtags = append([]string(nil), m.Hashtags...)
	c.Mentions = append([]string(nil), m.Mentions...)
	return &c
}

// String renders the message in the compact "user date: text" form used
// in examples and test failure output.
func (m *Message) String() string {
	return fmt.Sprintf("%s %s: %s", m.User, m.Date.Format("2006-01-02 15:04:05"), m.Text)
}

// Validate checks structural invariants a well-formed message must hold.
// It is used by codecs and the generator's self-checks rather than on the
// hot ingest path.
func (m *Message) Validate() error {
	switch {
	case m.User == "":
		return errors.New("tweet: empty user")
	case m.Date.IsZero():
		return errors.New("tweet: zero date")
	case strings.TrimSpace(m.Text) == "":
		return errors.New("tweet: empty text")
	}
	for _, h := range m.Hashtags {
		if h == "" || strings.ContainsAny(h, "# \t\n") {
			return fmt.Errorf("tweet: malformed hashtag %q", h)
		}
		if h != strings.ToLower(h) {
			return fmt.Errorf("tweet: hashtag %q not normalised", h)
		}
	}
	for _, u := range m.URLs {
		if u == "" || strings.ContainsAny(u, " \t\n") {
			return fmt.Errorf("tweet: malformed url %q", u)
		}
	}
	for _, u := range m.Mentions {
		if u == "" || strings.ContainsAny(u, "@ \t\n") {
			return fmt.Errorf("tweet: malformed mention %q", u)
		}
	}
	return nil
}

// SortByDate orders messages by publication date, breaking ties by ID, so
// that replaying them forms a valid stream (Definition 1 requires the
// stream ordered by published date).
func SortByDate(ms []*Message) {
	sort.SliceStable(ms, func(i, j int) bool {
		if !ms[i].Date.Equal(ms[j].Date) {
			return ms[i].Date.Before(ms[j].Date)
		}
		return ms[i].ID < ms[j].ID
	})
}
