package tweet

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var testDate = time.Date(2009, 9, 26, 0, 23, 58, 0, time.UTC)

func parseText(t *testing.T, text string) *Message {
	t.Helper()
	m := Parse(1, "tester", testDate, text)
	if err := m.Validate(); err != nil {
		t.Fatalf("Parse(%q) produced invalid message: %v", text, err)
	}
	return m
}

func TestParseHashtags(t *testing.T) {
	tests := []struct {
		text string
		want []string
	}{
		{"Can't believe those #redsox. Argh!", []string{"redsox"}},
		{"#Redsox - glee ! #Yankees #MLB", []string{"redsox", "yankees", "mlb"}},
		{"#redsox #redsox #REDSOX", []string{"redsox"}},
		{"no tags here", nil},
		{"#tag_with_underscore and #tag2", []string{"tag_with_underscore", "tag2"}},
		{"trailing #", nil},
		{"#a#b", []string{"a", "b"}},
	}
	for _, tc := range tests {
		m := Parse(1, "u", testDate, tc.text)
		if !reflect.DeepEqual(m.Hashtags, tc.want) {
			t.Errorf("Parse(%q).Hashtags = %v, want %v", tc.text, m.Hashtags, tc.want)
		}
	}
}

func TestParseURLs(t *testing.T) {
	tests := []struct {
		text string
		want []string
	}{
		{"photos http://bit.ly/Uvcpr", []string{"bit.ly/uvcpr"}},
		{"see https://ow.ly/kq3.", []string{"ow.ly/kq3"}},
		{"two http://a.com/x and http://b.com/y", []string{"a.com/x", "b.com/y"}},
		{"dup http://A.com/x http://a.com/x", []string{"a.com/x"}},
		{"bare www.example.com/page works", []string{"www.example.com/page"}},
		{"(http://c.io/z)", []string{"c.io/z"}},
		{"none at all", nil},
	}
	for _, tc := range tests {
		m := Parse(1, "u", testDate, tc.text)
		if !reflect.DeepEqual(m.URLs, tc.want) {
			t.Errorf("Parse(%q).URLs = %v, want %v", tc.text, m.URLs, tc.want)
		}
	}
}

func TestParseMentions(t *testing.T) {
	m := parseText(t, "hey @Alice and @bob_2, also @alice again")
	want := []string{"alice", "bob_2"}
	if !reflect.DeepEqual(m.Mentions, want) {
		t.Errorf("Mentions = %v, want %v", m.Mentions, want)
	}
}

// TestParseTableIExamples replays the exact messages of the paper's
// Table I and checks the indicants the paper annotates.
func TestParseTableIExamples(t *testing.T) {
	m1 := parseText(t, "WHEW!! RT @MLB: RT @IanMBrowne X-rays on Lester negative. Contusion of the right quad. Day to Day. #redsox")
	if m1.RTOf != "mlb" {
		t.Errorf("nested RT: RTOf = %q, want %q (outermost source)", m1.RTOf, "mlb")
	}
	if m1.RTComment != "WHEW!!" {
		t.Errorf("RTComment = %q, want %q", m1.RTComment, "WHEW!!")
	}
	if !reflect.DeepEqual(m1.Hashtags, []string{"redsox"}) {
		t.Errorf("Hashtags = %v, want [redsox]", m1.Hashtags)
	}

	m2 := parseText(t, "Classy. Way it should be RT @AmalieBenjamin: Lester getting an ovation from the #Yankee Stadium crowd as he gets to his feet. #redsox")
	if m2.RTOf != "amaliebenjamin" {
		t.Errorf("RTOf = %q, want amaliebenjamin", m2.RTOf)
	}
	if m2.RTComment != "Classy. Way it should be" {
		t.Errorf("RTComment = %q", m2.RTComment)
	}
	if !reflect.DeepEqual(m2.Hashtags, []string{"yankee", "redsox"}) {
		t.Errorf("Hashtags = %v, want [yankee redsox]", m2.Hashtags)
	}

	m3 := parseText(t, "Yankee Magic, you can only find it at Yankee Stadium! THE YANKEEEEEEEEESS WIN!!!")
	if m3.IsRT() {
		t.Errorf("original message wrongly detected as RT: %+v", m3)
	}
	if len(m3.Hashtags) != 0 || len(m3.URLs) != 0 {
		t.Errorf("plain message gained indicants: %+v", m3)
	}
}

func TestParseRTEdgeCases(t *testing.T) {
	tests := []struct {
		text    string
		wantRT  string
		comment string
	}{
		{"RT @user: original", "user", ""},
		{"nice RT @User: original", "user", "nice"},
		{"START is a word, not a marker", "", ""},
		{"ART @user: 'rt' inside word", "", ""},
		{"rt @lower case marker", "lower", ""},
		{"RT without at-sign", "", ""},
		{"RT @", "", ""},
		{"comment! RT   @spaced: text", "spaced", "comment!"},
	}
	for _, tc := range tests {
		m := Parse(1, "u", testDate, tc.text)
		if m.RTOf != tc.wantRT {
			t.Errorf("Parse(%q).RTOf = %q, want %q", tc.text, m.RTOf, tc.wantRT)
		}
		if tc.wantRT != "" && m.RTComment != tc.comment {
			t.Errorf("Parse(%q).RTComment = %q, want %q", tc.text, m.RTComment, tc.comment)
		}
	}
}

func TestNormalizeURL(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://Bit.ly/34i", "bit.ly/34i"},
		{"https://ow.ly/kq3", "ow.ly/kq3"},
		{"http://example.com/", "example.com"},
		{"http://example.com/a.", "example.com/a"},
		{"WWW.Site.COM/Page!", "www.site.com/page"},
	}
	for _, tc := range tests {
		if got := NormalizeURL(tc.in); got != tc.want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Parse(1, "u", testDate, "hello #world")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	bad := []*Message{
		{User: "", Date: testDate, Text: "x"},
		{User: "u", Text: "x"},
		{User: "u", Date: testDate, Text: "   "},
		{User: "u", Date: testDate, Text: "x", Hashtags: []string{"#h"}},
		{User: "u", Date: testDate, Text: "x", Hashtags: []string{"UPPER"}},
		{User: "u", Date: testDate, Text: "x", URLs: []string{"has space"}},
		{User: "u", Date: testDate, Text: "x", Mentions: []string{"@m"}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid message %+v passed Validate", i, m)
		}
	}
}

func TestClone(t *testing.T) {
	m := parseText(t, "hello #a #b http://x.io/1 @m RT @src: orig")
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatalf("clone differs: %+v vs %+v", m, c)
	}
	c.Hashtags[0] = "mutated"
	c.URLs[0] = "mutated"
	if m.Hashtags[0] == "mutated" || m.URLs[0] == "mutated" {
		t.Error("Clone shares slice storage with original")
	}
}

func TestSortByDate(t *testing.T) {
	base := testDate
	ms := []*Message{
		{ID: 3, Date: base.Add(2 * time.Hour), User: "c", Text: "x"},
		{ID: 2, Date: base, User: "b", Text: "x"},
		{ID: 1, Date: base, User: "a", Text: "x"},
		{ID: 4, Date: base.Add(time.Hour), User: "d", Text: "x"},
	}
	SortByDate(ms)
	wantIDs := []ID{1, 2, 4, 3}
	for i, m := range ms {
		if m.ID != wantIDs[i] {
			t.Fatalf("order[%d] = ID %d, want %d", i, m.ID, wantIDs[i])
		}
	}
}

// Property: parsing never panics and always yields normalised indicants,
// for arbitrary input text.
func TestParseNormalisationProperty(t *testing.T) {
	f := func(text string) bool {
		m := Parse(1, "u", testDate, text)
		for _, h := range m.Hashtags {
			if h != strings.ToLower(h) || strings.Contains(h, "#") {
				return false
			}
		}
		for _, u := range m.URLs {
			if u != strings.ToLower(u) || strings.HasPrefix(u, "http") && !strings.HasPrefix(u, "http.") {
				return false
			}
		}
		for _, men := range m.Mentions {
			if men != strings.ToLower(men) || strings.Contains(men, "@") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: extraction is idempotent — re-parsing the same text yields
// identical indicants.
func TestParseDeterministicProperty(t *testing.T) {
	f := func(text string) bool {
		a := Parse(1, "u", testDate, text)
		b := Parse(1, "u", testDate, text)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: indicant slices never contain duplicates.
func TestParseDedupProperty(t *testing.T) {
	uniq := func(ss []string) bool {
		seen := map[string]bool{}
		for _, s := range ss {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	f := func(text string) bool {
		m := Parse(1, "u", testDate, text)
		return uniq(m.Hashtags) && uniq(m.URLs) && uniq(m.Mentions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	text := "Classy. Way it should be RT @AmalieBenjamin: Lester getting an ovation from the #Yankee Stadium crowd http://bit.ly/Uvcpr #redsox"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(1, "abcdude", testDate, text)
	}
}
