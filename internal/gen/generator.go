package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"provex/internal/tweet"
)

// Config parameterises the synthetic stream. The zero value is unusable;
// start from DefaultConfig and override.
type Config struct {
	Seed  int64     // RNG seed; equal seeds give byte-identical streams
	Start time.Time // date of the first message

	MsgsPerDay int // mean message arrival rate (paper's crawl: ~70k/day)
	Users      int // user population; activity is Zipf-distributed
	VocabSize  int // background vocabulary size

	// NoiseRatio is the fraction of messages that are short topical-free
	// chatter ("ugh #redsox", "unbelievable!!") — Figure 1's noise.
	NoiseRatio float64

	// EventsPerDay controls how many fresh topical events spawn per
	// simulated day. Together with EventHalfLife it shapes the
	// bundle-size distribution (Figure 6a).
	EventsPerDay  float64
	EventHalfLife time.Duration // mean intensity half-life of an event

	RTProb  float64 // probability an event message re-shares a prior one
	URLProb float64 // probability an event message carries a short link

	// Scripts optionally pins named events (Figure 10 showcases).
	Scripts []EventScript
}

// DefaultConfig mirrors the paper's dataset shape at configurable scale:
// ~70k messages/day, heavy-tailed user activity, ~2.2k events/day which
// yields the ~30k bundles per 700k messages reported in Section V-A.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Start:         time.Date(2009, 8, 1, 0, 0, 0, 0, time.UTC),
		MsgsPerDay:    70000,
		Users:         50000,
		VocabSize:     8000,
		NoiseRatio:    0.35,
		EventsPerDay:  2200,
		EventHalfLife: 8 * time.Hour,
		RTProb:        0.25,
		URLProb:       0.30,
	}
}

// Generator produces a temporally ordered micro-blog message stream.
// It is an iterator: Next returns one message at a time so multi-million
// message streams never need to be resident at once. Not safe for
// concurrent use.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	vocab *vocab

	userZipf *rand.Zipf

	clock     time.Time
	nextID    tweet.ID
	eventSeq  uint64
	urlSeq    uint64
	active    []*event
	scripts   []*scripted // pending, sorted by start
	spawnDebt float64
	produced  uint64

	// tagSeq disambiguates hashtags across events so two unrelated
	// events do not collide on a tag.
	tagSeq uint64

	// cum caches cumulative event intensities so chooseEvent samples
	// by binary search instead of recomputing every event's decay
	// curve per message. Intensities drift on the scale of hours, so a
	// cache refreshed every few simulated minutes is indistinguishable
	// statistically and turns generation from O(active events) of
	// exp() per message into O(log active).
	cum   []float64
	cumAt time.Time
}

// New returns a Generator for cfg.
func New(cfg Config) *Generator {
	if cfg.MsgsPerDay <= 0 {
		cfg.MsgsPerDay = 1000
	}
	if cfg.Users <= 0 {
		cfg.Users = 100
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 2000
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2009, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:      cfg,
		rng:      rng,
		vocab:    newVocab(cfg.VocabSize, rng),
		userZipf: rand.NewZipf(rng, 1.2, 2.0, uint64(cfg.Users-1)),
		clock:    cfg.Start,
		nextID:   1,
	}
	for _, s := range cfg.Scripts {
		g.scripts = append(g.scripts, newScripted(s, cfg.Start, g))
	}
	return g
}

func (g *Generator) nextEventID() uint64 { g.eventSeq++; return g.eventSeq }
func (g *Generator) nextURL() uint64     { g.urlSeq++; return g.urlSeq }

// Produced reports how many messages have been generated so far.
func (g *Generator) Produced() uint64 { return g.produced }

// ActiveEvents reports the current number of live events (diagnostics).
func (g *Generator) ActiveEvents() int { return len(g.active) }

// Next generates the next message in date order.
func (g *Generator) Next() *tweet.Message {
	// Advance the clock by an exponential inter-arrival gap.
	ratePerSec := float64(g.cfg.MsgsPerDay) / 86400.0
	gap := g.rng.ExpFloat64() / ratePerSec
	g.clock = g.clock.Add(time.Duration(gap * float64(time.Second)))

	g.admitScripted()
	g.spawnEvents(gap)
	if g.produced%512 == 0 {
		g.pruneEvents()
	}

	var m *tweet.Message
	ev := g.chooseEvent()
	if ev != nil && g.rng.Float64() >= g.cfg.NoiseRatio {
		m = g.eventMessage(ev)
	} else {
		m = g.noiseMessage(ev)
	}
	g.produced++
	return m
}

// Generate is a convenience that materialises n messages.
func (g *Generator) Generate(n int) []*tweet.Message {
	out := make([]*tweet.Message, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// admitScripted moves scripted events whose start time has arrived into
// the active set.
func (g *Generator) admitScripted() {
	for len(g.scripts) > 0 && !g.scripts[0].birth.After(g.clock) {
		g.active = append(g.active, &g.scripts[0].event)
		// Scripted events with a fixed message budget die via posted
		// count; wire that through the shared prune path by shrinking
		// half-life when exhausted (see pruneEvents).
		g.scripts = g.scripts[1:]
	}
}

// spawnEvents probabilistically creates new organic events for the
// elapsed wall-clock gap.
func (g *Generator) spawnEvents(gapSeconds float64) {
	g.spawnDebt += g.cfg.EventsPerDay * gapSeconds / 86400.0
	for g.spawnDebt >= 1 {
		g.spawnDebt--
		g.active = append(g.active, g.organicEvent())
	}
	if g.spawnDebt > 0 && g.rng.Float64() < g.spawnDebt {
		g.spawnDebt = 0
		g.active = append(g.active, g.organicEvent())
	}
}

// organicEvent mints a fresh event with its own hashtags, links and
// topical vocabulary. Event weight is heavy-tailed (Pareto-ish) so a few
// events become the huge bundles of Figure 6(a)'s tail.
func (g *Generator) organicEvent() *event {
	g.tagSeq++
	nTags := 1 + g.rng.Intn(3)
	tags := make([]string, 0, nTags)
	for _, w := range g.vocab.sampleTail(nTags, g.rng) {
		// Suffix a sequence mark on all but the first tag occurrence so
		// different events get distinct tag identities even when their
		// base word collides.
		tags = append(tags, fmt.Sprintf("%s%d", w, g.tagSeq%997))
	}
	halfLife := g.cfg.EventHalfLife
	if halfLife <= 0 {
		halfLife = 8 * time.Hour
	}
	// Jitter half-life ×[0.25, 2.5).
	halfLife = time.Duration(float64(halfLife) * (0.25 + 2.25*g.rng.Float64()))
	// Pareto weight: P(w > x) ~ x^-1.5, min 0.2.
	weight := 0.2 / math.Pow(math.Max(g.rng.Float64(), 1e-9), 1/1.5)
	if weight > 60 {
		weight = 60
	}
	ev := &event{
		id:       g.nextEventID(),
		hashtags: tags,
		topic:    g.vocab.sampleTail(4+g.rng.Intn(8), g.rng),
		birth:    g.clock,
		halfLife: halfLife,
		weight:   weight,
	}
	nURLs := g.rng.Intn(4)
	for i := 0; i < nURLs; i++ {
		ev.urls = append(ev.urls, shortURL(g.rng, g.nextURL()))
	}
	return ev
}

// intensityRefresh is the simulated-time staleness bound of the
// cumulative intensity cache.
const intensityRefresh = 5 * time.Minute

// refreshIntensity rebuilds the cumulative intensity cache at the
// current clock.
func (g *Generator) refreshIntensity() {
	g.cum = g.cum[:0]
	var total float64
	for _, ev := range g.active {
		total += ev.intensity(g.clock)
		g.cum = append(g.cum, total)
	}
	g.cumAt = g.clock
}

// chooseEvent samples an active event proportionally to (cached)
// intensity; nil when no event is live.
func (g *Generator) chooseEvent() *event {
	if len(g.active) == 0 {
		return nil
	}
	if len(g.cum) != len(g.active) || g.clock.Sub(g.cumAt) > intensityRefresh {
		g.refreshIntensity()
	}
	total := g.cum[len(g.cum)-1]
	if total <= 0 {
		return nil
	}
	r := g.rng.Float64() * total
	i := sort.SearchFloat64s(g.cum, r)
	if i >= len(g.active) {
		i = len(g.active) - 1
	}
	return g.active[i]
}

// pruneEvents drops dead events from the active set.
func (g *Generator) pruneEvents() {
	live := g.active[:0]
	for _, ev := range g.active {
		if !ev.dead(g.clock) {
			live = append(live, ev)
		}
	}
	// Zero the tail so dropped events are collectable.
	for i := len(live); i < len(g.active); i++ {
		g.active[i] = nil
	}
	g.active = live
	g.cum = g.cum[:0] // force a cache rebuild on next choose
}

// eventMessage composes one message for event ev: either a re-share of a
// reservoir message or an original post carrying the event's indicants.
func (g *Generator) eventMessage(ev *event) *tweet.Message {
	user := g.pickUser()
	var text string
	if prev := ev.pickRT(g.rng); prev != nil && g.rng.Float64() < g.cfg.RTProb {
		text = g.composeRT(prev)
	} else {
		text = g.composeOriginal(ev)
	}
	m := tweet.Parse(g.allocID(), user, g.clock, text)
	ev.posted++
	ev.remember(m, g.rng)
	return m
}

// composeOriginal builds event text: topical words, hashtags with high
// probability, occasionally a shared link.
func (g *Generator) composeOriginal(ev *event) string {
	var b strings.Builder
	nWords := 3 + g.rng.Intn(6)
	for i := 0; i < nWords; i++ {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if len(ev.topic) > 0 && g.rng.Float64() < 0.55 {
			b.WriteString(ev.topic[g.rng.Intn(len(ev.topic))])
		} else {
			b.WriteString(g.vocab.sample())
		}
	}
	for _, tag := range ev.hashtags {
		if g.rng.Float64() < 0.65 {
			b.WriteString(" #")
			b.WriteString(tag)
		}
	}
	// Guarantee at least one event indicant so the message is routable.
	if !strings.Contains(b.String(), "#") && len(ev.hashtags) > 0 {
		b.WriteString(" #")
		b.WriteString(ev.hashtags[g.rng.Intn(len(ev.hashtags))])
	}
	if len(ev.urls) > 0 && g.rng.Float64() < g.cfg.URLProb {
		b.WriteString(" http://")
		b.WriteString(ev.urls[g.rng.Intn(len(ev.urls))])
	}
	return clampText(b.String())
}

// composeRT re-shares prev, optionally prefixing a short comment —
// exactly the Table I "Classy. Way it should be RT @AmalieBenjamin: ..."
// shape.
func (g *Generator) composeRT(prev *tweet.Message) string {
	var b strings.Builder
	if g.rng.Float64() < 0.5 {
		b.WriteString(g.vocab.sample())
		if g.rng.Float64() < 0.4 {
			b.WriteByte(' ')
			b.WriteString(g.vocab.sample())
		}
		b.WriteByte(' ')
	}
	b.WriteString("RT @")
	b.WriteString(prev.User)
	b.WriteString(": ")
	b.WriteString(prev.Text)
	return clampText(b.String())
}

// noiseMessage emits short chatter: interjections, a couple of common
// words, and — like the "ugh #redsox" fragments of the paper's
// Figure 1 — a live event's hashtag about 40% of the time when an
// event is running.
func (g *Generator) noiseMessage(ev *event) *tweet.Message {
	interjections := []string{
		"ugh", "argh", "sigh", "wow", "unbelievable!!", "omg", "lol",
		"so tired", "great day", "can't believe it", "finally", "whew!!",
	}
	var b strings.Builder
	b.WriteString(interjections[g.rng.Intn(len(interjections))])
	n := g.rng.Intn(4)
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
		b.WriteString(g.vocab.sample())
	}
	if ev != nil && len(ev.hashtags) > 0 && g.rng.Float64() < 0.4 {
		b.WriteString(" #")
		b.WriteString(ev.hashtags[g.rng.Intn(len(ev.hashtags))])
	}
	return tweet.Parse(g.allocID(), g.pickUser(), g.clock, clampText(b.String()))
}

func (g *Generator) allocID() tweet.ID {
	id := g.nextID
	g.nextID++
	return id
}

// pickUser samples a user name with Zipf-distributed activity —
// a small core of prolific accounts plus a long tail, like the
// paper's crawl.
func (g *Generator) pickUser() string {
	return fmt.Sprintf("user%d", g.userZipf.Uint64())
}

// clampText enforces the classic 140-character limit without splitting
// a trailing word.
func clampText(s string) string {
	if len(s) <= tweet.MaxTextLen {
		return s
	}
	s = s[:tweet.MaxTextLen]
	if i := strings.LastIndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	return s
}
