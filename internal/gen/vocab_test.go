package gen

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"provex/internal/tweet"
)

func newTestVocab(n int) *vocab {
	return newVocab(n, rand.New(rand.NewSource(1)))
}

func TestVocabSeedWordsFirst(t *testing.T) {
	v := newTestVocab(1000)
	for i, w := range seedWords {
		if v.words[i] != w {
			t.Fatalf("word %d = %q, want seed word %q", i, v.words[i], w)
		}
	}
	if len(v.words) != 1000 {
		t.Errorf("vocab size = %d", len(v.words))
	}
}

func TestVocabDistinctWords(t *testing.T) {
	v := newTestVocab(3000)
	seen := map[string]bool{}
	for _, w := range v.words {
		if seen[w] {
			t.Fatalf("duplicate vocab word %q", w)
		}
		seen[w] = true
	}
}

func TestVocabTinyRequestClamped(t *testing.T) {
	v := newTestVocab(3) // below seed-word count
	if len(v.words) <= len(seedWords) {
		t.Errorf("tiny vocab = %d words, want > %d", len(v.words), len(seedWords))
	}
}

func TestVocabZipfSkew(t *testing.T) {
	v := newTestVocab(2000)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[v.sample()]++
	}
	// The head word must be dramatically more frequent than a mid-tail
	// word under a Zipf(1.1) sampler.
	head := counts[v.words[0]]
	if head < 200 {
		t.Errorf("head word sampled only %d times in 20000", head)
	}
	distinct := len(counts)
	if distinct < 100 {
		t.Errorf("only %d distinct words sampled", distinct)
	}
}

func TestSampleN(t *testing.T) {
	v := newTestVocab(500)
	got := v.sampleN(10)
	seen := map[string]bool{}
	for _, w := range got {
		if seen[w] {
			t.Fatalf("sampleN returned duplicate %q", w)
		}
		seen[w] = true
	}
	if len(got) != 10 {
		t.Errorf("sampleN(10) = %d words", len(got))
	}
}

func TestSampleTailUniform(t *testing.T) {
	v := newTestVocab(2000)
	rng := rand.New(rand.NewSource(2))
	// Tail sampling should regularly reach beyond the Zipf head.
	beyondHead := 0
	for trial := 0; trial < 50; trial++ {
		for _, w := range v.sampleTail(5, rng) {
			idx := -1
			for i, vw := range v.words {
				if vw == w {
					idx = i
					break
				}
			}
			if idx > 500 {
				beyondHead++
			}
		}
	}
	if beyondHead < 50 {
		t.Errorf("sampleTail rarely leaves the head: %d/250 beyond index 500", beyondHead)
	}
}

func TestShortURL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := uint64(0); i < 200; i++ {
		u := shortURL(rng, i)
		if seen[u] {
			t.Fatalf("duplicate short URL %q", u)
		}
		seen[u] = true
		if !strings.Contains(u, "/") {
			t.Fatalf("malformed short URL %q", u)
		}
		// Must survive the tweet parser as a URL indicant.
		m := tweet.Parse(1, "u", time.Now(), "link http://"+u)
		if len(m.URLs) != 1 {
			t.Fatalf("short URL %q not parsed as URL", u)
		}
	}
}

func TestSynthWordPronounceable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		w := synthWord(rng)
		if len(w) < 4 || len(w) > 8 {
			t.Errorf("synthWord length %d: %q", len(w), w)
		}
		if strings.ToLower(w) != w {
			t.Errorf("synthWord not lower-case: %q", w)
		}
	}
}

func TestEventReservoirKeepsRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ev := &event{}
	root := &tweet.Message{ID: 1, User: "root", Text: "root msg"}
	ev.posted = 1
	ev.remember(root, rng)
	// Flood the reservoir; the root may be displaced but the reservoir
	// must stay at its cap and never contain nils.
	for i := 2; i <= 500; i++ {
		ev.posted++
		ev.remember(&tweet.Message{ID: tweet.ID(i), User: "u", Text: "x"}, rng)
	}
	if len(ev.recent) != 32 {
		t.Fatalf("reservoir size = %d, want cap 32", len(ev.recent))
	}
	for i, m := range ev.recent {
		if m == nil {
			t.Fatalf("reservoir slot %d is nil", i)
		}
	}
	if ev.pickRT(rng) == nil {
		t.Error("pickRT returned nil with non-empty reservoir")
	}
}

func TestPickRTEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ev := &event{}
	if ev.pickRT(rng) != nil {
		t.Error("pickRT on empty reservoir should be nil")
	}
}

func TestScriptedDefaults(t *testing.T) {
	g := New(DefaultConfig())
	sc := newScripted(EventScript{Name: "x", Hashtags: []string{"t"}}, g.cfg.Start, g)
	if sc.halfLife == 0 || sc.weight == 0 {
		t.Errorf("scripted defaults not applied: %+v", sc.event)
	}
}

func TestEventString(t *testing.T) {
	ev := &event{id: 5, hashtags: []string{"a"}, posted: 3}
	if s := ev.String(); !strings.Contains(s, "event#5") {
		t.Errorf("String = %q", s)
	}
}
