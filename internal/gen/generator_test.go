package gen

import (
	"reflect"
	"testing"
	"time"

	"provex/internal/tweet"
)

// smallConfig keeps unit-test runs fast while preserving the stream's
// structural properties.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MsgsPerDay = 20000
	cfg.Users = 2000
	cfg.VocabSize = 1500
	cfg.EventsPerDay = 600
	return cfg
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(smallConfig()).Generate(2000)
	b := New(smallConfig()).Generate(2000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("message %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedSensitivity(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 99
	a := New(smallConfig()).Generate(100)
	b := New(cfg2).Generate(100)
	same := 0
	for i := range a {
		if a[i].Text == b[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorTemporalOrder(t *testing.T) {
	g := New(smallConfig())
	var prev time.Time
	var prevID tweet.ID
	for i := 0; i < 5000; i++ {
		m := g.Next()
		if m.Date.Before(prev) {
			t.Fatalf("message %d out of order: %v < %v", i, m.Date, prev)
		}
		if m.ID <= prevID {
			t.Fatalf("message %d ID not increasing: %d <= %d", i, m.ID, prevID)
		}
		prev, prevID = m.Date, m.ID
	}
}

func TestGeneratorValidMessages(t *testing.T) {
	g := New(smallConfig())
	for i := 0; i < 5000; i++ {
		m := g.Next()
		if err := m.Validate(); err != nil {
			t.Fatalf("message %d invalid: %v\n%+v", i, err, m)
		}
		if len(m.Text) > tweet.MaxTextLen {
			t.Fatalf("message %d exceeds %d chars: %q", i, tweet.MaxTextLen, m.Text)
		}
	}
}

// TestGeneratorStreamShape checks the macro statistics the provenance
// index relies on: a meaningful share of messages carry hashtags, RTs
// exist, URLs circulate, and noise is present.
func TestGeneratorStreamShape(t *testing.T) {
	g := New(smallConfig())
	const n = 20000
	var withTag, withURL, rts, bare int
	for i := 0; i < n; i++ {
		m := g.Next()
		switch {
		case m.IsRT():
			rts++
		case len(m.Hashtags) > 0:
			withTag++
		default:
			bare++
		}
		if len(m.URLs) > 0 {
			withURL++
		}
	}
	if withTag < n/5 {
		t.Errorf("only %d/%d original messages carry hashtags", withTag, n)
	}
	if rts < n/50 {
		t.Errorf("only %d/%d messages are re-shares", rts, n)
	}
	if withURL < n/50 {
		t.Errorf("only %d/%d messages carry URLs", withURL, n)
	}
	if bare < n/20 {
		t.Errorf("only %d/%d messages are noise", bare, n)
	}
}

// TestGeneratorRTConsistency verifies every generated re-share names a
// user that actually posted earlier in the stream.
func TestGeneratorRTConsistency(t *testing.T) {
	g := New(smallConfig())
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		m := g.Next()
		if m.IsRT() && !seen[m.RTOf] {
			t.Fatalf("message %d re-shares unseen user %q: %s", i, m.RTOf, m)
		}
		seen[m.User] = true
	}
}

func TestGeneratorArrivalRate(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg)
	const n = 20000
	ms := g.Generate(n)
	span := ms[n-1].Date.Sub(ms[0].Date)
	gotPerDay := float64(n) / (span.Hours() / 24)
	ratio := gotPerDay / float64(cfg.MsgsPerDay)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("arrival rate %0.f msgs/day, want ~%d (ratio %.2f)", gotPerDay, cfg.MsgsPerDay, ratio)
	}
}

func TestGeneratorUserSkew(t *testing.T) {
	g := New(smallConfig())
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().User]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Errorf("user activity not heavy-tailed: max %d vs mean %.1f over %d users", max, mean, len(counts))
	}
}

func TestScriptedEvents(t *testing.T) {
	cfg := smallConfig()
	cfg.Scripts = []EventScript{{
		Name:     "samoa tsunami",
		Hashtags: []string{"tsunami", "samoa"},
		Topic:    []string{"tsunami", "warning", "samoa", "quake", "rescue"},
		URLs:     2,
		Start:    time.Hour,
		HalfLife: 3 * time.Hour,
		Weight:   40,
	}}
	g := New(cfg)
	found := 0
	for i := 0; i < 30000; i++ {
		m := g.Next()
		for _, h := range m.Hashtags {
			if h == "tsunami" || h == "samoa" {
				found++
			}
		}
	}
	if found < 50 {
		t.Errorf("scripted event surfaced in only %d hashtag occurrences", found)
	}
}

func TestEventIntensityDecay(t *testing.T) {
	birth := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	ev := &event{birth: birth, halfLife: time.Hour, weight: 8}
	if got := ev.intensity(birth.Add(-time.Minute)); got != 0 {
		t.Errorf("pre-birth intensity = %v, want 0", got)
	}
	if got := ev.intensity(birth.Add(5 * time.Minute)); got != 8 {
		t.Errorf("burst intensity = %v, want 8", got)
	}
	early := ev.intensity(birth.Add(30 * time.Minute))
	late := ev.intensity(birth.Add(10 * time.Hour))
	if late >= early {
		t.Errorf("intensity did not decay: %v then %v", early, late)
	}
	if !ev.dead(birth.Add(48 * time.Hour)) {
		t.Error("event should be dead after 48 half-lives")
	}
}

func TestClampText(t *testing.T) {
	long := ""
	for i := 0; i < 40; i++ {
		long += "word "
	}
	got := clampText(long)
	if len(got) > tweet.MaxTextLen {
		t.Fatalf("clamped text still %d chars", len(got))
	}
	if got[len(got)-1] == ' ' || got[:4] != "word" {
		t.Fatalf("clamp mangled text: %q", got)
	}
	if clampText("short") != "short" {
		t.Error("short text altered")
	}
}

func TestBase36(t *testing.T) {
	tests := []struct {
		n    uint64
		want string
	}{{0, "0"}, {35, "z"}, {36, "10"}, {1295, "zz"}}
	for _, tc := range tests {
		if got := base36(tc.n); got != tc.want {
			t.Errorf("base36(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := New(smallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
