package gen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"provex/internal/tweet"
)

// event is one topical episode in the simulated platform: a burst of
// related messages sharing hashtags, short-URLs and topic vocabulary,
// whose intensity decays exponentially after the burst. Re-shares (RT)
// within an event form the cascades the provenance model turns into
// bundle trees.
type event struct {
	id       uint64
	hashtags []string // 1–3 tags, e.g. ["redsox", "yankees"]
	urls     []string // short links circulating in this event
	topic    []string // topical vocabulary
	birth    time.Time
	halfLife time.Duration // intensity halves each halfLife after birth
	weight   float64       // base intensity at birth
	// recent holds a reservoir of messages available for re-sharing.
	recent []*tweet.Message
	posted int // total messages emitted for this event
}

// intensity returns the event's sampling weight at time now: a constant
// plateau during the initial burst window, exponential decay afterwards.
func (e *event) intensity(now time.Time) float64 {
	age := now.Sub(e.birth)
	if age < 0 {
		return 0
	}
	burst := e.halfLife / 4
	if age <= burst {
		return e.weight
	}
	decayed := float64(age-burst) / float64(e.halfLife)
	return e.weight * math.Exp2(-decayed)
}

// dead reports whether the event's intensity has decayed below the floor
// and it holds no reason to stay in the active set.
func (e *event) dead(now time.Time) bool {
	return e.intensity(now) < 0.01*e.weight
}

// remember adds m to the re-share reservoir, keeping at most cap
// elements with reservoir sampling so early (root) messages stay
// eligible for late re-shares.
func (e *event) remember(m *tweet.Message, rng *rand.Rand) {
	const reservoirCap = 32
	if len(e.recent) < reservoirCap {
		e.recent = append(e.recent, m)
		return
	}
	if i := rng.Intn(e.posted); i < reservoirCap {
		e.recent[i] = m
	}
}

// pickRT returns a message of this event to re-share, or nil when none
// is available.
func (e *event) pickRT(rng *rand.Rand) *tweet.Message {
	if len(e.recent) == 0 {
		return nil
	}
	return e.recent[rng.Intn(len(e.recent))]
}

// EventScript pins down an event with fixed, human-readable identity —
// used to reproduce the showcase bundles of the paper's Figure 10
// ("IBM CICS partner conference", "Samoa tsunami") and by examples.
type EventScript struct {
	Name     string        // label, surfaces in nothing but diagnostics
	Hashtags []string      // exact hashtags (already normalised, no '#')
	Topic    []string      // exact topical vocabulary
	URLs     int           // number of distinct short links to mint
	Start    time.Duration // offset from stream start
	HalfLife time.Duration
	Weight   float64 // burst intensity relative to an average event (1.0)
	Messages int     // 0 = run by intensity; >0 = emit exactly this many
}

// scripted is the runtime state of a scripted event.
type scripted struct {
	event
	script    EventScript
	remaining int
}

func newScripted(s EventScript, streamStart time.Time, g *Generator) *scripted {
	ev := &scripted{
		event: event{
			id:       g.nextEventID(),
			hashtags: append([]string(nil), s.Hashtags...),
			topic:    append([]string(nil), s.Topic...),
			birth:    streamStart.Add(s.Start),
			halfLife: s.HalfLife,
			weight:   s.Weight,
		},
		script:    s,
		remaining: s.Messages,
	}
	for i := 0; i < s.URLs; i++ {
		ev.urls = append(ev.urls, shortURL(g.rng, g.nextURL()))
	}
	if ev.halfLife == 0 {
		ev.halfLife = 6 * time.Hour
	}
	if ev.weight == 0 {
		ev.weight = 1
	}
	return ev
}

// String identifies the event in diagnostics.
func (e *event) String() string {
	return fmt.Sprintf("event#%d tags=%v msgs=%d", e.id, e.hashtags, e.posted)
}
