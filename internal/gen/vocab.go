// Package gen synthesises micro-blog message streams with the
// statistical structure the paper's provenance index exploits: topical
// events that burst and decay, Zipf-distributed user activity and
// vocabulary, re-share (RT) cascades, shared short-URLs and hashtags,
// and a configurable fraction of short noisy chatter.
//
// The paper evaluated on a crawled 2009 Twitter dataset (~70k messages
// per day over two months, 4.25M messages total) that is not available;
// this generator is the documented substitution (DESIGN.md, S3). What
// the index cares about is not the English itself but the overlap
// structure of indicants across time — which this generator reproduces:
// messages of one event share hashtags/URLs/topic words and arrive
// clustered in time, producing the heavy-tailed bundle-size and bounded
// time-span distributions of the paper's Figure 6.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// vocab is a deterministic synthetic vocabulary. Words are pronounceable
// syllable compounds so generated messages look plausibly like text; a
// seed list of real words gives showcase events (Figure 10) readable
// summaries.
type vocab struct {
	words []string
	zipf  *rand.Zipf
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu",
	"da", "de", "di", "do", "du", "fa", "fe", "fi", "fo", "fu",
	"ga", "ge", "gi", "go", "gu", "ha", "he", "hi", "ho", "hu",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
	"sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
	"va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
}

// seedWords make generated events readable; they are assigned to the
// head of the vocabulary where the Zipf sampler picks most often.
var seedWords = []string{
	"game", "win", "stadium", "crowd", "player", "season", "score",
	"news", "breaking", "report", "update", "watch", "live", "video",
	"launch", "release", "conference", "keynote", "partner", "announce",
	"storm", "quake", "tsunami", "warning", "rescue", "relief", "alert",
	"market", "stock", "price", "trade", "rally", "record", "surge",
	"concert", "tour", "album", "single", "show", "ticket", "stage",
	"election", "vote", "debate", "poll", "campaign", "speech", "protest",
	"coach", "team", "league", "final", "playoff", "champion", "series",
}

// newVocab builds a vocabulary of n words. Word i is deterministic in
// (seed, i); the Zipf sampler makes low-index words frequent.
func newVocab(n int, rng *rand.Rand) *vocab {
	if n < len(seedWords)+1 {
		n = len(seedWords) + 1
	}
	v := &vocab{words: make([]string, 0, n)}
	v.words = append(v.words, seedWords...)
	seen := make(map[string]bool, n)
	for _, w := range seedWords {
		seen[w] = true
	}
	for len(v.words) < n {
		w := synthWord(rng)
		if seen[w] {
			continue
		}
		seen[w] = true
		v.words = append(v.words, w)
	}
	// Zipf exponent ~1.1 mimics natural-language token frequency.
	v.zipf = rand.NewZipf(rng, 1.1, 1.0, uint64(n-1))
	return v
}

// synthWord composes a pronounceable 2–4 syllable word.
func synthWord(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// sample draws one word, Zipf-biased toward the vocabulary head.
func (v *vocab) sample() string { return v.words[v.zipf.Uint64()] }

// sampleN draws k distinct words (best effort: gives up doubling after
// 4k attempts, which only matters for tiny vocabularies).
func (v *vocab) sampleN(k int) []string {
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for attempts := 0; len(out) < k && attempts < 4*k+8; attempts++ {
		w := v.sample()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// sampleTail draws k distinct words uniformly from the whole vocabulary,
// used for event-specific topical words so that distinct events rarely
// share vocabulary by accident.
func (v *vocab) sampleTail(k int, rng *rand.Rand) []string {
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for attempts := 0; len(out) < k && attempts < 4*k+8; attempts++ {
		w := v.words[rng.Intn(len(v.words))]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// shortURL fabricates a bit.ly/ow.ly-style short link, unique per
// counter value.
func shortURL(rng *rand.Rand, counter uint64) string {
	hosts := []string{"bit.ly", "ow.ly", "is.gd", "tinyurl.com", "t.co"}
	return fmt.Sprintf("%s/%s", hosts[rng.Intn(len(hosts))], base36(counter+1000))
}

func base36(n uint64) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if n == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%36]
		n /= 36
	}
	return string(buf[i:])
}
