package wal

import (
	"errors"
	"io"
	"testing"
	"time"

	"provex/internal/fsx"
	"provex/internal/tweet"
)

// validWALBytes builds a well-formed log file with n records and
// returns its raw content, for use as fuzz seeds.
func validWALBytes(tb testing.TB, n int) []byte {
	tb.Helper()
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		m := &tweet.Message{
			ID:       tweet.ID(uint64(i)),
			Date:     time.Unix(int64(1300000000+i), 0).UTC(),
			User:     "fuzzer",
			Text:     "RT @seed: provenance record",
			Hashtags: []string{"fuzz"},
			RTOf:     "seed",
		}
		if err := l.Append(uint64(i), m); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	f, err := mem.Open("wal/wal-000001.log")
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func writeRaw(tb testing.TB, mem *fsx.MemFS, name string, data []byte) {
	tb.Helper()
	if err := mem.MkdirAll("wal", 0o755); err != nil {
		tb.Fatal(err)
	}
	f, err := mem.Create(name)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		tb.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}

// FuzzOpenReplay feeds arbitrary bytes to the WAL as (a) the live tail
// file and (b) a sealed earlier file, and checks the recovery
// contract: never a panic; a sealed file either scans cleanly or
// fails with ErrCorrupt; a tail file is always recovered into an
// appendable log (torn tails truncate silently).
func FuzzOpenReplay(f *testing.F) {
	valid := validWALBytes(f, 3)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])    // torn final byte
	f.Add(valid[:len(valid)/2])    // torn mid-record
	f.Add([]byte("PROVWAL1"))      // magic only
	f.Add([]byte("PROVWAL"))       // short magic
	f.Add([]byte{})                // empty file
	f.Add([]byte("garbage bytes")) // bad magic
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip in a record body
	f.Add(flipped)
	huge := append([]byte(nil), valid[:8]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// (a) As the live tail: Open must tolerate any tail damage by
		// truncating, or reject the whole file as ErrCorrupt. Whatever
		// survives must replay and accept appends.
		mem := fsx.NewMem()
		writeRaw(t, mem, "wal/wal-000001.log", data)
		l, err := Open("wal", Options{FS: mem})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open(tail): non-corruption error %v", err)
			}
			return
		}
		replayed := 0
		if err := l.Replay(0, func(seq uint64, m *tweet.Message) error {
			if m == nil {
				t.Fatal("Replay delivered a nil message")
			}
			replayed++
			return nil
		}); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay: non-corruption error %v", err)
		}
		next := l.LastSeq() + 1
		if err := l.Append(next, &tweet.Message{ID: tweet.ID(next), User: "post", Text: "append after recovery"}); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// The appended record must survive a second recovery.
		l2, err := Open("wal", Options{FS: mem})
		if err != nil {
			t.Fatalf("re-Open after append: %v", err)
		}
		found := false
		if err := l2.Replay(0, func(seq uint64, m *tweet.Message) error {
			if seq == next {
				found = true
			}
			return nil
		}); err != nil {
			t.Fatalf("re-Replay: %v", err)
		}
		if !found {
			t.Fatalf("record appended after recovery (seq %d) lost on re-open", next)
		}
		l2.Close()

		// (b) As a sealed earlier file (a valid file follows it):
		// sealed corruption is never tolerated — Open either succeeds
		// (the file was well-formed) or reports ErrCorrupt.
		mem2 := fsx.NewMem()
		writeRaw(t, mem2, "wal/wal-000001.log", data)
		writeRaw(t, mem2, "wal/wal-000002.log", validWALBytes(t, 1))
		l3, err := Open("wal", Options{FS: mem2})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open(sealed): non-corruption error %v", err)
			}
			return
		}
		if err := l3.Replay(0, func(seq uint64, m *tweet.Message) error { return nil }); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay(sealed): non-corruption error %v", err)
		}
		l3.Close()
	})
}
