package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"provex/internal/tweet"
)

// This file is the replication read surface of the log: ReadBatch lets
// a shipping service stream CRC-verified record payloads to follower
// replicas while the single writer keeps appending. Readers use their
// own file handles and consult only immutable fields (fs, dir) plus the
// atomic synced watermark, so they never contend with — or block — the
// ingest path.

// ErrGap reports that the log cannot supply a contiguous run of
// sequences after the requested point: the records were truncated away
// by a checkpoint, or a sealed file is unreadable. Replication
// followers react by re-bootstrapping from the newest checkpoint
// instead of silently skipping messages.
var ErrGap = errors.New("wal: sequence gap")

// Cursor is a resumable read position: segment number plus the byte
// offset of the next record header. It is strictly an optimization
// hint — ReadBatch falls back to a full scan whenever the hinted
// position is missing, stale, or misaligned — so callers may persist
// it loosely or lose it entirely without correctness cost.
type Cursor struct {
	Seg int
	Off int64
}

// Batch is one ReadBatch result: encoded record payloads (CRC-verified
// on read, decodable with DecodeRecord) in strictly contiguous
// ascending sequence order starting at after+1, the cursor to resume
// from, and the durability watermark observed before the scan.
type Batch struct {
	Records [][]byte
	Next    Cursor
	Synced  uint64
}

// SyncedSeq returns the durable watermark: the highest sequence known
// to be fully on stable storage. Safe from any goroutine.
func (l *Log) SyncedSeq() uint64 { return l.synced.Load() }

// EncodeRecord flattens (seq, m) into the canonical WAL record payload
// (the bytes ReadBatch ships and DecodeRecord parses).
func EncodeRecord(seq uint64, m *tweet.Message) []byte { return encodeRecord(seq, m) }

// DecodeRecord parses one record payload back into its sequence and
// message. It is the follower-side inverse of EncodeRecord.
func DecodeRecord(payload []byte) (uint64, *tweet.Message, error) { return decodeRecord(payload) }

// defaultBatchBytes bounds a ReadBatch when the caller passes no limit.
const defaultBatchBytes = 1 << 20

// ReadBatch collects record payloads with sequence in (after, synced]
// up to roughly maxBytes (always at least one record when any are
// available), resuming from hint when it is usable. It is safe to call
// concurrently with the writer: only durable records — covered by the
// synced watermark, whose store ordering guarantees their bytes are
// visible — are ever shipped, so an in-flight torn tail is never
// misread as data.
//
// An empty batch with a nil error means the follower is caught up to
// the watermark. ErrGap means the records the caller needs are gone
// (checkpoint truncation passed the follower by); the caller must
// re-bootstrap from a checkpoint rather than resume.
func (l *Log) ReadBatch(after uint64, hint Cursor, maxBytes int) (Batch, error) {
	synced := l.synced.Load()
	b := Batch{Synced: synced, Next: hint}
	if synced <= after {
		return b, nil
	}
	if maxBytes <= 0 {
		maxBytes = defaultBatchBytes
	}
	segs, err := l.listFiles()
	if err != nil {
		return Batch{}, fmt.Errorf("wal: %w", err)
	}
	// Hinted attempt: resume where the previous batch ended. Anything
	// suspicious about the result — no records where the watermark says
	// there are some, or a first sequence that is not exactly after+1 —
	// discards it in favor of a full scan; sequence numbers, not the
	// cursor, are the source of truth.
	if i := segIndex(segs, hint.Seg); i >= 0 && hint.Off >= int64(len(walMagic)) {
		hb := Batch{Synced: synced}
		if err := l.scanRun(segs[i:], hint.Off, after, synced, maxBytes, &hb); err != nil {
			return Batch{}, err
		}
		if len(hb.Records) > 0 && recordSeq(hb.Records[0]) == after+1 {
			return hb, nil
		}
	}
	fb := Batch{Synced: synced}
	if err := l.scanRun(segs, 0, after, synced, maxBytes, &fb); err != nil {
		return Batch{}, err
	}
	if len(fb.Records) == 0 || recordSeq(fb.Records[0]) != after+1 {
		return Batch{}, fmt.Errorf("%w: no contiguous records after %d (synced %d)", ErrGap, after, synced)
	}
	return fb, nil
}

// scanRun walks segs in order, starting the first at off and the rest
// at their magic, appending shippable payloads to b until the byte
// budget, the watermark, or an unreadable region stops it.
func (l *Log) scanRun(segs []int, off int64, after, synced uint64, budget int, b *Batch) error {
	for _, seg := range segs {
		cont, err := l.readSeg(seg, off, after, synced, &budget, b)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		off = 0
	}
	return nil
}

// readSeg scans one segment from off (0 means verify the magic first),
// appending records with sequence in (after, synced] to b and advancing
// b.Next past every intact record it passes. The return value says
// whether scanning should continue into the next segment: true only on
// a clean end-of-file. Any anomaly — torn bytes, a bad checksum, an
// in-flight record past the watermark, an exhausted budget — stops the
// whole run, because records collected after skipping an unreadable
// region would hide a sequence gap inside the batch. A segment that
// vanished (concurrent checkpoint truncation) is skipped only while the
// batch is still empty; the contiguity check in ReadBatch decides
// whether what remains is servable.
func (l *Log) readSeg(seg int, off int64, after, synced uint64, budget *int, b *Batch) (bool, error) {
	f, err := l.fs.Open(l.filePath(seg))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return len(b.Records) == 0, nil
		}
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if off < int64(len(walMagic)) {
		var magic [8]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != walMagic {
			// Stillborn file (crash or in-flight startFile): no records.
			return false, nil
		}
		off = int64(len(walMagic))
	} else if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, nil
	}
	var hdr [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// A clean EOF is the segment boundary; anything torn is the
			// writer's in-flight tail (or corruption) — stop the run.
			return err == io.EOF, nil
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			return false, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return false, nil
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return false, nil
		}
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			return false, nil
		}
		if seq > synced {
			// Not yet durable on this node; never ship it.
			return false, nil
		}
		off += recordHeaderSize + length
		if seq > after {
			b.Records = append(b.Records, payload)
			*budget -= recordHeaderSize + int(length)
		}
		b.Next = Cursor{Seg: seg, Off: off}
		if *budget <= 0 && len(b.Records) > 0 {
			return false, nil
		}
	}
}

// recordSeq peeks the sequence number off an encoded record payload.
// Only called on payloads readSeg already CRC-verified and uvarint-
// checked, so decoding cannot fail here.
func recordSeq(payload []byte) uint64 {
	seq, _ := binary.Uvarint(payload)
	return seq
}

// segIndex finds n in the ascending segment list, or -1.
func segIndex(segs []int, n int) int {
	for i, s := range segs {
		if s == n {
			return i
		}
	}
	return -1
}
