package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"provex/internal/fsx"
	"provex/internal/tweet"
)

func msg(i int) *tweet.Message {
	date := time.Date(2009, 9, 29, 18, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return tweet.Parse(tweet.ID(i), fmt.Sprintf("user%d", i%7),
		date, fmt.Sprintf("message %d about #tsunami and http://x.io/%d", i, i))
}

// appendN appends messages [from, to) under sequences from+1..to.
func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := l.Append(uint64(i+1), msg(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// collect replays the log into a slice.
func collect(t *testing.T, l *Log, after uint64) (seqs []uint64, msgs []*tweet.Message) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, m *tweet.Message) error {
		seqs = append(seqs, seq)
		msgs = append(msgs, m)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, msgs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 20 {
		t.Fatalf("LastSeq = %d", l2.LastSeq())
	}
	seqs, msgs := collect(t, l2, 0)
	if len(seqs) != 20 {
		t.Fatalf("replayed %d records", len(seqs))
	}
	for i, m := range msgs {
		want := msg(i)
		if seqs[i] != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, seqs[i])
		}
		if m.ID != want.ID || m.User != want.User || m.Text != want.Text || !m.Date.Equal(want.Date) {
			t.Fatalf("message %d mismatch: got %+v want %+v", i, m, want)
		}
		if len(m.Hashtags) != len(want.Hashtags) || len(m.URLs) != len(want.URLs) {
			t.Fatalf("message %d indicants not re-extracted: %+v", i, m)
		}
	}
}

func TestReplaySeqFilter(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 10)
	seqs, _ := collect(t, l, 7)
	if len(seqs) != 3 || seqs[0] != 8 || seqs[2] != 10 {
		t.Fatalf("filtered replay = %v", seqs)
	}
}

func TestAppendRejectsStaleSeq(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 3)
	if err := l.Append(3, msg(99)); err == nil {
		t.Fatal("stale sequence accepted")
	}
}

func TestCrashLosesOnlyUnsyncedTail(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem, SyncEvery: 4})
	appendN(t, l, 0, 10) // records 1..8 synced (two batches), 9..10 pending
	mem.Crash()

	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 8 || seqs[len(seqs)-1] != 8 {
		t.Fatalf("after crash replay = %v, want 1..8", seqs)
	}
	// The log must accept new appends for the lost sequences.
	if err := l2.Append(9, msg(8)); err != nil {
		t.Fatalf("append after crash: %v", err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 5)
	l.Close()

	// Chop the final record mid-payload.
	name := "wal/wal-000001.log"
	data, err := mem.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	mem.WriteFile(name, data[:len(data)-3])

	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 4 {
		t.Fatalf("replay after torn tail = %v, want 4 records", seqs)
	}
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d", l2.LastSeq())
	}
	// Appending over the truncated tail works.
	if err := l2.Append(5, msg(4)); err != nil {
		t.Fatal(err)
	}
	seqs, _ = collect(t, l2, 0)
	if len(seqs) != 5 {
		t.Fatalf("after re-append = %v", seqs)
	}
}

func TestCorruptRecordInTailTolerated(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 5)
	l.Close()

	name := "wal/wal-000001.log"
	data, _ := mem.ReadFile(name)
	data[len(data)-1] ^= 0xFF // flip a payload bit in the final record
	mem.WriteFile(name, data)

	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 4 {
		t.Fatalf("replay = %v, want 4 (corrupt tail dropped)", seqs)
	}
}

func TestTruncateDiscardsAndRestarts(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 10)
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l, 0)
	if len(seqs) != 0 {
		t.Fatalf("replay after truncate = %v", seqs)
	}
	// Appends continue with later sequences.
	appendN(t, l, 10, 15)
	seqs, _ = collect(t, l, 10)
	if len(seqs) != 5 || seqs[0] != 11 {
		t.Fatalf("post-truncate replay = %v", seqs)
	}
	l.Close()

	names, _ := mem.ReadDir("wal")
	if len(names) != 1 {
		t.Fatalf("files after truncate = %v, want exactly one", names)
	}
}

func TestStaleFilesFilteredWhenRemoveFails(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	l, _ := Open("wal", Options{FS: ff})
	appendN(t, l, 0, 6)
	ff.Arm(1, fsx.Fault{}, fsx.OpRemove)
	if err := l.Truncate(); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("truncate err = %v, want injected remove failure", err)
	}
	ff.Disarm()
	// The stale file survived, but its records are at or below the
	// covered sequence, so a replay after seq 6 yields nothing.
	seqs, _ := collect(t, l, 6)
	if len(seqs) != 0 {
		t.Fatalf("stale records leaked: %v", seqs)
	}
	appendN(t, l, 6, 9)
	seqs, _ = collect(t, l, 6)
	if len(seqs) != 3 || seqs[0] != 7 {
		t.Fatalf("replay = %v", seqs)
	}
}

func TestAppendFailureRepairsTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		nth  int64 // which write of the append tears: 1 = header, 2 = payload
	}{{"header", 1}, {"payload", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			mem := fsx.NewMem()
			ff := fsx.NewFault(mem)
			l, _ := Open("wal", Options{FS: ff})
			appendN(t, l, 0, 5)
			// The write tears, leaving partial garbage bytes at the
			// append position before the error surfaces.
			ff.Arm(tc.nth, fsx.Fault{TornBytes: 3}, fsx.OpWrite)
			if err := l.Append(6, msg(5)); !errors.Is(err, fsx.ErrInjected) {
				t.Fatalf("append err = %v, want injected write failure", err)
			}
			ff.Disarm()
			// The tail was repaired: the retried append lands at a clean
			// record boundary, so nothing behind it is lost to a CRC
			// mismatch at the garbage.
			appendN(t, l, 5, 10)
			l.Close()

			l2, err := Open("wal", Options{FS: mem})
			if err != nil {
				t.Fatal(err)
			}
			seqs, _ := collect(t, l2, 0)
			if len(seqs) != 10 || seqs[9] != 10 {
				t.Fatalf("replay = %v, want 1..10 with no drop after the torn append", seqs)
			}
		})
	}
}

func TestUnrepairedTailLatchesBroken(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	l, _ := Open("wal", Options{FS: ff})
	appendN(t, l, 0, 5)
	// The write tears AND the repair truncate fails: the on-disk tail
	// stays torn, so the log must refuse to write past it.
	ff.Arm(1, fsx.Fault{TornBytes: 3, Freeze: true}, fsx.OpWrite, fsx.OpTruncate)
	if err := l.Append(6, msg(5)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("append err = %v, want injected write failure", err)
	}
	ff.Disarm()
	if err := l.Append(6, msg(5)); err == nil {
		t.Fatal("append accepted on a broken log")
	}
	// Truncate is refused too: sealing the torn file into a non-final
	// position would make the next Open fail outright.
	if err := l.Truncate(); err == nil {
		t.Fatal("truncate accepted on a broken log")
	}
	l.Close()

	// The torn tail sits in the final file, where Open repairs it.
	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 5 {
		t.Fatalf("replay = %v, want records 1..5", seqs)
	}
	if err := l2.Append(6, msg(5)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestTruncateRetriesAfterFailedStart(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	l, _ := Open("wal", Options{FS: ff})
	appendN(t, l, 0, 6)
	// The new file's header sync fails mid-Truncate; the half-created
	// file must not block every later Truncate with O_EXCL debris.
	ff.Arm(1, fsx.Fault{}, fsx.OpSync)
	if err := l.Truncate(); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("truncate err = %v, want injected sync failure", err)
	}
	ff.Disarm()
	// The old file is still live for appends, and Truncate works again.
	appendN(t, l, 6, 8)
	if err := l.Truncate(); err != nil {
		t.Fatalf("truncate retry: %v", err)
	}
	appendN(t, l, 8, 10)
	seqs, _ := collect(t, l, 8)
	if len(seqs) != 2 || seqs[0] != 9 {
		t.Fatalf("replay = %v", seqs)
	}
	l.Close()
	names, _ := mem.ReadDir("wal")
	if len(names) != 1 {
		t.Fatalf("files after truncate retry = %v, want exactly one", names)
	}
}

func TestTruncateReplacesDebrisFile(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 4)
	// Debris at the next file number (a predecessor's failed start whose
	// removal also failed): Truncate must replace it, not EEXIST forever.
	mem.WriteFile("wal/wal-000002.log", []byte("debris"))
	if err := l.Truncate(); err != nil {
		t.Fatalf("truncate over debris: %v", err)
	}
	appendN(t, l, 4, 6)
	seqs, _ := collect(t, l, 4)
	if len(seqs) != 2 || seqs[0] != 5 {
		t.Fatalf("replay = %v", seqs)
	}
}

func TestSyncErrorSurfacesOnAppend(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	l, _ := Open("wal", Options{FS: ff, SyncEvery: 1})
	ff.Arm(1, fsx.Fault{}, fsx.OpSync)
	if err := l.Append(1, msg(0)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("append err = %v, want injected fsync failure", err)
	}
}

func TestCrashDuringFileCreationRecovered(t *testing.T) {
	mem := fsx.NewMem()
	l, _ := Open("wal", Options{FS: mem})
	appendN(t, l, 0, 3)
	l.Sync()
	// Simulate the debris of a crashed Truncate: a follow-up file whose
	// magic never made it to disk.
	mem.WriteFile("wal/wal-000002.log", []byte("PRO")) // torn magic
	l2, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatalf("open over stillborn file: %v", err)
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 3 {
		t.Fatalf("replay = %v", seqs)
	}
	if err := l2.Append(4, msg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSealedFileErrors(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	l, _ := Open("wal", Options{FS: ff})
	appendN(t, l, 0, 4)
	// Make file 1 sealed by forcing a truncate whose remove fails, then
	// corrupt a record inside it.
	ff.Arm(1, fsx.Fault{}, fsx.OpRemove)
	_ = l.Truncate()
	ff.Disarm()
	appendN(t, l, 4, 6)
	l.Close()

	data, _ := mem.ReadFile("wal/wal-000001.log")
	data[12] ^= 0x40
	mem.WriteFile("wal/wal-000001.log", data)

	if _, err := Open("wal", Options{FS: mem}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open err = %v, want ErrCorrupt for sealed file", err)
	}
}
