// Package wal is the write-ahead log of the ingest path: every raw
// message is appended (and fsynced on a batching cadence) before it is
// applied to the in-memory engine, so a crash loses at most the
// unsynced tail — everything acknowledged survives as checkpoint +
// WAL replay.
//
// Layout: a log directory holds numbered files (wal-000001.log, ...).
// Each starts with an 8-byte magic and carries length-prefixed CRC32C-
// guarded records; one record is one message tagged with its stream
// sequence number (the engine's message ordinal). Normally a single
// file is live; Truncate — called after a checkpoint has made all
// logged messages redundant — starts a fresh file and removes the old
// ones, so stale files only pile up when removal itself fails, and
// replay filters those by sequence number anyway.
//
// Recovery contract (mirrors package storage): a torn or corrupt
// record in the final file marks the end of the log — the tail is
// truncated on Open. Corruption in an earlier file is an error, since
// sealed files are never legitimately half-written.
//
// Concurrency contract: the log has a single writer — Append, Sync,
// Truncate, Replay and Close must all come from one goroutine (the
// ingest loop). Size and the series registered by RegisterMetrics are
// the only concurrent-read surfaces: they are backed by atomics and
// safe to scrape while the writer is mid-append.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"provex/internal/fsx"
	"provex/internal/metrics"
	"provex/internal/tweet"
)

var walMagic = [8]byte{'P', 'R', 'O', 'V', 'W', 'A', 'L', '1'}

const (
	recordHeaderSize = 8 // u32 length + u32 crc32c
	// maxRecordLen caps one record's payload so a corrupt length field
	// cannot drive an absurd allocation during replay.
	maxRecordLen = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an unreadable sealed WAL file.
var ErrCorrupt = errors.New("wal: corrupt log")

// errBadMagic distinguishes a file whose header never made it to disk
// (crash during creation — recoverable for the final file) from record
// corruption.
var errBadMagic = errors.New("bad magic")

// Options tune a Log.
type Options struct {
	// FS is the filesystem; nil uses the real one.
	FS fsx.FS
	// SyncEvery fsyncs after every n appended records; <=1 syncs every
	// append (the maximally durable default).
	SyncEvery int
}

// Log is an open write-ahead log positioned for appending. Not safe
// for concurrent use: the ingest pipeline's single writer owns it. The
// only exceptions are Size and the RegisterMetrics instruments, which
// are atomic (or internally locked) so a metrics scrape may read them
// while the writer appends.
type Log struct {
	fs   fsx.FS
	dir  string
	opts Options

	// f through broken are owned by the single writer goroutine (the
	// pipeline's apply loop); they are never touched from another
	// goroutine, so they carry no lock. Cross-goroutine reads go
	// through the atomics below instead.
	f       fsx.File
	seg     int
	size    atomic.Int64 // bytes in the active file; atomic for scrapes
	pending int          // appended records not yet fsynced
	lastSeq uint64       // highest sequence appended or replayed
	broken  error        // set when a torn tail could not be repaired; appends refused

	// synced is the shipping watermark: the highest sequence known to be
	// fully on stable storage. Atomic, because replication readers
	// (ReadBatch) consult it from HTTP handler goroutines while the
	// single writer appends.
	synced atomic.Uint64

	// Observability: record-write latency, fsync-batch latency (one
	// observation per physical fsync, covering SyncEvery records), and
	// truncations. Exported via RegisterMetrics.
	appendTimer metrics.StageTimer
	syncHist    *metrics.Histogram
	truncations metrics.Counter
}

// RegisterMetrics exposes the log's instruments on reg under canonical
// provex_wal_* names (documented in OBSERVABILITY.md). labels are extra
// key/value pairs baked into every series — the sharded engine passes
// ("shard", "i") so each shard's WAL exports its own size gauge and
// latency series in the shared registry.
func (l *Log) RegisterMetrics(reg *metrics.Registry, labels ...string) {
	reg.RegisterTimer("provex_wal_append_seconds",
		"Cumulative time writing WAL records (excludes fsync).", &l.appendTimer, labels...)
	reg.RegisterHistogram("provex_wal_fsync_seconds",
		"Latency of WAL fsync batches (one fsync covers SyncEvery appends).", l.syncHist, 1e9, labels...)
	reg.RegisterCounter("provex_wal_truncations_total",
		"WAL truncations after a covering checkpoint.", &l.truncations, labels...)
	reg.RegisterGaugeFunc("provex_wal_size_bytes",
		"Byte length of the active WAL file.", func() float64 { return float64(l.Size()) }, labels...)
}

// fsyncBounds bucket WAL fsync-batch latency from 50µs (page cache
// absorbing the write) to 1s (saturated or faulty disk).
var fsyncBounds = []int64{
	int64(50 * time.Microsecond), int64(100 * time.Microsecond),
	int64(250 * time.Microsecond), int64(500 * time.Microsecond),
	int64(time.Millisecond), int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond), int64(10 * time.Millisecond),
	int64(25 * time.Millisecond), int64(50 * time.Millisecond),
	int64(100 * time.Millisecond), int64(250 * time.Millisecond),
	int64(500 * time.Millisecond), int64(time.Second),
}

// Open opens (creating if needed) the log at dir, verifies existing
// files and truncates a torn tail in the final one, leaving the log
// positioned for appends. Use Replay before appending to feed logged
// messages back into the engine.
func Open(dir string, opts Options) (*Log, error) {
	opts.FS = fsx.Default(opts.FS)
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{fs: opts.FS, dir: dir, opts: opts, syncHist: metrics.NewHistogram(fsyncBounds...)}
	segs, err := l.listFiles()
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if n := len(segs); n > 0 {
		// A final file without a complete magic is the debris of a crash
		// during file creation; it never held a record. Drop it and fall
		// back to the previous file (or a fresh one).
		if _, _, err := l.scanFile(segs[n-1], true, 0, nil); errors.Is(err, errBadMagic) {
			if rmErr := l.fs.Remove(l.filePath(segs[n-1])); rmErr != nil {
				return nil, fmt.Errorf("wal: remove stillborn file: %w", rmErr)
			}
			segs = segs[:n-1]
		}
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		validLen, maxSeq, err := l.scanFile(seg, last, 0, nil)
		if err != nil {
			return nil, err
		}
		if maxSeq > l.lastSeq {
			l.lastSeq = maxSeq
		}
		if last {
			l.seg = seg
			l.size.Store(validLen)
		}
	}
	if len(segs) == 0 {
		if err := l.startFile(); err != nil {
			return nil, err
		}
		l.synced.Store(l.lastSeq)
		return l, nil
	}
	// Reopen the final file for appending, truncating any torn tail.
	f, err := l.fs.OpenFile(l.filePath(l.seg), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(l.size.Load()); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	// Everything that survived recovery is on disk by definition.
	l.synced.Store(l.lastSeq)
	return l, nil
}

// filePath names log file n.
func (l *Log) filePath(n int) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%06d.log", n))
}

// listFiles returns existing log file numbers ascending.
func (l *Log) listFiles() ([]int, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "wal-%06d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// startFile begins a fresh log file after the current number and syncs
// its header, so the file itself survives a crash. Every failure path
// leaves the log retryable: the current file stays untouched (l.seg and
// l.f change only on success), and a half-created next file is removed
// (or replaced on the next attempt) so it cannot block future starts.
func (l *Log) startFile() error {
	next := l.seg + 1
	path := l.filePath(next)
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrExist) {
		// Debris of a previously failed start; replace it.
		if rmErr := l.fs.Remove(path); rmErr == nil {
			f, err = l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		fsx.BestEffortRemove(l.fs, path)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsx.BestEffortRemove(l.fs, path)
		return fmt.Errorf("wal: %w", err)
	}
	l.seg = next
	l.f = f
	l.size.Store(int64(len(walMagic)))
	l.pending = 0
	return nil
}

// scanFile reads one log file. When fn is nil it only validates,
// returning the valid prefix length and the highest sequence seen;
// tolerateTail permits a torn final record. When fn is non-nil every
// record with seq > afterSeq is decoded and passed to it.
func (l *Log) scanFile(seg int, tolerateTail bool, afterSeq uint64, fn func(seq uint64, m *tweet.Message) error) (int64, uint64, error) {
	f, err := l.fs.Open(l.filePath(seg))
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	var maxSeq uint64
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != walMagic {
		return 0, 0, fmt.Errorf("%w: file %d: %w", ErrCorrupt, seg, errBadMagic)
	}
	offset := int64(len(walMagic))
	var hdr [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return offset, maxSeq, nil
			}
			if tolerateTail {
				return offset, maxSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: file %d: torn header at %d", ErrCorrupt, seg, offset)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			if tolerateTail {
				return offset, maxSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: file %d: oversized record at %d", ErrCorrupt, seg, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTail {
				return offset, maxSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: file %d: torn payload at %d", ErrCorrupt, seg, offset)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			if tolerateTail {
				return offset, maxSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: file %d: bad checksum at %d", ErrCorrupt, seg, offset)
		}
		seq, m, err := decodeRecord(payload)
		if err != nil {
			if tolerateTail {
				return offset, maxSeq, nil
			}
			return 0, 0, fmt.Errorf("%w: file %d: undecodable record at %d: %v", ErrCorrupt, seg, offset, err)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if fn != nil && seq > afterSeq {
			if err := fn(seq, m); err != nil {
				return 0, 0, err
			}
		}
		offset += recordHeaderSize + length
	}
}

// Replay streams every logged message with sequence > afterSeq to fn in
// log order. Call it once, after Open and before the first Append.
// afterSeq is the message count the restored checkpoint already covers.
func (l *Log) Replay(afterSeq uint64, fn func(seq uint64, m *tweet.Message) error) error {
	segs, err := l.listFiles()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for i, seg := range segs {
		if _, _, err := l.scanFile(seg, i == len(segs)-1, afterSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

// encodeRecord flattens (seq, m) into a record payload: the raw message
// fields only — indicants are re-extracted by tweet.Parse on replay, so
// the parser stays the single source of truth (same contract as the
// JSONL codec).
func encodeRecord(seq uint64, m *tweet.Message) []byte {
	buf := make([]byte, 0, 32+len(m.User)+len(m.Text))
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(m.ID))
	buf = binary.AppendVarint(buf, m.Date.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(m.User)))
	buf = append(buf, m.User...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Text)))
	buf = append(buf, m.Text...)
	return buf
}

// decodeRecord parses one record payload back into its message.
func decodeRecord(payload []byte) (uint64, *tweet.Message, error) {
	rd := recReader{data: payload}
	seq := rd.uvarint()
	id := rd.uvarint()
	nanos := rd.varint()
	user := rd.str()
	text := rd.str()
	if rd.err != nil {
		return 0, nil, rd.err
	}
	if rd.pos != len(payload) {
		return 0, nil, errors.New("trailing bytes")
	}
	m := tweet.Parse(tweet.ID(id), user, time.Unix(0, nanos).UTC(), text)
	return seq, m, nil
}

type recReader struct {
	data []byte
	pos  int
	err  error
}

func (r *recReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = errors.New("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *recReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.err = errors.New("bad varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *recReader) str() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = errors.New("bad string length")
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// Append logs message m under sequence seq (the engine ordinal it will
// occupy), fsyncing on the configured cadence. Sequences must be
// appended in increasing order. When Append returns nil and a
// subsequent Sync (explicit or cadence-driven) succeeds, the message is
// durable.
func (l *Log) Append(seq uint64, m *tweet.Message) error {
	if l.broken != nil {
		return l.broken
	}
	if seq <= l.lastSeq {
		return fmt.Errorf("wal: sequence %d not after %d", seq, l.lastSeq)
	}
	payload := encodeRecord(seq, m)
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	start := time.Now()
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.repairTail()
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		l.repairTail()
		return fmt.Errorf("wal: %w", err)
	}
	l.appendTimer.Observe(time.Since(start))
	l.size.Add(recordHeaderSize + int64(len(payload)))
	l.lastSeq = seq
	l.pending++
	if l.pending >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// repairTail rewinds the active file to its last good length after a
// failed append, so a later append starts at a clean record boundary
// instead of after dangling partial bytes whose CRC mismatch would end
// replay early and silently drop every record behind them. If the
// repair itself fails the log is latched broken: Append and Truncate
// are refused, keeping the torn tail in the final file where the next
// Open truncates it, rather than sealing it where Open must fail.
func (l *Log) repairTail() {
	if err := l.f.Truncate(l.size.Load()); err != nil {
		l.broken = fmt.Errorf("wal: tail unrepaired: %w", err)
		return
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		l.broken = fmt.Errorf("wal: tail unrepaired: %w", err)
	}
}

// Sync flushes appended records to stable storage. The fsync latency is
// observed on the fsync-batch histogram — one observation covers every
// record appended since the previous sync.
func (l *Log) Sync() error {
	if l.pending == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncHist.Observe(int64(time.Since(start)))
	l.pending = 0
	l.synced.Store(l.lastSeq)
	return nil
}

// LastSeq returns the highest sequence number appended or recovered.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Rebase resets the sequence watermarks to seq. Only valid while the
// log holds no records — immediately after Truncate — where the
// append-monotonicity guard has no content left to protect. The
// durability layer uses it when a checkpoint follows a recovery whose
// replay was trimmed below the log's scanned tail (the sharded round
// ledger, DESIGN.md §2i): the scan saw torn-round sequences above the
// consistent cut, and without the rebase every re-issued sequence
// would collide with them. Rebasing to the same value is a no-op, which
// is what every untrimmed checkpoint does.
func (l *Log) Rebase(seq uint64) {
	l.lastSeq = seq
	l.synced.Store(seq)
}

// Size returns the byte length of the active log file. Unlike the rest
// of the Log it is safe to call from any goroutine (metrics scrapes
// read it live).
func (l *Log) Size() int64 { return l.size.Load() }

// Truncate discards all logged records — call it only after a
// checkpoint has made every logged message redundant. A fresh file is
// started (and synced) before old files are removed, so a crash at any
// point leaves either the old records (harmless: replay filters by
// sequence) or the clean new file.
func (l *Log) Truncate() error {
	if l.broken != nil {
		return l.broken
	}
	if err := l.Sync(); err != nil {
		return err
	}
	old, err := l.listFiles()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	prev := l.f
	if err := l.startFile(); err != nil {
		// startFile left l.f/l.seg untouched: the old file is still
		// live and intact, so appends simply continue into it.
		return err
	}
	prev.Close()
	for _, seg := range old {
		if seg == l.seg {
			// Debris listed at this number was already replaced by the
			// fresh live file startFile just created; keep that one.
			continue
		}
		if err := l.fs.Remove(l.filePath(seg)); err != nil {
			// Stale files are tolerated: replay filters their records
			// by sequence. Surface the error so callers can count it.
			return fmt.Errorf("wal: remove stale file: %w", err)
		}
	}
	l.truncations.Inc()
	return nil
}

// Close syncs and closes the active file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	if err := l.Sync(); err != nil {
		l.f.Close()
		l.f = nil
		return err
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
