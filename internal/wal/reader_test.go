package wal

import (
	"errors"
	"sync"
	"testing"

	"provex/internal/fsx"
)

// drainBatches reads the whole shippable run in bounded batches via
// cursor resume, asserting contiguity from after+1.
func drainBatches(t *testing.T, l *Log, after uint64, maxBytes int) []uint64 {
	t.Helper()
	var seqs []uint64
	var hint Cursor
	for {
		b, err := l.ReadBatch(after, hint, maxBytes)
		if err != nil {
			t.Fatalf("ReadBatch(after=%d): %v", after, err)
		}
		if len(b.Records) == 0 {
			return seqs
		}
		for _, rec := range b.Records {
			seq, m, err := DecodeRecord(rec)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if seq != after+1 {
				t.Fatalf("sequence jump: got %d want %d", seq, after+1)
			}
			if m == nil || m.ID != 0 && m.User == "" {
				t.Fatalf("decoded junk message at seq %d: %+v", seq, m)
			}
			seqs = append(seqs, seq)
			after = seq
		}
		hint = b.Next
	}
}

func TestReadBatchRoundtrip(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 25)

	b, err := l.ReadBatch(0, Cursor{}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 25 || b.Synced != 25 {
		t.Fatalf("got %d records, synced %d", len(b.Records), b.Synced)
	}
	for i, rec := range b.Records {
		seq, m, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := msg(i)
		if seq != uint64(i+1) || m.ID != want.ID || m.Text != want.Text || !m.Date.Equal(want.Date) {
			t.Fatalf("record %d: seq %d msg %+v", i, seq, m)
		}
	}
	// Caught up: resuming from the cursor yields an empty batch, nil error.
	b2, err := l.ReadBatch(25, b.Next, 1<<20)
	if err != nil || len(b2.Records) != 0 {
		t.Fatalf("tail read: %d records, err %v", len(b2.Records), err)
	}
}

func TestReadBatchByteBudget(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 40)

	// A budget smaller than one record still makes progress (≥1 each).
	seqs := drainBatches(t, l, 0, 1)
	if len(seqs) != 40 {
		t.Fatalf("drained %d records", len(seqs))
	}
	// A mid-size budget yields multi-record batches without loss.
	if got := drainBatches(t, l, 0, 300); len(got) != 40 {
		t.Fatalf("drained %d records at 300B budget", len(got))
	}
}

func TestReadBatchWatermarkBound(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 5)
	if got := l.SyncedSeq(); got != 0 {
		t.Fatalf("synced before fsync = %d", got)
	}
	b, err := l.ReadBatch(0, Cursor{}, 1<<20)
	if err != nil || len(b.Records) != 0 {
		t.Fatalf("unsynced records shipped: %d, err %v", len(b.Records), err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSeq(); got != 5 {
		t.Fatalf("synced after fsync = %d", got)
	}
	b, err = l.ReadBatch(0, Cursor{}, 1<<20)
	if err != nil || len(b.Records) != 5 {
		t.Fatalf("after sync: %d records, err %v", len(b.Records), err)
	}
}

func TestReadBatchGapAfterTruncate(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 10)
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 15)

	// A reader behind the truncation horizon must get ErrGap, never a
	// silently discontiguous batch.
	if _, err := l.ReadBatch(3, Cursor{}, 1<<20); !errors.Is(err, ErrGap) {
		t.Fatalf("want ErrGap, got %v", err)
	}
	// A reader at the horizon resumes cleanly.
	seqs := drainBatches(t, l, 10, 1<<20)
	if len(seqs) != 5 || seqs[0] != 11 || seqs[4] != 15 {
		t.Fatalf("post-truncate drain: %v", seqs)
	}
}

func TestReadBatchStaleHintFallsBack(t *testing.T) {
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 12)

	for _, hint := range []Cursor{
		{Seg: 99, Off: 64},     // nonexistent segment
		{Seg: 1, Off: 9999},    // offset past the data
		{Seg: 1, Off: 11},      // misaligned mid-record offset
		{Seg: 1, Off: 1 << 40}, // absurd offset
	} {
		b, err := l.ReadBatch(0, hint, 1<<20)
		if err != nil {
			t.Fatalf("hint %+v: %v", hint, err)
		}
		if len(b.Records) != 12 || recordSeq(b.Records[0]) != 1 {
			t.Fatalf("hint %+v: %d records, first %d", hint, len(b.Records), recordSeq(b.Records[0]))
		}
	}
}

func TestReadBatchAcrossStaleSegments(t *testing.T) {
	// When Truncate cannot remove old files, records stay contiguous
	// across the old and new segments; the reader must walk both.
	mem := fsx.NewMem()
	ffs := fsx.NewFault(mem)
	l, err := Open("wal", Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 10)
	ffs.Arm(1, fsx.Fault{}, fsx.OpRemove)
	if err := l.Truncate(); err == nil {
		t.Fatal("expected remove failure")
	}
	ffs.Disarm()
	appendN(t, l, 10, 20)

	// Follower mid-way through the stale segment: the run spans files.
	seqs := drainBatches(t, l, 5, 64)
	if len(seqs) != 15 || seqs[0] != 6 || seqs[14] != 20 {
		t.Fatalf("cross-segment drain: %v", seqs)
	}
}

// TestReadBatchConcurrentWriter is the reader-while-writer safety
// proof: run with -race. The reader must observe every record exactly
// once, in order, while the writer appends and fsyncs on a cadence.
func TestReadBatchConcurrentWriter(t *testing.T) {
	const total = 1500
	mem := fsx.NewMem()
	l, err := Open("wal", Options{FS: mem, SyncEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := l.Append(uint64(i+1), msg(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
		if err := l.Sync(); err != nil {
			t.Errorf("final sync: %v", err)
		}
	}()

	var after uint64
	var hint Cursor
	for after < total && !t.Failed() {
		b, err := l.ReadBatch(after, hint, 4096)
		if err != nil {
			t.Fatalf("ReadBatch(after=%d): %v", after, err)
		}
		for _, rec := range b.Records {
			seq, _, err := DecodeRecord(rec)
			if err != nil {
				t.Fatalf("decode at %d: %v", after, err)
			}
			if seq != after+1 {
				t.Fatalf("sequence jump: got %d want %d", seq, after+1)
			}
			after = seq
		}
		hint = b.Next
	}
	wg.Wait()
}
