// Package trace records the provenance of the provenance index: for a
// sampled subset of ingested messages it captures the full decision a
// single Algorithm 1 application made — the summary-index candidate
// bundles with their Eq. 1 S(t,B) scores split per component, the
// winning bundle (or the new-bundle verdict with the margin it lost
// by), the Algorithm 2 parent choice with per-node Eq. 2–5 component
// scores, and the Table II connection type — plus an audit log of
// every Algorithm 3 refinement verdict with its Eq. 6 score and rank.
//
// The recorder is built for the ingest hot path: when disabled (nil
// recorder or SampleEvery <= 0) Begin is a single branch and allocates
// nothing (pinned by TestHotPathZeroAlloc); when enabled but the
// message is not sampled, the cost is one counter increment and a
// modulo. Only sampled messages pay for a Decision allocation.
//
// Concurrency contract: Begin/Commit/RecordRefine must be called from
// the single ingest goroutine (the same serialization the engine
// already requires). The ring buffers and lookup map are mutex-guarded
// so Explain/Recent/Refinements may be called concurrently from HTTP
// handlers while ingest commits new records. A Decision is built
// lock-free between Begin and Commit and is immutable after Commit —
// readers receive the shared pointer and must not mutate it.
package trace

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"provex/internal/metrics"
)

// CandidateScore is one Eq. 1 evaluation from the match stage: a
// summary-index candidate bundle with the score split into its
// URL / hashtag / keyword / RT / freshness components
// (Total = URL+Hashtag+Keyword+RT+Freshness, accumulated in the same
// order as score.BundleSim so it is bit-identical to the score the
// engine compared against the threshold).
type CandidateScore struct {
	Bundle    uint64  `json:"bundle"`
	Hits      int     `json:"hits"` // summary-index indicant hits (fetch rank)
	URL       float64 `json:"url"`
	Hashtag   float64 `json:"hashtag"`
	Keyword   float64 `json:"keyword"`
	RT        float64 `json:"rt"`
	Freshness float64 `json:"freshness"`
	Total     float64 `json:"total"`
	// Skipped is non-empty when the candidate was fetched but never
	// scored: "evicted" (no longer in the pool), "closed", or "pruned"
	// (its Eq. 1 upper bound could not beat the running best, so the
	// match stage skipped the full scoring — DESIGN.md §2g).
	Skipped string `json:"skipped,omitempty"`
}

// ParentScore is one Algorithm 2 evaluation: an existing bundle node
// considered as the parent of the new message, with the Eq. 5 score
// split into its Eq. 2 (U), Eq. 3 (H), Eq. 4 (T), keyword and RT
// components and the Table II connection type of the would-be edge.
type ParentScore struct {
	Node    int     `json:"node"`
	MsgID   uint64  `json:"msg_id"`
	Conn    string  `json:"conn"`
	U       float64 `json:"u"`
	H       float64 `json:"h"`
	T       float64 `json:"t"`
	Keyword float64 `json:"keyword"`
	RT      float64 `json:"rt"`
	Total   float64 `json:"total"`
}

// Decision is the complete record of one sampled Algorithm 1
// application. Immutable once committed.
type Decision struct {
	Seq   uint64    `json:"seq"` // commit order, 1-based
	MsgID uint64    `json:"msg_id"`
	User  string    `json:"user"`
	Date  time.Time `json:"date"`

	// Match stage (Eq. 1). Candidates holds every fetched candidate in
	// summary-index order (hits desc, ID asc), including skipped ones.
	// CandidatesPruned (derived at Commit) counts the entries whose
	// Skipped is "pruned": candidates the upper bound eliminated before
	// full Eq. 1 scoring.
	CandidatesFetched int              `json:"candidates_fetched"`
	CandidatesDropped int              `json:"candidates_dropped"` // MaxCandidates cut
	CandidatesPruned  int              `json:"candidates_pruned"`
	Threshold         float64          `json:"threshold"`
	Candidates        []CandidateScore `json:"candidates"`

	// Verdict. For a join, Winner is the chosen bundle and Margin is
	// top1−top2 (top2 falls back to the threshold when only one
	// candidate scored). For a new bundle, Margin is threshold−best:
	// how far the best loser fell short (equal to the threshold itself
	// when nothing scored).
	NewBundle bool    `json:"new_bundle"`
	Bundle    uint64  `json:"bundle"` // where the message landed
	Winner    uint64  `json:"winner,omitempty"`
	BestScore float64 `json:"best_score"`
	Margin    float64 `json:"margin"`

	// Placement stage (Algorithm 2 / Eq. 5). Parents holds every node
	// the pruned scan actually scored, in scan order (bound-descending
	// mask groups). ParentsScored (derived at Commit) is len(Parents);
	// ParentsPruned is how many bundle nodes the scan skipped — nodes
	// sharing no indicant plus bound-pruned groups. The traced and
	// untraced paths run the identical pruned scan, so the chosen
	// Parent/Conn never depends on whether the message was sampled.
	Parents       []ParentScore `json:"parent_scores,omitempty"`
	ParentsScored int           `json:"parents_scored"`
	ParentsPruned int           `json:"parents_pruned"`
	Node          int           `json:"node"`
	Parent        int           `json:"parent"` // -1 = trail root
	ParentScore   float64       `json:"parent_score"`
	Conn          string        `json:"conn"`
}

// RefineEvent is one Algorithm 3 eviction verdict.
type RefineEvent struct {
	Seq      uint64    `json:"seq"` // record order, 1-based
	Now      time.Time `json:"now"` // simulated clock of the refine pass
	Bundle   uint64    `json:"bundle"`
	Reason   string    `json:"reason"` // aging-tiny | closed | ranked
	Size     int       `json:"size"`
	AgeHours float64   `json:"age_hours"`
	GScore   float64   `json:"g_score"` // Eq. 6 G(B); the ranking key for "ranked"
	Rank     int       `json:"rank"`    // 1-based position in the G ranking; 0 for stage-one verdicts
	Flushed  bool      `json:"flushed"` // persisted to disk vs deleted outright
}

// Options configure a Recorder.
type Options struct {
	// SampleEvery records every Nth ingested message; 1 records all,
	// <= 0 disables decision sampling entirely (refinement events are
	// still recorded — they are rare and not on the per-message path).
	SampleEvery int
	// Buffer is how many decisions and how many refinement events are
	// retained (two independent rings); <= 0 uses 4096.
	Buffer int
	// Logger, when non-nil, receives one debug-level event per
	// committed decision and per refinement event.
	Logger *slog.Logger
}

// DefaultBuffer is the ring capacity when Options.Buffer is unset.
const DefaultBuffer = 4096

// Recorder is the sampled decision ring. The zero value is unusable;
// call New. A nil *Recorder is valid and permanently disabled, so
// callers may thread one pointer without guarding every call site.
type Recorder struct {
	sample int
	logger *slog.Logger

	// count is touched only by the ingest goroutine (see the package
	// concurrency contract), so it needs no synchronisation.
	count uint64

	decisionsTotal metrics.Counter
	refinesTotal   metrics.Counter

	mu        sync.Mutex
	decisions []*Decision          // ring; nil slots until first wrap; guarded by mu
	dNext     int                  // guarded by mu
	dSeq      uint64               // guarded by mu
	byMsg     map[uint64]*Decision // guarded by mu

	refines []RefineEvent // guarded by mu
	rNext   int           // guarded by mu
	rSeq    uint64        // guarded by mu
}

// New builds a Recorder. SampleEvery <= 0 yields a recorder that never
// samples decisions but still records refinement events.
func New(opts Options) *Recorder {
	buf := opts.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	return &Recorder{
		sample:    opts.SampleEvery,
		logger:    opts.Logger,
		decisions: make([]*Decision, buf),
		byMsg:     make(map[uint64]*Decision, buf),
		refines:   make([]RefineEvent, buf),
	}
}

// Enabled reports whether the recorder samples decisions.
//
//provex:hotpath guards tracing work on the per-message path
func (r *Recorder) Enabled() bool { return r != nil && r.sample > 0 }

// SampleEvery returns the sampling period (0 when disabled).
func (r *Recorder) SampleEvery() int {
	if r == nil || r.sample <= 0 {
		return 0
	}
	return r.sample
}

// Buffer returns the ring capacity.
func (r *Recorder) Buffer() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.decisions)
}

// RegisterMetrics exposes the recorder's counters on reg.
func (r *Recorder) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("provex_trace_decisions_total",
		"Sampled ingest decisions committed to the trace ring.", &r.decisionsTotal)
	reg.RegisterCounter("provex_trace_refine_events_total",
		"Algorithm 3 refinement events recorded in the audit ring.", &r.refinesTotal)
}

// Begin starts a Decision for the message about to be ingested, or
// returns nil when the message is not sampled. The unsampled path is
// the ingest hot path: it must stay allocation-free.
//
//provex:hotpath the disabled/unsampled branch runs for every message
func (r *Recorder) Begin(msgID uint64) *Decision {
	if r == nil || r.sample <= 0 {
		return nil
	}
	r.count++
	if r.count%uint64(r.sample) != 0 {
		return nil
	}
	//provlint:ignore hotpathalloc sampled slow path: 1-in-N messages deliberately pay for their Decision record
	return &Decision{MsgID: msgID, Parent: -1, Conn: "none"}
}

// Commit finalises d — computing the winning margin from the recorded
// candidate scores — and publishes it to the ring. d must not be
// mutated afterwards.
func (r *Recorder) Commit(d *Decision) {
	if r == nil || d == nil {
		return
	}
	d.ParentsScored = len(d.Parents)
	// top1/top2 over the candidates that were actually scored. The
	// engine only joins a bundle scoring strictly above the threshold,
	// so the threshold is the natural floor for both. Pruned candidates
	// are excluded by construction: their bound proves they could not
	// have reached top1, and for the join margin a pruned top2 can only
	// widen the reported margin, never flip the verdict.
	top1, top2 := d.Threshold, d.Threshold
	for i := range d.Candidates {
		c := &d.Candidates[i]
		if c.Skipped != "" {
			if c.Skipped == "pruned" {
				d.CandidatesPruned++
			}
			continue
		}
		switch {
		case c.Total > top1:
			top1, top2 = c.Total, top1
		case c.Total > top2:
			top2 = c.Total
		}
	}
	if d.NewBundle {
		// How far the best loser fell short of joining (the threshold
		// itself when no candidate was scored at all).
		best, scored := 0.0, false
		for i := range d.Candidates {
			c := &d.Candidates[i]
			if c.Skipped == "" && (!scored || c.Total > best) {
				best, scored = c.Total, true
			}
		}
		d.BestScore = best
		d.Margin = d.Threshold
		if scored {
			d.Margin = d.Threshold - best
		}
	} else {
		d.BestScore = top1
		d.Margin = top1 - top2
	}

	r.mu.Lock()
	r.dSeq++
	d.Seq = r.dSeq
	if old := r.decisions[r.dNext]; old != nil {
		delete(r.byMsg, old.MsgID)
	}
	r.decisions[r.dNext] = d
	r.byMsg[d.MsgID] = d
	r.dNext = (r.dNext + 1) % len(r.decisions)
	r.mu.Unlock()

	r.decisionsTotal.Inc()
	if r.logger != nil && r.logger.Enabled(context.Background(), slog.LevelDebug) {
		r.logger.Debug("ingest decision",
			"msg", d.MsgID, "bundle", d.Bundle, "new_bundle", d.NewBundle,
			"candidates", len(d.Candidates), "best", d.BestScore,
			"margin", d.Margin, "parent", d.Parent, "conn", d.Conn)
	}
}

// RecordRefine appends one Algorithm 3 eviction verdict to the audit
// ring. Unlike decisions, refinement events are never sampled — they
// happen at pool-refinement cadence, not per message.
func (r *Recorder) RecordRefine(ev RefineEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rSeq++
	ev.Seq = r.rSeq
	r.refines[r.rNext] = ev
	r.rNext = (r.rNext + 1) % len(r.refines)
	r.mu.Unlock()

	r.refinesTotal.Inc()
	if r.logger != nil && r.logger.Enabled(context.Background(), slog.LevelDebug) {
		r.logger.Debug("refine eviction",
			"bundle", ev.Bundle, "reason", ev.Reason, "size", ev.Size,
			"age_hours", ev.AgeHours, "g", ev.GScore, "rank", ev.Rank,
			"flushed", ev.Flushed)
	}
}

// Explain returns the recorded decision for msgID, or false when the
// message was not sampled or has rotated out of the ring.
func (r *Recorder) Explain(msgID uint64) (*Decision, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	d, ok := r.byMsg[msgID]
	r.mu.Unlock()
	return d, ok
}

// Recent returns up to n decisions, newest first.
func (r *Recorder) Recent(n int) []*Decision {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.decisions) {
		n = len(r.decisions)
	}
	out := make([]*Decision, 0, n)
	for i := 1; i <= len(r.decisions) && len(out) < n; i++ {
		d := r.decisions[(r.dNext-i+len(r.decisions))%len(r.decisions)]
		if d == nil {
			break
		}
		out = append(out, d)
	}
	return out
}

// Refinements returns up to n refinement events, newest first.
func (r *Recorder) Refinements(n int) []RefineEvent {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.refines) {
		n = len(r.refines)
	}
	out := make([]RefineEvent, 0, n)
	for i := 1; i <= len(r.refines) && len(out) < n; i++ {
		ev := r.refines[(r.rNext-i+len(r.refines))%len(r.refines)]
		if ev.Seq == 0 {
			break
		}
		out = append(out, ev)
	}
	return out
}

// Digest summarises decision quality over a set of decisions: how often
// the stream opened a new bundle, how decisively joins won, and how
// often the match was a near-tie (margin below NearTie — the decisions
// most sensitive to weight tuning).
type Digest struct {
	Decisions     int     `json:"decisions"`
	NewBundleRate float64 `json:"new_bundle_rate"`
	MeanMargin    float64 `json:"mean_winning_margin"`
	NearTieRate   float64 `json:"near_tie_rate"`
	NearTie       float64 `json:"near_tie_threshold"`
}

// DefaultNearTie is the margin below which a join counts as a near-tie.
const DefaultNearTie = 0.05

// ComputeDigest aggregates ds. nearTie <= 0 uses DefaultNearTie.
func ComputeDigest(ds []*Decision, nearTie float64) Digest {
	if nearTie <= 0 {
		nearTie = DefaultNearTie
	}
	g := Digest{Decisions: len(ds), NearTie: nearTie}
	if len(ds) == 0 {
		return g
	}
	newBundles, joins, ties := 0, 0, 0
	marginSum := 0.0
	for _, d := range ds {
		if d.NewBundle {
			newBundles++
			continue
		}
		joins++
		marginSum += d.Margin
		if d.Margin < nearTie {
			ties++
		}
	}
	g.NewBundleRate = float64(newBundles) / float64(len(ds))
	if joins > 0 {
		g.MeanMargin = marginSum / float64(joins)
		g.NearTieRate = float64(ties) / float64(joins)
	}
	return g
}
