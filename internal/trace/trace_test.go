package trace

import (
	"testing"
)

// TestHotPathZeroAlloc is the acceptance gate for tracing on the
// ingest path: a nil recorder, a disabled recorder and an enabled but
// non-sampling call must all add zero allocations per Begin.
func TestHotPathZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		if d := nilRec.Begin(1); d != nil {
			t.Fatal("nil recorder sampled")
		}
	}); n != 0 {
		t.Errorf("nil recorder Begin allocates %.1f per op, want 0", n)
	}

	disabled := New(Options{SampleEvery: 0, Buffer: 8})
	if n := testing.AllocsPerRun(1000, func() {
		if d := disabled.Begin(1); d != nil {
			t.Fatal("disabled recorder sampled")
		}
	}); n != 0 {
		t.Errorf("disabled Begin allocates %.1f per op, want 0", n)
	}

	// Enabled with a huge period: every call takes the unsampled branch
	// (counter increment + modulo) and must still be allocation-free.
	sparse := New(Options{SampleEvery: 1 << 30, Buffer: 8})
	sparse.count = 0
	if n := testing.AllocsPerRun(1000, func() {
		if d := sparse.Begin(1); d != nil {
			t.Fatal("sparse recorder sampled within the test window")
		}
	}); n != 0 {
		t.Errorf("unsampled Begin allocates %.1f per op, want 0", n)
	}
}

func TestSampling(t *testing.T) {
	r := New(Options{SampleEvery: 3, Buffer: 16})
	sampled := 0
	for i := 1; i <= 9; i++ {
		if d := r.Begin(uint64(i)); d != nil {
			sampled++
			r.Commit(d)
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 9 at SampleEvery=3", sampled)
	}
	if got := len(r.Recent(100)); got != 3 {
		t.Errorf("Recent holds %d decisions, want 3", got)
	}
}

func TestCommitMargins(t *testing.T) {
	r := New(Options{SampleEvery: 1, Buffer: 16})

	// Join with two scored candidates: margin = top1 - top2.
	d := r.Begin(1)
	d.Threshold = 0.55
	d.Candidates = []CandidateScore{
		{Bundle: 10, Total: 0.9},
		{Bundle: 11, Total: 0.7},
		{Bundle: 12, Total: 0.2, Skipped: "closed"}, // never scored
	}
	d.Winner, d.Bundle = 10, 10
	r.Commit(d)
	if d.BestScore != 0.9 || !almost(d.Margin, 0.2) {
		t.Errorf("join margin: best=%v margin=%v", d.BestScore, d.Margin)
	}

	// Join with one scored candidate: top2 floors at the threshold.
	d = r.Begin(2)
	d.Threshold = 0.55
	d.Candidates = []CandidateScore{{Bundle: 10, Total: 0.8}}
	d.Winner, d.Bundle = 10, 10
	r.Commit(d)
	if !almost(d.Margin, 0.25) {
		t.Errorf("single-candidate margin = %v, want 0.25", d.Margin)
	}

	// New bundle with a losing candidate: margin = threshold - best.
	d = r.Begin(3)
	d.Threshold = 0.55
	d.NewBundle = true
	d.Candidates = []CandidateScore{{Bundle: 10, Total: 0.4}}
	r.Commit(d)
	if !almost(d.BestScore, 0.4) || !almost(d.Margin, 0.15) {
		t.Errorf("new-bundle margin: best=%v margin=%v", d.BestScore, d.Margin)
	}

	// New bundle with nothing scored: margin = threshold.
	d = r.Begin(4)
	d.Threshold = 0.55
	d.NewBundle = true
	r.Commit(d)
	if d.BestScore != 0 || !almost(d.Margin, 0.55) {
		t.Errorf("empty new-bundle margin: best=%v margin=%v", d.BestScore, d.Margin)
	}
}

func almost(got, want float64) bool {
	diff := got - want
	return diff < 1e-12 && diff > -1e-12
}

func TestRingRotationAndExplain(t *testing.T) {
	r := New(Options{SampleEvery: 1, Buffer: 4})
	for i := 1; i <= 6; i++ {
		d := r.Begin(uint64(i))
		d.Bundle = uint64(100 + i)
		r.Commit(d)
	}
	// Ring of 4 after 6 commits: 1 and 2 rotated out.
	for _, gone := range []uint64{1, 2} {
		if _, ok := r.Explain(gone); ok {
			t.Errorf("Explain(%d) found a rotated-out decision", gone)
		}
	}
	for _, present := range []uint64{3, 4, 5, 6} {
		d, ok := r.Explain(present)
		if !ok || d.MsgID != present || d.Bundle != 100+present {
			t.Errorf("Explain(%d) = %+v, %v", present, d, ok)
		}
	}
	recent := r.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d, want 4", len(recent))
	}
	for i, d := range recent { // newest first: 6, 5, 4, 3
		if want := uint64(6 - i); d.MsgID != want {
			t.Errorf("Recent[%d].MsgID = %d, want %d", i, d.MsgID, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].MsgID != 6 {
		t.Errorf("Recent(2) = %+v", got)
	}
	if seq := recent[0].Seq; seq != 6 {
		t.Errorf("newest Seq = %d, want 6", seq)
	}
}

func TestRefinementRing(t *testing.T) {
	r := New(Options{SampleEvery: 0, Buffer: 3}) // decisions off, refines still on
	for i := 1; i <= 5; i++ {
		r.RecordRefine(RefineEvent{Bundle: uint64(i), Reason: "ranked", Rank: i})
	}
	evs := r.Refinements(10)
	if len(evs) != 3 {
		t.Fatalf("Refinements returned %d, want 3", len(evs))
	}
	for i, ev := range evs { // newest first: 5, 4, 3
		if want := uint64(5 - i); ev.Bundle != want || ev.Seq != want {
			t.Errorf("Refinements[%d] = %+v, want bundle/seq %d", i, ev, want)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() || r.SampleEvery() != 0 || r.Buffer() != 0 {
		t.Error("nil recorder reports enabled state")
	}
	r.Commit(nil)
	r.RecordRefine(RefineEvent{})
	if _, ok := r.Explain(1); ok {
		t.Error("nil Explain found something")
	}
	if r.Recent(5) != nil || r.Refinements(5) != nil {
		t.Error("nil reads returned data")
	}
}

func TestComputeDigest(t *testing.T) {
	if g := ComputeDigest(nil, 0); g.Decisions != 0 || g.NearTie != DefaultNearTie {
		t.Errorf("empty digest = %+v", g)
	}
	ds := []*Decision{
		{NewBundle: false, Margin: 0.30},
		{NewBundle: false, Margin: 0.01}, // near-tie
		{NewBundle: false, Margin: 0.20},
		{NewBundle: true, Margin: 0.55},
	}
	g := ComputeDigest(ds, 0)
	if g.Decisions != 4 {
		t.Errorf("decisions = %d", g.Decisions)
	}
	if !almost(g.NewBundleRate, 0.25) {
		t.Errorf("new-bundle rate = %v", g.NewBundleRate)
	}
	if !almost(g.MeanMargin, (0.30+0.01+0.20)/3) {
		t.Errorf("mean margin = %v", g.MeanMargin)
	}
	if !almost(g.NearTieRate, 1.0/3) {
		t.Errorf("near-tie rate = %v", g.NearTieRate)
	}
	// Custom near-tie threshold sweeps in the 0.20 join too.
	if g := ComputeDigest(ds, 0.25); !almost(g.NearTieRate, 2.0/3) {
		t.Errorf("near-tie rate at 0.25 = %v", g.NearTieRate)
	}
}
