// Package sumindex implements the paper's summary index (Section IV-B,
// Figure 5): an inverted index whose top-level keys are bundle
// indicants — hashtags, URLs, keywords, and the RT-oriented user class —
// and whose posting lists enumerate the bundles carrying each indicant
// together with occurrence counts.
//
// The index serves two operations on the ingest hot path:
//
//   - Candidates: given a new message's indicants, fetch the candidate
//     bundle list (Algorithm 1, step 1);
//   - Observe/Forget: keep the postings in sync as messages join
//     bundles and as the pool evicts bundles (Algorithm 1, step 3 and
//     Algorithm 3's delete_index).
//
// Posting storage follows the slab policy of Asadi, Lin & Busch
// ("Dynamic Memory Allocation Policies for Postings in Real-Time
// Twitter Search"): each term's postings live in an ID-sorted slice
// whose capacity grows through power-of-two size classes, and slabs
// freed by Forget are recycled through per-class freelists instead of
// being handed back to the garbage collector. Candidate fetch reuses
// internal scratch buffers, so the steady-state ingest path allocates
// only when a term's posting list genuinely outgrows its slab.
package sumindex

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"

	"provex/internal/metrics"
	"provex/internal/score"
)

// Class identifies an indicant family — a top-level key group of the
// summary index.
type Class uint8

// Indicant classes. ClassUser is the paper's "more system specific
// fields can also be included, like the RT information": it lets a
// re-share route to the bundle containing the re-shared user's posts.
const (
	ClassTag Class = iota
	ClassURL
	ClassKeyword
	ClassUser
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTag:
		return "hashtag"
	case ClassURL:
		return "url"
	case ClassKeyword:
		return "keyword"
	case ClassUser:
		return "user"
	default:
		return fmt.Sprintf("class%d", uint8(c))
	}
}

// BundleID mirrors bundle.ID without importing the bundle package,
// keeping sumindex reusable below it in the dependency order.
type BundleID uint64

// Posting is one entry of a term's posting list: a bundle carrying the
// term and how many of its messages do.
type Posting struct {
	ID    BundleID
	Count uint32
}

// slab size classes: capacities 2^1 .. 2^maxSlabClass are recycled;
// larger lists (hyper-frequent terms) fall through to plain make.
const (
	maxSlabClass    = 10 // largest recycled capacity: 1024 postings
	maxFreePerClass = 256
)

// Index is the summary index. Not safe for concurrent use; the engine
// serialises ingest. Concurrent *readers* (the parallel match stage,
// queries under the pipeline's read lock) are safe as long as no
// Observe/Forget/Candidates call runs at the same time.
type Index struct {
	classes [numClasses]map[string][]Posting
	mem     metrics.MemEstimator
	// enabled masks which classes participate in Candidates — the
	// keyword class can be switched off for the ablation study.
	enabled [numClasses]bool
	// maxFanout skips postings longer than this during candidate fetch
	// (0 = unlimited). Hyper-frequent terms ("game" on a baseball
	// night) appear in thousands of bundles and carry no routing
	// signal — the textbook stop-posting cut. Postings are still fully
	// maintained, so changing the cap never loses state.
	maxFanout int

	// slabs holds recycled posting slices by capacity class; slabs[k]
	// stores slices of capacity 1<<k.
	slabs [maxSlabClass + 1][][]Posting

	// Candidate-fetch scratch, reused across calls (see Candidates).
	// hits packs the per-class hit counts of one bundle into a uint64
	// (packedHits), so one map pass yields both the ranking total and
	// the exact per-class counts the Eq. 1 upper bound needs.
	hits    map[BundleID]uint64
	candBuf []Candidate
	fetch   FetchInfo
}

// Packed per-class hit-count layout of the candidate-fetch scratch map:
// 16 bits each for URL, tag and keyword hits (a message carries at most
// a few dozen terms per class, and each traversed posting list
// contributes at most one hit per bundle), one bit for the RT user hit.
const (
	shiftURL = 0
	shiftTag = 16
	shiftKey = 32
	shiftRT  = 48
)

// New creates an empty summary index with every class enabled and no
// fanout cap.
func New() *Index {
	ix := &Index{}
	for c := range ix.classes {
		ix.classes[c] = make(map[string][]Posting)
		ix.enabled[c] = true
	}
	ix.hits = make(map[BundleID]uint64, 256)
	return ix
}

// SetEnabled toggles a class's participation in candidate fetch.
// Postings are still maintained so the class can be re-enabled.
func (ix *Index) SetEnabled(c Class, on bool) { ix.enabled[c] = on }

// SetMaxFanout bounds the posting-list length considered during
// candidate fetch; 0 removes the bound.
func (ix *Index) SetMaxFanout(n int) { ix.maxFanout = n }

// Observe registers that doc joined bundle id: every indicant of the
// message raises its posting count for that bundle (Algorithm 1,
// step 3 — "update summary index").
func (ix *Index) Observe(id BundleID, doc score.Doc) {
	m := doc.Msg
	for _, h := range m.Hashtags {
		ix.add(ClassTag, h, id)
	}
	for _, u := range m.URLs {
		ix.add(ClassURL, u, id)
	}
	for _, k := range doc.Keywords {
		ix.add(ClassKeyword, k, id)
	}
	ix.add(ClassUser, m.User, id)
}

// findPosting returns the insertion index of id in the ID-sorted list.
func findPosting(pl []Posting, id BundleID) int {
	lo, hi := 0, len(pl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (ix *Index) add(c Class, term string, id BundleID) {
	class := ix.classes[c]
	pl, ok := class[term]
	if !ok {
		pl = append(ix.allocPostings(1), Posting{ID: id, Count: 1})
		class[term] = pl
		ix.mem.Add(metrics.MapEntryCost + metrics.StringCost(term) + metrics.PostingCost)
		return
	}
	i := findPosting(pl, id)
	if i < len(pl) && pl[i].ID == id {
		pl[i].Count++
		return
	}
	// Insert at i. Bundle IDs mostly grow with the stream, so the
	// common case is an append at the tail.
	if len(pl) < cap(pl) {
		pl = pl[:len(pl)+1]
		copy(pl[i+1:], pl[i:len(pl)-1])
		pl[i] = Posting{ID: id, Count: 1}
	} else {
		grown := ix.allocPostings(len(pl) + 1)[:len(pl)+1]
		copy(grown, pl[:i])
		copy(grown[i+1:], pl[i:])
		grown[i] = Posting{ID: id, Count: 1}
		ix.recycle(pl)
		pl = grown
	}
	class[term] = pl
	ix.mem.Add(metrics.PostingCost)
}

// allocPostings returns an empty posting slice with capacity for at
// least n entries, reusing a recycled slab of the right size class when
// one is free.
func (ix *Index) allocPostings(n int) []Posting {
	k := capClass(n)
	if k <= maxSlabClass {
		if fl := ix.slabs[k]; len(fl) > 0 {
			pl := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			ix.slabs[k] = fl[:len(fl)-1]
			return pl
		}
		return make([]Posting, 0, 1<<k)
	}
	// Beyond the largest slab class, grow by 3/2 like append would —
	// such lists belong to hyper-frequent terms and are rarely freed.
	c := n + n/2
	return make([]Posting, 0, c)
}

// capClass is the smallest k with 1<<k >= n (minimum 1: the smallest
// slab holds two postings, since one-bundle terms dominate).
func capClass(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// recycle returns a posting slice's storage to its freelist. Only
// exact power-of-two capacities up to the slab bound are kept.
func (ix *Index) recycle(pl []Posting) {
	c := cap(pl)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := bits.TrailingZeros(uint(c))
	if k > maxSlabClass || len(ix.slabs[k]) >= maxFreePerClass {
		return
	}
	ix.slabs[k] = append(ix.slabs[k], pl[:0])
}

// Forget removes every posting of the bundle described by (tags, urls,
// keys, users) — the distinct indicants a bundle reports via
// Indicants(). It implements Algorithm 3's delete_index(b).
func (ix *Index) Forget(id BundleID, tags, urls, keys, users []string) {
	for _, t := range tags {
		ix.drop(ClassTag, t, id)
	}
	for _, u := range urls {
		ix.drop(ClassURL, u, id)
	}
	for _, k := range keys {
		ix.drop(ClassKeyword, k, id)
	}
	for _, u := range users {
		ix.drop(ClassUser, u, id)
	}
}

func (ix *Index) drop(c Class, term string, id BundleID) {
	class := ix.classes[c]
	pl, ok := class[term]
	if !ok {
		return
	}
	i := findPosting(pl, id)
	if i >= len(pl) || pl[i].ID != id {
		return
	}
	copy(pl[i:], pl[i+1:])
	pl = pl[:len(pl)-1]
	ix.mem.Sub(metrics.PostingCost)
	if len(pl) == 0 {
		delete(class, term)
		ix.recycle(pl)
		ix.mem.Sub(metrics.MapEntryCost + metrics.StringCost(term))
		return
	}
	class[term] = pl
}

// Candidate is one bundle surfaced by the summary index with the number
// of indicant hits that surfaced it, split per class. The per-class
// counts are exact over the posting lists the fetch traversed — the
// inputs of the Eq. 1 upper bound (score.BundleSimCeil); lists the
// fetch skipped are reported in FetchInfo as slack.
type Candidate struct {
	ID      BundleID
	Hits    int // URLHits + TagHits + KeyHits (+1 for RTHit): the fetch rank
	URLHits uint16
	TagHits uint16
	KeyHits uint16
	RTHit   bool
}

// FetchInfo describes what the last Candidates call did NOT traverse:
// per class, how many of the message's terms were skipped because the
// class is disabled or the posting list exceeded the fanout cap.
// A skipped list may still hit any candidate, so upper-bound users must
// treat each skipped term as a potential hit (BundleSimCeil's slack
// terms). Postings counts the entries actually walked — the true fetch
// cost of the message.
type FetchInfo struct {
	SkippedURL int
	SkippedTag int
	SkippedKey int
	SkippedRT  bool
	Postings   int
}

// Candidates fetches the candidate bundle list for doc (Algorithm 1,
// step 1): the union over the message's indicants of each indicant's
// posting list. The result is ordered by descending hit count, then
// ascending bundle ID, so callers can cap scoring work at the most
// promising candidates and the match stage can scan in impact order.
//
// The returned slice is internal scratch, valid only until the next
// Candidates call on this index — the ingest loop consumes it within
// one Algorithm 1 step, which is what makes candidate fetch
// allocation-free at steady state. LastFetch reports the skipped-list
// slack of the same call under the same validity contract.
//
//provex:hotpath Algorithm 1 step 1 runs per ingested message
func (ix *Index) Candidates(doc score.Doc) []Candidate {
	ix.fetch = FetchInfo{}
	clear(ix.hits)
	m := doc.Msg
	for _, h := range m.Hashtags {
		ix.collect(ClassTag, h, shiftTag)
	}
	for _, u := range m.URLs {
		ix.collect(ClassURL, u, shiftURL)
	}
	for _, k := range doc.Keywords {
		ix.collect(ClassKeyword, k, shiftKey)
	}
	if m.IsRT() {
		ix.collect(ClassUser, m.RTOf, shiftRT)
	}
	if len(ix.hits) == 0 {
		return nil
	}
	out := ix.candBuf[:0]
	for id, packed := range ix.hits {
		c := Candidate{
			ID:      id,
			URLHits: uint16(packed >> shiftURL),
			TagHits: uint16(packed >> shiftTag),
			KeyHits: uint16(packed >> shiftKey),
			RTHit:   packed>>shiftRT != 0,
		}
		c.Hits = int(c.URLHits) + int(c.TagHits) + int(c.KeyHits)
		if c.RTHit {
			c.Hits++
		}
		out = append(out, c)
	}
	slices.SortFunc(out, compareCandidates)
	ix.candBuf = out
	return out
}

// collect accumulates one term's posting list into the packed hit map,
// or records the term as skipped slack when its class is disabled or
// its list exceeds the fanout cap.
//
//provex:hotpath runs per indicant term of every ingested message
func (ix *Index) collect(c Class, term string, shift uint) {
	if !ix.enabled[c] {
		ix.noteSkip(c)
		return
	}
	pl := ix.classes[c][term]
	if ix.maxFanout > 0 && len(pl) > ix.maxFanout {
		ix.noteSkip(c)
		return
	}
	for _, p := range pl {
		ix.hits[p.ID] += 1 << shift
	}
	ix.fetch.Postings += len(pl)
}

// noteSkip records a non-traversed term for LastFetch.
func (ix *Index) noteSkip(c Class) {
	switch c {
	case ClassURL:
		ix.fetch.SkippedURL++
	case ClassTag:
		ix.fetch.SkippedTag++
	case ClassKeyword:
		ix.fetch.SkippedKey++
	case ClassUser:
		ix.fetch.SkippedRT = true
	}
}

// LastFetch returns the FetchInfo of the most recent Candidates call.
// Like the candidate slice itself, it is valid until the next call.
func (ix *Index) LastFetch() FetchInfo { return ix.fetch }

// compareCandidates orders by descending hit count, then ascending
// bundle ID — the fetch rank contract Candidates documents. A named
// function (not a closure) keeps the hot path allocation-free.
func compareCandidates(a, b Candidate) int {
	if a.Hits != b.Hits {
		return b.Hits - a.Hits
	}
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// Postings returns the posting list of term in class c, ordered by
// ascending bundle ID. The slice is the index's internal storage:
// callers must treat it as read-only and must not retain it across
// index mutations. Query support uses it for the i(q,B)
// indicant-closeness factor of Eq. 7.
func (ix *Index) Postings(c Class, term string) []Posting {
	return ix.classes[c][term]
}

// PostingCount returns term's occurrence count inside bundle id, 0 when
// the bundle does not carry the term.
func (ix *Index) PostingCount(c Class, term string, id BundleID) uint32 {
	pl := ix.classes[c][term]
	if i := findPosting(pl, id); i < len(pl) && pl[i].ID == id {
		return pl[i].Count
	}
	return 0
}

// Terms returns the number of distinct terms in class c.
func (ix *Index) Terms(c Class) int { return len(ix.classes[c]) }

// MemBytes is the analytic memory estimate of the index.
func (ix *Index) MemBytes() int64 { return ix.mem.Bytes() }

// Stats renders a per-class size summary for diagnostics.
func (ix *Index) Stats() string {
	var b strings.Builder
	for c := Class(0); c < numClasses; c++ {
		fmt.Fprintf(&b, "%s=%d ", c, len(ix.classes[c]))
	}
	fmt.Fprintf(&b, "mem=%dB", ix.MemBytes())
	return b.String()
}
