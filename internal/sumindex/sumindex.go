// Package sumindex implements the paper's summary index (Section IV-B,
// Figure 5): an inverted index whose top-level keys are bundle
// indicants — hashtags, URLs, keywords, and the RT-oriented user class —
// and whose posting lists enumerate the bundles carrying each indicant
// together with occurrence counts.
//
// The index serves two operations on the ingest hot path:
//
//   - Candidates: given a new message's indicants, fetch the candidate
//     bundle list (Algorithm 1, step 1);
//   - Observe/Forget: keep the postings in sync as messages join
//     bundles and as the pool evicts bundles (Algorithm 1, step 3 and
//     Algorithm 3's delete_index).
package sumindex

import (
	"fmt"
	"sort"
	"strings"

	"provex/internal/metrics"
	"provex/internal/score"
)

// Class identifies an indicant family — a top-level key group of the
// summary index.
type Class uint8

// Indicant classes. ClassUser is the paper's "more system specific
// fields can also be included, like the RT information": it lets a
// re-share route to the bundle containing the re-shared user's posts.
const (
	ClassTag Class = iota
	ClassURL
	ClassKeyword
	ClassUser
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTag:
		return "hashtag"
	case ClassURL:
		return "url"
	case ClassKeyword:
		return "keyword"
	case ClassUser:
		return "user"
	default:
		return fmt.Sprintf("class%d", uint8(c))
	}
}

// BundleID mirrors bundle.ID without importing the bundle package,
// keeping sumindex reusable below it in the dependency order.
type BundleID uint64

// Index is the summary index. Not safe for concurrent use; the engine
// serialises ingest.
type Index struct {
	classes [numClasses]map[string]map[BundleID]uint32
	mem     metrics.MemEstimator
	// enabled masks which classes participate in Candidates — the
	// keyword class can be switched off for the ablation study.
	enabled [numClasses]bool
	// maxFanout skips postings longer than this during candidate fetch
	// (0 = unlimited). Hyper-frequent terms ("game" on a baseball
	// night) appear in thousands of bundles and carry no routing
	// signal — the textbook stop-posting cut. Postings are still fully
	// maintained, so changing the cap never loses state.
	maxFanout int
}

// New creates an empty summary index with every class enabled and no
// fanout cap.
func New() *Index {
	ix := &Index{}
	for c := range ix.classes {
		ix.classes[c] = make(map[string]map[BundleID]uint32)
		ix.enabled[c] = true
	}
	return ix
}

// SetEnabled toggles a class's participation in candidate fetch.
// Postings are still maintained so the class can be re-enabled.
func (ix *Index) SetEnabled(c Class, on bool) { ix.enabled[c] = on }

// SetMaxFanout bounds the posting-list length considered during
// candidate fetch; 0 removes the bound.
func (ix *Index) SetMaxFanout(n int) { ix.maxFanout = n }

// Observe registers that doc joined bundle id: every indicant of the
// message raises its posting count for that bundle (Algorithm 1,
// step 3 — "update summary index").
func (ix *Index) Observe(id BundleID, doc score.Doc) {
	m := doc.Msg
	for _, h := range m.Hashtags {
		ix.add(ClassTag, h, id)
	}
	for _, u := range m.URLs {
		ix.add(ClassURL, u, id)
	}
	for _, k := range doc.Keywords {
		ix.add(ClassKeyword, k, id)
	}
	ix.add(ClassUser, m.User, id)
}

func (ix *Index) add(c Class, term string, id BundleID) {
	posting, ok := ix.classes[c][term]
	if !ok {
		posting = make(map[BundleID]uint32, 1)
		ix.classes[c][term] = posting
		ix.mem.Add(metrics.MapEntryCost + metrics.StringCost(term))
	}
	if posting[id] == 0 {
		ix.mem.Add(metrics.PostingCost)
	}
	posting[id]++
}

// Forget removes every posting of the bundle described by (tags, urls,
// keys, users) — the distinct indicants a bundle reports via
// Indicants(). It implements Algorithm 3's delete_index(b).
func (ix *Index) Forget(id BundleID, tags, urls, keys, users []string) {
	for _, t := range tags {
		ix.drop(ClassTag, t, id)
	}
	for _, u := range urls {
		ix.drop(ClassURL, u, id)
	}
	for _, k := range keys {
		ix.drop(ClassKeyword, k, id)
	}
	for _, u := range users {
		ix.drop(ClassUser, u, id)
	}
}

func (ix *Index) drop(c Class, term string, id BundleID) {
	posting, ok := ix.classes[c][term]
	if !ok {
		return
	}
	if _, ok := posting[id]; !ok {
		return
	}
	delete(posting, id)
	ix.mem.Sub(metrics.PostingCost)
	if len(posting) == 0 {
		delete(ix.classes[c], term)
		ix.mem.Sub(metrics.MapEntryCost + metrics.StringCost(term))
	}
}

// Candidate is one bundle surfaced by the summary index with the number
// of indicant hits that surfaced it.
type Candidate struct {
	ID   BundleID
	Hits int
}

// Candidates fetches the candidate bundle list for doc (Algorithm 1,
// step 1): the union over the message's indicants of each indicant's
// posting list. The result is ordered by descending hit count, then
// ascending bundle ID, so callers can cap scoring work at the most
// promising candidates.
func (ix *Index) Candidates(doc score.Doc) []Candidate {
	m := doc.Msg
	hits := make(map[BundleID]int)
	collect := func(c Class, term string) {
		if !ix.enabled[c] {
			return
		}
		posting := ix.classes[c][term]
		if ix.maxFanout > 0 && len(posting) > ix.maxFanout {
			return
		}
		for id := range posting {
			hits[id]++
		}
	}
	for _, h := range m.Hashtags {
		collect(ClassTag, h)
	}
	for _, u := range m.URLs {
		collect(ClassURL, u)
	}
	for _, k := range doc.Keywords {
		collect(ClassKeyword, k)
	}
	if m.IsRT() {
		collect(ClassUser, m.RTOf)
	}
	if len(hits) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(hits))
	for id, n := range hits {
		out = append(out, Candidate{ID: id, Hits: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Postings returns the bundles carrying term in class c, with counts.
// Query support uses it for the i(q,B) indicant-closeness factor of
// Eq. 7.
func (ix *Index) Postings(c Class, term string) map[BundleID]uint32 {
	return ix.classes[c][term]
}

// Terms returns the number of distinct terms in class c.
func (ix *Index) Terms(c Class) int { return len(ix.classes[c]) }

// MemBytes is the analytic memory estimate of the index.
func (ix *Index) MemBytes() int64 { return ix.mem.Bytes() }

// Stats renders a per-class size summary for diagnostics.
func (ix *Index) Stats() string {
	var b strings.Builder
	for c := Class(0); c < numClasses; c++ {
		fmt.Fprintf(&b, "%s=%d ", c, len(ix.classes[c]))
	}
	fmt.Fprintf(&b, "mem=%dB", ix.MemBytes())
	return b.String()
}
