package sumindex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var base = time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)

func doc(id tweet.ID, user, text string) score.Doc {
	m := tweet.Parse(id, user, base.Add(time.Duration(id)*time.Minute), text)
	return score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

func TestObserveAndCandidates(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "a", "game on #redsox http://bit.ly/x"))
	ix.Observe(2, doc(2, "b", "other topic #politics"))

	cands := ix.Candidates(doc(3, "c", "watching #redsox tonight"))
	if len(cands) != 1 || cands[0].ID != 1 {
		t.Fatalf("Candidates = %v, want bundle 1", cands)
	}
	if cands[0].Hits < 1 {
		t.Errorf("Hits = %d, want >= 1", cands[0].Hits)
	}
}

func TestCandidatesRankedByHits(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "a", "#redsox only"))
	ix.Observe(2, doc(2, "b", "#redsox #yankees http://bit.ly/x game"))

	cands := ix.Candidates(doc(3, "c", "game #redsox #yankees http://bit.ly/x"))
	if len(cands) != 2 {
		t.Fatalf("Candidates = %v, want 2", cands)
	}
	if cands[0].ID != 2 {
		t.Errorf("best candidate = %d, want 2 (more shared indicants)", cands[0].ID)
	}
	if cands[0].Hits <= cands[1].Hits {
		t.Errorf("hits not descending: %v", cands)
	}
}

func TestCandidatesRTUserClass(t *testing.T) {
	ix := New()
	ix.Observe(5, doc(1, "amaliebenjamin", "lester ovation"))
	rt := doc(2, "fan", "so classy RT @AmalieBenjamin: lester ovation")
	cands := ix.Candidates(rt)
	found := false
	for _, c := range cands {
		if c.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("RT did not surface the author's bundle: %v", cands)
	}
}

func TestCandidatesEmpty(t *testing.T) {
	ix := New()
	if got := ix.Candidates(doc(1, "a", "anything #tag")); got != nil {
		t.Errorf("empty index returned %v", got)
	}
	ix.Observe(1, doc(1, "a", "#redsox"))
	if got := ix.Candidates(doc(2, "b", "ugh")); got != nil {
		t.Errorf("indicant-free message returned %v", got)
	}
}

func TestForget(t *testing.T) {
	ix := New()
	d := doc(1, "a", "game #redsox http://bit.ly/x")
	ix.Observe(1, d)
	ix.Observe(2, doc(2, "b", "more #redsox"))

	// The keyword set of the observed doc includes "redsox" (the
	// tokenizer keeps hashtag words as text tokens).
	ix.Forget(1, []string{"redsox"}, []string{"bit.ly/x"}, d.Keywords, []string{"a"})
	cands := ix.Candidates(doc(3, "c", "#redsox game http://bit.ly/x"))
	for _, c := range cands {
		if c.ID == 1 {
			t.Fatalf("forgotten bundle still a candidate: %v", cands)
		}
	}
	if len(cands) != 1 || cands[0].ID != 2 {
		t.Errorf("Candidates = %v, want only bundle 2", cands)
	}
	// Forgetting again is a no-op.
	ix.Forget(1, []string{"redsox"}, nil, nil, nil)
}

func TestMemoryAccounting(t *testing.T) {
	ix := New()
	if ix.MemBytes() != 0 {
		t.Fatalf("fresh index mem = %d", ix.MemBytes())
	}
	d := doc(1, "a", "game #redsox http://bit.ly/x")
	ix.Observe(1, d)
	grown := ix.MemBytes()
	if grown <= 0 {
		t.Fatal("Observe did not grow memory estimate")
	}
	ix.Forget(1, d.Msg.Hashtags, d.Msg.URLs, d.Keywords, []string{"a"})
	if got := ix.MemBytes(); got != 0 {
		t.Errorf("mem after full forget = %d, want 0", got)
	}
}

func TestDuplicateObserveCounts(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "a", "#redsox"))
	ix.Observe(1, doc(2, "b", "#redsox again"))
	p := ix.Postings(ClassTag, "redsox")
	if len(p) != 1 || p[0].ID != 1 || p[0].Count != 2 {
		t.Errorf("postings = %v, want [{1 2}]", p)
	}
	if got := ix.PostingCount(ClassTag, "redsox", 1); got != 2 {
		t.Errorf("PostingCount = %d, want 2", got)
	}
	if got := ix.PostingCount(ClassTag, "redsox", 9); got != 0 {
		t.Errorf("PostingCount(absent) = %d, want 0", got)
	}
	if ix.Terms(ClassTag) != 1 {
		t.Errorf("Terms = %d, want 1", ix.Terms(ClassTag))
	}
}

func TestSetEnabled(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "a", "shared keyword story"))
	if got := ix.Candidates(doc(2, "b", "keyword story overlap")); len(got) == 0 {
		t.Fatal("keyword class should surface candidate")
	}
	ix.SetEnabled(ClassKeyword, false)
	if got := ix.Candidates(doc(3, "c", "keyword story overlap")); got != nil {
		t.Errorf("disabled keyword class still surfaced %v", got)
	}
	ix.SetEnabled(ClassKeyword, true)
	if got := ix.Candidates(doc(4, "d", "keyword story overlap")); len(got) == 0 {
		t.Error("re-enabled keyword class returned nothing")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassTag: "hashtag", ClassURL: "url", ClassKeyword: "keyword", ClassUser: "user",
	} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestStats(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "a", "#redsox game"))
	s := ix.Stats()
	if !strings.Contains(s, "hashtag=1") || !strings.Contains(s, "mem=") {
		t.Errorf("Stats = %q", s)
	}
}

// Property: Observe followed by Forget of the same indicants always
// restores memory to its prior value and removes the bundle from every
// candidate list.
func TestObserveForgetInverseProperty(t *testing.T) {
	texts := []string{
		"game on #redsox", "breaking http://bit.ly/q #news", "plain words here",
		"#a #b #c multi tag", "RT @someone: shared thing", "ugh",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		// Background noise owned by bundle 99.
		ix.Observe(99, doc(1000, "z", texts[rng.Intn(len(texts))]))
		before := ix.MemBytes()

		d := doc(1, "u", texts[rng.Intn(len(texts))])
		ix.Observe(7, d)
		var users []string
		users = append(users, d.Msg.User)
		ix.Forget(7, d.Msg.Hashtags, d.Msg.URLs, d.Keywords, users)

		if ix.MemBytes() != before {
			return false
		}
		for _, c := range ix.Candidates(d) {
			if c.ID == 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: candidate hit counts never exceed the number of indicants
// the probing message carries.
func TestCandidateHitBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New()
		for i := 0; i < 20; i++ {
			ix.Observe(BundleID(rng.Intn(5)), doc(tweet.ID(i+1), "u",
				"word"+string(rune('a'+rng.Intn(4)))+" #tag"+string(rune('a'+rng.Intn(3)))))
		}
		probe := doc(100, "p", "worda wordb #taga #tagb")
		nIndicants := len(probe.Msg.Hashtags) + len(probe.Msg.URLs) + len(probe.Keywords)
		for _, c := range ix.Candidates(probe) {
			if c.Hits > nIndicants {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCandidates(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		text := "topic" + string(rune('a'+rng.Intn(26))) + " #tag" + string(rune('a'+rng.Intn(26)))
		ix.Observe(BundleID(i%3000), doc(tweet.ID(i+1), "u", text))
	}
	probe := doc(99999, "p", "topicq thing #tagm #tagz")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Candidates(probe)
	}
}

func TestMaxFanoutCapsCandidateFetch(t *testing.T) {
	ix := New()
	// Six distinct bundles all carry the same hashtag.
	for i := 1; i <= 6; i++ {
		ix.Observe(BundleID(i), doc(tweet.ID(i), "u", "#everywhere item"))
	}
	probe := doc(99, "p", "#everywhere")
	if got := ix.Candidates(probe); len(got) != 6 {
		t.Fatalf("uncapped Candidates = %d, want 6", len(got))
	}
	ix.SetMaxFanout(5)
	if got := ix.Candidates(probe); got != nil {
		t.Errorf("capped Candidates = %v, want nil (posting length 6 > cap 5)", got)
	}
	// A posting at exactly the cap still serves.
	ix.SetMaxFanout(6)
	if got := ix.Candidates(probe); len(got) != 6 {
		t.Errorf("cap==len Candidates = %d, want 6", len(got))
	}
	// Cap removal restores full fetch.
	ix.SetMaxFanout(0)
	if got := ix.Candidates(probe); len(got) != 6 {
		t.Errorf("uncapped again = %d, want 6", len(got))
	}
}

// TestCandidatePerClassHits verifies the packed per-class split the
// Eq. 1 upper bound consumes: class counts must sum to Hits and match
// the terms each bundle actually carries.
func TestCandidatePerClassHits(t *testing.T) {
	ix := New()
	ix.Observe(1, doc(1, "ann", "game on #redsox #sox http://bit.ly/x"))
	ix.Observe(2, doc(2, "bob", "other talk #redsox"))

	cands := ix.Candidates(doc(3, "cat", "RT @ann: game on #redsox #sox http://bit.ly/x"))
	if len(cands) != 2 {
		t.Fatalf("Candidates = %v, want 2", cands)
	}
	byID := map[BundleID]Candidate{}
	for _, c := range cands {
		if got := int(c.URLHits) + int(c.TagHits) + int(c.KeyHits) + b2i(c.RTHit); got != c.Hits {
			t.Errorf("bundle %d: class hits sum %d != Hits %d", c.ID, got, c.Hits)
		}
		byID[c.ID] = c
	}
	c1 := byID[1]
	if c1.URLHits != 1 || c1.TagHits != 2 || !c1.RTHit {
		t.Errorf("bundle 1 = %+v, want url=1 tag=2 rt=true", c1)
	}
	c2 := byID[2]
	if c2.URLHits != 0 || c2.TagHits != 1 || c2.RTHit {
		t.Errorf("bundle 2 = %+v, want url=0 tag=1 rt=false", c2)
	}
	if fi := ix.LastFetch(); fi.SkippedURL != 0 || fi.SkippedTag != 0 || fi.SkippedKey != 0 || fi.SkippedRT {
		t.Errorf("LastFetch = %+v, want no skipped lists", ix.LastFetch())
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestLastFetchSlack verifies that every list the fetch does not
// traverse — fanout-cut or class-disabled — is reported as slack, which
// is what keeps the Eq. 1 upper bound sound for those candidates.
func TestLastFetchSlack(t *testing.T) {
	ix := New()
	for i := 1; i <= 4; i++ {
		ix.Observe(BundleID(i), doc(tweet.ID(i), "ann", "#hot stuff"))
	}
	ix.Observe(5, doc(5, "bob", "#cool stuff"))

	// #hot's posting list (4 bundles) exceeds the cap; #cool and bob's
	// user list (1 each) do not.
	ix.SetMaxFanout(2)
	cands := ix.Candidates(doc(9, "cat", "RT @bob: #hot #cool things"))
	fi := ix.LastFetch()
	if fi.SkippedTag != 1 {
		t.Errorf("SkippedTag = %d, want 1 (#hot cut by fanout)", fi.SkippedTag)
	}
	if fi.SkippedRT {
		t.Errorf("SkippedRT = true, want false (user list under cap)")
	}
	for _, c := range cands {
		if c.ID == 5 && c.TagHits != 1 {
			t.Errorf("bundle 5 TagHits = %d, want 1 (#cool)", c.TagHits)
		}
	}

	// A disabled class skips every term of that class.
	ix.SetMaxFanout(0)
	ix.SetEnabled(ClassKeyword, false)
	ix.Candidates(doc(10, "dee", "stuff things #cool"))
	if fi := ix.LastFetch(); fi.SkippedKey == 0 {
		t.Errorf("LastFetch = %+v, want SkippedKey > 0 with keyword class disabled", fi)
	}
	ix.SetEnabled(ClassUser, false)
	ix.Candidates(doc(11, "eve", "RT @ann: #hot"))
	if fi := ix.LastFetch(); !fi.SkippedRT {
		t.Errorf("LastFetch = %+v, want SkippedRT with user class disabled", fi)
	}
}
