package experiments

import (
	"time"

	"provex/internal/gen"
)

// Scale sizes an experiment run. The paper ingests 700k messages for
// most figures and 4.25M for the Figure 9 parameter sweep on a 32 GB
// server; DefaultScale shrinks both by roughly 7× so the whole suite
// runs in minutes on a laptop, keeping every ratio (pool limit /
// message count, checkpoints / stream length) intact so the figures
// keep their shapes. PaperScale reproduces the original sizes.
type Scale struct {
	Messages      int   // stream length for Figs 6,7,8,11,12,13
	SweepMessages int   // stream length for the Fig 9 pool-limit sweep
	PoolLimit     int   // the paper's 10k bundle pool limitation
	BundleLimit   int   // max bundle size for the Bundle Limit method
	SweepLimits   []int // pool limits swept in Fig 9
	Checkpoints   int   // samples per series
	Seed          int64
}

// DefaultScale is the reduced (CI-friendly) configuration: 100k
// messages ≈ 1/7 of the paper's run, with the pool limit and sweep
// limits shrunk by the same factor.
func DefaultScale() Scale {
	return Scale{
		Messages:      100_000,
		SweepMessages: 250_000,
		PoolLimit:     1500,
		BundleLimit:   300,
		SweepLimits:   []int{300, 600, 1200, 1800, 3000, 4200, 6000},
		Checkpoints:   10,
		Seed:          1,
	}
}

// PaperScale reproduces the paper's sizes: 700k message main runs,
// 4.25M sweep, pool limit 10k, sweep limits 5k–100k.
func PaperScale() Scale {
	return Scale{
		Messages:      700_000,
		SweepMessages: 4_250_000,
		PoolLimit:     10_000,
		BundleLimit:   500,
		SweepLimits:   []int{5_000, 10_000, 20_000, 30_000, 50_000, 70_000, 100_000},
		Checkpoints:   10,
		Seed:          1,
	}
}

// genConfig is the dataset configuration shared by every experiment:
// the DefaultConfig stream shaped like the paper's 2009 crawl, seeded
// from the scale.
func (s Scale) genConfig() gen.Config {
	cfg := gen.DefaultConfig()
	cfg.Seed = s.Seed
	return cfg
}

// showcaseConfig adds the two scripted events of the paper's Figure 10
// (the IBM CICS partner conference and the Samoa tsunami, both
// September 2009) to the organic stream.
func (s Scale) showcaseConfig() gen.Config {
	cfg := s.genConfig()
	// Starts are early in the stream so the showcases are visible at
	// any run scale (a 10k-message bench run covers ~3.4 simulated
	// hours at the default 70k msgs/day rate).
	cfg.Scripts = []gen.EventScript{
		{
			Name:     "ibm cics partner conference",
			Hashtags: []string{"cics", "ibm"},
			Topic:    []string{"cics", "partner", "conference", "mainframe", "keynote", "session", "announce"},
			URLs:     2,
			Start:    30 * time.Minute,
			HalfLife: 6 * time.Hour,
			Weight:   25,
		},
		{
			Name:     "samoa tsunami",
			Hashtags: []string{"tsunami", "samoa"},
			Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast", "relief"},
			URLs:     3,
			Start:    90 * time.Minute,
			HalfLife: 5 * time.Hour,
			Weight:   40,
		},
	}
	return cfg
}

// checkpointEvery returns the sampling stride for a stream of n
// messages.
func (s Scale) checkpointEvery(n int) int {
	if s.Checkpoints <= 0 {
		return n
	}
	every := n / s.Checkpoints
	if every < 1 {
		every = 1
	}
	return every
}
