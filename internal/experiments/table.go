// Package experiments regenerates every figure of the paper's
// evaluation (Section VI) on the synthetic stream: one entry point per
// figure, each returning text tables whose rows are the series the
// paper plots. cmd/provbench renders them; bench_test.go wraps them in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows behind one figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the comparison against the paper's reported shape,
	// quoted into EXPERIMENTS.md.
	Notes string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
