package experiments

import (
	"fmt"
	"runtime"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/pipeline"
	"provex/internal/stream"
	"provex/internal/tweet"
)

// IngestBench measures ingest throughput of the serial engine against
// the parallel pipeline (prepare fan-out + parallel Eq. 1 match) on the
// scale's main stream — the engineering companion to the paper's
// Figure 13 stage breakdown. Both runs ingest clone-identical streams
// and the resulting snapshots are asserted equal (modulo timers), so
// the speedup column never reports a run that changed bundle
// assignment.
func IngestBench(s Scale, workers int) *Table {
	if workers < 2 {
		workers = 4
	}
	g := gen.New(s.genConfig())
	msgs := make([]*tweet.Message, s.Messages)
	for i := range msgs {
		msgs[i] = g.Next()
	}

	run := func(w, mw int) (float64, core.Stats) {
		clones := stream.CloneSlice(msgs)
		cfg := core.PartialIndexConfig(s.PoolLimit)
		cfg.Parallel = core.ParallelOptions{Workers: w, MatchWorkers: mw}
		e := core.New(cfg, nil, nil)
		start := time.Now()
		n, err := pipeline.IngestAll(e, stream.NewSliceSource(clones))
		if err != nil || n != len(clones) {
			panic(fmt.Sprintf("experiments: ingest bench: (%d, %v)", n, err))
		}
		return float64(n) / time.Since(start).Seconds(), e.Snapshot()
	}

	serialRate, serialStats := run(1, 1)
	parRate, parStats := run(workers, workers/2)

	if serialStats.Messages != parStats.Messages ||
		serialStats.BundlesCreated != parStats.BundlesCreated ||
		serialStats.EdgesCreated != parStats.EdgesCreated {
		panic(fmt.Sprintf("experiments: parallel ingest diverged from serial:\nserial:   %+v\nparallel: %+v",
			serialStats, parStats))
	}

	t := &Table{
		Title:   fmt.Sprintf("Ingest throughput, serial vs parallel pipeline (n=%d, GOMAXPROCS=%d)", s.Messages, runtime.GOMAXPROCS(0)),
		Columns: []string{"variant", "prepare_workers", "match_workers", "msgs_per_s", "speedup"},
		Notes: "identical bundle state verified across both runs; speedup requires spare cores — " +
			"the apply stage stays single-writer, so prepare fan-out only helps with GOMAXPROCS > 1",
	}
	t.AddRow("serial", 1, 1, fmt.Sprintf("%.0f", serialRate), fmt.Sprintf("%.2fx", 1.0))
	t.AddRow("parallel", workers, workers/2, fmt.Sprintf("%.0f", parRate), fmt.Sprintf("%.2fx", parRate/serialRate))
	return t
}
