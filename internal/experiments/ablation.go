package experiments

import (
	"time"

	"provex/internal/core"
	"provex/internal/eval"
	"provex/internal/gen"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// runs the ground-truth Full Index next to the ablated variants over
// one shared stream and reports final accuracy/return, bundle counts
// and ingest time.

// ablationVariant pairs a label with a configured engine.
type ablationVariant struct {
	name  string
	eng   *core.Engine
	edges *eval.EdgeSet
}

func newVariant(name string, cfg core.Config) *ablationVariant {
	es := eval.NewEdgeSet()
	return &ablationVariant{name: name, eng: core.New(cfg, nil, es.Observe), edges: es}
}

// runAblation feeds n messages to the truth engine and every variant,
// then tabulates final metrics against the truth.
func runAblation(s Scale, n int, title, notes string, variants []*ablationVariant) *Table {
	g := gen.New(s.genConfig())
	truth := eval.NewEdgeSet()
	full := core.New(core.FullIndexConfig(), nil, truth.Observe)

	for i := 0; i < n; i++ {
		m := g.Next()
		full.Insert(m.Clone())
		for _, v := range variants {
			v.eng.Insert(m.Clone())
		}
	}

	t := &Table{
		Title:   title,
		Columns: []string{"variant", "accuracy", "return", "bundles_live", "edges", "ingest_s"},
		Notes:   notes,
	}
	addRow := func(name string, eng *core.Engine, edges *eval.EdgeSet) {
		st := eng.Snapshot()
		m := eval.Compare(edges, truth)
		total := st.MatchTime + st.PlaceTime + st.RefineTime
		t.AddRow(name, m.Accuracy, m.Return, st.BundlesLive, st.EdgesCreated, round3(total))
	}
	addRow("full (truth)", full, truth)
	for _, v := range variants {
		addRow(v.name, v.eng, v.edges)
	}
	return t
}

func round3(d time.Duration) float64 {
	return float64(d.Milliseconds()) / 1000
}

// AblationCandidateFetch compares scoring every summary-index candidate
// (the paper's description) against capping at the top-K hit-ranked
// candidates.
func AblationCandidateFetch(s Scale) *Table {
	mk := func(name string, maxCand int) *ablationVariant {
		cfg := core.PartialIndexConfig(s.PoolLimit)
		cfg.MaxCandidates = maxCand
		return newVariant(name, cfg)
	}
	return runAblation(s, s.Messages/2,
		"Ablation: candidate fetch policy (partial index)",
		"capping scored candidates trades little accuracy for bounded match cost",
		[]*ablationVariant{
			mk("score-all", 0),
			mk("top-32", 32),
			mk("top-8", 8),
			mk("top-2", 2),
		})
}

// AblationFreshness toggles the Eq. 1 freshness term γ — the paper's
// "a fresh bundle is more suitable to match with" intuition.
func AblationFreshness(s Scale) *Table {
	mk := func(name string, timeWeight float64) *ablationVariant {
		cfg := core.PartialIndexConfig(s.PoolLimit)
		cfg.BundleWeights.Time = timeWeight
		return newVariant(name, cfg)
	}
	return runAblation(s, s.Messages/2,
		"Ablation: Eq.1 freshness weight",
		"freshness steers ambiguous messages to the live bundle instead of a stale twin",
		[]*ablationVariant{
			mk("gamma=0.3 (default)", 0.3),
			mk("gamma=0", 0),
			mk("gamma=1.0", 1.0),
		})
}

// AblationRefineTrigger compares the paper's throttled pool check (the
// "lower bound ... avoids frequent bundle scanning") with checking on
// every insert.
func AblationRefineTrigger(s Scale) *Table {
	mk := func(name string, checkEvery int) *ablationVariant {
		cfg := core.PartialIndexConfig(s.PoolLimit)
		cfg.Pool.CheckEvery = checkEvery
		return newVariant(name, cfg)
	}
	return runAblation(s, s.Messages/2,
		"Ablation: refinement trigger cadence (partial index)",
		"per-insert checking buys nothing: refinement only fires over the limit anyway",
		[]*ablationVariant{
			mk("check-every-1024 (default)", 1024),
			mk("check-every-128", 128),
			mk("check-every-1", 1),
		})
}

// AblationKeywordClass disables the summary index's keyword class,
// leaving only hashtags, URLs and the RT user class to fetch candidate
// bundles. Since the bounded keyword term of Eq. 1 cannot cross the
// join threshold on its own (see score.DefaultBundleWeights), the
// keyword class mostly inflates candidate lists: this ablation measures
// its match-cost price against its (small) routing benefit.
func AblationKeywordClass(s Scale) *Table {
	with := newVariant("keywords on (default)", core.PartialIndexConfig(s.PoolLimit))
	without := newVariant("keywords off", core.PartialIndexConfig(s.PoolLimit))
	without.eng.SetKeywordClass(false)
	return runAblation(s, s.Messages/2,
		"Ablation: summary-index keyword class",
		"keyword postings inflate candidate fetch; Eq.1's bounded keyword term keeps their routing effect small",
		[]*ablationVariant{with, without})
}
