package experiments

import (
	"strings"
	"testing"
)

// TestFig13Sweep runs a miniature sweep and pins the shape of its
// output: evenly spaced monotone checkpoints, cumulative (never
// decreasing) stage times, and a passing linearity guardrail — tiny
// runs sit under the noise floor, so CheckLinear must not flake here.
func TestFig13Sweep(t *testing.T) {
	s := DefaultScale()
	s.PoolLimit = 200
	const max = 3000
	r := Fig13Sweep(s, max)

	if len(r.Points) != 100 {
		t.Fatalf("got %d checkpoints, want 100", len(r.Points))
	}
	if last := r.Points[len(r.Points)-1]; last.Messages != max {
		t.Fatalf("final checkpoint at %d messages, want %d", last.Messages, max)
	}
	prev := SweepPoint{}
	for i, p := range r.Points {
		if p.Messages <= prev.Messages {
			t.Fatalf("checkpoint %d: messages %d not increasing past %d", i, p.Messages, prev.Messages)
		}
		if p.MatchSec < prev.MatchSec || p.PlaceSec < prev.PlaceSec || p.RefineSec < prev.RefineSec {
			t.Fatalf("checkpoint %d: cumulative stage time decreased: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	if p := r.Points[len(r.Points)-1]; p.MatchSec <= 0 || p.PlaceSec <= 0 {
		t.Fatalf("final checkpoint has zero stage time: %+v", p)
	}

	if err := r.CheckLinear(1.5); err != nil {
		t.Errorf("CheckLinear(1.5) on a %d-message run: %v", max, err)
	}

	tab := r.Table()
	if len(tab.Rows) != len(r.Points) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(r.Points))
	}
	for _, col := range []string{"messages", "bundle_match", "message_placement", "memory_refinement"} {
		found := false
		for _, c := range tab.Columns {
			found = found || c == col
		}
		if !found {
			t.Errorf("table missing column %q (have %v)", col, tab.Columns)
		}
	}
	if !strings.Contains(tab.Title, "Fig 13") {
		t.Errorf("table title %q does not mention Fig 13", tab.Title)
	}
}

// TestFig13SweepCheckLinearCatchesQuadratic feeds CheckLinear a
// fabricated quadratic curve and expects rejection — the guardrail must
// actually guard.
func TestFig13SweepCheckLinearCatchesQuadratic(t *testing.T) {
	r := &Fig13SweepResult{Max: 100_000}
	for i := 1; i <= 10; i++ {
		n := i * 10_000
		x := float64(n) / 10_000
		r.Points = append(r.Points, SweepPoint{
			Messages: n,
			MatchSec: x * 0.05,    // linear: fine
			PlaceSec: x * x * 0.1, // quadratic: 4× per doubling
		})
	}
	err := r.CheckLinear(1.5)
	if err == nil {
		t.Fatal("CheckLinear accepted a quadratic placement curve")
	}
	if !strings.Contains(err.Error(), "message_placement") {
		t.Errorf("error %q does not name the offending stage", err)
	}

	// The same curve below the noise floor must pass.
	for i := range r.Points {
		r.Points[i].PlaceSec /= 100
		r.Points[i].MatchSec /= 100
	}
	if err := r.CheckLinear(1.5); err != nil {
		t.Errorf("CheckLinear rejected a sub-noise-floor run: %v", err)
	}
}
