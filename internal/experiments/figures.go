package experiments

import (
	"fmt"
	"sort"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/eval"
	"provex/internal/gen"
	"provex/internal/metrics"
	"provex/internal/query"
)

// Method names used across series and tables.
const (
	MethodFull    = "full"    // Full Index — no limits, ground truth
	MethodPartial = "partial" // Partial Index — pool limit + refinement
	MethodLimit   = "limit"   // Bundle Limit — partial + bundle size cap
)

// ThreeResult is the shared product of one stream pass through the
// paper's three method variants. Figures 7, 8, 11, 12 and 13 are all
// views over it.
type ThreeResult struct {
	Scale       Scale
	Checkpoints []int                // messages ingested at each sample
	Series      map[string][]float64 // "<method>/<metric>" -> values
	Final       map[string]core.Stats
}

// at reads series values safely.
func (r *ThreeResult) at(key string, i int) float64 {
	s := r.Series[key]
	if i >= len(s) {
		return 0
	}
	return s[i]
}

// RunThreeMethods ingests one generated stream (Scale.Messages long)
// through Full Index, Partial Index and Bundle Limit engines
// simultaneously — the paper's Section VI-A simulation — sampling every
// per-method metric at checkpoints.
//
// Feeding all three engines in a single pass guarantees each sees the
// byte-identical stream, and lets accuracy/return be computed against
// the ground-truth edge set at the same stream position, exactly as the
// paper's date-checkpoint collection does.
func RunThreeMethods(s Scale) *ThreeResult {
	g := gen.New(s.genConfig())

	truth := eval.NewEdgeSet()
	full := core.New(core.FullIndexConfig(), nil, truth.Observe)

	partialEdges := eval.NewEdgeSet()
	partial := core.New(core.PartialIndexConfig(s.PoolLimit), nil, partialEdges.Observe)

	limitEdges := eval.NewEdgeSet()
	limit := core.New(core.BundleLimitConfig(s.PoolLimit, s.BundleLimit), nil, limitEdges.Observe)

	methods := []struct {
		name  string
		eng   *core.Engine
		edges *eval.EdgeSet
	}{
		{MethodFull, full, truth},
		{MethodPartial, partial, partialEdges},
		{MethodLimit, limit, limitEdges},
	}

	res := &ThreeResult{Scale: s, Series: make(map[string][]float64), Final: make(map[string]core.Stats)}
	every := s.checkpointEvery(s.Messages)
	push := func(key string, v float64) { res.Series[key] = append(res.Series[key], v) }

	for i := 1; i <= s.Messages; i++ {
		m := g.Next()
		for _, mt := range methods {
			// Each engine ingests its own clone: engines annotate and
			// retain messages, and sharing pointers across engines
			// would let one variant see another's mutations.
			mt.eng.Insert(m.Clone())
		}
		if i%every == 0 || i == s.Messages {
			res.Checkpoints = append(res.Checkpoints, i)
			for _, mt := range methods {
				st := mt.eng.Snapshot()
				push(mt.name+"/bundles", float64(st.BundlesLive))
				push(mt.name+"/memMB", float64(st.MemTotal())/(1<<20))
				push(mt.name+"/msgsInMem", float64(st.MessagesInMemory))
				push(mt.name+"/time_s", (st.MatchTime + st.PlaceTime + st.RefineTime).Seconds())
				push(mt.name+"/match_s", st.MatchTime.Seconds())
				push(mt.name+"/place_s", st.PlaceTime.Seconds())
				push(mt.name+"/refine_s", st.RefineTime.Seconds())
				if mt.name != MethodFull {
					m := eval.Compare(mt.edges, truth)
					push(mt.name+"/accuracy", m.Accuracy)
					push(mt.name+"/return", m.Return)
					push(mt.name+"/matched", float64(m.Matched))
				}
			}
		}
	}
	for _, mt := range methods {
		res.Final[mt.name] = mt.eng.Snapshot()
	}
	return res
}

// Fig6 reproduces Figure 6, "Provenance Bundle Characters": the bundle
// size distribution (a) and the bundle active time-span distribution
// (b) of an unrestricted Full Index run, plus the headline bundle count
// the paper reports in Section V-A (~30k bundles from 700k messages).
func Fig6(s Scale) []*Table {
	g := gen.New(s.genConfig())
	e := core.New(core.FullIndexConfig(), nil, nil)
	for i := 0; i < s.Messages; i++ {
		e.Insert(g.Next())
	}
	sizeHist := metrics.NewPow2Histogram(14)                                // 1 .. 8192 messages
	spanHist := metrics.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512) // hours
	e.Pool().All(func(b *bundle.Bundle) {
		sizeHist.Observe(int64(b.Size()))
		span := b.EndTime().Sub(b.StartTime()).Hours()
		spanHist.Observe(int64(span + 0.5))
	})

	st := e.Snapshot()
	sizes := &Table{
		Title:   "Fig 6(a) bundle size distribution (full index, no limits)",
		Columns: []string{"size<=", "bundle_count"},
		Notes: fmt.Sprintf("%d messages -> %d bundles (paper: 700k -> ~30k); paper shape: most bundles small, long tail of large event bundles",
			st.Messages, st.BundlesLive),
	}
	buckets, _, _, _ := sizeHist.Snapshot()
	for _, b := range buckets {
		label := "overflow"
		if b.UpperBound >= 0 {
			label = fmt.Sprintf("%d", b.UpperBound)
		}
		sizes.AddRow(label, b.Count)
	}

	spans := &Table{
		Title:   "Fig 6(b) bundle time-span distribution (hours)",
		Columns: []string{"span_hours<=", "bundle_count"},
		Notes:   "paper shape: most bundles stop receiving updates within a day",
	}
	buckets, _, _, _ = spanHist.Snapshot()
	for _, b := range buckets {
		label := "overflow"
		if b.UpperBound >= 0 {
			label = fmt.Sprintf("%d", b.UpperBound)
		}
		spans.AddRow(label, b.Count)
	}
	return []*Table{sizes, spans}
}

// Fig7 is Figure 7, "Provenance Bundle Growth under Different
// Approaches": live-bundle count versus incoming messages for the
// three methods.
func Fig7(r *ThreeResult) *Table {
	t := &Table{
		Title:   "Fig 7 bundle count in pool vs incoming messages",
		Columns: []string{"messages", MethodFull, MethodPartial, MethodLimit},
		Notes:   "paper shape: full grows linearly; partial/limit saturate near the pool limit after an initial drop",
	}
	for i, n := range r.Checkpoints {
		t.AddRow(n,
			int(r.at(MethodFull+"/bundles", i)),
			int(r.at(MethodPartial+"/bundles", i)),
			int(r.at(MethodLimit+"/bundles", i)))
	}
	return t
}

// Fig8 is Figure 8: (a) accuracy and (b) return of the two partial
// methods against the Full Index ground truth, with the matched-pair
// counts the paper draws as bars.
func Fig8(r *ThreeResult) []*Table {
	acc := &Table{
		Title:   "Fig 8(a) provenance accuracy vs incoming messages",
		Columns: []string{"messages", "partial_acc", "limit_acc", "partial_matched", "limit_matched"},
		Notes:   "paper shape: both stay high (>0.5 axis); partial index slightly above bundle limit",
	}
	ret := &Table{
		Title:   "Fig 8(b) provenance return (coverage) vs incoming messages",
		Columns: []string{"messages", "partial_ret", "limit_ret", "partial_matched", "limit_matched"},
		Notes:   "paper shape: both around the middle of [0,1]; partial above bundle limit",
	}
	for i, n := range r.Checkpoints {
		pm := int(r.at(MethodPartial+"/matched", i))
		lm := int(r.at(MethodLimit+"/matched", i))
		acc.AddRow(n, r.at(MethodPartial+"/accuracy", i), r.at(MethodLimit+"/accuracy", i), pm, lm)
		ret.AddRow(n, r.at(MethodPartial+"/return", i), r.at(MethodLimit+"/return", i), pm, lm)
	}
	return []*Table{acc, ret}
}

// Fig9 is Figure 9: final-checkpoint accuracy of the Partial Index
// under different pool limits over the longer sweep stream. All limit
// variants ingest the same stream in one pass alongside the
// ground-truth engine.
func Fig9(s Scale) *Table {
	g := gen.New(s.genConfig())
	truth := eval.NewEdgeSet()
	full := core.New(core.FullIndexConfig(), nil, truth.Observe)

	type variant struct {
		limit int
		eng   *core.Engine
		edges *eval.EdgeSet
	}
	variants := make([]*variant, 0, len(s.SweepLimits))
	for _, lim := range s.SweepLimits {
		es := eval.NewEdgeSet()
		variants = append(variants, &variant{
			limit: lim,
			eng:   core.New(core.PartialIndexConfig(lim), nil, es.Observe),
			edges: es,
		})
	}

	t := &Table{
		Title:   "Fig 9 accuracy under different pool limits (partial index)",
		Columns: []string{"messages"},
		Notes:   "paper shape: small pools degrade hard; pools >= ~0.5% of stream stay stable and high",
	}
	for _, v := range variants {
		t.Columns = append(t.Columns, fmt.Sprintf("pool_%d", v.limit))
	}

	every := s.checkpointEvery(s.SweepMessages)
	for i := 1; i <= s.SweepMessages; i++ {
		m := g.Next()
		full.Insert(m.Clone())
		for _, v := range variants {
			v.eng.Insert(m.Clone())
		}
		if i%every == 0 || i == s.SweepMessages {
			row := []interface{}{i}
			for _, v := range variants {
				row = append(row, eval.Compare(v.edges, truth).Accuracy)
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig10 reproduces Figure 10's showcase bundles: two scripted September
// 2009 events (the IBM CICS partner conference and the Samoa tsunami)
// are injected into the stream, retrieved by query, and their
// provenance trails rendered. It returns the summary table and the two
// rendered trails.
func Fig10(s Scale) (*Table, []string) {
	g := gen.New(s.showcaseConfig())
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	n := s.Messages / 2
	if n > 150_000 {
		n = 150_000 // the showcases live in the first two days of stream
	}
	for i := 0; i < n; i++ {
		proc.Insert(g.Next())
	}
	t := &Table{
		Title:   "Fig 10 extracted provenance bundle showcases",
		Columns: []string{"event", "bundle_id", "size", "last_post", "summary"},
		Notes:   "paper: red root node, provenance connections reveal propagation trails",
	}
	var trails []string
	for _, q := range []struct{ name, query string }{
		{"IBM CICS partner conference", "cics ibm conference"},
		{"Samoa tsunami", "tsunami samoa"},
	} {
		hits := proc.SearchBundles(q.query, 1)
		if len(hits) == 0 {
			t.AddRow(q.name, "-", 0, "-", "no bundle found")
			continue
		}
		h := hits[0]
		t.AddRow(q.name, h.ID, h.Size, h.LastPost.Format("2006-01-02 15:04"), fmt.Sprintf("%v", h.Summary))
		trail, err := proc.Trail(h.ID)
		if err != nil {
			trail = fmt.Sprintf("trail error: %v", err)
		}
		trails = append(trails, trail)
	}
	return t, trails
}

// Fig11 is Figure 11: (a) estimated memory cost in MB and (b) message
// count held in memory, per method over the stream.
func Fig11(r *ThreeResult) []*Table {
	mem := &Table{
		Title:   "Fig 11(a) memory cost (estimated MB) vs incoming messages",
		Columns: []string{"messages", MethodFull, MethodPartial, MethodLimit},
		Notes:   "paper shape: full grows unboundedly (~170M); partial variants flat at a low level (~10M)",
	}
	cnt := &Table{
		Title:   "Fig 11(b) message count in memory vs incoming messages",
		Columns: []string{"messages", MethodFull, MethodPartial, MethodLimit},
		Notes:   "paper shape: same ordering as (a), hardware-independent",
	}
	for i, n := range r.Checkpoints {
		mem.AddRow(n, r.at(MethodFull+"/memMB", i), r.at(MethodPartial+"/memMB", i), r.at(MethodLimit+"/memMB", i))
		cnt.AddRow(n,
			int(r.at(MethodFull+"/msgsInMem", i)),
			int(r.at(MethodPartial+"/msgsInMem", i)),
			int(r.at(MethodLimit+"/msgsInMem", i)))
	}
	return []*Table{mem, cnt}
}

// Fig12 is Figure 12: cumulative provenance-maintenance time per method.
func Fig12(r *ThreeResult) *Table {
	t := &Table{
		Title:   "Fig 12 cumulative time cost (seconds) vs incoming messages",
		Columns: []string{"messages", MethodFull, MethodPartial, MethodLimit},
		Notes:   "paper shape: all three linear; partial variants at or below full",
	}
	for i, n := range r.Checkpoints {
		t.AddRow(n, r.at(MethodFull+"/time_s", i), r.at(MethodPartial+"/time_s", i), r.at(MethodLimit+"/time_s", i))
	}
	return t
}

// Fig13 is Figure 13: cumulative time per pipeline stage (bundle match,
// message placement, memory refinement) for the Partial Index method.
func Fig13(r *ThreeResult) *Table {
	t := &Table{
		Title:   "Fig 13 cumulative stage time (seconds, partial index)",
		Columns: []string{"messages", "bundle_match", "message_placement", "memory_refinement"},
		Notes:   "paper shape: all stages linear and steady; refinement cheapest",
	}
	for i, n := range r.Checkpoints {
		t.AddRow(n,
			r.at(MethodPartial+"/match_s", i),
			r.at(MethodPartial+"/place_s", i),
			r.at(MethodPartial+"/refine_s", i))
	}
	return t
}

// ConnBreakdown is a bonus table (Table II instantiated): how many
// provenance edges of the ground-truth run each connection type
// contributed.
func ConnBreakdown(r *ThreeResult) *Table {
	t := &Table{
		Title:   "Connection type breakdown (full index)",
		Columns: []string{"type", "edges"},
	}
	st, ok := r.Final[MethodFull]
	if !ok {
		return t
	}
	types := make([]string, 0, len(st.ConnCounts))
	for k := range st.ConnCounts {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		t.AddRow(k, st.ConnCounts[k])
	}
	return t
}
