package experiments

import (
	"strconv"
	"testing"
)

func ablationScale() Scale {
	s := testScale()
	s.Messages = 8000
	return s
}

// checkAblation asserts the common structure: a truth row plus the
// variants, every accuracy/return within [0,1], truth row at 1/1.
func checkAblation(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if len(tab.Rows) != wantRows {
		t.Fatalf("%s: rows = %d, want %d", tab.Title, len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		acc, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad accuracy cell %q", row[1])
		}
		ret, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad return cell %q", row[2])
		}
		if acc < 0 || acc > 1 || ret < 0 || ret > 1 {
			t.Errorf("%s row %d out of range: %v", tab.Title, i, row)
		}
		if i == 0 && (acc != 1 || ret != 1) {
			t.Errorf("truth row should score 1/1: %v", row)
		}
	}
}

func TestAblationCandidateFetch(t *testing.T) {
	tab := AblationCandidateFetch(ablationScale())
	checkAblation(t, tab, 5)
	// Scoring all candidates must not be less accurate than top-2.
	all, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	top2, _ := strconv.ParseFloat(tab.Rows[4][1], 64)
	if top2 > all+0.05 {
		t.Errorf("top-2 accuracy %v above score-all %v", top2, all)
	}
}

func TestAblationFreshness(t *testing.T) {
	checkAblation(t, AblationFreshness(ablationScale()), 4)
}

func TestAblationRefineTrigger(t *testing.T) {
	checkAblation(t, AblationRefineTrigger(ablationScale()), 4)
}

func TestAblationKeywordClass(t *testing.T) {
	tab := AblationKeywordClass(ablationScale())
	checkAblation(t, tab, 3)
	// The bounded Eq.1 keyword term cannot cross the join threshold on
	// its own, so disabling the class may not lose edges — but it must
	// never *gain* any.
	withEdges, _ := strconv.ParseFloat(tab.Rows[1][4], 64)
	withoutEdges, _ := strconv.ParseFloat(tab.Rows[2][4], 64)
	if withoutEdges > withEdges {
		t.Errorf("keyword-off found %v edges, keyword-on %v — off must not gain edges", withoutEdges, withEdges)
	}
}
