package experiments

import (
	"strings"
	"testing"
)

// TestShardSweep runs a miniature scaling sweep and pins its shape:
// one point per requested count, positive throughput in both the wall
// and span columns, and a rendered table carrying every count.
func TestShardSweep(t *testing.T) {
	s := DefaultScale()
	s.Messages = 2400
	s.PoolLimit = 200
	r := ShardSweep(s, []int{1, 2, 4}, 64)

	if len(r.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(r.Points))
	}
	for _, p := range r.Points {
		if p.WallMsgsSec <= 0 || p.SpanMsgsSec <= 0 || p.SpanSec <= 0 {
			t.Fatalf("non-positive throughput at %d shards: %+v", p.Shards, p)
		}
		if p.Bundles <= 0 {
			t.Fatalf("no live bundles at %d shards", p.Shards)
		}
	}
	if r.Points[0].CrossPct != 0 {
		t.Fatalf("cross-shard resolutions at 1 shard: %+v", r.Points[0])
	}
	if sp := r.SpanSpeedup(1); sp != 1 {
		t.Fatalf("SpanSpeedup(1) = %.2f, want 1", sp)
	}
	if sp := r.SpanSpeedup(4); sp <= 0 {
		t.Fatalf("SpanSpeedup(4) = %.2f, want > 0", sp)
	}

	out := r.Table().Render()
	for _, want := range []string{"shards", "span_msgs_per_s", "critical path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestFig13SweepSharded pins the sharded stage-time sweep: cumulative
// checkpoints like the serial sweep, and a passing linearity guardrail
// (tiny runs sit under the noise floor, so it must not flake).
func TestFig13SweepSharded(t *testing.T) {
	s := DefaultScale()
	s.PoolLimit = 200
	const max = 3000
	r := Fig13SweepSharded(s, max, 4)

	if len(r.Points) != 100 {
		t.Fatalf("got %d checkpoints, want 100", len(r.Points))
	}
	if r.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", r.Shards)
	}
	prev := SweepPoint{}
	for i, p := range r.Points {
		if p.Messages <= prev.Messages {
			t.Fatalf("checkpoint %d: messages %d not increasing past %d", i, p.Messages, prev.Messages)
		}
		if p.MatchSec < prev.MatchSec || p.PlaceSec < prev.PlaceSec {
			t.Fatalf("checkpoint %d: cumulative stage time decreased: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	if err := r.CheckLinear(1.5); err != nil {
		t.Errorf("CheckLinear(1.5) on a %d-message sharded run: %v", max, err)
	}
	if !strings.Contains(r.Table().Title, "4 shards") {
		t.Fatalf("table title missing shard count: %s", r.Table().Title)
	}
}
