package experiments

import (
	"fmt"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/shard"
)

// Fig13Sweep is the long-stream variant of Fig13: one Partial Index
// engine ingests up to max messages while the cumulative per-stage
// timers are sampled at 100 evenly spaced checkpoints. It exists apart
// from RunThreeMethods because the pruning guardrail needs a long
// stream (BENCH_PR6.json runs 1M messages) at fine checkpoint
// granularity, and carrying the Full Index and Bundle Limit engines
// through it would triple the cost for series nothing reads.
//
// The output is the regression anchor for DESIGN.md §2g: with the
// candidate-pruned hot paths both the bundle_match and
// message_placement columns must grow near-linearly, where the
// pre-pruning implementation bent quadratic (BENCH_PR4.json: 677×
// placement growth over a 10× stream).
func Fig13Sweep(s Scale, max int) *Fig13SweepResult {
	g := gen.New(s.genConfig())
	e := core.New(core.PartialIndexConfig(s.PoolLimit), nil, nil)

	every := max / 100
	if every < 1 {
		every = 1
	}
	res := &Fig13SweepResult{Scale: s, Max: max}
	for i := 1; i <= max; i++ {
		e.Insert(g.Next())
		if i%every == 0 || i == max {
			st := e.Snapshot()
			res.Points = append(res.Points, SweepPoint{
				Messages:  i,
				MatchSec:  st.MatchTime.Seconds(),
				PlaceSec:  st.PlaceTime.Seconds(),
				RefineSec: st.RefineTime.Seconds(),
			})
		}
	}
	return res
}

// Fig13SweepSharded runs the same stage-time sweep through the sharded
// round engine (DESIGN.md §2i): the checkpoints sample the aggregate
// Snapshot, whose stage timers sum CPU time across shards, so the same
// CheckLinear guardrail applies — sharding must not bend the pruned
// match/placement curves back toward quadratic. The per-shard pools are
// splitConfig ceil-divisions of the same global limit.
func Fig13SweepSharded(s Scale, max, shards int) *Fig13SweepResult {
	g := gen.New(s.genConfig())
	e, err := shard.New(core.PartialIndexConfig(s.PoolLimit),
		shard.Options{Shards: shards, Sequential: true}, nil, nil)
	if err != nil {
		panic(fmt.Sprintf("experiments: sharded fig13 sweep: %v", err))
	}

	every := max / 100
	if every < 1 {
		every = 1
	}
	res := &Fig13SweepResult{Scale: s, Max: max, Shards: shards}
	for i := 1; i <= max; i++ {
		if err := e.Ingest(g.Next()); err != nil {
			panic(fmt.Sprintf("experiments: sharded fig13 sweep ingest: %v", err))
		}
		if i%every == 0 || i == max {
			if err := e.Flush(); err != nil {
				panic(fmt.Sprintf("experiments: sharded fig13 sweep flush: %v", err))
			}
			st := e.Snapshot()
			res.Points = append(res.Points, SweepPoint{
				Messages:  i,
				MatchSec:  st.MatchTime.Seconds(),
				PlaceSec:  st.PlaceTime.Seconds(),
				RefineSec: st.RefineTime.Seconds(),
			})
		}
	}
	return res
}

// SweepPoint is one checkpoint of the Figure 13 sweep: cumulative
// seconds spent per pipeline stage after Messages inserts.
type SweepPoint struct {
	Messages  int     `json:"messages"`
	MatchSec  float64 `json:"bundle_match_s"`
	PlaceSec  float64 `json:"message_placement_s"`
	RefineSec float64 `json:"memory_refinement_s"`
}

// Fig13SweepResult carries the sweep checkpoints plus enough context to
// interpret them; Table renders the figure, CheckLinear is the
// perf-smoke guardrail.
type Fig13SweepResult struct {
	Scale  Scale        `json:"scale"`
	Max    int          `json:"max"`
	Shards int          `json:"shards,omitempty"` // 0 = serial engine
	Points []SweepPoint `json:"points"`
}

// Table renders the sweep in the Fig13 column layout.
func (r *Fig13SweepResult) Table() *Table {
	engine := "partial index"
	if r.Shards > 1 {
		engine = fmt.Sprintf("partial index, %d shards", r.Shards)
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 13 sweep: cumulative stage time (seconds, %s, %d messages)", engine, r.Max),
		Columns: []string{"messages", "bundle_match", "message_placement", "memory_refinement"},
		Notes:   "paper shape: all stages linear and steady; pruned hot paths must keep match/placement linear through the full stream",
	}
	for _, p := range r.Points {
		t.AddRow(p.Messages, p.MatchSec, p.PlaceSec, p.RefineSec)
	}
	return t
}

// noiseFloorSec guards CheckLinear against judging stages whose total
// cost is within scheduler jitter: below this cumulative time a stage
// always passes.
const noiseFloorSec = 0.2

// CheckLinear asserts the perf-smoke guardrail: cumulative
// bundle_match and message_placement time at the final checkpoint must
// not exceed factor × the linear extrapolation from the half-stream
// checkpoint. For a truly linear stage final/half ≈ 2, so factor 1.5
// allows up to 3×; the pre-pruning quadratic placement measured ~4×
// per doubling. Stages under the noise floor pass unconditionally.
func (r *Fig13SweepResult) CheckLinear(factor float64) error {
	if len(r.Points) < 2 {
		return fmt.Errorf("fig13 sweep: %d checkpoints, need at least 2 for a linearity check", len(r.Points))
	}
	final := r.Points[len(r.Points)-1]
	// The nearest checkpoint to the half-way mark (exact at the default
	// 100-checkpoint granularity).
	half := r.Points[0]
	for _, p := range r.Points {
		if abs(p.Messages-final.Messages/2) < abs(half.Messages-final.Messages/2) {
			half = p
		}
	}
	linear := float64(final.Messages) / float64(half.Messages)
	for _, st := range []struct {
		name        string
		half, final float64
	}{
		{"bundle_match", half.MatchSec, final.MatchSec},
		{"message_placement", half.PlaceSec, final.PlaceSec},
	} {
		if st.final < noiseFloorSec || st.half <= 0 {
			continue
		}
		if ratio := st.final / st.half; ratio > factor*linear {
			return fmt.Errorf("%s cumulative time %.3fs at %d msgs is %.2f× the %.3fs at %d msgs (linear ≈ %.2f×, allowed ≤ %.2f×)",
				st.name, st.final, final.Messages, ratio, st.half, half.Messages, linear, factor*linear)
		}
	}
	return nil
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
