package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testScale keeps experiment tests fast while preserving the shapes
// the assertions check.
func testScale() Scale {
	return Scale{
		Messages:      12_000,
		SweepMessages: 12_000,
		PoolLimit:     250,
		BundleLimit:   150,
		SweepLimits:   []int{50, 250, 1000},
		Checkpoints:   4,
		Seed:          1,
	}
}

// sharedRun caches one three-method pass for all figure-view tests.
var sharedRun *ThreeResult

func getRun(t *testing.T) *ThreeResult {
	t.Helper()
	if sharedRun == nil {
		sharedRun = RunThreeMethods(testScale())
	}
	return sharedRun
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestRunThreeMethodsSeries(t *testing.T) {
	r := getRun(t)
	if len(r.Checkpoints) != 4 {
		t.Fatalf("checkpoints = %v", r.Checkpoints)
	}
	last := len(r.Checkpoints) - 1

	fullB := r.Series[MethodFull+"/bundles"]
	for i := 1; i < len(fullB); i++ {
		if fullB[i] < fullB[i-1] {
			t.Error("full index bundle count must grow monotonically")
		}
	}
	if r.at(MethodPartial+"/bundles", last) > float64(testScale().PoolLimit)*1.5 {
		t.Errorf("partial pool %v far above limit %d", r.at(MethodPartial+"/bundles", last), testScale().PoolLimit)
	}
	if fullB[last] <= r.at(MethodPartial+"/bundles", last) {
		t.Error("full index should hold more bundles than partial at the end")
	}

	// Memory ordering at the end of the stream: full > partial variants.
	if r.at(MethodFull+"/memMB", last) <= r.at(MethodPartial+"/memMB", last) {
		t.Error("full index should cost more memory than partial")
	}
	// Accuracy/return in range.
	for _, m := range []string{MethodPartial, MethodLimit} {
		for i := range r.Checkpoints {
			a, ret := r.at(m+"/accuracy", i), r.at(m+"/return", i)
			if a < 0 || a > 1 || ret < 0 || ret > 1 {
				t.Fatalf("%s metrics out of range: acc=%v ret=%v", m, a, ret)
			}
		}
		if r.at(m+"/accuracy", last) < 0.5 {
			t.Errorf("%s final accuracy %v implausibly low", m, r.at(m+"/accuracy", last))
		}
	}
	if r.Final[MethodFull].EdgesCreated == 0 {
		t.Error("ground truth found no edges")
	}
}

func TestFig6Tables(t *testing.T) {
	tables := Fig6(testScale())
	if len(tables) != 2 {
		t.Fatalf("Fig6 returned %d tables", len(tables))
	}
	var total int64
	var small, large int64
	for _, row := range tables[0].Rows {
		n, _ := strconv.ParseInt(row[1], 10, 64)
		total += n
		if row[0] == "1" || row[0] == "2" {
			small += n
		}
		if row[0] == "overflow" || len(row[0]) >= 3 {
			large += n
		}
	}
	if total == 0 {
		t.Fatal("no bundles in size distribution")
	}
	if small < total/3 {
		t.Errorf("paper shape violated: small bundles %d of %d (expect a remarkable proportion)", small, total)
	}
	if out := tables[0].Render(); !strings.Contains(out, "Fig 6(a)") {
		t.Error("render missing title")
	}
}

func TestFig7Shape(t *testing.T) {
	tab := Fig7(getRun(t))
	if len(tab.Rows) == 0 {
		t.Fatal("empty Fig7")
	}
	lastRow := tab.Rows[len(tab.Rows)-1]
	full := parseCell(t, lastRow[1])
	partial := parseCell(t, lastRow[2])
	if full <= partial {
		t.Errorf("Fig7 final: full %v <= partial %v", full, partial)
	}
}

func TestFig8Shape(t *testing.T) {
	tabs := Fig8(getRun(t))
	if len(tabs) != 2 {
		t.Fatal("Fig8 should return accuracy and return tables")
	}
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			for _, cell := range row[1:3] {
				v := parseCell(t, cell)
				if v < 0 || v > 1 {
					t.Errorf("%s: metric %v out of [0,1]", tab.Title, v)
				}
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(testScale())
	if len(tab.Columns) != 1+len(testScale().SweepLimits) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	last := tab.Rows[len(tab.Rows)-1]
	smallest := parseCell(t, last[1])
	biggest := parseCell(t, last[len(last)-1])
	if biggest < smallest {
		t.Errorf("bigger pool should not be less accurate: %v vs %v", biggest, smallest)
	}
	if biggest < 0.5 {
		t.Errorf("largest pool accuracy %v implausibly low", biggest)
	}
}

func TestFig10Showcases(t *testing.T) {
	tab, trails := Fig10(testScale())
	if len(tab.Rows) != 2 {
		t.Fatalf("Fig10 rows = %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[1] == "-" {
			t.Errorf("showcase %q not found", row[0])
		}
	}
	if len(trails) != 2 {
		t.Fatalf("trails = %d, want 2", len(trails))
	}
	joined := strings.Join(trails, "\n")
	if !strings.Contains(joined, "bundle") {
		t.Error("trails missing bundle render")
	}
}

func TestFig11Shape(t *testing.T) {
	tabs := Fig11(getRun(t))
	if len(tabs) != 2 {
		t.Fatal("Fig11 should return MB and count tables")
	}
	lastMem := tabs[0].Rows[len(tabs[0].Rows)-1]
	if parseCell(t, lastMem[1]) <= parseCell(t, lastMem[2]) {
		t.Error("full memory should exceed partial at stream end")
	}
	lastCnt := tabs[1].Rows[len(tabs[1].Rows)-1]
	fullCnt := parseCell(t, lastCnt[1])
	if int(fullCnt) != testScale().Messages {
		t.Errorf("full keeps all messages: got %v, want %d", fullCnt, testScale().Messages)
	}
}

func TestFig12And13Monotone(t *testing.T) {
	r := getRun(t)
	t12 := Fig12(r)
	prev := -1.0
	for _, row := range t12.Rows {
		v := parseCell(t, row[1])
		if v < prev {
			t.Error("cumulative time decreased")
		}
		prev = v
	}
	t13 := Fig13(r)
	lastRow := t13.Rows[len(t13.Rows)-1]
	match, place := parseCell(t, lastRow[1]), parseCell(t, lastRow[2])
	if match <= 0 || place <= 0 {
		t.Errorf("stage times not positive: %v", lastRow)
	}
}

func TestConnBreakdown(t *testing.T) {
	tab := ConnBreakdown(getRun(t))
	if len(tab.Rows) == 0 {
		t.Fatal("empty breakdown")
	}
	var total float64
	for _, row := range tab.Rows {
		total += parseCell(t, row[1])
	}
	want := getRun(t).Final[MethodFull].EdgesCreated
	if int64(total) != want {
		t.Errorf("breakdown sums to %v, want %d", total, want)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow(1, 2.5)
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2.500", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	s := PaperScale()
	if s.Messages != 700_000 || s.SweepMessages != 4_250_000 || s.PoolLimit != 10_000 {
		t.Errorf("PaperScale = %+v", s)
	}
	if len(s.SweepLimits) != 7 || s.SweepLimits[0] != 5_000 || s.SweepLimits[6] != 100_000 {
		t.Errorf("PaperScale sweep limits = %v", s.SweepLimits)
	}
	d := DefaultScale()
	// The default keeps the paper's pool/messages ratio within 2x.
	paperRatio := float64(PaperScale().PoolLimit) / float64(PaperScale().Messages)
	defRatio := float64(d.PoolLimit) / float64(d.Messages)
	if defRatio < paperRatio/2 || defRatio > paperRatio*2 {
		t.Errorf("default pool ratio %v far from paper's %v", defRatio, paperRatio)
	}
}

func TestCheckpointEvery(t *testing.T) {
	s := Scale{Checkpoints: 4}
	if got := s.checkpointEvery(100); got != 25 {
		t.Errorf("checkpointEvery(100) = %d, want 25", got)
	}
	if got := s.checkpointEvery(2); got != 1 {
		t.Errorf("tiny stream stride = %d, want 1", got)
	}
	none := Scale{}
	if got := none.checkpointEvery(100); got != 100 {
		t.Errorf("zero checkpoints stride = %d, want 100 (single sample)", got)
	}
}

func TestShowcaseConfigHasScripts(t *testing.T) {
	cfg := testScale().showcaseConfig()
	if len(cfg.Scripts) != 2 {
		t.Fatalf("showcase scripts = %d, want 2", len(cfg.Scripts))
	}
	names := cfg.Scripts[0].Name + " " + cfg.Scripts[1].Name
	if !strings.Contains(names, "cics") || !strings.Contains(names, "tsunami") {
		t.Errorf("showcase scripts = %q", names)
	}
}
