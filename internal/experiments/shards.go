package experiments

import (
	"fmt"
	"runtime"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/shard"
	"provex/internal/stream"
	"provex/internal/tweet"
)

// ShardSweep measures sharded ingest scaling: the same stream through
// the round engine at each shard count, reporting wall-clock throughput
// next to critical-path (span) throughput. Span is the slowest shard's
// probe + the serial reduce + the slowest shard's commit, summed over
// rounds (shard.SpanStats) — the time an unstarved scheduler with one
// core per shard would take. On core-starved hardware wall clock
// measures the host, span measures the algorithm; BENCH_PR8.json
// records both, and EXPERIMENTS.md "Sharded scaling" explains the
// split. Rounds run in Sequential phase mode so per-shard busy times
// are not polluted by goroutines contending for the same cores —
// results are identical either way (TestShardedDeterminism).
func ShardSweep(s Scale, counts []int, batch int) *ShardSweepResult {
	if batch <= 0 {
		batch = shard.DefaultBatch
	}
	g := gen.New(s.genConfig())
	msgs := make([]*tweet.Message, s.Messages)
	for i := range msgs {
		msgs[i] = g.Next()
	}

	res := &ShardSweepResult{Scale: s, Batch: batch}
	for _, n := range counts {
		clones := stream.CloneSlice(msgs)
		e, err := shard.New(core.PartialIndexConfig(s.PoolLimit),
			shard.Options{Shards: n, Batch: batch, Sequential: true}, nil, nil)
		if err != nil {
			panic(fmt.Sprintf("experiments: shard sweep: %v", err))
		}
		start := time.Now()
		for _, m := range clones {
			if err := e.Ingest(m); err != nil {
				panic(fmt.Sprintf("experiments: shard sweep ingest: %v", err))
			}
		}
		if err := e.Flush(); err != nil {
			panic(fmt.Sprintf("experiments: shard sweep flush: %v", err))
		}
		wall := time.Since(start).Seconds()
		span := e.Span()
		st := e.Snapshot()
		res.Points = append(res.Points, ShardPoint{
			Shards:      n,
			WallSec:     wall,
			WallMsgsSec: float64(len(clones)) / wall,
			SpanSec:     span.Total().Seconds(),
			SpanMsgsSec: float64(len(clones)) / span.Total().Seconds(),
			CrossPct:    100 * float64(e.Cross()) / float64(len(clones)),
			Bundles:     int(st.BundlesLive),
		})
	}
	return res
}

// ShardPoint is one shard count's measurement.
type ShardPoint struct {
	Shards      int     `json:"shards"`
	WallSec     float64 `json:"wall_s"`
	WallMsgsSec float64 `json:"wall_msgs_per_s"`
	SpanSec     float64 `json:"span_s"`
	SpanMsgsSec float64 `json:"span_msgs_per_s"`
	CrossPct    float64 `json:"cross_shard_pct"`
	Bundles     int     `json:"bundles_live"`
}

// ShardSweepResult carries the sweep points plus context; Table renders
// the EXPERIMENTS.md scaling table, SpanSpeedup the acceptance ratio.
type ShardSweepResult struct {
	Scale  Scale        `json:"scale"`
	Batch  int          `json:"batch"`
	Points []ShardPoint `json:"points"`
}

// SpanSpeedup returns span throughput at n shards over span throughput
// at 1 shard, 0 when either point is missing.
func (r *ShardSweepResult) SpanSpeedup(n int) float64 {
	var base, at float64
	for _, p := range r.Points {
		if p.Shards == 1 {
			base = p.SpanMsgsSec
		}
		if p.Shards == n {
			at = p.SpanMsgsSec
		}
	}
	if base <= 0 {
		return 0
	}
	return at / base
}

// Table renders the sweep for EXPERIMENTS.md.
func (r *ShardSweepResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Sharded ingest scaling (n=%d messages, batch=%d, GOMAXPROCS=%d)",
			r.Scale.Messages, r.Batch, runtime.GOMAXPROCS(0)),
		Columns: []string{"shards", "wall_s", "wall_msgs_per_s", "span_s", "span_msgs_per_s", "span_speedup", "cross_shard_pct", "bundles_live"},
		Notes: "span = per-round critical path (slowest probe + reduce + slowest commit); wall clock converges to it " +
			"only with >= one core per shard — on fewer cores the wall column measures the host, not the algorithm",
	}
	for _, p := range r.Points {
		t.AddRow(p.Shards,
			fmt.Sprintf("%.2f", p.WallSec), fmt.Sprintf("%.0f", p.WallMsgsSec),
			fmt.Sprintf("%.2f", p.SpanSec), fmt.Sprintf("%.0f", p.SpanMsgsSec),
			fmt.Sprintf("%.2fx", r.SpanSpeedup(p.Shards)),
			fmt.Sprintf("%.1f", p.CrossPct), p.Bundles)
	}
	return t
}
