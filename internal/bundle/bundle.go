// Package bundle implements the provenance bundle of Definition 3: a
// non-overlapping group of related messages arranged in a parent-linked
// forest whose edges are the provenance trail, plus the indicant
// summary (hashtag/URL/keyword/user counts) that the summary index and
// the Eq. 1 scorer read.
//
// A bundle also carries Algorithm 2 — allocating a newly matched
// message to its best parent node inside the group.
package bundle

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"provex/internal/metrics"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

// ID identifies a bundle for the life of the system, across memory and
// the disk back-end.
type ID uint64

// NoParent marks a node with no provenance parent (the root of a trail).
const NoParent int32 = -1

// Node is one message inside a bundle with its provenance edge: the
// index of its parent node, the Eq. 5 score of that edge, and the
// Table II connection type.
type Node struct {
	Doc    score.Doc
	Parent int32
	Score  float64
	Conn   score.ConnectionType
}

// Edge is a provenance connection in (parent, child) message-ID form —
// the unit the paper's accuracy/return evaluation counts.
type Edge struct {
	Parent tweet.ID
	Child  tweet.ID
}

// Bundle is Definition 3's message group. Not safe for concurrent use;
// the engine serialises access.
type Bundle struct {
	id    ID
	nodes []Node

	tagCounts map[string]int
	urlCounts map[string]int
	keyCounts map[string]int
	users     map[string]int

	// Node indexes: indicant term → ascending ids of the nodes carrying
	// it. They are the bundle-local analogue of the summary index and
	// make Algorithm 2 sublinear: the pruned Add scans only nodes
	// sharing an indicant with the incoming message instead of every
	// node (DESIGN.md §2g). Key sets mirror the count maps above, so the
	// count maps already pay the map-entry and string costs; the node
	// lists add metrics.NodeRefCost per reference.
	tagNodes  map[string][]int32
	urlNodes  map[string][]int32
	keyNodes  map[string][]int32
	userNodes map[string][]int32

	start, end time.Time // message-date extent (Algorithm 2 lines 8–13)
	lastUpdate time.Time // wall (simulated) time of last insertion
	closed     bool

	// timeOrdered reports that nodes were appended in non-decreasing
	// message-date order, which makes node id order equal time order.
	// The streaming ingest path always preserves this; it only breaks
	// under out-of-order replays (e.g. merges), where placement falls
	// back from the time-bounded scan to the mask-group scan
	// (prune.go).
	timeOrdered bool

	memBytes int64

	// scratch backs Add/AddObserved calls that arrive without an
	// engine-owned Scratch (tests, provops merges). Lazily allocated;
	// the engine hot path shares one Scratch across every bundle and
	// never touches this field.
	scratch *Scratch
}

// New creates an empty bundle.
func New(id ID) *Bundle {
	return &Bundle{
		id:        id,
		tagCounts: make(map[string]int),
		urlCounts: make(map[string]int),
		keyCounts: make(map[string]int),
		users:     make(map[string]int),
		tagNodes:  make(map[string][]int32),
		urlNodes:  make(map[string][]int32),
		keyNodes:  make(map[string][]int32),
		userNodes: make(map[string][]int32),
		memBytes:  metrics.BundleBase,

		timeOrdered: true,
	}
}

// ID returns the bundle identifier.
func (b *Bundle) ID() ID { return b.id }

// Size returns the number of messages in the bundle.
func (b *Bundle) Size() int { return len(b.nodes) }

// Closed reports whether the bundle stopped accepting messages
// (Section V-B's bundle size constraint).
func (b *Bundle) Closed() bool { return b.closed }

// Close marks the bundle closed. Closing is one-way.
func (b *Bundle) Close() { b.closed = true }

// StartTime and EndTime bound the message dates inside the bundle.
func (b *Bundle) StartTime() time.Time { return b.start }

// EndTime returns the newest message date.
func (b *Bundle) EndTime() time.Time { return b.end }

// LastUpdate returns when the bundle last absorbed a message — the
// date(B) of Equation 6.
func (b *Bundle) LastUpdate() time.Time { return b.lastUpdate }

// Nodes exposes the node slice read-only by convention (callers must
// not mutate). Index i is the node ID used in Parent links.
func (b *Bundle) Nodes() []Node { return b.nodes }

// MemBytes is the analytic memory footprint estimate of the bundle.
func (b *Bundle) MemBytes() int64 { return b.memBytes }

// score.BundleStats implementation — read by Eq. 1.

// TagCount reports how many messages carry the hashtag.
func (b *Bundle) TagCount(tag string) int { return b.tagCounts[tag] }

// URLCount reports how many messages carry the URL.
func (b *Bundle) URLCount(u string) int { return b.urlCounts[u] }

// KeywordCount reports how many messages carry the keyword.
func (b *Bundle) KeywordCount(k string) int { return b.keyCounts[k] }

// HasUser reports whether user posted inside the bundle.
func (b *Bundle) HasUser(u string) bool { return b.users[u] > 0 }

// LastDate implements score.BundleStats.
func (b *Bundle) LastDate() time.Time { return b.end }

// Indicants returns the distinct hashtags, URLs and keywords of the
// bundle — exactly the terms the summary index must drop when the
// bundle leaves memory.
func (b *Bundle) Indicants() (tags, urls, keys []string) {
	tags = mapKeys(b.tagCounts)
	urls = mapKeys(b.urlCounts)
	keys = mapKeys(b.keyCounts)
	return tags, urls, keys
}

func mapKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Add allocates doc inside the bundle per Algorithm 2: collect the
// candidate nodes sharing any indicant, connect to the best-scoring one
// (Eq. 5), and widen the bundle's time extent. Returns the index of the
// inserted node. Adding to a closed bundle panics — the engine checks
// Closed before routing.
func (b *Bundle) Add(w score.MessageWeights, doc score.Doc) int {
	n, _ := b.AddScratch(w, doc, nil, nil)
	return n
}

// ParentCandidate reports one Algorithm 2 evaluation to an observer:
// an existing node considered as parent for the incoming message, with
// the Eq. 5 score split into its Eq. 2–4, keyword and RT components.
type ParentCandidate struct {
	Node  int
	Msg   tweet.ID
	Conn  score.ConnectionType
	Parts score.MessageSimParts
}

// ParentObserver receives each considered parent during AddObserved.
type ParentObserver func(ParentCandidate)

// AddObserved is Add with a per-candidate observer for the decision
// tracer; obs may be nil (then it is exactly Add). The observed path
// uses score.MessageSimWithParts, whose Total is bit-identical to
// MessageSim, so observation never changes the chosen parent.
func (b *Bundle) AddObserved(w score.MessageWeights, doc score.Doc, obs ParentObserver) int {
	n, _ := b.AddScratch(w, doc, obs, nil)
	return n
}

// AddExhaustive is the reference Algorithm 2 implementation: score
// every node of the bundle against doc with Eq. 5. It is the
// specification the pruned path (AddScratch) is differentially tested
// against, and the implementation Config.Exhaustive selects. Observer
// semantics match AddObserved.
func (b *Bundle) AddExhaustive(w score.MessageWeights, doc score.Doc, obs ParentObserver) int {
	n, _ := b.addExhaustive(w, doc, obs)
	return n
}

func (b *Bundle) addExhaustive(w score.MessageWeights, doc score.Doc, obs ParentObserver) (int, PlaceStats) {
	if b.closed {
		panic("bundle: Add to closed bundle")
	}
	stats := PlaceStats{Nodes: len(b.nodes), Exhaustive: true}
	parent := NoParent
	best := 0.0
	conn := score.ConnNone
	for i := range b.nodes {
		c := score.Classify(b.nodes[i].Doc, doc)
		if c == score.ConnNone {
			continue
		}
		stats.Candidates++
		stats.Scored++
		var s float64
		if obs == nil {
			s = score.MessageSim(w, b.nodes[i].Doc, doc)
		} else {
			parts := score.MessageSimWithParts(w, b.nodes[i].Doc, doc)
			s = parts.Total
			obs(ParentCandidate{Node: i, Msg: b.nodes[i].Doc.Msg.ID, Conn: c, Parts: parts})
		}
		if s > best || (s == best && parent == NoParent) {
			best, parent, conn = s, int32(i), c
		}
	}
	node := Node{Doc: doc, Parent: parent, Score: best, Conn: conn}
	b.nodes = append(b.nodes, node)
	b.absorb(doc)
	return len(b.nodes) - 1, stats
}

// absorb merges doc's indicants into the summary and the node indexes
// and updates extent, freshness and the memory estimate. It must run
// immediately after the node is appended: the node-index entries use
// the id of the newest node.
func (b *Bundle) absorb(doc score.Doc) {
	m := doc.Msg
	id := int32(len(b.nodes) - 1)
	var added int64 = metrics.NodeBase + metrics.MessageBase +
		metrics.StringCost(m.User) + metrics.StringCost(m.Text)
	for _, h := range m.Hashtags {
		if b.tagCounts[h] == 0 {
			added += metrics.MapEntryCost + metrics.StringCost(h)
		}
		b.tagCounts[h]++
		added += appendNode(b.tagNodes, h, id)
	}
	for _, u := range m.URLs {
		if b.urlCounts[u] == 0 {
			added += metrics.MapEntryCost + metrics.StringCost(u)
		}
		b.urlCounts[u]++
		added += appendNode(b.urlNodes, u, id)
	}
	for _, k := range doc.Keywords {
		if b.keyCounts[k] == 0 {
			added += metrics.MapEntryCost + metrics.StringCost(k)
		}
		b.keyCounts[k]++
		added += appendNode(b.keyNodes, k, id)
	}
	if b.users[m.User] == 0 {
		added += metrics.MapEntryCost + metrics.StringCost(m.User)
	}
	b.users[m.User]++
	added += appendNode(b.userNodes, m.User, id)
	b.memBytes += added

	if b.start.IsZero() || m.Date.Before(b.start) {
		b.start = m.Date
	}
	if m.Date.Before(b.end) {
		b.timeOrdered = false
	} else {
		b.end = m.Date
	}
	if m.Date.After(b.lastUpdate) {
		b.lastUpdate = m.Date
	}
}

// Edges returns every provenance connection in the bundle.
func (b *Bundle) Edges() []Edge {
	var out []Edge
	for _, n := range b.nodes {
		if n.Parent == NoParent {
			continue
		}
		out = append(out, Edge{Parent: b.nodes[n.Parent].Doc.Msg.ID, Child: n.Doc.Msg.ID})
	}
	return out
}

// Roots returns the indices of nodes without parents — the origins of
// the bundle's provenance trails.
func (b *Bundle) Roots() []int {
	var out []int
	for i, n := range b.nodes {
		if n.Parent == NoParent {
			out = append(out, i)
		}
	}
	return out
}

// Children returns the node indices whose parent is i.
func (b *Bundle) Children(i int) []int {
	var out []int
	for j, n := range b.nodes {
		if n.Parent == int32(i) {
			out = append(out, j)
		}
	}
	return out
}

// SummaryWords returns the k most frequent summary terms — the "Summary
// Words" column of the paper's Figure 2 result list. Hashtags count
// double so topical tags float to the front like the paper's examples.
func (b *Bundle) SummaryWords(k int) []string {
	merged := make(map[string]int, len(b.keyCounts)+len(b.tagCounts))
	for t, c := range b.keyCounts {
		merged[t] += c
	}
	for t, c := range b.tagCounts {
		merged[t] += 2 * c
	}
	for u, c := range b.urlCounts {
		merged[u] += c
	}
	return tokenizer.TopTerms(merged, k)
}

// Render draws the provenance forest as indented text — the CLI/demo
// analogue of the paper's Figure 10 visualisation.
func (b *Bundle) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bundle %d: %d messages, %s .. %s, summary=%v\n",
		b.id, len(b.nodes),
		b.start.Format("2006-01-02 15:04"), b.end.Format("2006-01-02 15:04"),
		b.SummaryWords(8))
	var rec func(i, depth int)
	rec = func(i, depth int) {
		n := b.nodes[i]
		label := ""
		if n.Parent != NoParent {
			label = fmt.Sprintf(" [%s %.2f]", n.Conn, n.Score)
		}
		fmt.Fprintf(&sb, "%s- %s%s\n", strings.Repeat("  ", depth+1), n.Doc.Msg, label)
		for _, c := range b.Children(i) {
			rec(c, depth+1)
		}
	}
	for _, r := range b.Roots() {
		rec(r, 0)
	}
	return sb.String()
}

// Validate checks the structural invariants of a bundle: parents
// precede children (the stream order guarantees trails point backwards
// in time), summary counts match node contents, and the time extent
// bounds every message. Used by tests and the storage round-trip
// self-check.
func (b *Bundle) Validate() error {
	tags := map[string]int{}
	urls := map[string]int{}
	keys := map[string]int{}
	users := map[string]int{}
	for i, n := range b.nodes {
		if n.Parent != NoParent && (n.Parent < 0 || int(n.Parent) >= i) {
			return fmt.Errorf("bundle %d: node %d has invalid parent %d", b.id, i, n.Parent)
		}
		m := n.Doc.Msg
		if m.Date.Before(b.start) || m.Date.After(b.end) {
			return fmt.Errorf("bundle %d: node %d date %v outside extent [%v, %v]",
				b.id, i, m.Date, b.start, b.end)
		}
		for _, h := range m.Hashtags {
			tags[h]++
		}
		for _, u := range m.URLs {
			urls[u]++
		}
		for _, k := range n.Doc.Keywords {
			keys[k]++
		}
		users[m.User]++
	}
	for name, pair := range map[string][2]map[string]int{
		"tag":  {tags, b.tagCounts},
		"url":  {urls, b.urlCounts},
		"key":  {keys, b.keyCounts},
		"user": {users, b.users},
	} {
		got, want := pair[1], pair[0]
		if len(got) != len(want) {
			return fmt.Errorf("bundle %d: %s summary has %d entries, nodes imply %d",
				b.id, name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				return fmt.Errorf("bundle %d: %s %q count %d, nodes imply %d",
					b.id, name, k, got[k], v)
			}
		}
	}
	return nil
}
