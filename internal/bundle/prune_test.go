package bundle

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

// randomDoc fabricates a message from a deliberately tiny vocabulary so
// indicant overlaps, shared parents, and exact score ties are frequent:
// the regimes where pruned and exhaustive placement could diverge.
func randomDoc(rng *rand.Rand, id tweet.ID, users []string, at time.Time) score.Doc {
	var text string
	user := users[rng.Intn(len(users))]
	if rng.Float64() < 0.2 {
		// Re-share of a random user (sometimes nobody in the bundle).
		text = fmt.Sprintf("so true RT @%s: word%d word%d", users[rng.Intn(len(users))],
			rng.Intn(6), rng.Intn(6))
	} else {
		text = fmt.Sprintf("word%d word%d", rng.Intn(6), rng.Intn(6))
	}
	if rng.Float64() < 0.5 {
		text += fmt.Sprintf(" #tag%d", rng.Intn(4))
	}
	if rng.Float64() < 0.3 {
		text += fmt.Sprintf(" http://u.rl/%d", rng.Intn(4))
	}
	m := tweet.Parse(id, user, at, text)
	return score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

// TestAddScratchMatchesExhaustive is the placement differential
// property test (DESIGN.md §2g): for randomized workloads and several
// weight regimes — including zero, negative and tie-heavy weights —
// the pruned Algorithm 2 must produce byte-identical parents, edge
// scores and connection types to the exhaustive reference.
func TestAddScratchMatchesExhaustive(t *testing.T) {
	weightSets := map[string]score.MessageWeights{
		"default": score.DefaultMessageWeights(),
		// Zero time weight makes exact score ties common (pure
		// indicant-ratio scores), stressing the tie-break rule.
		"tie-heavy": {URL: 1, Tag: 1, Keyword: 1, RT: 1, Time: 0},
		// All-zero weights: every candidate scores 0 — the winner must
		// be the lowest-id connected node in both implementations.
		"all-zero": {},
		// Negative weights exercise the ceil0 clamp in the bounds: a
		// bound of 0-ish must still dominate negative true scores.
		"negative": {URL: -1, Tag: 0.5, Keyword: -0.25, RT: 2, Time: -0.4},
		// Time-dominant: freshness outranks every indicant class, so
		// bound ordering frequently cannot early-stop.
		"time-heavy": {URL: 0.1, Tag: 0.1, Keyword: 0.1, RT: 0.1, Time: 5},
	}
	users := []string{"ann", "bob", "cat", "dee"}
	for name, w := range weightSets {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				pruned := New(1)
				exhaustive := New(1)
				sc := NewScratch() // shared like the engine's
				at := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
				for i := 0; i < 120; i++ {
					at = at.Add(time.Duration(rng.Intn(3600)) * time.Second)
					d := randomDoc(rng, tweet.ID(i+1), users, at)
					np, ps := pruned.AddScratch(w, d, nil, sc)
					ne := exhaustive.AddExhaustive(w, d, nil)
					if np != ne {
						t.Fatalf("seed %d msg %d: node id %d vs %d", seed, i, np, ne)
					}
					a, b := pruned.Nodes()[np], exhaustive.Nodes()[ne]
					if a.Parent != b.Parent || a.Score != b.Score || a.Conn != b.Conn {
						t.Fatalf("seed %d msg %d %q: pruned (parent=%d score=%v conn=%v) vs exhaustive (parent=%d score=%v conn=%v)",
							seed, i, d.Msg.Text, a.Parent, a.Score, a.Conn, b.Parent, b.Score, b.Conn)
					}
					if ps.Scored > ps.Candidates || ps.Candidates > ps.Nodes || ps.Skipped() < 0 {
						t.Fatalf("seed %d msg %d: inconsistent stats %+v", seed, i, ps)
					}
				}
				if err := pruned.Validate(); err != nil {
					t.Fatalf("seed %d: pruned bundle invalid: %v", seed, err)
				}
			}
		})
	}
}

// TestAddScratchMatchesExhaustiveOutOfOrder replays the differential
// property with non-chronological message dates: the bundle's
// timeOrdered flag must drop on the first backwards date, routing
// placement to the order-agnostic mask-group scan, and the results must
// stay byte-identical to the exhaustive reference.
func TestAddScratchMatchesExhaustiveOutOfOrder(t *testing.T) {
	w := score.DefaultMessageWeights()
	users := []string{"ann", "bob", "cat", "dee"}
	base := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		pruned := New(1)
		exhaustive := New(1)
		sc := NewScratch()
		for i := 0; i < 120; i++ {
			// Dates jump freely within a two-day window — backwards
			// moves are frequent.
			at := base.Add(time.Duration(rng.Intn(48*3600)) * time.Second)
			d := randomDoc(rng, tweet.ID(i+1), users, at)
			np, _ := pruned.AddScratch(w, d, nil, sc)
			ne := exhaustive.AddExhaustive(w, d, nil)
			if np != ne {
				t.Fatalf("seed %d msg %d: node id %d vs %d", seed, i, np, ne)
			}
			a, b := pruned.Nodes()[np], exhaustive.Nodes()[ne]
			if a.Parent != b.Parent || a.Score != b.Score || a.Conn != b.Conn {
				t.Fatalf("seed %d msg %d %q: pruned (parent=%d score=%v conn=%v) vs exhaustive (parent=%d score=%v conn=%v)",
					seed, i, d.Msg.Text, a.Parent, a.Score, a.Conn, b.Parent, b.Score, b.Conn)
			}
		}
		if pruned.timeOrdered {
			t.Fatalf("seed %d: 120 random-dated messages left the bundle time-ordered; fallback path not exercised", seed)
		}
	}
}

// TestAddScratchObserverAgreement checks satellite invariant (b) at the
// bundle layer: the observed (traced) pruned path picks the same parent
// as the unobserved one, and the observer sees exactly the scored
// candidates with connection types matching Classify.
func TestAddScratchObserverAgreement(t *testing.T) {
	w := score.DefaultMessageWeights()
	users := []string{"ann", "bob", "cat"}
	rng := rand.New(rand.NewSource(7))
	plain := New(1)
	observed := New(1)
	at := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 80; i++ {
		at = at.Add(time.Duration(rng.Intn(1800)) * time.Second)
		d := randomDoc(rng, tweet.ID(i+1), users, at)
		plain.Add(w, d)
		var seen []ParentCandidate
		_, ps := observed.AddScratch(w, d, func(pc ParentCandidate) {
			seen = append(seen, pc)
		}, nil)
		a := plain.Nodes()[i]
		b := observed.Nodes()[i]
		if a.Parent != b.Parent || a.Score != b.Score || a.Conn != b.Conn {
			t.Fatalf("msg %d: observed placement diverged: %+v vs %+v", i, a, b)
		}
		if len(seen) != ps.Scored {
			t.Fatalf("msg %d: observer saw %d candidates, stats say %d scored", i, len(seen), ps.Scored)
		}
		for _, pc := range seen {
			if want := score.Classify(observed.Nodes()[pc.Node].Doc, d); pc.Conn != want {
				t.Errorf("msg %d node %d: observer conn %v, Classify says %v", i, pc.Node, pc.Conn, want)
			}
		}
	}
}

// TestPruneSkipsUnrelatedNodes pins the point of the node indexes: in a
// large bundle, placing a message that shares an indicant with only a
// few nodes must not score the rest.
func TestPruneSkipsUnrelatedNodes(t *testing.T) {
	w := score.DefaultMessageWeights()
	b := New(1)
	at := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	// 50 disjoint-topic nodes, 3 sharing #game.
	for i := 0; i < 50; i++ {
		b.Add(w, doc(tweet.ID(i+1), "u", fmt.Sprintf("unique%dx unique%dy #only%d", i, i, i), at))
		at = at.Add(time.Minute)
	}
	for i := 50; i < 53; i++ {
		b.Add(w, doc(tweet.ID(i+1), "u", fmt.Sprintf("final inning #game%d #game", i), at))
		at = at.Add(time.Minute)
	}
	_, ps := b.AddScratch(w, doc(99, "v", "what an ending #game", at), nil, nil)
	if ps.Exhaustive {
		t.Fatalf("bundle of %d nodes took the exhaustive fallback", ps.Nodes)
	}
	// Only the 3 #game carriers are candidates at all, and the
	// time-bounded scan may stop after the newest of them once its
	// score beats the decayed ceiling of the older two.
	if ps.Candidates < 1 || ps.Candidates > 3 {
		t.Errorf("candidates = %d, want 1..3 (#game carriers)", ps.Candidates)
	}
	if ps.Skipped() < 50 {
		t.Errorf("skipped = %d, want >= 50", ps.Skipped())
	}
}

// TestSmallBundleFallsBackExhaustive pins the PruneMinNodes escape: a
// tiny bundle must use the reference scan.
func TestSmallBundleFallsBackExhaustive(t *testing.T) {
	w := score.DefaultMessageWeights()
	b := New(1)
	at := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	b.Add(w, doc(1, "u", "hello #x", at))
	_, ps := b.AddScratch(w, doc(2, "v", "again #x", at.Add(time.Minute)), nil, nil)
	if !ps.Exhaustive {
		t.Errorf("size-1 bundle should fall back to the exhaustive scan, stats %+v", ps)
	}
}
