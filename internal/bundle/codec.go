package bundle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"provex/internal/score"
	"provex/internal/tweet"
)

// Binary bundle encoding, used by the on-disk back-end. The format is a
// flat varint stream:
//
//	magic byte 0xB5, version byte
//	bundle id, closed flag, node count
//	per node: parent+1 (so NoParent encodes as 0), score (float64 bits),
//	          conn type, message id, unix-nano date, user, text,
//	          keyword count + keywords
//
// Indicant summaries, extent and memory estimate are NOT stored — they
// are deterministic functions of the nodes and are rebuilt on decode,
// which keeps the format small and makes corruption detectable through
// Validate after load.

const (
	codecMagic   = 0xB5
	codecVersion = 1
)

// ErrCorrupt reports a structurally invalid encoded bundle.
var ErrCorrupt = errors.New("bundle: corrupt encoding")

// Marshal encodes the bundle.
func (b *Bundle) Marshal() []byte {
	buf := make([]byte, 0, 64+len(b.nodes)*96)
	buf = append(buf, codecMagic, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(b.id))
	if b.closed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.nodes)))
	for _, n := range b.nodes {
		buf = binary.AppendUvarint(buf, uint64(n.Parent+1))
		buf = binary.AppendUvarint(buf, math.Float64bits(n.Score))
		buf = append(buf, byte(n.Conn))
		m := n.Doc.Msg
		buf = binary.AppendUvarint(buf, uint64(m.ID))
		buf = binary.AppendVarint(buf, m.Date.UnixNano())
		buf = appendString(buf, m.User)
		buf = appendString(buf, m.Text)
		buf = binary.AppendUvarint(buf, uint64(len(n.Doc.Keywords)))
		for _, k := range n.Doc.Keywords {
			buf = appendString(buf, k)
		}
	}
	return buf
}

// Unmarshal decodes an encoded bundle, rebuilding summaries, extent and
// memory estimate from the node data. The decoded bundle satisfies
// Validate if the input was produced by Marshal.
func Unmarshal(data []byte) (*Bundle, error) {
	r := &reader{data: data}
	if r.byte() != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.byte(); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	id := ID(r.uvarint())
	closed := r.byte() == 1
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(data)) { // each node needs >1 byte; cheap bound
		return nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, n)
	}
	b := New(id)
	for i := uint64(0); i < n; i++ {
		parent := int32(r.uvarint()) - 1
		scoreBits := r.uvarint()
		conn := score.ConnectionType(r.byte())
		msgID := tweet.ID(r.uvarint())
		date := r.varint()
		user := r.string()
		text := r.string()
		nk := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if nk > uint64(len(data)) {
			return nil, fmt.Errorf("%w: implausible keyword count %d", ErrCorrupt, nk)
		}
		keywords := make([]string, 0, nk)
		for j := uint64(0); j < nk; j++ {
			keywords = append(keywords, r.string())
		}
		if r.err != nil {
			return nil, r.err
		}
		if parent != NoParent && (parent < 0 || uint64(parent) >= i) {
			return nil, fmt.Errorf("%w: node %d parent %d", ErrCorrupt, i, parent)
		}
		msg := &tweet.Message{ID: msgID, Date: time.Unix(0, date).UTC(), User: user, Text: text}
		reparse(msg)
		doc := score.Doc{Msg: msg, Keywords: keywords}
		b.nodes = append(b.nodes, Node{
			Doc:    doc,
			Parent: parent,
			Score:  math.Float64frombits(scoreBits),
			Conn:   conn,
		})
		b.absorb(doc)
	}
	b.closed = closed
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	return b, nil
}

// reparse re-extracts message indicants from text. Encoding stores only
// raw text; the parser is the single source of truth for entities.
func reparse(m *tweet.Message) {
	p := tweet.Parse(m.ID, m.User, m.Date, m.Text)
	m.URLs, m.Hashtags, m.Mentions = p.URLs, p.Hashtags, p.Mentions
	m.RTOf, m.RTComment = p.RTOf, p.RTComment
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a cursor over the encoded buffer that latches the first
// error so call sites stay linear.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCorrupt, r.pos)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail()
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.pos)+n > uint64(len(r.data)) {
		r.fail()
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}
