// Pruned Algorithm 2: the sublinear message-placement path.
//
// The exhaustive reference (AddExhaustive) scores every node of the
// bundle with Eq. 5, which makes placement cost grow with bundle size
// and the Figure 13 placement curve quadratic in the stream. The
// pruned path exploits two facts (DESIGN.md §2g):
//
//  1. A node can be a parent only if Classify(node, doc) != ConnNone,
//     i.e. only if it shares at least one URL, hashtag or keyword with
//     the incoming message, or is authored by the re-shared user. The
//     bundle's node indexes (term → node ids, maintained in absorb)
//     enumerate exactly this candidate set — no connected node is ever
//     missed, so the pruning is lossless, not approximate.
//  2. While collecting candidates we learn each node's indicant-class
//     mask (which of URL/tag/keyword/RT it shares). The mask yields a
//     score upper bound (score.MessageSimCeil); scanning mask groups in
//     descending bound order lets the scan stop as soon as the running
//     best strictly exceeds every remaining group's bound.
//
// Two pruned scans implement this. addPrunedTime — the streaming hot
// path, valid whenever nodes are in message-date order — merges the
// message's posting lists newest-first and stops once the running best
// exceeds the decaying ceiling of everything older, so mega-bundle
// inserts touch only a recent time window rather than every matching
// node. addPruned — the order-agnostic fallback — collects the full
// candidate set and scans mask groups bound-first. Identity with the
// exhaustive path is preserved in both by an order-independent
// replacement rule and strict-inequality stop rules, pinned by the
// differential tests in prune_test.go and
// internal/core/differential_test.go.
package bundle

import (
	"provex/internal/metrics"
	"provex/internal/score"
)

// PruneMinNodes is the bundle size below which AddScratch takes the
// exhaustive path: for a handful of nodes the direct Eq. 5 scan is
// cheaper than walking the node indexes and grouping candidates.
const PruneMinNodes = 16

// Indicant-class mask bits of a candidate node, set while walking the
// node indexes. The mask doubles as the Table II connection type
// (connFromMask) because each bit is set exactly when the
// corresponding Classify clause holds.
const (
	maskURL uint8 = 1 << iota
	maskTag
	maskKey
	maskRT
	numMasks = 16
)

// connFromMask maps a candidate's indicant-class mask to the Table II
// connection type, replicating Classify's priority order
// RT > URL > Hashtag > Text. Valid for non-zero masks only.
func connFromMask(m uint8) score.ConnectionType {
	switch {
	case m&maskRT != 0:
		return score.ConnRT
	case m&maskURL != 0:
		return score.ConnURL
	case m&maskTag != 0:
		return score.ConnHashtag
	default:
		return score.ConnText
	}
}

// PlaceStats reports how much Eq. 5 work one placement did and how much
// the pruning avoided. Skipped() is the headline number: nodes the
// exhaustive path would have visited but the pruned path did not.
type PlaceStats struct {
	Nodes      int  // bundle size before the insert
	Candidates int  // indicant-sharing nodes the scan visited
	Scored     int  // candidates actually scored with Eq. 5
	EarlyStop  bool // a score bound ended the scan before the candidates ran out
	Exhaustive bool // small-bundle fallback took the reference path
}

// Skipped returns how many nodes the placement avoided visiting
// relative to the exhaustive scan (index pruning + bound early stop).
func (ps PlaceStats) Skipped() int { return ps.Nodes - ps.Scored }

// Scratch is the reusable state of the pruned placement scan. One
// Scratch serves any number of bundles sequentially (the engine owns a
// single instance for its whole lifetime); it must not be shared
// between goroutines. The per-node stamp/mask arrays are epoch-tagged
// so resetting between calls is O(1), not O(nodes).
type Scratch struct {
	epoch uint32
	stamp []uint32 // stamp[id] == epoch ⇔ node id is a candidate this call
	mask  []uint8  // indicant-class mask of candidate id, valid when stamped
	cand  []int32  // candidate ids in discovery order

	// Candidates bucketed by mask, and the non-empty masks ordered by
	// descending score bound for the early-terminating scan.
	groups [numMasks][]int32
	order  [numMasks]uint8
	bounds [numMasks]float64

	// Posting-list cursors of the time-bounded scan (addPrunedTime),
	// one per indicant occurrence of the message being placed, plus the
	// active-cursor index sorted by frontier.
	lists []mergeList
	act   []int32
}

// mergeList is one posting-list cursor of the descending-id merge: ids
// is a node index entry (ascending ids), pos the current position
// (consumed tail-first), bit the indicant class the list represents,
// wc the list's clamped ceiling contribution (class weight / message
// occurrence count — the most this list can add to any node's Eq. 5
// score).
type mergeList struct {
	ids []int32
	pos int
	bit uint8
	wc  float64
}

// frontier is the newest node id the cursor has not consumed. Valid
// only while pos >= 0.
func (l *mergeList) frontier() int32 { return l.ids[l.pos] }

// NewScratch returns an empty Scratch; arrays grow on demand.
func NewScratch() *Scratch { return &Scratch{} }

// begin opens a new epoch sized for a bundle of n nodes.
func (sc *Scratch) begin(n int) {
	sc.epoch++
	if sc.epoch == 0 {
		// uint32 wrap: stale stamps could alias the new epoch, so clear
		// once every ~4 billion calls and restart at 1.
		clear(sc.stamp)
		sc.epoch = 1
	}
	if len(sc.stamp) < n {
		sc.grow(n)
	}
	sc.cand = sc.cand[:0]
}

// grow is the cold resize path, kept out of the annotated hot
// functions so their bodies stay allocation-free.
func (sc *Scratch) grow(n int) {
	stamp := make([]uint32, n+n/2)
	copy(stamp, sc.stamp)
	sc.stamp = stamp
	mask := make([]uint8, n+n/2)
	copy(mask, sc.mask)
	sc.mask = mask
}

// mark flags every node id in ids as a candidate carrying the indicant
// class bit, deduplicating across terms via the epoch stamp.
//
//provex:hotpath runs per shared indicant term on every placement
func (sc *Scratch) mark(ids []int32, bit uint8) {
	for _, id := range ids {
		if sc.stamp[id] != sc.epoch {
			sc.stamp[id] = sc.epoch
			sc.mask[id] = bit
			sc.cand = append(sc.cand, id)
		} else {
			sc.mask[id] |= bit
		}
	}
}

// AddScratch is Add/AddObserved with caller-provided scratch and work
// stats: the engine passes its shared Scratch so placement allocates
// nothing at steady state. sc == nil lazily uses a bundle-owned
// Scratch. The chosen parent, its score, and the connection type are
// identical to AddExhaustive for every input — see the package comment
// and the differential tests.
func (b *Bundle) AddScratch(w score.MessageWeights, doc score.Doc, obs ParentObserver, sc *Scratch) (int, PlaceStats) {
	if len(b.nodes) < PruneMinNodes {
		return b.addExhaustive(w, doc, obs)
	}
	if sc == nil {
		if b.scratch == nil {
			b.scratch = NewScratch()
		}
		sc = b.scratch
	}
	if b.timeOrdered {
		return b.addPrunedTime(w, doc, obs, sc)
	}
	return b.addPruned(w, doc, obs, sc)
}

// addPruned is the sublinear Algorithm 2 scan described in the package
// comment.
//
// Identity argument: the exhaustive loop visits nodes in ascending id
// and replaces its best on s > best, or on s == best while no parent is
// chosen yet — which makes its final parent the LOWEST id attaining
// max(0, max over connected nodes of Eq. 5), or NoParent when every
// connected node scores negative. The rule below —
//
//	s > best || (s == best && (parent == NoParent || id < parent))
//
// converges to exactly that winner under ANY visit order, so grouping
// candidates by mask and visiting groups bound-first cannot change the
// outcome. Early stop skips a group only when best strictly exceeds the
// group's upper bound: no member could beat best (bound ≥ any member
// score) nor tie it (a tie is only taken for a lower id, and on
// best > bound even a tie is impossible).
//
//provex:hotpath Algorithm 2 per-message placement scan
func (b *Bundle) addPruned(w score.MessageWeights, doc score.Doc, obs ParentObserver, sc *Scratch) (int, PlaceStats) {
	if b.closed {
		panic("bundle: Add to closed bundle")
	}
	sc.begin(len(b.nodes))

	// Candidate collection: union of the node-index posting lists of the
	// message's indicants — exactly the nodes Classify connects.
	m := doc.Msg
	for _, u := range m.URLs {
		sc.mark(b.urlNodes[u], maskURL)
	}
	for _, h := range m.Hashtags {
		sc.mark(b.tagNodes[h], maskTag)
	}
	for _, k := range doc.Keywords {
		sc.mark(b.keyNodes[k], maskKey)
	}
	if m.IsRT() {
		sc.mark(b.userNodes[m.RTOf], maskRT)
	}

	stats := PlaceStats{Nodes: len(b.nodes), Candidates: len(sc.cand)}

	// Bucket candidates by indicant-class mask, then order the
	// non-empty masks by descending score bound (insertion sort over at
	// most 15 entries — the loop shape pinned by the hotpathalloc
	// fixture, no closures or allocation).
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
	}
	for _, id := range sc.cand {
		g := sc.mask[id]
		sc.groups[g] = append(sc.groups[g], id)
	}
	n := 0
	for g := 1; g < numMasks; g++ {
		if len(sc.groups[g]) == 0 {
			continue
		}
		msk := uint8(g)
		bd := score.MessageSimCeil(w,
			msk&maskURL != 0, msk&maskTag != 0, msk&maskKey != 0, msk&maskRT != 0)
		j := n
		for j > 0 && sc.bounds[j-1] < bd {
			sc.order[j] = sc.order[j-1]
			sc.bounds[j] = sc.bounds[j-1]
			j--
		}
		sc.order[j] = msk
		sc.bounds[j] = bd
		n++
	}

	parent := NoParent
	best := 0.0
	conn := score.ConnNone
	for gi := 0; gi < n; gi++ {
		if best > sc.bounds[gi] {
			stats.EarlyStop = true
			break
		}
		msk := sc.order[gi]
		for _, id := range sc.groups[msk] {
			i := int(id)
			var s float64
			if obs == nil {
				s = score.MessageSim(w, b.nodes[i].Doc, doc)
			} else {
				parts := score.MessageSimWithParts(w, b.nodes[i].Doc, doc)
				s = parts.Total
				obs(ParentCandidate{Node: i, Msg: b.nodes[i].Doc.Msg.ID, Conn: connFromMask(msk), Parts: parts})
			}
			stats.Scored++
			if s > best || (s == best && (parent == NoParent || id < parent)) {
				best, parent, conn = s, id, connFromMask(msk)
			}
		}
	}

	node := Node{Doc: doc, Parent: parent, Score: best, Conn: conn}
	b.nodes = append(b.nodes, node)
	b.absorb(doc)
	return len(b.nodes) - 1, stats
}

// clampPos is the bound-side weight clamp (score.MessageSimCeil's ceil0
// reproduced locally): a negative weight contributes at most 0 to any
// score, so its ceiling is 0.
func clampPos(w float64) float64 {
	if w > 0 {
		return w
	}
	return 0
}

// searchLE returns the rightmost index of ids (ascending) whose value
// is at most v, or -1 when every id exceeds v. Hand-rolled binary
// search: the sort.Search closure would allocate on the hot path.
func searchLE(ids []int32, v int32) int {
	lo, hi := 0, len(ids)-1
	res := -1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] <= v {
			res = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return res
}

// addPrunedTime is the time-bounded Algorithm 2 scan, used whenever the
// bundle's nodes are in message-date order (the streaming case — see
// Bundle.timeOrdered). It strictly improves on addPruned for large
// bundles: where the mask-group scan must still WALK every posting list
// entry to collect candidates (O(matching nodes) per insert, which goes
// quadratic inside mega-bundles whose hot indicants match most nodes),
// this scan consumes the message's posting lists newest-first as a
// WAND-style descending-id merge: cursors are ordered by frontier
// (newest unconsumed node), a pivot is the newest node whose reachable
// score ceiling can still match the running best, everything newer than
// the pivot is skipped in bulk by binary search, and the whole scan
// stops once even the sum of all remaining ceilings decays below best —
// typically after a bounded recent time window, independent of bundle
// size. Dense posting lists of hot terms (the mega-bundle killer) are
// jumped over in O(log n) per scored candidate instead of popped one
// node at a time.
//
// Three facts make the scan exact rather than approximate:
//
//  1. The per-class hit counts at a merge pivot ARE the Eq. 2–4
//     numerators: one cursor is opened per indicant occurrence of the
//     incoming message, and node membership in urlNodes[u] is
//     equivalent to "u ∈ node's URLs", so the number of cursors sitting
//     on a node equals overlap() exactly (duplicate occurrences open
//     duplicate cursors that advance in lockstep, matching overlap's
//     per-occurrence counting). Each popped node is therefore scored
//     with bit-identical Eq. 5 arithmetic — same divisions, same
//     association order as score.MessageSim — in O(cursors), without
//     touching the node's own term sets.
//  2. Node id order is message-date order, and Eq. 4 decays
//     monotonically with the gap, so for every unconsumed node the time
//     term is bounded by the head frontier's (when the incoming message
//     is not older than that node; otherwise by w.Time·1).
//  3. A node can only appear in lists whose frontier is at or above it
//     (remaining ids never exceed the frontier). With cursors sorted by
//     frontier newest-first, a node above the pivot lies in a strict
//     prefix of the cursor order whose summed ceiling contributions
//     (clamped class weight / occurrence count each) fall short of
//     best − timeCeil − BoundSlop — that is what made the pivot land
//     further down — so its full Eq. 5 score is strictly below best and
//     skipping it can change neither the winner nor a tie.
//
// The stop rule is the same strict comparison as addPruned's group
// scan: the scan ends only when best > ceiling + BoundSlop, so a
// skipped node can neither beat best nor tie it, and the replacement
// rule (identical to addPruned) makes the result independent of visit
// order. Differential tests pin both properties.
//
//provex:hotpath Algorithm 2 per-message placement scan (time-ordered)
func (b *Bundle) addPrunedTime(w score.MessageWeights, doc score.Doc, obs ParentObserver, sc *Scratch) (int, PlaceStats) {
	if b.closed {
		panic("bundle: Add to closed bundle")
	}
	m := doc.Msg
	nU, nH, nK := len(m.URLs), len(m.Hashtags), len(doc.Keywords)
	wuPos, whPos, wkPos := clampPos(w.URL), clampPos(w.Tag), clampPos(w.Keyword)
	wrPos, wtPos := clampPos(w.RT), clampPos(w.Time)
	sc.lists = sc.lists[:0]
	for _, u := range m.URLs {
		if l := b.urlNodes[u]; len(l) > 0 {
			sc.lists = append(sc.lists, mergeList{ids: l, pos: len(l) - 1, bit: maskURL, wc: wuPos / float64(nU)})
		}
	}
	for _, h := range m.Hashtags {
		if l := b.tagNodes[h]; len(l) > 0 {
			sc.lists = append(sc.lists, mergeList{ids: l, pos: len(l) - 1, bit: maskTag, wc: whPos / float64(nH)})
		}
	}
	for _, k := range doc.Keywords {
		if l := b.keyNodes[k]; len(l) > 0 {
			sc.lists = append(sc.lists, mergeList{ids: l, pos: len(l) - 1, bit: maskKey, wc: wkPos / float64(nK)})
		}
	}
	if m.IsRT() {
		if l := b.userNodes[m.RTOf]; len(l) > 0 {
			sc.lists = append(sc.lists, mergeList{ids: l, pos: len(l) - 1, bit: maskRT, wc: wrPos})
		}
	}

	stats := PlaceStats{Nodes: len(b.nodes)}
	parent := NoParent
	best := 0.0
	conn := score.ConnNone
	for {
		// Order the active cursors by frontier, newest first. Rebuilt
		// every round by insertion sort: frontiers only move down, so
		// the previous round's order is nearly correct and the sort is
		// ~linear in the (small) cursor count.
		sc.act = sc.act[:0]
		for i := range sc.lists {
			if sc.lists[i].pos < 0 {
				continue
			}
			f := sc.lists[i].frontier()
			j := len(sc.act)
			sc.act = append(sc.act, 0)
			for j > 0 && sc.lists[sc.act[j-1]].frontier() < f {
				sc.act[j] = sc.act[j-1]
				j--
			}
			sc.act[j] = int32(i)
		}
		if len(sc.act) == 0 {
			break
		}
		head := sc.lists[sc.act[0]].frontier()
		earlier := b.nodes[head].Doc
		nodeT := score.T(earlier.Msg, m)

		// Time ceiling over every unconsumed node. An incoming message
		// older than the head frontier (only possible in a bundle that
		// later turns out-of-order mid-call — absorb hasn't run yet)
		// voids the decay argument, so it falls back to the global
		// maximum of 1.
		tCeil := 1.0
		if !m.Date.Before(earlier.Msg.Date) {
			tCeil = nodeT
		}

		// Pivot selection: walk cursors newest-first accumulating their
		// ceiling contributions until best becomes reachable. The first
		// crossing cursor's frontier is the newest node that could still
		// win or tie; everything above it cannot (fact 3).
		rem := best - wtPos*tCeil - score.BoundSlop
		cum := 0.0
		pj := -1
		for i, li := range sc.act {
			cum += sc.lists[li].wc
			if cum >= rem {
				pj = i
				break
			}
		}
		if pj < 0 {
			// Even all cursors together no longer reach best: every
			// older node is out, same stop condition as addPruned's.
			stats.EarlyStop = true
			break
		}
		pivot := sc.lists[sc.act[pj]].frontier()
		if head != pivot {
			// Bulk skip: advance every cursor sitting above the pivot
			// down to it (or past it, to its newest id ≤ pivot). The
			// skipped nodes are exactly those proven unable to win.
			for _, li := range sc.act[:pj] {
				l := &sc.lists[li]
				l.pos = searchLE(l.ids[:l.pos+1], pivot)
			}
			continue
		}

		// Pop: the cursors on the pivot are the leading equal-frontier
		// run of the order; their per-class counts are the exact
		// Eq. 2–4 numerators. Advance them.
		var cU, cH, cK int
		rtHit := false
		for _, li := range sc.act {
			l := &sc.lists[li]
			if l.frontier() != pivot {
				break
			}
			switch l.bit {
			case maskURL:
				cU++
			case maskTag:
				cH++
			case maskKey:
				cK++
			default:
				rtHit = true
			}
			l.pos--
		}

		// Eq. 5 from the counts, term for term and in the same
		// association order as score.MessageSim, so the result is
		// bit-identical to the exhaustive path's.
		var u, h, k float64
		if nU > 0 {
			u = w.URL * (float64(cU) / float64(nU))
		}
		if nH > 0 {
			h = w.Tag * (float64(cH) / float64(nH))
		}
		if nK > 0 {
			k = w.Keyword * (float64(cK) / float64(nK))
		}
		t := w.Time * nodeT
		s := u + h + t + k
		rtBonus := 0.0
		if rtHit {
			rtBonus = w.RT
			s += w.RT
		}
		stats.Candidates++
		stats.Scored++

		msk := uint8(0)
		if cU > 0 {
			msk |= maskURL
		}
		if cH > 0 {
			msk |= maskTag
		}
		if cK > 0 {
			msk |= maskKey
		}
		if rtHit {
			msk |= maskRT
		}
		if obs != nil {
			obs(ParentCandidate{Node: int(pivot), Msg: earlier.Msg.ID, Conn: connFromMask(msk),
				Parts: score.MessageSimParts{U: u, H: h, T: t, Keyword: k, RT: rtBonus, Total: s}})
		}
		if s > best || (s == best && (parent == NoParent || pivot < parent)) {
			best, parent, conn = s, pivot, connFromMask(msk)
		}
	}

	node := Node{Doc: doc, Parent: parent, Score: best, Conn: conn}
	b.nodes = append(b.nodes, node)
	b.absorb(doc)
	return len(b.nodes) - 1, stats
}

// appendNode records node id under term in a node index, returning the
// bytes charged to the memory estimate. Ids arrive in ascending order
// (absorb runs once per appended node), so duplicate terms within one
// message show as a repeated tail id.
func appendNode(m map[string][]int32, term string, id int32) int64 {
	l := m[term]
	if n := len(l); n > 0 && l[n-1] == id {
		return 0
	}
	m[term] = append(l, id)
	return metrics.NodeRefCost
}
