package bundle

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 17, 2, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

func doc(id tweet.ID, user, text string, at time.Time) score.Doc {
	m := tweet.Parse(id, user, at, text)
	return score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

// buildGameBundle assembles a small Yankees/Redsox bundle like the
// paper's Figure 3.
func buildGameBundle(t *testing.T) *Bundle {
	t.Helper()
	b := New(7)
	b.Add(weights, doc(1, "wharman", "Lester down #redsox", base))
	b.Add(weights, doc(2, "dims", "unbelievable!! #redsox", base.Add(10*time.Minute)))
	b.Add(weights, doc(3, "amaliebenjamin", "Lester getting an ovation from the #yankee crowd #redsox", base.Add(20*time.Minute)))
	b.Add(weights, doc(4, "abcdude", "Classy RT @amaliebenjamin: Lester getting an ovation from the #yankee crowd #redsox", base.Add(25*time.Minute)))
	if err := b.Validate(); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	return b
}

func TestAddBuildsTrail(t *testing.T) {
	b := buildGameBundle(t)
	if b.Size() != 4 {
		t.Fatalf("Size = %d, want 4", b.Size())
	}
	nodes := b.Nodes()
	if nodes[0].Parent != NoParent {
		t.Errorf("first node parent = %d, want NoParent", nodes[0].Parent)
	}
	// Node 3 re-shares node 2's author: must connect to it with ConnRT.
	if nodes[3].Parent != 2 || nodes[3].Conn != score.ConnRT {
		t.Errorf("RT node parent=%d conn=%v, want parent=2 conn=rt", nodes[3].Parent, nodes[3].Conn)
	}
	// Every non-root edge carries a positive score.
	for i, n := range nodes {
		if n.Parent != NoParent && n.Score <= 0 {
			t.Errorf("node %d edge score %v, want > 0", i, n.Score)
		}
	}
}

func TestEdges(t *testing.T) {
	b := buildGameBundle(t)
	edges := b.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v, want 3 edges", edges)
	}
	found := false
	for _, e := range edges {
		if e.Parent == 3 && e.Child == 4 {
			found = true
		}
		if e.Parent >= e.Child {
			t.Errorf("edge %v points forward in stream order", e)
		}
	}
	if !found {
		t.Errorf("missing RT edge 3->4 in %v", edges)
	}
}

func TestSummaryCounts(t *testing.T) {
	b := buildGameBundle(t)
	if got := b.TagCount("redsox"); got != 4 {
		t.Errorf("TagCount(redsox) = %d, want 4", got)
	}
	if got := b.TagCount("yankee"); got != 2 {
		t.Errorf("TagCount(yankee) = %d, want 2", got)
	}
	if !b.HasUser("dims") || b.HasUser("stranger") {
		t.Error("HasUser wrong")
	}
	if got := b.KeywordCount("lester"); got != 3 {
		t.Errorf("KeywordCount(lester) = %d, want 3", got)
	}
}

func TestExtent(t *testing.T) {
	b := buildGameBundle(t)
	if !b.StartTime().Equal(base) {
		t.Errorf("StartTime = %v, want %v", b.StartTime(), base)
	}
	want := base.Add(25 * time.Minute)
	if !b.EndTime().Equal(want) || !b.LastUpdate().Equal(want) {
		t.Errorf("EndTime/LastUpdate = %v/%v, want %v", b.EndTime(), b.LastUpdate(), want)
	}
}

func TestUnrelatedMessageBecomesRoot(t *testing.T) {
	b := New(1)
	b.Add(weights, doc(1, "a", "first topic #one", base))
	idx := b.Add(weights, doc(2, "b", "completely different subject", base.Add(time.Minute)))
	if got := b.Nodes()[idx].Parent; got != NoParent {
		t.Errorf("unrelated message parent = %d, want NoParent (forest root)", got)
	}
	if len(b.Roots()) != 2 {
		t.Errorf("Roots = %v, want 2 roots", b.Roots())
	}
}

func TestBestParentWins(t *testing.T) {
	b := New(1)
	b.Add(weights, doc(1, "a", "game update #redsox", base))
	b.Add(weights, doc(2, "b", "game over #redsox http://bit.ly/x", base.Add(time.Minute)))
	// Shares URL+tag with node 1, only tag with node 0 → must pick 1.
	idx := b.Add(weights, doc(3, "c", "replay http://bit.ly/x #redsox", base.Add(2*time.Minute)))
	if got := b.Nodes()[idx].Parent; got != 1 {
		t.Errorf("parent = %d, want 1 (stronger URL overlap)", got)
	}
	if got := b.Nodes()[idx].Conn; got != score.ConnURL {
		t.Errorf("conn = %v, want url", got)
	}
}

func TestClosedBundlePanics(t *testing.T) {
	b := New(1)
	b.Add(weights, doc(1, "a", "msg #t", base))
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed() false after Close")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add to closed bundle did not panic")
		}
	}()
	b.Add(weights, doc(2, "b", "more #t", base.Add(time.Minute)))
}

func TestChildrenAndRoots(t *testing.T) {
	b := buildGameBundle(t)
	for _, r := range b.Roots() {
		if b.Nodes()[r].Parent != NoParent {
			t.Errorf("root %d has a parent", r)
		}
	}
	kids := b.Children(2)
	if !reflect.DeepEqual(kids, []int{3}) {
		t.Errorf("Children(2) = %v, want [3]", kids)
	}
}

func TestSummaryWords(t *testing.T) {
	b := buildGameBundle(t)
	words := b.SummaryWords(5)
	if len(words) == 0 || words[0] != "redsox" {
		t.Errorf("SummaryWords = %v, want redsox first (tag counted double)", words)
	}
}

func TestRender(t *testing.T) {
	b := buildGameBundle(t)
	out := b.Render()
	if !strings.Contains(out, "bundle 7") || !strings.Contains(out, "[rt") {
		t.Errorf("Render missing expected parts:\n%s", out)
	}
	// Every message text appears once.
	for _, n := range b.Nodes() {
		if !strings.Contains(out, n.Doc.Msg.Text) {
			t.Errorf("Render missing message %q", n.Doc.Msg.Text)
		}
	}
}

func TestMemBytesGrows(t *testing.T) {
	b := New(1)
	before := b.MemBytes()
	b.Add(weights, doc(1, "a", "some message #tag http://bit.ly/q", base))
	if b.MemBytes() <= before {
		t.Errorf("MemBytes did not grow: %d -> %d", before, b.MemBytes())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := buildGameBundle(t)
	b.tagCounts["redsox"] = 99
	if err := b.Validate(); err == nil {
		t.Error("Validate accepted corrupted summary")
	}
	b2 := buildGameBundle(t)
	b2.nodes[1].Parent = 3 // forward reference
	if err := b2.Validate(); err == nil {
		t.Error("Validate accepted forward parent link")
	}
}

func TestIndicants(t *testing.T) {
	b := buildGameBundle(t)
	tags, urls, keys := b.Indicants()
	if !reflect.DeepEqual(tags, []string{"redsox", "yankee"}) {
		t.Errorf("tags = %v", tags)
	}
	if len(urls) != 0 {
		t.Errorf("urls = %v, want none", urls)
	}
	if len(keys) == 0 {
		t.Errorf("keys empty")
	}
}
