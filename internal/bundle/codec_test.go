package bundle

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tokenizer"
)

func TestMarshalRoundTrip(t *testing.T) {
	b := buildGameBundle(t)
	b.Close()
	data := b.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	assertBundleEqual(t, b, got)
	if !got.Closed() {
		t.Error("closed flag lost")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded bundle invalid: %v", err)
	}
}

func TestMarshalEmptyBundle(t *testing.T) {
	b := New(42)
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal empty: %v", err)
	}
	if got.ID() != 42 || got.Size() != 0 {
		t.Errorf("empty round trip: id=%d size=%d", got.ID(), got.Size())
	}
}

func assertBundleEqual(t *testing.T, want, got *Bundle) {
	t.Helper()
	if got.ID() != want.ID() || got.Size() != want.Size() {
		t.Fatalf("id/size mismatch: %d/%d vs %d/%d", got.ID(), got.Size(), want.ID(), want.Size())
	}
	for i := range want.nodes {
		w, g := want.nodes[i], got.nodes[i]
		if g.Parent != w.Parent || g.Score != w.Score || g.Conn != w.Conn {
			t.Fatalf("node %d edge differs: %+v vs %+v", i, g, w)
		}
		if !reflect.DeepEqual(g.Doc.Msg, w.Doc.Msg) {
			t.Fatalf("node %d message differs:\n  %+v\n  %+v", i, g.Doc.Msg, w.Doc.Msg)
		}
		if !reflect.DeepEqual(g.Doc.Keywords, w.Doc.Keywords) {
			t.Fatalf("node %d keywords differ: %v vs %v", i, g.Doc.Keywords, w.Doc.Keywords)
		}
	}
	if !got.StartTime().Equal(want.StartTime()) || !got.EndTime().Equal(want.EndTime()) {
		t.Error("extent differs after round trip")
	}
	if !reflect.DeepEqual(got.tagCounts, want.tagCounts) ||
		!reflect.DeepEqual(got.urlCounts, want.urlCounts) ||
		!reflect.DeepEqual(got.keyCounts, want.keyCounts) {
		t.Error("summaries differ after round trip")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := buildGameBundle(t)
	data := b.Marshal()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0x00}, data[1:]...),
		"bad version": append([]byte{codecMagic, 99}, data[2:]...),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte{}, data...), 0xFF),
	}
	for name, c := range cases {
		if _, err := Unmarshal(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestUnmarshalFuzzedTruncations chops the encoding at every byte
// offset; decode must fail cleanly (never panic) on all of them.
func TestUnmarshalFuzzedTruncations(t *testing.T) {
	b := buildGameBundle(t)
	data := b.Marshal()
	for i := 0; i < len(data); i++ {
		if _, err := Unmarshal(data[:i]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(data))
		}
	}
}

// TestUnmarshalFuzzedFlips flips single bytes; decode must either fail
// or produce a bundle (possibly semantically different) without panic.
func TestUnmarshalFuzzedFlips(t *testing.T) {
	b := buildGameBundle(t)
	data := b.Marshal()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte{}, data...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		_, _ = Unmarshal(mut) // must not panic
	}
}

// Property: round trip over generator-produced bundles preserves
// everything, for bundles of random size.
func TestRoundTripProperty(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 10000
	cfg.Users = 500
	cfg.VocabSize = 800
	cfg.EventsPerDay = 400
	g := gen.New(cfg)
	w := score.DefaultMessageWeights()

	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%20) + 1
		b := New(ID(sizeRaw) + 1)
		for i := 0; i < size; i++ {
			m := g.Next()
			b.Add(w, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
		}
		got, err := Unmarshal(b.Marshal())
		if err != nil {
			return false
		}
		if got.Size() != b.Size() || got.MemBytes() != b.MemBytes() {
			return false
		}
		return got.Validate() == nil && reflect.DeepEqual(got.Edges(), b.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodedDatesUTC(t *testing.T) {
	b := New(1)
	loc := time.FixedZone("X", 3600)
	b.Add(weights, doc(1, "a", "msg #t", base.In(loc)))
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Nodes()[0].Doc.Msg.Date.Equal(base) {
		t.Error("date instant lost across time zones")
	}
}

func BenchmarkMarshal(b *testing.B) {
	bn := New(1)
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 10000
	g := gen.New(cfg)
	w := score.DefaultMessageWeights()
	for i := 0; i < 50; i++ {
		m := g.Next()
		bn.Add(w, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bn.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	bn := New(1)
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 10000
	g := gen.New(cfg)
	w := score.DefaultMessageWeights()
	for i := 0; i < 50; i++ {
		m := g.Next()
		bn.Add(w, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
	}
	data := bn.Marshal()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
