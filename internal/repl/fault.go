package repl

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ErrInjectedTransport is the error injected transport faults fail with.
var ErrInjectedTransport = errors.New("repl: injected transport fault")

// TransportFault describes what happens when a FaultTransport trips —
// the HTTP mirror of fsx.Fault. Zero value = fail the request with
// ErrInjectedTransport.
type TransportFault struct {
	// Err fails the request outright with this error (default
	// ErrInjectedTransport) — a connection refused / reset stand-in.
	Err error
	// TornBytes truncates the response BODY after this many bytes and
	// then surfaces an unexpected-EOF read error — a connection cut
	// mid-stream. Requires TornBytes > 0.
	TornBytes int
	// Stall delays the response this long before returning it — a slow
	// or wedged leader. Combine with Freeze to wedge every request.
	Stall time.Duration
	// StaleOffset rewrites the request's seg/off cursor hints to bogus
	// values before it reaches the leader, exercising the leader's
	// hint-fallback path end to end.
	StaleOffset bool
	// Status short-circuits the request with this HTTP status and an
	// empty body (e.g. 503 without Retry-After).
	Status int
	// Freeze latches the fault: every subsequent request trips too,
	// until Disarm. Without it the fault fires exactly once.
	Freeze bool
}

// FaultTransport is an http.RoundTripper that injects one fault into
// the Nth request, mirroring the fsx.FaultFS Arm/Disarm idiom for the
// replication transport: Nth-request errors, torn response bodies,
// stalls and stale offsets.
//
//	ft := NewFaultTransport(http.DefaultTransport)
//	client := &http.Client{Transport: ft}
//	ft.Arm(3, TransportFault{TornBytes: 64}) // 3rd request: body cut after 64 bytes
type FaultTransport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	armed  bool           // guarded by mu
	n      int64          // requests until the fault fires (1 = next request); guarded by mu
	fault  TransportFault // guarded by mu
	trips  int            // guarded by mu
	frozen bool           // guarded by mu
}

// NewFaultTransport wraps inner (nil = http.DefaultTransport).
func NewFaultTransport(inner http.RoundTripper) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultTransport{inner: inner}
}

// Arm schedules f to fire on the nth request from now (1 = the next
// one). Re-arming replaces any pending fault and clears a Freeze latch.
func (t *FaultTransport) Arm(nth int64, f TransportFault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed, t.n, t.fault, t.frozen = true, nth, f, false
}

// Disarm cancels any pending or latched fault.
func (t *FaultTransport) Disarm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed, t.frozen = false, false
}

// Trips reports how many requests have been faulted.
func (t *FaultTransport) Trips() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trips
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	trip := false
	if t.frozen {
		trip = true
	} else if t.armed {
		t.n--
		if t.n <= 0 {
			trip = true
			t.armed = false
			t.frozen = t.fault.Freeze
		}
	}
	f := t.fault
	if trip {
		t.trips++
	}
	t.mu.Unlock()

	if !trip {
		return t.inner.RoundTrip(req)
	}
	if f.Stall > 0 {
		select {
		case <-time.After(f.Stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case f.StaleOffset:
		// Poison the cursor hints; the request itself goes through.
		q := req.URL.Query()
		q.Set("seg", "999999")
		q.Set("off", "123456789")
		req = req.Clone(req.Context())
		req.URL.RawQuery = q.Encode()
		return t.inner.RoundTrip(req)
	case f.Status != 0:
		return &http.Response{
			StatusCode:    f.Status,
			Status:        strconv.Itoa(f.Status) + " injected",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          http.NoBody,
			ContentLength: 0,
			Request:       req,
		}, nil
	case f.TornBytes > 0:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &tornBody{inner: resp.Body, remaining: f.TornBytes}
		resp.ContentLength = -1
		return resp, nil
	case f.Err != nil:
		return nil, f.Err
	case f.Stall > 0:
		// A pure stall: the request is merely slow, not broken.
		return t.inner.RoundTrip(req)
	default:
		return nil, ErrInjectedTransport
	}
}

// tornBody passes through remaining bytes, then fails like a cut
// connection (not a clean EOF).
type tornBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return b.inner.Close() }
