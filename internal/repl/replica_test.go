package repl

// Follower integration suite: every test runs a real leader (Durable +
// Source behind an httptest server) and a real follower (Replica over
// its own MemFS) and drives them through the faults the design claims
// to survive — torn streams, flaky transports, stale cursor hints,
// leader restarts, truncation horizons, outright divergence. The
// convergence bar is byte-identical /search and /prov responses, which
// double-applied or skipped records cannot pass.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/server"
	"provex/internal/tweet"
)

func testMsg(i int) *tweet.Message {
	date := time.Date(2009, 9, 29, 18, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return tweet.Parse(tweet.ID(i+1), fmt.Sprintf("user%d", i%7),
		date, fmt.Sprintf("message %d about #tsunami near samoa http://x.io/%d", i, i%11))
}

// testLeader is a live leader: durable node, shipper, HTTP surface.
type testLeader struct {
	t   *testing.T
	mem *fsx.MemFS
	dur *pipeline.Durable
	src *Source
	srv *httptest.Server
	n   int // messages ingested so far
}

func leaderDurable(t *testing.T, mem *fsx.MemFS) *pipeline.Durable {
	t.Helper()
	dur, err := pipeline.OpenDurable(core.FullIndexConfig(), nil, nil, pipeline.DurableOptions{
		FS:             mem,
		CheckpointPath: "leader/ckpt",
		WALDir:         "leader/wal",
		WALSyncEvery:   1, // acknowledged == durable == shippable
	})
	if err != nil {
		t.Fatal(err)
	}
	return dur
}

func newTestLeader(t *testing.T) *testLeader {
	t.Helper()
	mem := fsx.NewMem()
	dur := leaderDurable(t, mem)
	l := &testLeader{t: t, mem: mem, dur: dur, src: NewSource(dur, SourceOptions{})}
	l.srv = httptest.NewServer(l.handler())
	t.Cleanup(l.srv.Close)
	return l
}

func (l *testLeader) handler() http.Handler {
	proc := query.New(l.dur.Engine(), query.DefaultOptions())
	proc.Reindex()
	return server.New(proc, server.WithReplication(l.src))
}

// queryServer builds a server whose message index covers everything
// ingested SO FAR (the long-lived l.srv indexed at construction time
// and is only used for replication endpoints, which read files).
func (l *testLeader) queryServer() *httptest.Server {
	srv := httptest.NewServer(l.handler())
	l.t.Cleanup(srv.Close)
	return srv
}

func (l *testLeader) ingest(count int) {
	l.t.Helper()
	for i := 0; i < count; i++ {
		if _, err := l.dur.Ingest(testMsg(l.n)); err != nil {
			l.t.Fatalf("leader ingest %d: %v", l.n, err)
		}
		l.n++
	}
}

func (l *testLeader) checkpoint() {
	l.t.Helper()
	if err := l.dur.Checkpoint(); err != nil {
		l.t.Fatal(err)
	}
}

// restart simulates a leader SIGKILL + recovery: the durable node is
// abandoned (no Close, no final sync beyond what already happened),
// the disk reverts to its synced image, and a fresh node recovers.
func (l *testLeader) restart() {
	l.t.Helper()
	l.mem.Crash()
	l.dur = leaderDurable(l.t, l.mem)
	l.src = NewSource(l.dur, SourceOptions{})
}

// follower state shared by the helpers below.
func followerOpts(mem *fsx.MemFS, client *http.Client) ReplicaOptions {
	return ReplicaOptions{
		FS:             mem,
		CheckpointPath: "follower/ckpt",
		WALDir:         "follower/wal",
		WALSyncEvery:   1,
		Client:         client,
		PollInterval:   3 * time.Millisecond,
		StaleAfter:     2 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
	}
}

func newFollower(t *testing.T, leaderURL string, mem *fsx.MemFS, client *http.Client, tune func(*ReplicaOptions)) *Replica {
	t.Helper()
	opts := followerOpts(mem, client)
	if tune != nil {
		tune(&opts)
	}
	r, err := NewReplica(leaderURL, core.FullIndexConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fetchRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// assertParity requires byte-identical responses from both servers:
// the strongest convergence check — a double-applied, skipped or
// reordered record shifts scores, sizes or ordering somewhere.
func assertParity(t *testing.T, leaderURL, followerURL string, paths ...string) {
	t.Helper()
	for _, p := range paths {
		ls, lb := fetchRaw(t, leaderURL+p)
		fs, fb := fetchRaw(t, followerURL+p)
		if ls != fs {
			t.Fatalf("%s: leader %d vs follower %d", p, ls, fs)
		}
		if string(lb) != string(fb) {
			t.Fatalf("%s: bodies differ\nleader:   %s\nfollower: %s", p, lb, fb)
		}
	}
}

var parityPaths = []string{
	"/search?q=tsunami&k=25",
	"/search?q=samoa+message&k=10",
	"/prov?q=tsunami&k=10",
	"/trending?k=10",
}

func TestFollowerBootstrapTailConvergesWithFaults(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(120)
	leader.checkpoint() // bootstrap payload
	leader.ingest(60)   // plus a WAL tail to stream

	ft := NewFaultTransport(nil)
	client := &http.Client{Transport: ft, Timeout: 2 * time.Second}
	mem := fsx.NewMem()
	r := newFollower(t, leader.srv.URL, mem, client, nil)

	// First request is the checkpoint download: tear it. The validated
	// install must reject the torn file and retry from scratch.
	ft.Arm(1, TransportFault{TornBytes: 64})
	r.Start()
	waitFor(t, 5*time.Second, "initial catch-up", func() bool {
		return r.Applied() == uint64(leader.n)
	})
	if ft.Trips() == 0 {
		t.Fatal("torn checkpoint download never tripped — the fault is not faulting")
	}

	// Live tail under a mid-stream fault.
	ft.Arm(2, TransportFault{TornBytes: 30})
	leader.ingest(40)
	waitFor(t, 5*time.Second, "live tail catch-up", func() bool {
		return r.Applied() == uint64(leader.n)
	})

	fsrv := httptest.NewServer(server.New(r, server.WithHealth(r.Health)))
	defer fsrv.Close()
	waitFor(t, 2*time.Second, "follower ready", func() bool { return r.Health().Ready })
	if st, _ := fetchRaw(t, fsrv.URL+"/readyz"); st != http.StatusOK {
		t.Fatalf("converged follower readyz = %d", st)
	}
	assertParity(t, leader.queryServer().URL, fsrv.URL, parityPaths...)

	if err := r.Stop(); err != nil {
		t.Fatalf("follower stop: %v", err)
	}

	// A restarted follower is a crash recovery: it must come back from
	// its own durable state and stay converged, without re-bootstrap.
	r2 := newFollower(t, leader.srv.URL, mem, client, nil)
	r2.Start()
	defer r2.Stop()
	waitFor(t, 5*time.Second, "restarted follower ready", func() bool {
		return r2.Applied() == uint64(leader.n) && r2.Health().Ready
	})
	fsrv2 := httptest.NewServer(server.New(r2, server.WithHealth(r2.Health)))
	defer fsrv2.Close()
	assertParity(t, leader.queryServer().URL, fsrv2.URL, parityPaths...)
}

// TestFollowerCrashTorture SIGKILLs the follower at random points
// under randomized transport faults — including across a leader
// checkpoint that truncates history out from under it (410 resync) —
// and requires exact convergence at the end. Double replay, skipped
// records or a poisoned bootstrap all fail the byte parity check.
func TestFollowerCrashTorture(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(150)
	leader.checkpoint()
	leader.ingest(100)

	rng := rand.New(rand.NewSource(7))
	mem := fsx.NewMem() // the follower's disk, surviving every round

	const rounds = 8
	for round := 0; round < rounds; round++ {
		ft := NewFaultTransport(nil)
		client := &http.Client{Transport: ft, Timeout: 500 * time.Millisecond}
		r := newFollower(t, leader.srv.URL, mem, client, func(o *ReplicaOptions) {
			o.WALSyncEvery = 4 // let crashes actually lose recent applies
			o.MaxBatchBytes = 1 + rng.Intn(4000)
		})
		switch rng.Intn(4) {
		case 0:
			ft.Arm(1+rng.Int63n(5), TransportFault{})
		case 1:
			ft.Arm(1+rng.Int63n(5), TransportFault{TornBytes: 1 + rng.Intn(300)})
		case 2:
			ft.Arm(1+rng.Int63n(5), TransportFault{StaleOffset: true})
		case 3:
			ft.Arm(1+rng.Int63n(5), TransportFault{Status: http.StatusServiceUnavailable})
		}
		r.Start()
		time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
		r.kill()
		// Let the abandoned pipeline's queue settle so the simulated
		// power cut below is the only thing that loses data.
		if st := r.state.Load(); st != nil {
			last := st.svc.Ingested()
			waitFor(t, time.Second, "pipeline settle", func() bool {
				now := st.svc.Ingested()
				settled := now == last
				last = now
				return settled
			})
		}
		mem.Crash()

		// Keep the leader moving; mid-torture checkpoints truncate WAL
		// history and force lagging followers through the 410 path.
		if round%3 == 1 {
			leader.ingest(40)
		}
		if round == 4 {
			leader.checkpoint()
		}
	}

	// Final round: no faults, full convergence, graceful shutdown.
	client := &http.Client{Timeout: 2 * time.Second}
	r := newFollower(t, leader.srv.URL, mem, client, nil)
	r.Start()
	waitFor(t, 10*time.Second, "post-torture convergence", func() bool {
		return r.Applied() == uint64(leader.n) && r.Health().Ready
	})
	fsrv := httptest.NewServer(server.New(r, server.WithHealth(r.Health)))
	defer fsrv.Close()
	assertParity(t, leader.queryServer().URL, fsrv.URL, parityPaths...)
	if err := r.Stop(); err != nil {
		t.Fatalf("final stop: %v", err)
	}
}

// swapHandler lets a single stable URL point at successive leader
// generations — an HTTP stand-in for a leader process restarting
// behind its address.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// down answers every request 500 — the connection-refused window while
// a leader restarts.
var down = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "leader restarting", http.StatusInternalServerError)
})

func TestFollowerSurvivesLeaderRestartMidStream(t *testing.T) {
	leader := newTestLeader(t)
	sw := &swapHandler{}
	sw.set(leader.handler())
	srv := httptest.NewServer(sw)
	defer srv.Close()

	leader.ingest(80)
	leader.checkpoint()
	leader.ingest(200)

	client := &http.Client{Timeout: 2 * time.Second}
	r := newFollower(t, srv.URL, fsx.NewMem(), client, func(o *ReplicaOptions) {
		o.MaxBatchBytes = 1500 // many fetches, so the restart lands mid-stream
	})
	r.Start()
	defer r.Stop()

	// Wait until the follower is genuinely mid-stream, then kill the
	// leader under it.
	waitFor(t, 5*time.Second, "mid-stream progress", func() bool {
		a := r.Applied()
		return a > 90 && a < uint64(leader.n)
	})
	sw.set(down)
	prev := r.Applied()
	leader.restart()
	if got := leader.dur.WALSyncedSeq(); got != uint64(leader.n) {
		t.Fatalf("leader recovered to %d, ingested %d — test premise broken", got, leader.n)
	}
	sw.set(leader.handler())

	// WAL sequence alignment means the follower resumes exactly after
	// its applied watermark: monotonic progress, no double replay.
	waitFor(t, 10*time.Second, "post-restart convergence", func() bool {
		a := r.Applied()
		if a < prev {
			t.Fatalf("applied regressed: %d -> %d", prev, a)
		}
		prev = a
		return a == uint64(leader.n)
	})
	if got := int(r.Snapshot().Messages); got != leader.n {
		t.Fatalf("follower engine has %d messages, leader ingested %d — replay not exactly-once", got, leader.n)
	}
	fsrv := httptest.NewServer(server.New(r, server.WithHealth(r.Health)))
	defer fsrv.Close()
	assertParity(t, leader.queryServer().URL, fsrv.URL, parityPaths...)
}

// TestFollowerDegradesGracefullyWhenStalled is the acceptance test for
// graceful degradation: a stalled transport (every request wedged past
// the client timeout) must flip the follower to not-ready within its
// staleness bound and gate reads with Retry-After — and recovery must
// be automatic once the transport heals.
func TestFollowerDegradesGracefullyWhenStalled(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(50)

	ft := NewFaultTransport(nil)
	client := &http.Client{Transport: ft, Timeout: 100 * time.Millisecond}
	r := newFollower(t, leader.srv.URL, fsx.NewMem(), client, func(o *ReplicaOptions) {
		o.StaleAfter = 150 * time.Millisecond
	})
	r.Start()
	defer r.Stop()
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		return r.Applied() == uint64(leader.n) && r.Health().Ready
	})

	fsrv := httptest.NewServer(server.New(r, server.WithHealth(r.Health)))
	defer fsrv.Close()

	// Wedge the transport: every request stalls past the client timeout.
	ft.Arm(1, TransportFault{Stall: 300 * time.Millisecond, Freeze: true})
	leader.ingest(25) // the follower is now stale and cannot know by how much

	waitFor(t, 5*time.Second, "staleness gate", func() bool {
		st := r.Health()
		return !st.Ready && strings.Contains(st.Reason, "unreachable")
	})
	resp, err := http.Get(fsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("stale readyz = %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(fsrv.URL + "/search?q=tsunami")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("stale search = %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Liveness is not readiness: /healthz stays 200.
	if st, _ := fetchRaw(t, fsrv.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz while stale = %d", st)
	}

	// Heal the transport: the follower recovers on its own.
	ft.Disarm()
	waitFor(t, 5*time.Second, "recovery after stall", func() bool {
		return r.Applied() == uint64(leader.n) && r.Health().Ready
	})
	if st, _ := fetchRaw(t, fsrv.URL+"/readyz"); st != http.StatusOK {
		t.Fatalf("recovered readyz = %d", st)
	}
}

// TestFollowerGatesWhileLagBeyondBound drives a slow catch-up and
// checks the explicit staleness bound: while lag exceeds MaxLag the
// follower reports not-ready (reads gated), flipping ready only when
// the lag drains below the bound.
func TestFollowerGatesWhileLagBeyondBound(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(500)

	ft := NewFaultTransport(nil)
	// Pure stall on every request: slow, not broken.
	ft.Arm(1, TransportFault{Stall: 2 * time.Millisecond, Freeze: true})
	client := &http.Client{Transport: ft, Timeout: 2 * time.Second}
	r := newFollower(t, leader.srv.URL, fsx.NewMem(), client, func(o *ReplicaOptions) {
		o.MaxBatchBytes = 600 // a handful of records per fetch
		o.MaxLag = 50
	})
	r.Start()
	defer r.Stop()

	sawLagGate := false
	waitFor(t, 15*time.Second, "slow catch-up", func() bool {
		st := r.Health()
		if !st.Ready && strings.Contains(st.Reason, "lag") {
			sawLagGate = true
		}
		return r.Applied() == uint64(leader.n)
	})
	if !sawLagGate {
		t.Fatal("follower never reported a lag gate during a 500-message catch-up with MaxLag=50")
	}
	waitFor(t, 2*time.Second, "ready after drain", func() bool { return r.Health().Ready })
	if lag := r.Lag(); lag != 0 {
		t.Fatalf("lag after convergence = %d", lag)
	}
}

// TestFollowerLatchesOnDivergence points a converged follower at a
// leader whose durable watermark is BELOW the follower's applied state
// (a reset/blank leader — the one regression WAL shipping cannot
// reconcile) and requires a latched, gated, non-destructive stop: no
// data applied, no data discarded, reads refused.
func TestFollowerLatchesOnDivergence(t *testing.T) {
	leaderA := newTestLeader(t)
	sw := &swapHandler{}
	sw.set(leaderA.handler())
	srv := httptest.NewServer(sw)
	defer srv.Close()
	leaderA.ingest(50)

	client := &http.Client{Timeout: 2 * time.Second}
	r := newFollower(t, srv.URL, fsx.NewMem(), client, nil)
	r.Start()
	defer r.Stop()
	waitFor(t, 5*time.Second, "convergence on leader A", func() bool {
		return r.Applied() == uint64(leaderA.n) && r.Health().Ready
	})

	// Swap in a blank leader behind the same address.
	leaderB := newTestLeader(t)
	leaderB.ingest(10) // different, shorter history
	sw.set(leaderB.handler())

	waitFor(t, 5*time.Second, "divergence latch", func() bool {
		st := r.Health()
		return !st.Ready && st.GateReads && strings.Contains(st.Reason, "diverged")
	})
	if got := r.Applied(); got != 50 {
		t.Fatalf("diverged follower changed state: applied %d, want 50", got)
	}
	if got := int(r.Snapshot().Messages); got != 50 {
		t.Fatalf("diverged follower engine at %d messages, want 50", got)
	}
}

// TestFollowerConvergesDespiteStaleOffsets freezes stale-cursor
// injection across every request: the leader must fall back from the
// poisoned hints to full scans and the follower must still converge.
func TestFollowerConvergesDespiteStaleOffsets(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(150)

	ft := NewFaultTransport(nil)
	ft.Arm(1, TransportFault{StaleOffset: true, Freeze: true})
	client := &http.Client{Transport: ft, Timeout: 2 * time.Second}
	r := newFollower(t, leader.srv.URL, fsx.NewMem(), client, func(o *ReplicaOptions) {
		o.MaxBatchBytes = 2000
	})
	r.Start()
	defer r.Stop()
	waitFor(t, 5*time.Second, "convergence under stale offsets", func() bool {
		return r.Applied() == uint64(leader.n)
	})
	if ft.Trips() == 0 {
		t.Fatal("stale-offset injection never fired")
	}
	fsrv := httptest.NewServer(server.New(r, server.WithHealth(r.Health)))
	defer fsrv.Close()
	waitFor(t, 2*time.Second, "ready", func() bool { return r.Health().Ready })
	assertParity(t, leader.queryServer().URL, fsrv.URL, parityPaths...)
}

// TestSourceShedsAtCapacity occupies the leader's only shipping slot
// and requires the next request to be shed immediately — 503 with the
// configured Retry-After — rather than queued behind it.
func TestSourceShedsAtCapacity(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(10)
	src := NewSource(leader.dur, SourceOptions{MaxStreams: 1, RetryAfter: 7 * time.Second})
	srv := httptest.NewServer(src)
	defer srv.Close()

	src.sem <- struct{}{} // occupy the only slot
	resp, err := http.Get(srv.URL + "/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated shipper answered %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("shed Retry-After = %q, want 7", got)
	}
	<-src.sem
	if st, _ := fetchRaw(t, srv.URL+"/repl/status"); st != http.StatusOK {
		t.Fatalf("freed shipper answered %d", st)
	}
}

// TestFollowerHonorsShedResponses injects a bare 503 (no Retry-After)
// into the tail path and checks the follower treats it as backpressure
// — bounded wait, then convergence — not as an error spiral.
func TestFollowerHonorsShedResponses(t *testing.T) {
	leader := newTestLeader(t)
	leader.ingest(60)

	ft := NewFaultTransport(nil)
	client := &http.Client{Transport: ft, Timeout: 2 * time.Second}
	r := newFollower(t, leader.srv.URL, fsx.NewMem(), client, nil)
	ft.Arm(2, TransportFault{Status: http.StatusServiceUnavailable})
	r.Start()
	defer r.Stop()
	waitFor(t, 10*time.Second, "convergence after shed", func() bool {
		return r.Applied() == uint64(leader.n)
	})
	if ft.Trips() == 0 {
		t.Fatal("injected 503 never fired")
	}
}
