package repl

import (
	"bytes"
	"testing"

	"provex/internal/wal"
)

// FuzzFrameDecoder hammers the replication stream decoder with torn
// frames, bit flips, and truncated input. Invariants: never panic; on
// success, re-encoding the decoded records and trailer and decoding
// that again reproduces the identical records and trailer (no record
// is silently altered, reordered, dropped, or invented — the
// mis-apply guard).
func FuzzFrameDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(streamMagic))
	f.Add([]byte("PROVWAL1 not this stream"))
	valid := encodeStream(f, sampleRecords(3), StreamEnd{Synced: 3, Next: wal.Cursor{Seg: 2, Off: 77}})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	empty := encodeStream(f, nil, StreamEnd{})
	f.Add(empty)
	f.Add(append(bytes.Clone(valid), "trailing garbage"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var records [][]byte
		end, err := ReadStream(bytes.NewReader(data), func(p []byte) error {
			records = append(records, p)
			return nil
		})
		if err != nil {
			return
		}
		var again [][]byte
		end2, err := ReadStream(bytes.NewReader(encodeStream(t, records, end)), func(p []byte) error {
			again = append(again, p)
			return nil
		})
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if end2 != end {
			t.Fatalf("trailer round-trip: %+v != %+v", end2, end)
		}
		if len(again) != len(records) {
			t.Fatalf("record count round-trip: %d != %d", len(again), len(records))
		}
		for i := range again {
			if !bytes.Equal(again[i], records[i]) {
				t.Fatalf("record %d round-trip mismatch", i)
			}
		}
	})
}
