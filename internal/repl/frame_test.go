package repl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"provex/internal/tweet"
	"provex/internal/wal"
)

// encodeStream builds a valid wire stream of the given record payloads
// plus trailer.
func encodeStream(t testing.TB, records [][]byte, end StreamEnd) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for _, rec := range records {
		if err := sw.Record(rec); err != nil {
			t.Fatalf("write record: %v", err)
		}
	}
	if err := sw.End(end); err != nil {
		t.Fatalf("write end: %v", err)
	}
	return buf.Bytes()
}

func sampleRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		m := tweet.Parse(tweet.ID(i+1), fmt.Sprintf("u%d", i),
			time.Date(2009, 9, 29, 18, 0, i, 0, time.UTC),
			fmt.Sprintf("msg %d #tag", i))
		recs[i] = wal.EncodeRecord(uint64(i+1), m)
	}
	return recs
}

func TestStreamRoundtrip(t *testing.T) {
	records := sampleRecords(7)
	wantEnd := StreamEnd{Synced: 7, Next: wal.Cursor{Seg: 3, Off: 4096}}
	wire := encodeStream(t, records, wantEnd)

	var got [][]byte
	end, err := ReadStream(bytes.NewReader(wire), func(p []byte) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != wantEnd {
		t.Fatalf("trailer %+v want %+v", end, wantEnd)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d mutated in transit", i)
		}
		seq, m, err := wal.DecodeRecord(got[i])
		if err != nil || seq != uint64(i+1) || m == nil {
			t.Fatalf("record %d undecodable: seq=%d err=%v", i, seq, err)
		}
	}
}

func TestStreamEmptyBatch(t *testing.T) {
	wire := encodeStream(t, nil, StreamEnd{Synced: 42, Next: wal.Cursor{Seg: 1, Off: 8}})
	end, err := ReadStream(bytes.NewReader(wire), func([]byte) error {
		t.Fatal("record in an empty batch")
		return nil
	})
	if err != nil || end.Synced != 42 {
		t.Fatalf("end=%+v err=%v", end, err)
	}
}

func TestStreamTruncationNeverDecodes(t *testing.T) {
	wire := encodeStream(t, sampleRecords(3), StreamEnd{Synced: 3})
	for cut := 0; cut < len(wire); cut++ {
		_, err := ReadStream(bytes.NewReader(wire[:cut]), func([]byte) error { return nil })
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("cut at %d: want ErrFrame, got %v", cut, err)
		}
	}
}

func TestStreamBitFlipNeverDecodes(t *testing.T) {
	wire := encodeStream(t, sampleRecords(2), StreamEnd{Synced: 2, Next: wal.Cursor{Seg: 1, Off: 100}})
	for i := range wire {
		for bit := 0; bit < 8; bit++ {
			flipped := bytes.Clone(wire)
			flipped[i] ^= 1 << bit
			_, err := ReadStream(bytes.NewReader(flipped), func([]byte) error { return nil })
			if err == nil {
				t.Fatalf("flip byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

func TestStreamRecordErrorPropagates(t *testing.T) {
	wire := encodeStream(t, sampleRecords(2), StreamEnd{Synced: 2})
	sentinel := errors.New("apply failed")
	_, err := ReadStream(bytes.NewReader(wire), func([]byte) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestStreamOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(streamMagic)
	hdr := make([]byte, frameHeaderSize)
	hdr[0] = frameRecord
	hdr[1], hdr[2], hdr[3], hdr[4] = 0xff, 0xff, 0xff, 0xff // ~4GB length
	buf.Write(hdr)
	_, err := ReadStream(&buf, func([]byte) error { return nil })
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("want ErrFrame, got %v", err)
	}
}
