package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"time"

	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/wal"
)

// SourceOptions tune the leader-side shipper.
type SourceOptions struct {
	// MaxStreams caps concurrent shipping requests (checkpoint
	// downloads + WAL batches). Beyond it the leader sheds: 503 with a
	// Retry-After, never a queue that could back-pressure into the
	// ingest path. Default 4.
	MaxStreams int
	// MaxBatchBytes caps one WAL response body regardless of what the
	// follower asks for. Default 1 MiB.
	MaxBatchBytes int
	// RetryAfter is the backoff hint attached to shed responses.
	// Default 1s.
	RetryAfter time.Duration
}

// Source is the leader side of WAL-shipping replication: an HTTP
// surface over a pipeline.Durable that serves follower bootstrap and
// WAL tailing. It reads only the durable artifacts (checkpoint file,
// WAL segments, atomic watermark) through independent file handles and
// takes no engine or pipeline locks, so a slow or hostile follower can
// degrade other followers (shed with 503) but can never block ingest.
//
//	GET /repl/status                    — {"synced": N} durable watermark probe
//	GET /repl/checkpoint                — newest checkpoint file (404 = none yet)
//	GET /repl/wal?after=N[&seg=S&off=O] — framed record batch, sequences (N, synced]
//
// The WAL endpoint answers 410 Gone when the records after N were
// truncated by a checkpoint — the follower must re-bootstrap — and
// 503 + Retry-After when shedding.
type Source struct {
	d    *pipeline.Durable
	opts SourceOptions
	sem  chan struct{}
	mux  *http.ServeMux

	shipBytes   metrics.Counter
	shipBatches metrics.Counter
	shipRecords metrics.Counter
	shed        metrics.Counter
	resyncs     metrics.Counter
}

// NewSource builds the shipper over d.
func NewSource(d *pipeline.Durable, opts SourceOptions) *Source {
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = 4
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	s := &Source{d: d, opts: opts, sem: make(chan struct{}, opts.MaxStreams), mux: http.NewServeMux()}
	s.mux.HandleFunc("/repl/status", s.guard(s.handleStatus))
	s.mux.HandleFunc("/repl/checkpoint", s.guard(s.handleCheckpoint))
	s.mux.HandleFunc("/repl/wal", s.guard(s.handleWAL))
	return s
}

// RegisterMetrics exposes the shipper's instruments under canonical
// provex_repl_ship_* names (documented in OBSERVABILITY.md).
func (s *Source) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("provex_repl_ship_bytes_total",
		"WAL stream bytes shipped to followers.", &s.shipBytes)
	reg.RegisterCounter("provex_repl_ship_batches_total",
		"WAL batches shipped to followers.", &s.shipBatches)
	reg.RegisterCounter("provex_repl_ship_records_total",
		"WAL records shipped to followers.", &s.shipRecords)
	reg.RegisterCounter("provex_repl_ship_shed_total",
		"Shipping requests shed with 503 because MaxStreams were already in flight.", &s.shed)
	reg.RegisterCounter("provex_repl_ship_resyncs_total",
		"WAL requests answered 410 Gone (follower behind the truncation horizon, must re-bootstrap).", &s.resyncs)
}

// ServeHTTP implements http.Handler for mounting under /repl/.
func (s *Source) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// guard enforces GET and the shed semaphore around h. Shedding is
// load-shedding by design: a full semaphore answers immediately with
// 503 + Retry-After instead of queueing, because queued shipping work
// holds HTTP goroutines and memory the ingest path may need.
func (s *Source) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			replError(w, http.StatusMethodNotAllowed, "method %s not allowed, use GET", r.Method)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
			replError(w, http.StatusServiceUnavailable, "shipping at capacity (%d streams)", s.opts.MaxStreams)
			return
		}
		h(w, r)
	}
}

func (s *Source) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]uint64{"synced": s.d.WALSyncedSeq()})
}

func (s *Source) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	f, err := s.d.OpenCheckpoint()
	if errors.Is(err, fs.ErrNotExist) {
		replError(w, http.StatusNotFound, "no checkpoint taken yet")
		return
	}
	if err != nil {
		replError(w, http.StatusInternalServerError, "open checkpoint: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	n, err := io.Copy(w, f)
	s.shipBytes.Add(n)
	if err != nil {
		// Headers are gone; the follower's checkpoint loader rejects the
		// torn download by CRC.
		_ = err
	}
}

func (s *Source) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("after"), 10, 64)
	if err != nil {
		replError(w, http.StatusBadRequest, "invalid after %q", q.Get("after"))
		return
	}
	var hint wal.Cursor
	if seg, err := strconv.Atoi(q.Get("seg")); err == nil {
		hint.Seg = seg
	}
	if off, err := strconv.ParseInt(q.Get("off"), 10, 64); err == nil {
		hint.Off = off
	}
	maxBytes := s.opts.MaxBatchBytes
	if mb, err := strconv.Atoi(q.Get("max")); err == nil && mb > 0 && mb < maxBytes {
		maxBytes = mb
	}
	batch, err := s.d.ReadWAL(after, hint, maxBytes)
	if errors.Is(err, wal.ErrGap) {
		s.resyncs.Inc()
		replError(w, http.StatusGone, "records after %d truncated by a checkpoint, re-bootstrap: %v", after, err)
		return
	}
	if err != nil {
		replError(w, http.StatusInternalServerError, "read wal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	sw := NewStreamWriter(cw)
	werr := error(nil)
	for _, rec := range batch.Records {
		if werr = sw.Record(rec); werr != nil {
			break
		}
	}
	if werr == nil {
		werr = sw.End(StreamEnd{Synced: batch.Synced, Next: batch.Next})
	}
	// A mid-stream write error means the follower went away; it will
	// retry. The frame CRCs make the torn body undecodable.
	s.shipBytes.Add(cw.n)
	s.shipBatches.Inc()
	s.shipRecords.Add(int64(len(batch.Records)))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// retryAfterSeconds renders a duration as the whole-second Retry-After
// header value, at least 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func replError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
