// Package repl implements WAL-shipping replication. The leader side
// (Source) serves three HTTP endpoints under /repl/: a status probe, a
// checkpoint download for follower bootstrap, and a CRC-framed stream
// of WAL record batches with resumable cursors. The follower side
// (Replica) bootstraps from the newest leader checkpoint, tails the
// WAL stream with exponential-backoff retries on every network and
// decode fault, and applies records through the same durable pipeline
// the leader uses — so a follower is itself a valid crash-recoverable
// node at every instant.
//
// Trust model: the transport is assumed lossy and tearing (faults are
// injected in tests via FaultTransport), never byzantine. Every frame
// is CRC32C-guarded so torn bodies and bit flips surface as decode
// errors — retried with backoff — rather than mis-applied records; the
// WAL sequence numbers carried inside the records, not the transport,
// decide what is applied.
//
// Replication is a single-shard feature: it ships one serial WAL, and
// a sharded leader (internal/shard) writes N independent logs whose
// consistent cut lives in the round ledger, not in any one log. A
// sharded deployment would need per-shard shipping plus a
// follower-side round reducer — future work, see DESIGN.md §2i.
// provserve refuses -follow with -shards > 1 and sharded leaders
// expose no /repl/ endpoints.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"provex/internal/wal"
)

// streamMagic opens every WAL stream response body.
const streamMagic = "PROVREP1"

// Frame wire format: [type:1][payloadLen:4 LE][crc32c:4 LE][payload].
const (
	frameHeaderSize = 9
	frameRecord     = 'R' // payload: one WAL record encoding (wal.DecodeRecord)
	frameEnd        = 'E' // payload: uvarint synced, uvarint next.Seg, uvarint next.Off
	// maxFramePayload mirrors the WAL's record cap so a corrupt length
	// field cannot drive an absurd allocation on the follower.
	maxFramePayload = 16 << 20
)

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame reports an undecodable stream: torn bytes, checksum
// mismatch, unknown frame type, or a malformed trailer. Followers
// treat it like any transport fault — drop the stream and retry.
var ErrFrame = errors.New("repl: corrupt frame")

// StreamEnd is the trailer of every WAL stream: the leader's durable
// watermark at read time and the cursor to resume the next request
// from. A stream without it is torn and must be discarded.
type StreamEnd struct {
	Synced uint64
	Next   wal.Cursor
}

// StreamWriter frames a WAL batch onto w (the leader's HTTP response).
type StreamWriter struct {
	w     io.Writer
	begun bool
}

// NewStreamWriter wraps w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

func (s *StreamWriter) begin() error {
	if s.begun {
		return nil
	}
	s.begun = true
	_, err := io.WriteString(s.w, streamMagic)
	return err
}

// Record frames one WAL record payload.
func (s *StreamWriter) Record(payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("repl: record too large (%d bytes)", len(payload))
	}
	if err := s.begin(); err != nil {
		return err
	}
	return writeFrame(s.w, frameRecord, payload)
}

// End frames the stream trailer. Call it exactly once, last.
func (s *StreamWriter) End(end StreamEnd) error {
	if err := s.begin(); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, end.Synced)
	buf = binary.AppendUvarint(buf, uint64(end.Next.Seg))
	buf = binary.AppendUvarint(buf, uint64(end.Next.Off))
	return writeFrame(s.w, frameEnd, buf)
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, frameCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadStream decodes one WAL stream from r, calling fn with each
// record payload (CRC-verified; ownership passes to fn) in stream
// order, and returns the trailer. Any anomaly — short magic, torn
// frame, checksum mismatch, unknown type, malformed trailer — returns
// ErrFrame (wrapped); an error from fn is returned as-is. ReadStream
// never panics on hostile input: lengths are capped before allocation
// and every byte is checksum-guarded.
func ReadStream(r io.Reader, fn func(payload []byte) error) (StreamEnd, error) {
	var magic [len(streamMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return StreamEnd{}, fmt.Errorf("%w: short magic: %v", ErrFrame, err)
	}
	if string(magic[:]) != streamMagic {
		return StreamEnd{}, fmt.Errorf("%w: bad magic %q", ErrFrame, magic)
	}
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return StreamEnd{}, fmt.Errorf("%w: torn frame header: %v", ErrFrame, err)
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		wantCRC := binary.LittleEndian.Uint32(hdr[5:9])
		if length > maxFramePayload {
			return StreamEnd{}, fmt.Errorf("%w: oversized frame (%d bytes)", ErrFrame, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return StreamEnd{}, fmt.Errorf("%w: torn frame payload: %v", ErrFrame, err)
		}
		if crc32.Checksum(payload, frameCRC) != wantCRC {
			return StreamEnd{}, fmt.Errorf("%w: checksum mismatch", ErrFrame)
		}
		switch hdr[0] {
		case frameRecord:
			if err := fn(payload); err != nil {
				return StreamEnd{}, err
			}
		case frameEnd:
			return decodeEnd(payload)
		default:
			return StreamEnd{}, fmt.Errorf("%w: unknown frame type 0x%02x", ErrFrame, hdr[0])
		}
	}
}

func decodeEnd(payload []byte) (StreamEnd, error) {
	rest := payload
	ok := true
	take := func() uint64 {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			ok = false
			return 0
		}
		rest = rest[n:]
		return v
	}
	synced := take()
	seg := take()
	off := take()
	if !ok || len(rest) != 0 {
		return StreamEnd{}, fmt.Errorf("%w: malformed trailer", ErrFrame)
	}
	if seg > uint64(math.MaxInt32) || off > uint64(math.MaxInt64) {
		return StreamEnd{}, fmt.Errorf("%w: trailer cursor out of range", ErrFrame)
	}
	return StreamEnd{Synced: synced, Next: wal.Cursor{Seg: int(seg), Off: int64(off)}}, nil
}
