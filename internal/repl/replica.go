package repl

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/metrics"
	"provex/internal/pipeline"
	"provex/internal/query"
	"provex/internal/server"
	"provex/internal/storage"
	"provex/internal/trending"
	"provex/internal/wal"
)

// ReplicaOptions tune a follower.
type ReplicaOptions struct {
	// FS is the filesystem for the follower's own durable state; nil
	// uses the real one. Tests swap in fsx.MemFS / fsx.FaultFS.
	FS fsx.FS
	// CheckpointPath and WALDir are the follower's OWN durable state —
	// a follower is a full crash-recoverable node, not a cache.
	CheckpointPath string
	WALDir         string
	// WALSyncEvery batches the follower's WAL fsyncs (default 64).
	WALSyncEvery int
	// CheckpointEvery checkpoints the follower every n applied messages
	// (default 50000), truncating its WAL like any durable node.
	CheckpointEvery int
	// Client issues the leader requests; inject a faulty RoundTripper
	// here. nil uses a client with a 30s timeout.
	Client *http.Client
	// PollInterval is the sleep between WAL fetches while caught up
	// (default 250ms).
	PollInterval time.Duration
	// MaxBatchBytes is the per-fetch byte hint sent to the leader
	// (default 1 MiB; the leader caps it too).
	MaxBatchBytes int
	// MaxLag is the staleness bound in messages: beyond it the replica
	// reports not-ready and gates reads (default 10000).
	MaxLag uint64
	// StaleAfter bounds silence: when the leader has not answered for
	// this long the replica cannot quantify its staleness and gates
	// (default 30s).
	StaleAfter time.Duration
	// BackoffBase/BackoffCap shape the jittered exponential retry
	// backoff on faults (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

func (o *ReplicaOptions) defaults() {
	o.FS = fsx.Default(o.FS)
	if o.WALSyncEvery <= 0 {
		o.WALSyncEvery = 64
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 50_000
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 250 * time.Millisecond
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.MaxLag == 0 {
		o.MaxLag = 10_000
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 30 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
}

// replState is one generation of follower state: everything that is
// torn down and rebuilt on a checkpoint resync. The Replica swaps it
// atomically so queries racing a resync see either the old complete
// generation or the new one, never a half-built node.
type replState struct {
	dur *pipeline.Durable
	svc *pipeline.Service
}

// Replica is the follower side of WAL-shipping replication: it
// bootstraps from the newest leader checkpoint, tails the leader's WAL
// with jittered exponential backoff on every fault, and applies the
// records through pipeline.Durable exactly like leader-side ingest —
// WAL-before-apply, own checkpoints, full crash recoverability.
//
// It implements server.Backend (read-only query surface) and exposes
// Health as a server.HealthFunc: the replica gates its data endpoints
// when it is bootstrapping, has diverged from the leader, lags beyond
// MaxLag, or has not heard from the leader within StaleAfter —
// explicit staleness bounds instead of unbounded-stale reads.
//
// Concurrency: Start launches the single tailer goroutine, which owns
// all mutation. Queries, Health and metrics reads are lock-free
// (atomic state pointer + atomic counters) and safe at any time.
type Replica struct {
	leader string
	cfg    core.Config
	opts   ReplicaOptions

	state atomic.Pointer[replState]

	applied      atomic.Uint64 // sequences submitted to the local pipeline
	leaderSynced atomic.Uint64 // leader watermark from the last good exchange
	lastContact  atomic.Int64  // UnixNano of the last good exchange (0 = never)
	diverged     atomic.Bool   // latched: leader regressed below our applied state

	// Tailer-goroutine-only state.
	cursor       wal.Cursor
	catchupStart time.Time

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	reg     *metrics.Registry
	regOnce sync.Once

	retries    metrics.Counter
	bootstraps metrics.Counter
	batches    metrics.Counter
	records    metrics.Counter
	catchup    *metrics.Histogram
}

// catchupBounds bucket catch-up episodes from 100ms to 10min.
var catchupBounds = []int64{
	int64(100 * time.Millisecond), int64(250 * time.Millisecond),
	int64(500 * time.Millisecond), int64(time.Second),
	int64(2500 * time.Millisecond), int64(5 * time.Second),
	int64(10 * time.Second), int64(30 * time.Second),
	int64(time.Minute), int64(2 * time.Minute),
	int64(5 * time.Minute), int64(10 * time.Minute),
}

// NewReplica builds a follower of the leader at leaderURL (scheme +
// host, no trailing slash needed). cfg must match the leader's engine
// config or bundle assignment diverges.
func NewReplica(leaderURL string, cfg core.Config, opts ReplicaOptions) (*Replica, error) {
	if opts.CheckpointPath == "" || opts.WALDir == "" {
		return nil, errors.New("repl: replica: CheckpointPath and WALDir are required")
	}
	opts.defaults()
	for len(leaderURL) > 0 && leaderURL[len(leaderURL)-1] == '/' {
		leaderURL = leaderURL[:len(leaderURL)-1]
	}
	return &Replica{
		leader:  leaderURL,
		cfg:     cfg,
		opts:    opts,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		catchup: metrics.NewHistogram(catchupBounds...),
	}, nil
}

// RegisterMetrics exposes the follower's instruments under canonical
// provex_repl_* names (documented in OBSERVABILITY.md). The engine,
// WAL and pipeline families of the underlying node register once the
// first state generation exists (and stay bound to that generation
// across resyncs — a documented trade-off, since the registry pins
// series forever).
func (r *Replica) RegisterMetrics(reg *metrics.Registry) {
	r.reg = reg
	reg.RegisterGaugeFunc("provex_repl_lag_messages",
		"Replica staleness bound: leader durable watermark minus locally applied sequence.",
		func() float64 { return float64(r.Lag()) })
	reg.RegisterGaugeFunc("provex_repl_applied_seq",
		"Highest WAL sequence applied to the local engine.",
		func() float64 { return float64(r.applied.Load()) })
	reg.RegisterGaugeFunc("provex_repl_last_contact_seconds",
		"Seconds since the last successful leader exchange (-1 = never).",
		func() float64 {
			t := r.lastContact.Load()
			if t == 0 {
				return -1
			}
			return time.Since(time.Unix(0, t)).Seconds()
		})
	reg.RegisterGaugeFunc("provex_repl_diverged",
		"1 when the leader's watermark regressed below our applied state (latched; manual intervention).",
		func() float64 {
			if r.diverged.Load() {
				return 1
			}
			return 0
		})
	reg.RegisterCounter("provex_repl_fetch_retries_total",
		"Replication fetches retried after a network, HTTP or decode fault.", &r.retries)
	reg.RegisterCounter("provex_repl_bootstraps_total",
		"Checkpoint bootstraps (initial + 410-triggered resyncs).", &r.bootstraps)
	reg.RegisterCounter("provex_repl_batches_applied_total",
		"WAL batches fetched and applied.", &r.batches)
	reg.RegisterCounter("provex_repl_records_applied_total",
		"WAL records applied to the local engine.", &r.records)
	reg.RegisterHistogram("provex_repl_catchup_seconds",
		"Duration of catch-up episodes (behind the leader -> caught up).", r.catchup, 1e9)
	// A state generation may already exist (tests call Start first).
	if st := r.state.Load(); st != nil {
		r.registerStateMetrics(st)
	}
}

// registerStateMetrics publishes the underlying durable node's families
// exactly once (first generation wins; see RegisterMetrics).
func (r *Replica) registerStateMetrics(st *replState) {
	if r.reg == nil {
		return
	}
	r.regOnce.Do(func() {
		st.dur.Engine().RegisterMetrics(r.reg)
		st.dur.RegisterMetrics(r.reg)
		st.svc.RegisterMetrics(r.reg)
	})
}

// Start launches the tailer goroutine.
func (r *Replica) Start() { go r.run() }

// Stop halts tailing, drains the local pipeline and checkpoints it
// (the normal durable shutdown), returning the first pipeline error.
func (r *Replica) Stop() error {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	st := r.state.Load()
	if st == nil {
		return nil
	}
	err := st.svc.Stop()
	if cerr := st.dur.Close(); err == nil {
		err = cerr
	}
	return err
}

// kill stops the tailer WITHOUT the graceful pipeline drain/checkpoint
// shutdown — the test hook behind crash torture's "SIGKILL at any
// point". Whatever the abandoned generation had not yet synced sits in
// the (simulated) page cache for MemFS.Crash to discard.
func (r *Replica) kill() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Lag returns the replica's staleness bound in messages: how far the
// leader's durable watermark is ahead of what we applied. 0 while
// diverged or never connected (lag is then meaningless; Health covers
// those states).
func (r *Replica) Lag() uint64 {
	synced, applied := r.leaderSynced.Load(), r.applied.Load()
	if synced <= applied {
		return 0
	}
	return synced - applied
}

// Applied returns the highest sequence submitted to the local engine.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// Health implements server.HealthFunc: the explicit staleness contract
// of a follower. Cheap and lock-free — called per probe and per gated
// request.
func (r *Replica) Health() server.HealthStatus {
	detail := map[string]interface{}{
		"role":          "follower",
		"leader":        r.leader,
		"applied_seq":   r.applied.Load(),
		"leader_synced": r.leaderSynced.Load(),
		"lag":           r.Lag(),
	}
	notReady := func(reason string) server.HealthStatus {
		return server.HealthStatus{
			Ready:      false,
			Reason:     reason,
			RetryAfter: 2 * time.Second,
			GateReads:  true,
			Detail:     detail,
		}
	}
	st := r.state.Load()
	if st == nil {
		return notReady("bootstrapping from leader checkpoint")
	}
	if err := st.svc.Err(); err != nil {
		return notReady(fmt.Sprintf("local durability degraded, resyncing: %v", err))
	}
	if r.diverged.Load() {
		return notReady("diverged: leader watermark regressed below locally applied state")
	}
	last := r.lastContact.Load()
	if last == 0 {
		return notReady("no leader contact yet")
	}
	if age := time.Since(time.Unix(0, last)); age > r.opts.StaleAfter {
		detail["last_contact_age"] = age.String()
		return notReady(fmt.Sprintf("leader unreachable for %s (bound %s): staleness unquantifiable",
			age.Round(time.Second), r.opts.StaleAfter))
	}
	if lag := r.Lag(); lag > r.opts.MaxLag {
		return notReady(fmt.Sprintf("replica lag %d messages exceeds bound %d", lag, r.opts.MaxLag))
	}
	return server.HealthStatus{Ready: true, Detail: detail}
}

// --- server.Backend (read-only query surface) ---

// SearchMessages implements server.Backend over the current state
// generation; empty results while bootstrapping (reads are gated then
// anyway, but /stats-style callers must never crash).
func (r *Replica) SearchMessages(q string, k int) []query.MessageHit {
	if st := r.state.Load(); st != nil {
		return st.svc.SearchMessages(q, k)
	}
	return nil
}

// SearchBundles implements server.Backend.
func (r *Replica) SearchBundles(q string, k int) []query.BundleHit {
	if st := r.state.Load(); st != nil {
		return st.svc.SearchBundles(q, k)
	}
	return nil
}

// Bundle implements server.Backend.
func (r *Replica) Bundle(id bundle.ID) (*bundle.Bundle, error) {
	if st := r.state.Load(); st != nil {
		return st.svc.Bundle(id)
	}
	return nil, fmt.Errorf("repl: bootstrapping: %w", storage.ErrNotFound)
}

// Snapshot implements server.Backend.
func (r *Replica) Snapshot() core.Stats {
	if st := r.state.Load(); st != nil {
		return st.svc.Snapshot()
	}
	return core.Stats{}
}

// Trending implements server.Backend.
func (r *Replica) Trending(k int) []trending.Topic {
	if st := r.state.Load(); st != nil {
		return st.svc.Trending(k)
	}
	return nil
}

// --- tailer ---

type tailResult int

const (
	tailApplied  tailResult = iota // records landed; go again immediately
	tailCaughtUp                   // at the watermark; poll-sleep
	tailFault                      // transport/decode fault; backoff
	tailResync                     // 410: behind the truncation horizon
	tailDiverged                   // leader below us; latched
	tailShed                       // 503: honor Retry-After
)

func (r *Replica) run() {
	defer close(r.done)
	attempt := 0
	for {
		if r.stopped() {
			return
		}
		st := r.state.Load()
		if st == nil {
			var err error
			st, err = r.openState()
			if err != nil {
				attempt++
				r.retries.Inc()
				slog.Warn("replica: open state", "err", err, "attempt", attempt)
				if !r.sleep(r.backoff(attempt)) {
					return
				}
				continue
			}
			attempt = 0
		}
		res, retryAfter := r.tailOnce(st)
		if res == tailApplied || res == tailCaughtUp {
			// A degraded local pipeline (a WAL append or checkpoint
			// failed; availability-over-durability mode) breaks the
			// "local WAL sequence == engine ordinal" alignment this
			// replica's convergence proof rests on. Heal by re-basing on
			// a leader checkpoint instead of limping into divergence.
			if st.svc.Err() != nil {
				slog.Warn("replica: local durability degraded; forcing checkpoint resync", "err", st.svc.Err())
				res = tailResync
			}
		}
		switch res {
		case tailApplied:
			attempt = 0
		case tailCaughtUp:
			attempt = 0
			if !r.sleep(r.opts.PollInterval) {
				return
			}
		case tailFault:
			attempt++
			r.retries.Inc()
			if !r.sleep(r.backoff(attempt)) {
				return
			}
		case tailShed:
			// The leader shed us: back off exactly as told, bounded.
			r.retries.Inc()
			if retryAfter <= 0 {
				retryAfter = time.Second
			}
			if retryAfter > 30*time.Second {
				retryAfter = 30 * time.Second
			}
			if !r.sleep(retryAfter) {
				return
			}
		case tailResync:
			attempt++
			if err := r.resync(st); err != nil {
				r.retries.Inc()
				slog.Warn("replica: resync", "err", err, "attempt", attempt)
				if !r.sleep(r.backoff(attempt)) {
					return
				}
			} else {
				attempt = 0
			}
		case tailDiverged:
			if r.diverged.CompareAndSwap(false, true) {
				slog.Error("replica: diverged — leader watermark below locally applied state; reads gated",
					"applied", r.applied.Load(), "leader_synced", r.leaderSynced.Load())
			}
			if !r.sleep(r.opts.PollInterval) {
				return
			}
		}
	}
}

// openState builds a state generation: bootstrap from the leader when
// no local checkpoint exists, then the standard durable recovery path
// (checkpoint + local WAL replay) — a follower restart IS a crash
// recovery.
func (r *Replica) openState() (*replState, error) {
	if _, err := r.opts.FS.Open(r.opts.CheckpointPath); err != nil {
		// No local checkpoint: pull the leader's (404 = fresh leader,
		// start empty and tail from sequence 0).
		if err := r.bootstrap(); err != nil {
			return nil, err
		}
	}
	dur, err := pipeline.OpenDurable(r.cfg, nil, nil, pipeline.DurableOptions{
		FS:             r.opts.FS,
		CheckpointPath: r.opts.CheckpointPath,
		WALDir:         r.opts.WALDir,
		WALSyncEvery:   r.opts.WALSyncEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("repl: open durable: %w", err)
	}
	proc := query.New(dur.Engine(), query.DefaultOptions())
	// Recovery bypasses the processor; rebuild the message index so
	// /search covers the bootstrapped history.
	proc.Reindex()
	svc := pipeline.New(proc, pipeline.Options{
		Durable:         dur,
		CheckpointEvery: r.opts.CheckpointEvery,
	})
	svc.Start()
	st := &replState{dur: dur, svc: svc}
	r.applied.Store(uint64(dur.Engine().Snapshot().Messages))
	r.cursor = wal.Cursor{}
	r.catchupStart = time.Now()
	r.state.Store(st)
	r.registerStateMetrics(st)
	slog.Info("replica: state open", "applied", r.applied.Load(), "wal_replayed", dur.Replayed())
	return st, nil
}

// bootstrap downloads the leader's newest checkpoint, validates it
// end-to-end (a torn download must never be installed) and atomically
// renames it into place. A 404 means the leader has no checkpoint yet
// — the follower starts empty and tails from zero.
func (r *Replica) bootstrap() error {
	resp, err := r.opts.Client.Get(r.leader + "/repl/checkpoint")
	if err != nil {
		return fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil
	default:
		return fmt.Errorf("repl: bootstrap: leader answered %s", resp.Status)
	}
	r.bootstraps.Inc()
	tmp := r.opts.CheckpointPath + ".download"
	if err := r.downloadTo(tmp, resp.Body); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: bootstrap download: %w", err)
	}
	// Validate before install: load the engine once from the download.
	// CRC-guarded checkpoint records turn torn/flipped downloads into
	// load errors here instead of a poisoned install we would reopen
	// forever.
	if _, err := core.LoadCheckpoint(r.cfg, nil, nil, r.opts.FS, tmp); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: bootstrap: downloaded checkpoint invalid: %w", err)
	}
	if err := r.opts.FS.Rename(tmp, r.opts.CheckpointPath); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: bootstrap install: %w", err)
	}
	slog.Info("replica: bootstrapped from leader checkpoint")
	return nil
}

func (r *Replica) downloadTo(path string, body io.Reader) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := r.opts.FS.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := r.opts.FS.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resync tears down the current generation and re-bootstraps from the
// leader's newest checkpoint — the 410 path, when the leader truncated
// records we still needed. Download and validation happen FIRST, so a
// failed resync leaves the old generation serving (stale but intact).
func (r *Replica) resync(st *replState) error {
	resp, err := r.opts.Client.Get(r.leader + "/repl/checkpoint")
	if err != nil {
		return fmt.Errorf("repl: resync: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: resync: leader answered %s", resp.Status)
	}
	tmp := r.opts.CheckpointPath + ".download"
	if err := r.downloadTo(tmp, resp.Body); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: resync download: %w", err)
	}
	if _, err := core.LoadCheckpoint(r.cfg, nil, nil, r.opts.FS, tmp); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: resync: downloaded checkpoint invalid: %w", err)
	}
	r.bootstraps.Inc()
	// Teardown only after the replacement is known-good. The old
	// generation stops answering queries the moment state is cleared;
	// Health gates reads ("bootstrapping") until the reopen finishes.
	r.state.Store(nil)
	if err := st.svc.Stop(); err != nil {
		slog.Warn("replica: resync: stopping old pipeline", "err", err)
	}
	if err := st.dur.Close(); err != nil {
		slog.Warn("replica: resync: closing old wal", "err", err)
	}
	// Wipe the local WAL before installing the new checkpoint: its
	// records predate the new base and a degraded pipeline may have
	// skipped appends, shifting sequences. Wipe-then-rename is the
	// crash-safe order — dying in between leaves the OLD checkpoint
	// with no WAL, a consistent (merely staler) recovery point.
	if names, err := r.opts.FS.ReadDir(r.opts.WALDir); err == nil {
		for _, name := range names {
			fsx.BestEffortRemove(r.opts.FS, r.opts.WALDir+"/"+name)
		}
	}
	if err := r.opts.FS.Rename(tmp, r.opts.CheckpointPath); err != nil {
		fsx.BestEffortRemove(r.opts.FS, tmp)
		return fmt.Errorf("repl: resync install: %w", err)
	}
	slog.Info("replica: resynced from leader checkpoint")
	return nil
}

// tailOnce fetches and applies one WAL batch. The second return value
// is the Retry-After to honor when the result is tailShed.
func (r *Replica) tailOnce(st *replState) (tailResult, time.Duration) {
	url := fmt.Sprintf("%s/repl/wal?after=%d&seg=%d&off=%d&max=%d",
		r.leader, r.applied.Load(), r.cursor.Seg, r.cursor.Off, r.opts.MaxBatchBytes)
	resp, err := r.opts.Client.Get(url)
	if err != nil {
		return tailFault, 0
	}
	defer func() {
		// Drain a bounded remainder so the connection can be reused.
		_, _ = io.CopyN(io.Discard, resp.Body, 1<<16)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return tailResync, 0
	case http.StatusServiceUnavailable:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return tailShed, time.Duration(ra) * time.Second
	default:
		return tailFault, 0
	}

	applied := r.applied.Load()
	count := 0
	end, err := ReadStream(resp.Body, func(payload []byte) error {
		seq, m, err := wal.DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("undecodable record after %d: %w", applied, err)
		}
		if seq <= applied {
			// Duplicate delivery (stale cursor on the leader side):
			// sequence alignment makes it a no-op, never a double apply.
			return nil
		}
		if seq != applied+1 {
			return fmt.Errorf("sequence gap in stream: got %d want %d", seq, applied+1)
		}
		if err := st.svc.Submit(m); err != nil {
			return err
		}
		applied = seq
		r.applied.Store(applied)
		count++
		return nil
	})
	if err != nil {
		// A torn stream after a prefix of good records is fine: the
		// prefix was contiguous and applied; the retry resumes after it.
		if count > 0 {
			r.records.Add(int64(count))
			r.cursor = wal.Cursor{} // cursor unknown; next fetch full-scans
		}
		return tailFault, 0
	}
	r.lastContact.Store(time.Now().UnixNano())
	r.leaderSynced.Store(end.Synced)
	r.cursor = end.Next
	r.batches.Inc()
	r.records.Add(int64(count))
	if end.Synced < applied {
		return tailDiverged, 0
	}
	if applied >= end.Synced {
		// Caught up: close any open catch-up episode.
		if !r.catchupStart.IsZero() {
			r.catchup.Observe(int64(time.Since(r.catchupStart)))
			r.catchupStart = time.Time{}
		}
		if count > 0 {
			return tailApplied, 0
		}
		return tailCaughtUp, 0
	}
	// Still behind: an episode is running.
	if r.catchupStart.IsZero() {
		r.catchupStart = time.Now()
	}
	return tailApplied, 0
}

func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until Stop; false means stopping.
func (r *Replica) sleep(d time.Duration) bool {
	if d <= 0 {
		return !r.stopped()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.stop:
		return false
	case <-t.C:
		return true
	}
}

// backoff is jittered exponential: base<<(attempt-1) capped, scaled by
// a uniform [0.5, 1.0) factor so a fleet of followers retrying against
// one recovering leader spreads out instead of stampeding.
func (r *Replica) backoff(attempt int) time.Duration {
	d := r.opts.BackoffBase
	for i := 1; i < attempt && d < r.opts.BackoffCap; i++ {
		d *= 2
	}
	if d > r.opts.BackoffCap {
		d = r.opts.BackoffCap
	}
	//provlint:ignore hotpathalloc not a hot path: one backoff per failed fetch
	return time.Duration((0.5 + rand.Float64()/2) * float64(d))
}
