// Package provops implements provenance operators over bundles — the
// paper's stated future work ("the provenance operators built on these
// provenance bundle and indexing structure could be investigated",
// Section VII) realised as a query algebra over provenance trails:
//
//   - lineage operators: Ancestry, Descendants, Sources, PathToRoot;
//   - cascade analytics: Depth, Fanout, CascadeStats (size, depth,
//     breadth profile, structural virality);
//   - influence: InfluenceRanking orders users by how much downstream
//     propagation their messages triggered.
//
// All operators are read-only over a *bundle.Bundle and deterministic.
package provops

import (
	"fmt"
	"math"
	"sort"

	"provex/internal/bundle"
	"provex/internal/score"
	"provex/internal/tweet"
)

// NodeRef addresses one message inside a bundle by node index.
type NodeRef struct {
	Bundle *bundle.Bundle
	Index  int
}

// Msg returns the referenced message.
func (r NodeRef) Msg() *tweet.Message { return r.Bundle.Nodes()[r.Index].Doc.Msg }

// FindMessage locates the node holding message id, reporting whether it
// exists in the bundle.
func FindMessage(b *bundle.Bundle, id tweet.ID) (NodeRef, bool) {
	for i, n := range b.Nodes() {
		if n.Doc.Msg.ID == id {
			return NodeRef{Bundle: b, Index: i}, true
		}
	}
	return NodeRef{}, false
}

// Ancestry returns the provenance chain from ref's parent up to its
// root, nearest ancestor first. A root message yields an empty chain.
func Ancestry(ref NodeRef) []NodeRef {
	var out []NodeRef
	nodes := ref.Bundle.Nodes()
	for p := nodes[ref.Index].Parent; p != bundle.NoParent; p = nodes[p].Parent {
		out = append(out, NodeRef{Bundle: ref.Bundle, Index: int(p)})
	}
	return out
}

// PathToRoot returns ref followed by its ancestry — the full provenance
// trail of one message, the unit a "where did this come from" query
// renders.
func PathToRoot(ref NodeRef) []NodeRef {
	return append([]NodeRef{ref}, Ancestry(ref)...)
}

// Root returns the origin of ref's trail (ref itself when it is a root).
func Root(ref NodeRef) NodeRef {
	anc := Ancestry(ref)
	if len(anc) == 0 {
		return ref
	}
	return anc[len(anc)-1]
}

// Descendants returns every node reachable downstream of ref (children,
// grandchildren, ...) in index order — the audience a message reached
// through re-shares and topical follow-ups.
func Descendants(ref NodeRef) []NodeRef {
	nodes := ref.Bundle.Nodes()
	reach := make([]bool, len(nodes))
	reach[ref.Index] = true
	var out []NodeRef
	// Parents always precede children, so one forward pass suffices.
	for i := ref.Index + 1; i < len(nodes); i++ {
		p := nodes[i].Parent
		if p != bundle.NoParent && reach[p] {
			reach[i] = true
			out = append(out, NodeRef{Bundle: ref.Bundle, Index: i})
		}
	}
	return out
}

// Sources returns the root nodes of the bundle — the paper's "source
// identification" facet of provenance (multiple sources commonly
// discuss one breaking event).
func Sources(b *bundle.Bundle) []NodeRef {
	var out []NodeRef
	for _, i := range b.Roots() {
		out = append(out, NodeRef{Bundle: b, Index: i})
	}
	return out
}

// Depth returns the number of edges from ref up to its root.
func Depth(ref NodeRef) int { return len(Ancestry(ref)) }

// Fanout returns ref's direct child count.
func Fanout(ref NodeRef) int { return len(ref.Bundle.Children(ref.Index)) }

// CascadeStats summarises the propagation structure of a bundle.
type CascadeStats struct {
	Size      int // messages
	Trees     int // independent trails (roots)
	MaxDepth  int // longest root-to-leaf chain (edges)
	MaxFanout int // widest single node
	Leaves    int // messages nobody built on
	// DepthCounts[d] = messages at depth d from their root.
	DepthCounts []int
	// Virality is the Wiener-index-style structural virality proxy:
	// mean depth over non-root nodes. Broadcast-shaped cascades (one
	// source, flat) score near 1; long conversational chains score
	// higher.
	Virality float64
}

// Cascade computes CascadeStats for the bundle.
func Cascade(b *bundle.Bundle) CascadeStats {
	nodes := b.Nodes()
	st := CascadeStats{Size: len(nodes)}
	if len(nodes) == 0 {
		return st
	}
	depth := make([]int, len(nodes))
	fanout := make([]int, len(nodes))
	var depthSum, nonRoot int
	for i, n := range nodes {
		if n.Parent == bundle.NoParent {
			st.Trees++
			depth[i] = 0
		} else {
			depth[i] = depth[n.Parent] + 1
			fanout[n.Parent]++
			depthSum += depth[i]
			nonRoot++
		}
		if depth[i] > st.MaxDepth {
			st.MaxDepth = depth[i]
		}
	}
	st.DepthCounts = make([]int, st.MaxDepth+1)
	for i := range nodes {
		st.DepthCounts[depth[i]]++
		if fanout[i] == 0 {
			st.Leaves++
		}
		if fanout[i] > st.MaxFanout {
			st.MaxFanout = fanout[i]
		}
	}
	if nonRoot > 0 {
		st.Virality = float64(depthSum) / float64(nonRoot)
	}
	return st
}

// String renders the stats compactly.
func (s CascadeStats) String() string {
	return fmt.Sprintf("size=%d trees=%d max_depth=%d max_fanout=%d leaves=%d virality=%.2f",
		s.Size, s.Trees, s.MaxDepth, s.MaxFanout, s.Leaves, s.Virality)
}

// Influence is one user's propagation footprint inside a bundle.
type Influence struct {
	User string
	// Posts is how many messages the user contributed.
	Posts int
	// Triggered is how many direct children other users built on the
	// user's messages (explicit re-shares and topical follow-ups).
	Triggered int
	// Reach is the total downstream subtree size of the user's
	// messages (excluding the messages themselves).
	Reach int
}

// InfluenceRanking orders the bundle's users by Reach, then Triggered,
// then Posts, then name — the collective-intelligence signal the
// paper's quality-identification use case builds on.
func InfluenceRanking(b *bundle.Bundle) []Influence {
	nodes := b.Nodes()
	// subtree[i] = descendants of node i; computed right-to-left since
	// parents precede children.
	subtree := make([]int, len(nodes))
	for i := len(nodes) - 1; i >= 0; i-- {
		if p := nodes[i].Parent; p != bundle.NoParent {
			subtree[p] += subtree[i] + 1
		}
	}
	acc := make(map[string]*Influence)
	for i, n := range nodes {
		user := n.Doc.Msg.User
		inf, ok := acc[user]
		if !ok {
			inf = &Influence{User: user}
			acc[user] = inf
		}
		inf.Posts++
		inf.Reach += subtree[i]
		for _, c := range b.Children(i) {
			if nodes[c].Doc.Msg.User != user {
				inf.Triggered++
			}
		}
	}
	out := make([]Influence, 0, len(acc))
	for _, inf := range acc {
		out = append(out, *inf)
	}
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i], out[j]
		switch {
		case a.Reach != c.Reach:
			return a.Reach > c.Reach
		case a.Triggered != c.Triggered:
			return a.Triggered > c.Triggered
		case a.Posts != c.Posts:
			return a.Posts > c.Posts
		default:
			return a.User < c.User
		}
	})
	return out
}

// Merge combines two bundles into a fresh one (useful when an analyst
// decides two trails cover one event — the manual curation hook the
// paper's demo implies). Messages are re-allocated in date order with
// the given weights, so the merged bundle satisfies the same
// invariants as engine-built ones. The inputs are not modified.
func Merge(id bundle.ID, a, c *bundle.Bundle, w score.MessageWeights) *bundle.Bundle {
	docs := make([]docAt, 0, a.Size()+c.Size())
	for _, n := range a.Nodes() {
		docs = append(docs, docAt{n})
	}
	for _, n := range c.Nodes() {
		docs = append(docs, docAt{n})
	}
	sort.SliceStable(docs, func(i, j int) bool {
		di, dj := docs[i].n.Doc.Msg.Date, docs[j].n.Doc.Msg.Date
		if !di.Equal(dj) {
			return di.Before(dj)
		}
		return docs[i].n.Doc.Msg.ID < docs[j].n.Doc.Msg.ID
	})
	out := bundle.New(id)
	for _, d := range docs {
		out.Add(w, d.n.Doc)
	}
	return out
}

type docAt struct{ n bundle.Node }

// DepthHistogramString renders DepthCounts as a small ASCII profile.
func (s CascadeStats) DepthHistogramString() string {
	if len(s.DepthCounts) == 0 {
		return "(empty)"
	}
	peak := 1
	for _, c := range s.DepthCounts {
		if c > peak {
			peak = c
		}
	}
	var bldr []byte
	for d, c := range s.DepthCounts {
		bar := int(math.Round(float64(c) * 30 / float64(peak)))
		line := fmt.Sprintf("depth %2d %6d %s\n", d, c, repeat('#', bar))
		bldr = append(bldr, line...)
	}
	return string(bldr)
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = ch
	}
	return string(out)
}
