package provops

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 29, 0, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

func doc(id tweet.ID, user, text string, offset time.Duration) score.Doc {
	m := tweet.Parse(id, user, base.Add(offset), text)
	return score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

// buildCascade constructs a deterministic bundle:
//
//	0 root (alice)
//	└── 1 RT by bob
//	    ├── 2 RT by carol
//	    └── 3 RT by dave
//	        └── 4 hashtag follow-up by erin (Eq. 5 time closeness
//	            attaches it to the freshest tag-sharing node)
//	5 isolated second root (frank)
func buildCascade(t *testing.T) *bundle.Bundle {
	t.Helper()
	b := bundle.New(1)
	add := func(d score.Doc, wantParent int32) int {
		idx := b.Add(weights, d)
		if got := b.Nodes()[idx].Parent; got != wantParent {
			t.Fatalf("node %d parent = %d, want %d", idx, got, wantParent)
		}
		return idx
	}
	add(doc(10, "alice", "tsunami warning issued #samoa", 0), bundle.NoParent)
	add(doc(11, "bob", "RT @alice: tsunami warning issued #samoa", time.Minute), 0)
	add(doc(12, "carol", "so scary RT @bob: RT @alice: tsunami warning issued #samoa", 2*time.Minute), 1)
	add(doc(13, "dave", "RT @bob: RT @alice: tsunami warning issued #samoa", 3*time.Minute), 1)
	add(doc(14, "erin", "thoughts with everyone #samoa", 4*time.Minute), 3)
	add(doc(15, "frank", "totally unrelated topic entirely", 5*time.Minute), bundle.NoParent)
	return b
}

func TestFindMessage(t *testing.T) {
	b := buildCascade(t)
	ref, ok := FindMessage(b, 12)
	if !ok || ref.Index != 2 || ref.Msg().User != "carol" {
		t.Fatalf("FindMessage(12) = %+v, %v", ref, ok)
	}
	if _, ok := FindMessage(b, 999); ok {
		t.Error("found nonexistent message")
	}
}

func TestAncestryAndPath(t *testing.T) {
	b := buildCascade(t)
	ref, _ := FindMessage(b, 12) // carol
	anc := Ancestry(ref)
	users := refUsers(anc)
	if !reflect.DeepEqual(users, []string{"bob", "alice"}) {
		t.Errorf("Ancestry = %v, want [bob alice]", users)
	}
	path := PathToRoot(ref)
	if got := refUsers(path); !reflect.DeepEqual(got, []string{"carol", "bob", "alice"}) {
		t.Errorf("PathToRoot = %v", got)
	}
	if Root(ref).Msg().User != "alice" {
		t.Errorf("Root = %s", Root(ref).Msg().User)
	}
	// A root's ancestry is empty and its Root is itself.
	rootRef, _ := FindMessage(b, 10)
	if len(Ancestry(rootRef)) != 0 || Root(rootRef).Index != rootRef.Index {
		t.Error("root ancestry wrong")
	}
}

func refUsers(refs []NodeRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Msg().User
	}
	return out
}

func TestDescendants(t *testing.T) {
	b := buildCascade(t)
	rootRef, _ := FindMessage(b, 10)
	desc := refUsers(Descendants(rootRef))
	want := []string{"bob", "carol", "dave", "erin"}
	if !reflect.DeepEqual(desc, want) {
		t.Errorf("Descendants(root) = %v, want %v", desc, want)
	}
	bobRef, _ := FindMessage(b, 11)
	if got := refUsers(Descendants(bobRef)); !reflect.DeepEqual(got, []string{"carol", "dave", "erin"}) {
		t.Errorf("Descendants(bob) = %v", got)
	}
	leafRef, _ := FindMessage(b, 12)
	if got := Descendants(leafRef); len(got) != 0 {
		t.Errorf("leaf has descendants: %v", got)
	}
}

func TestSources(t *testing.T) {
	b := buildCascade(t)
	src := refUsers(Sources(b))
	if !reflect.DeepEqual(src, []string{"alice", "frank"}) {
		t.Errorf("Sources = %v", src)
	}
}

func TestDepthAndFanout(t *testing.T) {
	b := buildCascade(t)
	carol, _ := FindMessage(b, 12)
	if Depth(carol) != 2 {
		t.Errorf("Depth(carol) = %d, want 2", Depth(carol))
	}
	root, _ := FindMessage(b, 10)
	if Fanout(root) != 1 {
		t.Errorf("Fanout(root) = %d, want 1 (bob)", Fanout(root))
	}
	bob, _ := FindMessage(b, 11)
	if Fanout(bob) != 2 {
		t.Errorf("Fanout(bob) = %d, want 2", Fanout(bob))
	}
}

func TestCascadeStats(t *testing.T) {
	b := buildCascade(t)
	st := Cascade(b)
	if st.Size != 6 || st.Trees != 2 || st.MaxDepth != 3 || st.MaxFanout != 2 {
		t.Errorf("Cascade = %+v", st)
	}
	if st.Leaves != 3 { // carol, erin, frank
		t.Errorf("Leaves = %d, want 3", st.Leaves)
	}
	if !reflect.DeepEqual(st.DepthCounts, []int{2, 1, 2, 1}) {
		t.Errorf("DepthCounts = %v", st.DepthCounts)
	}
	// virality: depths of non-roots: 1(bob)+2(carol)+2(dave)+3(erin) = 8 over 4.
	if st.Virality != 2.0 {
		t.Errorf("Virality = %v, want 2.0", st.Virality)
	}
	if s := st.String(); !strings.Contains(s, "size=6") {
		t.Errorf("String = %q", s)
	}
	if h := st.DepthHistogramString(); !strings.Contains(h, "depth  0") {
		t.Errorf("histogram = %q", h)
	}
}

func TestCascadeEmpty(t *testing.T) {
	st := Cascade(bundle.New(9))
	if st.Size != 0 || st.Virality != 0 {
		t.Errorf("empty cascade = %+v", st)
	}
	if st.DepthHistogramString() != "(empty)" {
		t.Error("empty histogram render wrong")
	}
}

func TestInfluenceRanking(t *testing.T) {
	b := buildCascade(t)
	rank := InfluenceRanking(b)
	if rank[0].User != "alice" {
		t.Fatalf("top influencer = %s, want alice (%+v)", rank[0].User, rank)
	}
	if rank[0].Reach != 4 || rank[0].Triggered != 1 || rank[0].Posts != 1 {
		t.Errorf("alice influence = %+v", rank[0])
	}
	if rank[1].User != "bob" || rank[1].Reach != 3 || rank[1].Triggered != 2 {
		t.Errorf("second = %+v, want bob reach 3 triggered 2", rank[1])
	}
	// Leaves have zero reach.
	for _, inf := range rank {
		if inf.User == "frank" && (inf.Reach != 0 || inf.Triggered != 0) {
			t.Errorf("frank influence = %+v", inf)
		}
	}
}

func TestInfluenceSelfRetweetNotTriggered(t *testing.T) {
	b := bundle.New(2)
	b.Add(weights, doc(1, "alice", "my thread starts #topic", 0))
	b.Add(weights, doc(2, "alice", "continuing my thread #topic", time.Minute))
	rank := InfluenceRanking(b)
	if len(rank) != 1 {
		t.Fatalf("rank = %+v", rank)
	}
	if rank[0].Triggered != 0 {
		t.Errorf("self-continuation counted as triggered: %+v", rank[0])
	}
	if rank[0].Reach != 1 {
		t.Errorf("Reach = %d, want 1 (own downstream still counts)", rank[0].Reach)
	}
}

func TestMerge(t *testing.T) {
	a := bundle.New(1)
	a.Add(weights, doc(1, "u1", "event begins #shared", 0))
	a.Add(weights, doc(3, "u2", "more on it #shared", 2*time.Minute))
	c := bundle.New(2)
	c.Add(weights, doc(2, "u3", "parallel report #shared", time.Minute))

	m := Merge(7, a, c, weights)
	if m.ID() != 7 || m.Size() != 3 {
		t.Fatalf("merged id=%d size=%d", m.ID(), m.Size())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged bundle invalid: %v", err)
	}
	// Date order preserved.
	nodes := m.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Doc.Msg.Date.Before(nodes[i-1].Doc.Msg.Date) {
			t.Error("merge broke date order")
		}
	}
	// Inputs untouched.
	if a.Size() != 2 || c.Size() != 1 {
		t.Error("Merge modified inputs")
	}
	// Shared hashtag connects everything into one tree.
	if st := Cascade(m); st.Trees != 1 {
		t.Errorf("merged cascade trees = %d, want 1", st.Trees)
	}
}

// Property: over generator-built bundles, structural invariants hold:
// every message is counted exactly once in DepthCounts, root count
// equals tree count, and Descendants(root) over all roots partitions
// the non-root nodes.
func TestCascadeInvariantsProperty(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 20000
	cfg.Users = 800
	cfg.VocabSize = 900
	cfg.EventsPerDay = 500
	g := gen.New(cfg)

	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%30) + 1
		b := bundle.New(1)
		for i := 0; i < size; i++ {
			m := g.Next()
			b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
		}
		st := Cascade(b)
		var total int
		for _, c := range st.DepthCounts {
			total += c
		}
		if total != size || st.Trees != len(b.Roots()) {
			return false
		}
		covered := 0
		for _, root := range Sources(b) {
			covered += len(Descendants(root)) + 1
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: PathToRoot always terminates at a root and has length
// Depth+1.
func TestPathProperty(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 20000
	cfg.EventsPerDay = 400
	g := gen.New(cfg)
	b := bundle.New(1)
	for i := 0; i < 60; i++ {
		m := g.Next()
		b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
	}
	for i := range b.Nodes() {
		ref := NodeRef{Bundle: b, Index: i}
		path := PathToRoot(ref)
		if len(path) != Depth(ref)+1 {
			t.Fatalf("node %d: path length %d != depth+1 %d", i, len(path), Depth(ref)+1)
		}
		last := path[len(path)-1]
		if b.Nodes()[last.Index].Parent != bundle.NoParent {
			t.Fatalf("node %d: path does not end at a root", i)
		}
	}
}
