package tokenizer

import "testing"

// Benchmark corpus: message texts shaped like the generator's output —
// short, hashtag- and URL-bearing, with the Zipfian word repetition the
// interner exploits.
var benchTexts = []string{
	"Lester getting an ovation as he walks off #redsox",
	"breaking tsunami warning issued for samoa coast http://bit.ly/3xyz #tsunami",
	"watching the game tonight with friends, yankees winning again",
	"RT @amaliebenjamin: Lester getting an ovation as he walks off #redsox",
	"new mainframe session announced at the partner conference #cics #ibm http://tinyurl.com/q8abc",
	"so classy, the way it should be done",
	"quake reported off the coast, rescue teams heading out #samoa",
	"this is just noise lol omg haha nothing to see here",
}

// BenchmarkKeywordsMixed measures the full ingest-side keyword
// extraction over a mixed corpus — the dominant cost of the prepare
// stage. (BenchmarkKeywords in tokenizer_test.go covers the single
// long-text case.)
func BenchmarkKeywordsMixed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Keywords(benchTexts[i%len(benchTexts)])
	}
}

// BenchmarkTokenize isolates the raw tokenisation pass.
func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchTexts[i%len(benchTexts)])
	}
}
