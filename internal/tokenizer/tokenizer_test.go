package tokenizer

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		text string
		want []string
	}{
		{"Lester down #redsox", []string{"lester", "down", "redsox"}},
		{"Hello, World!", []string{"hello", "world"}},
		{"photos http://bit.ly/Uvcpr today", []string{"photos", "today"}},
		{"skip www.site.com/page too", []string{"skip", "too"}},
		{"@User mentioned #Tag", []string{"user", "mentioned", "tag"}},
		{"don't stop", []string{"don't", "stop"}},
		{"", nil},
		{"...!!!", nil},
		{"a1b2 3c4", []string{"a1b2", "3c4"}},
	}
	for _, tc := range tests {
		if got := Tokenize(tc.text); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestStem(t *testing.T) {
	tests := []struct{ in, want string }{
		{"yankees", "yankee"},
		{"running", "runn"},
		{"watching", "watch"},
		{"stories", "story"},
		{"walked", "walk"},
		{"games", "game"},
		{"boss", "boss"},
		{"win", "win"},
		{"ing", "ing"},
		{"classes", "classe"},
	}
	for _, tc := range tests {
		if got := Stem(tc.in); got != tc.want {
			t.Errorf("Stem(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKeywords(t *testing.T) {
	kw := Keywords("Can't believe those #redsox. Argh! The game was unbelievable http://bit.ly/x")
	want := []string{"believe", "redsox", "game", "unbelievable"}
	if !reflect.DeepEqual(kw, want) {
		t.Errorf("Keywords = %v, want %v", kw, want)
	}
}

func TestKeywordsFiltersNoise(t *testing.T) {
	for _, text := range []string{"ugh #a", "lol omg wow", "RT to me", "12345 99"} {
		if kw := Keywords(text); len(kw) != 0 {
			t.Errorf("Keywords(%q) = %v, want empty", text, kw)
		}
	}
}

func TestKeywordsDedupAfterStem(t *testing.T) {
	kw := Keywords("yankees yankee game games")
	want := []string{"yankee", "game"}
	if !reflect.DeepEqual(kw, want) {
		t.Errorf("Keywords = %v, want %v", kw, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "rt", "lol", "don't"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"redsox", "tsunami", "lester"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestTopTerms(t *testing.T) {
	counts := map[string]int{"redsox": 9, "yankee": 9, "game": 3, "win": 5}
	got := TopTerms(counts, 3)
	want := []string{"redsox", "yankee", "win"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopTerms = %v, want %v", got, want)
	}
	if got := TopTerms(counts, 10); len(got) != 4 {
		t.Errorf("TopTerms over-ask returned %d terms, want 4", len(got))
	}
	if got := TopTerms(nil, 5); len(got) != 0 {
		t.Errorf("TopTerms(nil) = %v, want empty", got)
	}
}

// Property: tokens are always lower-case, non-empty, and contain no
// whitespace or URL remnants.
func TestTokenizeProperty(t *testing.T) {
	f := func(text string) bool {
		for _, tok := range Tokenize(text) {
			if tok == "" || tok != strings.ToLower(tok) || strings.ContainsAny(tok, " \t\n/:") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: stemming is a contraction (never lengthens except the
// ies→y rule which keeps length ≤ input) and idempotent enough for
// keyword dedup: Stem(Stem(x)) never panics and stays non-empty for
// non-empty input.
func TestStemProperty(t *testing.T) {
	f := func(tok string) bool {
		s := Stem(tok)
		if len(tok) > 0 && len(s) == 0 {
			return false
		}
		return len(s) <= len(tok)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Keywords output is always deduplicated and stopword-free.
func TestKeywordsProperty(t *testing.T) {
	f := func(text string) bool {
		seen := map[string]bool{}
		for _, k := range Keywords(text) {
			if seen[k] || IsStopword(k) || len(k) < MinTokenLen {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKeywords(b *testing.B) {
	text := "Lester getting an ovation from the Yankee Stadium crowd as he gets to his feet tonight"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Keywords(text)
	}
}
