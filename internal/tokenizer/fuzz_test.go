package tokenizer

import (
	"strings"
	"testing"
)

// FuzzTokenizeKeywords throws arbitrary text (including invalid UTF-8
// and pathological URL/sigil soup) at the tokenizer and checks the
// structural invariants every downstream consumer relies on: no
// panics, tokens are lower-cased word runes only, keywords are
// deduplicated, interned and at least MinTokenLen long, and the
// pipeline is deterministic.
func FuzzTokenizeKeywords(f *testing.F) {
	f.Add("RT @alice: check https://example.com/x #Breaking news BREAKING")
	f.Add("plain words only")
	f.Add("www.nolink")
	f.Add("")
	f.Add("\x80\xfe\xffinvalid utf8 still TOKENIZES")
	f.Add(strings.Repeat("a", 200) + " " + strings.Repeat("Z", 200))
	f.Add("под_снегом mixed апельсин scripts")
	f.Add("don't can't won't O'Brien")

	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("Tokenize produced an empty token")
			}
			for _, r := range tok {
				if !isWordRune(r) {
					t.Fatalf("token %q contains non-word rune %q", tok, r)
				}
				if 'A' <= r && r <= 'Z' {
					t.Fatalf("token %q is not lower-cased", tok)
				}
			}
		}

		kws := Keywords(text)
		seen := make(map[string]bool, len(kws))
		for _, k := range kws {
			if len(k) == 0 {
				t.Fatal("Keywords produced an empty keyword")
			}
			if seen[k] {
				t.Fatalf("Keywords produced duplicate %q", k)
			}
			seen[k] = true
			if IsStopword(k) {
				t.Fatalf("Keywords leaked stopword %q", k)
			}
			// Interning must be stable: the same spelling resolves to
			// the same canonical string.
			if Intern(k) != k {
				t.Fatalf("keyword %q is not the canonical interned copy", k)
			}
		}

		// Determinism: a second pass over the same text agrees.
		again := Keywords(text)
		if len(again) != len(kws) {
			t.Fatalf("Keywords not deterministic: %d then %d entries", len(kws), len(again))
		}
		for i := range kws {
			if kws[i] != again[i] {
				t.Fatalf("Keywords not deterministic at %d: %q vs %q", i, kws[i], again[i])
			}
		}
	})
}
