package tokenizer

import (
	"strings"
	"sync"
)

// String interning for indicant terms (after Asadi, Lin & Busch's
// observation that term-string churn is a first-order memory cost in
// real-time micro-blog indexing): the keyword vocabulary of a stream is
// Zipfian, so the same few thousand terms are extracted millions of
// times. Interning returns one canonical heap copy per distinct term,
// so posting-list keys, bundle summaries and Doc.Keywords slices all
// share storage instead of each holding a fresh ToLower allocation.
//
// The table is process-global and safe for concurrent use — the
// parallel prepare pool tokenizes on several goroutines at once. It is
// read-mostly (a miss happens once per distinct term ever), so an
// RWMutex-guarded map wins over sync.Map's amortised copying here.

// maxInternEntries bounds the table. A crawl's keyword vocabulary is
// Zipfian and plateaus far below this; the cap only guards against
// adversarial unbounded-vocabulary streams. Past the cap, Intern
// degrades to identity (no canonicalisation, no growth).
const maxInternEntries = 1 << 19

var interner = struct {
	sync.RWMutex
	m map[string]string // guarded by RWMutex
}{m: make(map[string]string, 4096)}

// Intern returns the canonical copy of s, inserting one on first sight.
// The canonical copy is detached from s's backing array (s is typically
// a substring of a full message text, which must not be pinned by the
// table).
//
//provex:hotpath hit path is a lock + map probe; only first sight of a term clones
func Intern(s string) string {
	interner.RLock()
	c, ok := interner.m[s]
	interner.RUnlock()
	if ok {
		return c
	}
	interner.Lock()
	defer interner.Unlock()
	if c, ok := interner.m[s]; ok {
		return c
	}
	if len(interner.m) >= maxInternEntries {
		return s
	}
	c = strings.Clone(s)
	interner.m[c] = c
	return c
}

// internBytes is the zero-allocation lookup path for a token assembled
// in a scratch buffer (lower-casing without strings.ToLower): the
// map[string(b)] form compiles to an allocation-free lookup, so only a
// table miss pays for string conversion.
//
//provex:hotpath runs once per token of every ingested message
func internBytes(b []byte) string {
	interner.RLock()
	c, ok := interner.m[string(b)]
	interner.RUnlock()
	if ok {
		return c
	}
	//provlint:ignore hotpathalloc miss path: the one string conversion per distinct term ever seen
	return Intern(string(b))
}
