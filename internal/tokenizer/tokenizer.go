// Package tokenizer provides the text-processing substrate shared by the
// full-text index and the provenance summary index: tokenisation of
// micro-blog text, stop-word filtering, light suffix stemming and keyword
// selection.
//
// The paper's "text" connection type (Table II) intersects the word sets
// of two messages, and its summary index carries a keywords indicant
// class next to hashtags and URLs; both consume the output of this
// package.
package tokenizer

import (
	"sort"
	"strings"
	"unicode"
)

// MinTokenLen is the shortest token kept by Keywords; one- and two-letter
// fragments ("rt", "ny", emoticon residue) carry almost no topical signal
// in 140-character messages and would bloat posting lists.
const MinTokenLen = 3

// Tokenize splits text into lower-cased word tokens. Hashtag and mention
// sigils are dropped (the indicant extractors in package tweet own those
// classes); URLs are skipped entirely so link fragments do not pollute
// the vocabulary; everything else splits on non-alphanumeric runes.
func Tokenize(text string) []string {
	var out []string
	i := 0
	for i < len(text) {
		// Skip URLs wholesale.
		if hasURLPrefix(text[i:]) {
			for i < len(text) && !unicode.IsSpace(rune(text[i])) {
				i++
			}
			continue
		}
		c := rune(text[i])
		if !isWordRune(c) {
			i++
			continue
		}
		start := i
		for i < len(text) && isWordRune(rune(text[i])) {
			i++
		}
		out = append(out, strings.ToLower(text[start:i]))
	}
	return out
}

func isWordRune(r rune) bool {
	return r == '_' || r == '\'' ||
		('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')
}

func hasURLPrefix(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

// stopwords is the filter list applied by Keywords. It mixes standard
// English function words with micro-blog chatter ("lol", "omg", "rt")
// that the paper's Figure 1 shows dominating noisy messages.
var stopwords = func() map[string]bool {
	words := []string{
		"a", "about", "after", "again", "all", "also", "am", "an", "and",
		"any", "are", "as", "at", "be", "because", "been", "before",
		"being", "but", "by", "can", "cannot", "could", "did", "do",
		"does", "doing", "don", "down", "during", "each", "few", "for",
		"from", "further", "get", "got", "had", "has", "have", "having",
		"he", "her", "here", "hers", "him", "his", "how", "i", "if", "in",
		"into", "is", "it", "its", "just", "like", "me", "more", "most",
		"my", "no", "nor", "not", "now", "of", "off", "on", "once",
		"only", "or", "other", "our", "out", "over", "own", "same",
		"she", "so", "some", "such", "than", "that", "the", "their",
		"them", "then", "there", "these", "they", "this", "those",
		"through", "to", "too", "under", "until", "up", "very", "was",
		"we", "were", "what", "when", "where", "which", "while", "who",
		"whom", "why", "will", "with", "would", "you", "your",
		// contractions produced by our apostrophe-keeping tokenizer
		"i'm", "it's", "don't", "can't", "won't", "didn't", "that's",
		"you're", "he's", "she's", "isn't", "aren't", "wasn't",
		// micro-blog chatter
		"rt", "via", "lol", "omg", "wow", "yeah", "hey", "ugh", "argh",
		"sigh", "haha", "hahaha", "u", "ur", "im", "dont", "cant",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

// IsStopword reports whether the (already lower-cased) token is filtered
// from keyword sets.
func IsStopword(tok string) bool { return stopwords[tok] }

// Stem applies a light, deterministic suffix stemmer — a few high-value
// rules rather than full Porter — so "yankees"/"yankee" and
// "wins"/"winning"/"win" collide in the keyword space the way the
// paper's bundle summaries (Figure 2) show merged word forms.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 5 && strings.HasSuffix(tok, "ing"):
		return tok[:n-3]
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "ed") && tok[n-3] != 'e':
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-1]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss"):
		return tok[:n-1]
	}
	return tok
}

// Keywords returns the deduplicated, stemmed, stopword-filtered keyword
// set of text, in first-occurrence order. This is the "text" indicant of
// Table II and the keywords class of the summary index.
//
// Keywords sits on the ingest hot path (once per message, inside the
// prepare stage), so it scans text in a single pass — no intermediate
// token slice, no seen-map — and returns interned strings: the only
// steady-state allocation is the result slice itself. Safe for
// concurrent use.
func Keywords(text string) []string {
	var out []string
	i := 0
	for i < len(text) {
		// Skip URLs wholesale, as Tokenize does.
		if hasURLPrefix(text[i:]) {
			for i < len(text) && !unicode.IsSpace(rune(text[i])) {
				i++
			}
			continue
		}
		if !isWordRune(rune(text[i])) {
			i++
			continue
		}
		start := i
		hasUpper := false
		for i < len(text) && isWordRune(rune(text[i])) {
			if 'A' <= text[i] && text[i] <= 'Z' {
				hasUpper = true
			}
			i++
		}
		if i-start < MinTokenLen {
			continue
		}
		tok := text[start:i]
		if hasUpper {
			tok = internLower(tok)
		}
		if IsStopword(tok) || isNumeric(tok) {
			continue
		}
		tok = Intern(Stem(tok))
		// Keyword sets of 140-character messages hold a handful of
		// entries; the linear dedup scan beats allocating a map.
		dup := false
		for _, k := range out {
			if k == tok {
				dup = true
				break
			}
		}
		if !dup {
			if out == nil {
				out = make([]string, 0, 8)
			}
			out = append(out, tok)
		}
	}
	return out
}

// internLower lower-cases tok (pure ASCII by construction: isWordRune
// admits only [A-Za-z0-9_']) into a stack buffer and resolves it
// through the intern table without allocating on the hit path.
func internLower(tok string) string {
	var buf [64]byte
	if len(tok) > len(buf) {
		return Intern(strings.ToLower(tok))
	}
	b := buf[:len(tok)]
	for j := 0; j < len(tok); j++ {
		c := tok[j]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[j] = c
	}
	return internBytes(b)
}

func isNumeric(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// TopTerms returns the k highest-count terms of counts, ties broken
// alphabetically for determinism. Bundle summaries use it to render the
// "Summary Words" column of the paper's Figure 2 result list.
func TopTerms(counts map[string]int, k int) []string {
	type tc struct {
		term  string
		count int
	}
	all := make([]tc, 0, len(counts))
	for t, c := range counts {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].term
	}
	return out
}
