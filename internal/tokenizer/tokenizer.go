// Package tokenizer provides the text-processing substrate shared by the
// full-text index and the provenance summary index: tokenisation of
// micro-blog text, stop-word filtering, light suffix stemming and keyword
// selection.
//
// The paper's "text" connection type (Table II) intersects the word sets
// of two messages, and its summary index carries a keywords indicant
// class next to hashtags and URLs; both consume the output of this
// package.
package tokenizer

import (
	"sort"
	"strings"
	"unicode"
)

// MinTokenLen is the shortest token kept by Keywords; one- and two-letter
// fragments ("rt", "ny", emoticon residue) carry almost no topical signal
// in 140-character messages and would bloat posting lists.
const MinTokenLen = 3

// Tokenize splits text into lower-cased word tokens. Hashtag and mention
// sigils are dropped (the indicant extractors in package tweet own those
// classes); URLs are skipped entirely so link fragments do not pollute
// the vocabulary; everything else splits on non-alphanumeric runes.
func Tokenize(text string) []string {
	var out []string
	i := 0
	for i < len(text) {
		// Skip URLs wholesale.
		if hasURLPrefix(text[i:]) {
			for i < len(text) && !unicode.IsSpace(rune(text[i])) {
				i++
			}
			continue
		}
		c := rune(text[i])
		if !isWordRune(c) {
			i++
			continue
		}
		start := i
		for i < len(text) && isWordRune(rune(text[i])) {
			i++
		}
		out = append(out, strings.ToLower(text[start:i]))
	}
	return out
}

func isWordRune(r rune) bool {
	return r == '_' || r == '\'' ||
		('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')
}

func hasURLPrefix(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

// stopwords is the filter list applied by Keywords. It mixes standard
// English function words with micro-blog chatter ("lol", "omg", "rt")
// that the paper's Figure 1 shows dominating noisy messages.
var stopwords = func() map[string]bool {
	words := []string{
		"a", "about", "after", "again", "all", "also", "am", "an", "and",
		"any", "are", "as", "at", "be", "because", "been", "before",
		"being", "but", "by", "can", "cannot", "could", "did", "do",
		"does", "doing", "don", "down", "during", "each", "few", "for",
		"from", "further", "get", "got", "had", "has", "have", "having",
		"he", "her", "here", "hers", "him", "his", "how", "i", "if", "in",
		"into", "is", "it", "its", "just", "like", "me", "more", "most",
		"my", "no", "nor", "not", "now", "of", "off", "on", "once",
		"only", "or", "other", "our", "out", "over", "own", "same",
		"she", "so", "some", "such", "than", "that", "the", "their",
		"them", "then", "there", "these", "they", "this", "those",
		"through", "to", "too", "under", "until", "up", "very", "was",
		"we", "were", "what", "when", "where", "which", "while", "who",
		"whom", "why", "will", "with", "would", "you", "your",
		// contractions produced by our apostrophe-keeping tokenizer
		"i'm", "it's", "don't", "can't", "won't", "didn't", "that's",
		"you're", "he's", "she's", "isn't", "aren't", "wasn't",
		// micro-blog chatter
		"rt", "via", "lol", "omg", "wow", "yeah", "hey", "ugh", "argh",
		"sigh", "haha", "hahaha", "u", "ur", "im", "dont", "cant",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

// IsStopword reports whether the (already lower-cased) token is filtered
// from keyword sets.
func IsStopword(tok string) bool { return stopwords[tok] }

// Stem applies a light, deterministic suffix stemmer — a few high-value
// rules rather than full Porter — so "yankees"/"yankee" and
// "wins"/"winning"/"win" collide in the keyword space the way the
// paper's bundle summaries (Figure 2) show merged word forms.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 5 && strings.HasSuffix(tok, "ing"):
		return tok[:n-3]
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "ed") && tok[n-3] != 'e':
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-1]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss"):
		return tok[:n-1]
	}
	return tok
}

// Keywords returns the deduplicated, stemmed, stopword-filtered keyword
// set of text, in first-occurrence order. This is the "text" indicant of
// Table II and the keywords class of the summary index.
func Keywords(text string) []string {
	toks := Tokenize(text)
	var out []string
	seen := make(map[string]bool, len(toks))
	for _, tok := range toks {
		if len(tok) < MinTokenLen || IsStopword(tok) || isNumeric(tok) {
			continue
		}
		tok = Stem(tok)
		if len(tok) < MinTokenLen || seen[tok] {
			continue
		}
		seen[tok] = true
		out = append(out, tok)
	}
	return out
}

func isNumeric(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// TopTerms returns the k highest-count terms of counts, ties broken
// alphabetically for determinism. Bundle summaries use it to render the
// "Summary Words" column of the paper's Figure 2 result list.
func TopTerms(counts map[string]int, k int) []string {
	type tc struct {
		term  string
		count int
	}
	all := make([]tc, 0, len(counts))
	for t, c := range counts {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].term
	}
	return out
}
