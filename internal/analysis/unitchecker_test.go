package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestEncodeJSONDiags pins the -json wire format: one object per
// finding with file/line/column/analyzer/message/suppressed, order
// preserved, empty input encoding as [] rather than null.
func TestEncodeJSONDiags(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("pkg/thing.go", -1, 100)
	f.SetLinesForContent(bytes.Repeat([]byte("0123456789\n"), 9))
	posAt := func(line, col int) token.Pos {
		return f.LineStart(line) + token.Pos(col-1)
	}

	diags := []Diagnostic{
		{AnalyzerName: "lockguard", Pos: posAt(3, 5), Message: "read of s.n without s.mu held"},
		{AnalyzerName: "atomicmix", Pos: posAt(7, 2), Message: "plain access of hits", Suppressed: true},
	}

	var buf bytes.Buffer
	if err := EncodeJSONDiags(&buf, fset, diags); err != nil {
		t.Fatal(err)
	}
	var got []JSONDiag
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := []JSONDiag{
		{File: "pkg/thing.go", Line: 3, Column: 5, Analyzer: "lockguard", Message: "read of s.n without s.mu held"},
		{File: "pkg/thing.go", Line: 7, Column: 2, Analyzer: "atomicmix", Message: "plain access of hits", Suppressed: true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Every field name must appear literally, including a false
	// suppressed — consumers key on presence, not omission.
	for _, key := range []string{`"file"`, `"line"`, `"column"`, `"analyzer"`, `"message"`, `"suppressed"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("output lacks %s field:\n%s", key, buf.String())
		}
	}

	buf.Reset()
	if err := EncodeJSONDiags(&buf, fset, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty input encodes as %q, want []", buf.String())
	}
}
