// Package analysis is a dependency-light reimplementation of the core
// of golang.org/x/tools/go/analysis: named analyzers that inspect one
// type-checked package and report positioned diagnostics, plus a
// unitchecker-style driver speaking the `go vet -vettool` protocol.
//
// The repo builds offline (no module proxy), so the x/tools module is
// not available; everything here rests on the standard library only
// (go/ast, go/types, go/importer). The API deliberately mirrors
// x/tools so analyzers could migrate to the real framework with
// mechanical edits if the dependency ever becomes available.
//
// Analyzers encode repo contracts the compiler cannot see — the fsx
// fault-injection boundary, durability error discipline, metrics
// registration, hot-path allocation budgets. See internal/analysis/analyzers.
//
// Suppression: a diagnostic may be silenced in place with
//
//	//provlint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a directive without one is itself reported. See ignore.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable
	// flags, and //provlint:ignore directives. Lowercase, no spaces.
	Name string

	// Doc is the analyzer's documentation: first line is a one-line
	// summary, the rest explains the contract it enforces and why.
	Doc string

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report / pass.Reportf. A non-nil error aborts the whole
	// provlint run (reserved for internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one positioned finding.
type Diagnostic struct {
	AnalyzerName string
	Pos          token.Pos
	Message      string

	// Suppressed marks a finding silenced by a //provlint:ignore
	// directive. RunAnalyzers drops suppressed findings; RunAnalyzersAll
	// keeps them with this flag set so machine-readable output (the
	// -json mode) can show what the directives hide.
	Suppressed bool
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.AnalyzerName = p.Analyzer.Name
	p.report(d)
}

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// InTestFile reports whether pos falls in a _test.go file. The provlint
// contracts protect production paths; tests legitimately reach around
// them (raw os for fixtures, deliberately dropped errors), so most
// analyzers skip test files wholesale.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers applies every analyzer to the package, filters the
// findings through //provlint:ignore directives, appends a diagnostic
// for each malformed directive, and returns everything sorted by
// position. It is the shared core of the unitchecker driver and the
// analysistest harness, so suppression semantics cannot drift between
// CI and the analyzer tests.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAnalyzersAll(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunAnalyzersAll is RunAnalyzers without the suppression filter:
// findings silenced by //provlint:ignore directives are returned too,
// marked Suppressed, in the same position-sorted order. The -json mode
// uses it so tooling can audit what the directives hide.
func RunAnalyzersAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sup := ScanSuppressions(fset, files)
	for i := range diags {
		diags[i].Suppressed = sup.Suppressed(diags[i].AnalyzerName, fset.Position(diags[i].Pos))
	}
	diags = append(diags, sup.Malformed...)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// TypesSizes returns the standard gc sizes model used when
// type-checking for analysis.
func TypesSizes(goarch string) types.Sizes {
	return types.SizesFor("gc", goarch)
}
