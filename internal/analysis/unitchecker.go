// The `go vet -vettool` driver. The go command runs a vettool once per
// package ("unit"), handing it a JSON config file describing the
// package's sources and the export-data files of every import. The
// protocol, reverse-engineered from cmd/go and x/tools/go/analysis/unitchecker:
//
//  1. `tool -V=full` must print a stable identification line the go
//     command hashes into its build cache key.
//  2. `tool -flags` must print a JSON array describing the tool's
//     flags, so `go vet` can partition its command line.
//  3. `tool <args> <file>.cfg` analyzes one package and must (a) write
//     the facts file named by cfg.VetxOutput — provlint carries no
//     facts, so it writes a constant placeholder — and (b) exit 0 on
//     success, 2 when diagnostics were reported (printed to stderr as
//     file:line:col: message [analyzer]).
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// Config mirrors the JSON vet configuration the go command writes for
// -vettool invocations (cmd/go/internal/work.vetConfig). Fields the
// driver does not consult are still listed so the decode is strict
// about nothing and future-proof about everything.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPlaceholder is what provlint writes as its "facts" output: the
// go command demands the file exist for caching, but provlint's
// analyzers are all intra-package and carry no cross-package facts.
const vetxPlaceholder = "provlint/0 no facts\n"

// Main is the entry point for cmd/provlint. It implements the vettool
// protocol around RunAnalyzers and never returns.
func Main(analyzers ...*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("provlint: ")

	fs := flag.NewFlagSet("provlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON (go vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		first, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+first)
	}
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: provlint [flags] <vet-config>.cfg")
		fmt.Fprintln(os.Stderr, "  (invoke via: go vet -vettool=$(command -v provlint) ./...)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:]) // ExitOnError: Parse cannot fail

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlagsJSON(fs)
		return
	}
	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	var selected []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	// -json reports suppressed findings too (flagged as such), so the
	// run must keep them; the text mode only ever sees live findings.
	diags, fset, err := runConfig(args[0], selected, *jsonFlag)
	if err != nil {
		log.Fatal(err) // exit 1: internal/typecheck error
	}
	live := 0
	for _, d := range diags {
		if !d.Suppressed {
			live++
		}
	}
	if len(diags) == 0 {
		return // nothing to report (includes dependency-only visits)
	}
	if *jsonFlag {
		if err := EncodeJSONDiags(os.Stdout, fset, diags); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.AnalyzerName)
		}
	}
	// Suppressed findings are advisory output, not failures: the exit
	// code reflects live findings only, in both modes.
	if live > 0 {
		os.Exit(2)
	}
}

// printVersion implements -V=full. The go command caches vet results
// keyed on this line, so it embeds a content hash of the executable:
// rebuilding provlint with different analyzers invalidates the cache.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	//provlint:ignore fsxdiscipline reading our own executable for the cache key, not store data
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname, h.Sum(nil))
}

// printFlagsJSON implements -flags: the go command asks the vettool to
// describe its flags so it can split "go vet" arguments between the
// build system and the tool.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// JSONDiag is the -json wire form of one finding. Line and column are
// 1-based; Suppressed marks findings a //provlint:ignore directive
// silences (present in -json output for auditability, never counted in
// the exit status).
type JSONDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// EncodeJSONDiags writes diags to w as an indented JSON array of
// JSONDiag, preserving order. An empty slice encodes as [], not null,
// so consumers can always range over the result.
func EncodeJSONDiags(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	out := make([]JSONDiag, 0, len(diags))
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		out = append(out, JSONDiag{
			File:       posn.Filename,
			Line:       posn.Line,
			Column:     posn.Column,
			Analyzer:   d.AnalyzerName,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// runConfig loads one vet config, type-checks the package it
// describes against the export data the go command supplied, and runs
// the selected analyzers. includeSuppressed keeps findings silenced by
// //provlint:ignore directives (marked Suppressed) instead of dropping
// them.
func runConfig(cfgFile string, analyzers []*Analyzer, includeSuppressed bool) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// The facts file must exist whatever happens below — the go
	// command treats it as the action's cacheable output.
	if cfg.VetxOutput != "" {
		//provlint:ignore fsxdiscipline vet protocol output owned by the go command's build cache, not store data
		if err := os.WriteFile(cfg.VetxOutput, []byte(vetxPlaceholder), 0o666); err != nil {
			return nil, nil, err
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, fset, nil
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		//provlint:ignore fsxdiscipline read-only export data from the build cache
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     TypesSizes(build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect-all: Check still returns the first error
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, nil
		}
		return nil, nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	if cfg.VetxOnly {
		// Dependency-only visit: the go command just wants facts, and
		// provlint has none. The package gets its own diagnostic run
		// when it is vetted as a root.
		return nil, fset, nil
	}

	run := RunAnalyzers
	if includeSuppressed {
		run = RunAnalyzersAll
	}
	diags, err := run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, nil, err
	}
	return diags, fset, nil
}
