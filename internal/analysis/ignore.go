// Suppression directives. A finding that is deliberate — a cmd tool
// writing a report straight to disk, a sampled slow path inside an
// annotated hot function — is silenced in place, next to the code it
// excuses, with a mandatory reason:
//
//	//provlint:ignore fsxdiscipline bench report, never read by the store
//
// The directive names the analyzer(s) it silences (comma-separated)
// and applies to diagnostics on its own line (trailing comment) or on
// the line directly below it (comment above the statement). A
// directive with no analyzer name or no reason is itself reported —
// an unexplained suppression is exactly the kind of silent contract
// erosion provlint exists to stop.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "provlint:ignore"

type directive struct {
	analyzers []string
}

// Suppressions is the per-package index of //provlint:ignore
// directives, built once and consulted for every diagnostic.
type Suppressions struct {
	// byLine maps filename → line → directives covering that line.
	byLine map[string]map[int][]directive
	// Malformed holds one diagnostic per syntactically bad directive.
	Malformed []Diagnostic
}

// ScanSuppressions walks every comment in files and indexes the
// ignore directives.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[string]map[int][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Directives follow the //go:build convention: no space
				// after //, so prose that merely mentions the directive
				// never triggers it.
				rest, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.Malformed = append(s.Malformed, Diagnostic{
						AnalyzerName: "provlint",
						Pos:          c.Pos(),
						Message:      "malformed //provlint:ignore directive: want //provlint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				d := directive{analyzers: strings.Split(fields[0], ",")}
				pos := fset.Position(c.Pos())
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = make(map[int][]directive)
				}
				// A trailing comment excuses its own line; a comment on
				// its own line excuses the statement below. Both are
				// registered — the harmless over-approximation keeps the
				// scanner source-free (it never needs the raw line text).
				s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], d)
				s.byLine[pos.Filename][pos.Line+1] = append(s.byLine[pos.Filename][pos.Line+1], d)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a directive.
func (s *Suppressions) Suppressed(analyzer string, pos token.Position) bool {
	for _, d := range s.byLine[pos.Filename][pos.Line] {
		for _, name := range d.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
