package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"provex/internal/analysis"
)

// instrumentTypes are the metrics instruments that only become visible
// in /metrics through a Registry.Register* call (PR 3's register-then-
// use discipline: registration hands back the bare instrument so the
// hot path never touches the registry — which also means nothing at
// scrape time can discover an instrument that was never handed in).
var instrumentTypes = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"StageTimer": true,
	"Histogram":  true,
}

// instrumentWriteMethods are the write-side methods of an instrument.
// Being the receiver of one is not evidence of registration — quite
// the opposite: an instrument that is incremented but never registered
// is exactly the silent /metrics hole this analyzer exists to catch.
// Read-side methods (Value, Quantile, Snapshot, String, ...) DO count
// as a sink: a histogram whose quantiles are printed in a report is a
// legitimate local aggregate, not a lost series.
var instrumentWriteMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true, "Time": true,
}

// MetricsReg flags metrics instruments (declared fields/vars or bare
// constructions) that never flow anywhere that could register them.
var MetricsReg = &analysis.Analyzer{
	Name: "metricsreg",
	Doc: `metrics instrument never reaches a Registry.Register* call

Every metrics.Counter/Gauge/StageTimer/Histogram must be handed to a
Registry (RegisterCounter, RegisterHistogram, ...) or obtained from a
registering constructor (Registry.Counter, Registry.Gauge,
Registry.DurationHistogram); otherwise its series silently never
appears in /metrics. The analyzer tracks each instrument-typed struct
field, package variable, and local construction within the package: an
instrument whose only uses are its own Inc/Add/Set/Observe calls — or
that is never used at all — is reported. Passing the instrument to any
other function, storing it elsewhere, or assigning it from a non-
constructor call counts as escaping to a possible registration site
(the analysis is intra-package and deliberately errs quiet on escape).
_test.go files are exempt; so is internal/metrics itself.`,
	Run: runMetricsReg,
}

// containsInstrument unwraps pointers/arrays/slices/maps and reports
// whether the element is one of the instrument types.
func containsInstrument(t types.Type) (string, bool) {
	for {
		t = types.Unalias(t)
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			n, _ := t.(*types.Named)
			if n == nil || n.Obj().Pkg() == nil {
				return "", false
			}
			if instrumentTypes[n.Obj().Name()] && pkgPathMatches(n.Obj().Pkg().Path(), "internal/metrics") {
				return "metrics." + n.Obj().Name(), true
			}
			return "", false
		}
	}
}

// isBareConstruction reports whether e builds an instrument without
// registering it: metrics.NewHistogram(...)/NewPow2Histogram(...),
// new(metrics.Counter), &metrics.Counter{} or the bare composite
// literal. Calls to anything else (notably Registry.Counter and
// friends, which register internally) are NOT bare.
func isBareConstruction(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := x.X.(*ast.CompositeLit); ok {
				_, ok := containsInstrument(info.TypeOf(lit))
				return ok
			}
		}
	case *ast.CompositeLit:
		_, ok := containsInstrument(info.TypeOf(x))
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) == 1 {
				_, ok := containsInstrument(info.TypeOf(x.Args[0]))
				return ok
			}
		}
		fn := callee(info, x)
		if fn == nil {
			return false
		}
		if _, recvType := recvTypeName(fn); recvType != "" {
			return false
		}
		if pkgPathMatches(funcPkgPath(fn), "internal/metrics") &&
			(fn.Name() == "NewHistogram" || fn.Name() == "NewPow2Histogram") {
			return true
		}
	}
	return false
}

type candidate struct {
	pos      token.Pos
	typeName string // "metrics.Counter" etc.
	what     string // "field", "variable", "constructed value"
}

func runMetricsReg(pass *analysis.Pass) error {
	if pkgPathMatches(pass.Pkg.Path(), "internal/metrics") {
		return nil
	}
	info := pass.TypesInfo

	candidates := make(map[types.Object]*candidate)
	salvaged := make(map[types.Object]bool)

	var files []*ast.File
	for _, f := range pass.Files {
		if !pass.InTestFile(f.Pos()) {
			files = append(files, f)
		}
	}

	// Pass 1: collect candidates — instrument-typed struct fields and
	// variables declared in this package's non-test files. A variable
	// initialised from a non-construction expression (a call such as
	// Registry.Counter, a field read, a parameter) is not a candidate:
	// the value's registration story belongs to its origin.
	declCandidate := func(id *ast.Ident, what string, init ast.Expr) {
		obj := info.Defs[id]
		if obj == nil || id.Name == "_" {
			return
		}
		tn, ok := containsInstrument(obj.Type())
		if !ok {
			return
		}
		if init != nil && !isBareConstruction(info, init) {
			return
		}
		candidates[obj] = &candidate{pos: id.Pos(), typeName: tn, what: what}
	}
	walkWithStack(files, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.StructType:
			for _, field := range x.Fields.List {
				for _, name := range field.Names {
					declCandidate(name, "field", nil)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 1 && len(x.Names) > 1 {
				// var a, b = f(): origin is a call, not a construction.
				return true
			}
			for i, name := range x.Names {
				var init ast.Expr
				if i < len(x.Values) {
					init = x.Values[i]
				}
				declCandidate(name, "variable", init)
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] != nil {
						declCandidate(id, "variable", x.Rhs[i])
					}
				}
			}
		}
		return true
	})

	// Pass 2: classify every use. Anything other than (a) calling the
	// instrument's own methods and (b) re-assigning it from a bare
	// construction counts as potentially reaching a registration.
	walkWithStack(files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || candidates[obj] == nil || salvaged[obj] {
			return true
		}

		// Climb from the ident to the largest expression denoting (or
		// containing only element/field access of) this object.
		cur := ast.Node(id)
		i := len(stack)
		climb := func() ast.Node {
			if i == 0 {
				return nil
			}
			i--
			return stack[i]
		}
		parent := climb()
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.Sel == id {
			cur = sel
			parent = climb()
		}
		for {
			switch p := parent.(type) {
			case *ast.IndexExpr:
				if p.X == cur {
					cur = p
					parent = climb()
					continue
				}
			case *ast.ParenExpr:
				cur = p
				parent = climb()
				continue
			}
			break
		}

		switch p := parent.(type) {
		case *ast.SelectorExpr:
			// cur.Method or cur.Field — if this is a call of one of
			// the instrument's own methods, it does not salvage.
			if p.X == cur {
				if call, ok := peek(stack, i).(*ast.CallExpr); ok && call.Fun == p && instrumentWriteMethods[p.Sel.Name] {
					return true
				}
			}
		case *ast.KeyValueExpr:
			if p.Key == cur {
				// Composite-literal field key: candidate iff the value
				// is a bare construction.
				if !isBareConstruction(info, p.Value) {
					salvaged[obj] = true
				}
				return true
			}
		case *ast.AssignStmt:
			for j, lhs := range p.Lhs {
				if lhs != cur {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) {
					if !isBareConstruction(info, p.Rhs[j]) {
						salvaged[obj] = true
					}
					return true
				}
				// Multi-value assignment from a call: origin unknown.
				salvaged[obj] = true
				return true
			}
		}
		// Any other appearance: call argument, address-of into a
		// Register* call, stored elsewhere, returned, ranged over...
		salvaged[obj] = true
		return true
	})

	for obj, c := range candidates {
		if salvaged[obj] {
			continue
		}
		pass.Reportf(c.pos, "%s %s %q is never registered: its series will be missing from /metrics (pass it to a Registry.Register* call or build it via Registry.%s)",
			c.typeName, c.what, obj.Name(), registrySuggestion(c.typeName))
	}
	return nil
}

func registrySuggestion(typeName string) string {
	switch typeName {
	case "metrics.Counter":
		return "Counter"
	case "metrics.Gauge":
		return "Gauge"
	default:
		return "Register*"
	}
}

func peek(stack []ast.Node, i int) ast.Node {
	if i == 0 {
		return nil
	}
	return stack[i-1]
}
