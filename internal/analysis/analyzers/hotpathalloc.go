package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"provex/internal/analysis"
)

// HotPathAlloc turns the runtime TestHotPathZeroAlloc pin into a
// compile-time diagnostic: functions annotated //provex:hotpath are
// scanned for constructs that allocate (or may allocate) on every
// call, with precise positions instead of a single "N allocs/op"
// number after the fact.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `allocating construct inside a //provex:hotpath function

Functions whose doc comment carries a //provex:hotpath line are on the
per-message ingest path with tracing off (metric increments, the trace
recorder's disabled branch, summary-index candidate lookup). PR 1/4
pinned these to 0 allocs/op at runtime; this analyzer pins the same
budget syntactically. Flagged constructs:

  - fmt.* calls (Sprintf and friends format into fresh strings and box
    every argument);
  - string concatenation inside a loop;
  - map/slice composite literals, make(), new(), &T{...} literals;
  - string<->[]byte/[]rune conversions;
  - function literals (closure headers allocate when they capture);
  - implicit interface conversions of concrete non-pointer values
    (argument passing, assignment, return) — boxing allocates.

append() is deliberately not flagged: the scratch-slab pattern the
sumindex uses amortises it, and the runtime pin still guards the
aggregate. A deliberate slow path inside a hot function (e.g. the
sampled branch of trace.Begin) carries a
//provlint:ignore hotpathalloc <reason>.

To annotate a new hot path: add //provex:hotpath to the function's doc
comment, run ci.sh, and either fix or justify every finding; keep the
function covered by a zero-alloc benchmark or AllocsPerRun pin so the
static budget and the measured one stay in agreement.`,
	Run: runHotPathAlloc,
}

const hotpathMarker = "provex:hotpath"

// isHotPath reports whether the function declaration carries the
// //provex:hotpath annotation in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
		if strings.HasPrefix(text, hotpathMarker) {
			return true
		}
	}
	return false
}

func runHotPathAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var results *types.Tuple
	if sig, ok := info.TypeOf(fd.Name).(*types.Signature); ok {
		results = sig.Results()
	}
	// m[string(b)] compiles to an allocation-free lookup — the
	// compiler elides the conversion when the string is only used as a
	// map key. Collect those conversions up front so the conversion
	// check below skips them.
	elidedConv := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if t := info.TypeOf(ix.X); t != nil {
			if _, isMap := types.Unalias(t).Underlying().(*types.Map); isMap {
				if conv, ok := ast.Unparen(ix.Index).(*ast.CallExpr); ok {
					elidedConv[conv] = true
				}
			}
		}
		return true
	})
	loopDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			loopDepth--
			return false

		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal in hot path: closures allocate when they capture (hoist it or pass state explicitly)")
			return false // don't double-report the closure's own body

		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(x)).Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in hot path")
			}

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&%s{...} escapes to the heap in hot path", typeLabel(info, lit))
				}
			}

		case *ast.BinaryExpr:
			if x.Op == token.ADD && loopDepth > 0 && isStringType(info.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string concatenation in loop allocates per iteration (use a reused []byte buffer)")
			}

		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && loopDepth > 0 && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string concatenation in loop allocates per iteration (use a reused []byte buffer)")
			}
			checkAssignBoxing(pass, x)

		case *ast.ReturnStmt:
			if results != nil && results.Len() == len(x.Results) {
				for i, res := range x.Results {
					checkBoxed(pass, res, results.At(i).Type(), "returned")
				}
			}

		case *ast.CallExpr:
			checkCall(pass, x, elidedConv)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func typeLabel(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	if t == nil {
		return "composite"
	}
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// checkBoxed reports exp if assigning/passing it to target requires an
// allocating interface conversion: concrete, non-pointer value into an
// interface. Pointers and interfaces fit the iface data word; nil is
// free.
func checkBoxed(pass *analysis.Pass, exp ast.Expr, target types.Type, how string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	at := pass.TypesInfo.TypeOf(exp)
	if at == nil || types.IsInterface(at) {
		return
	}
	switch types.Unalias(at).Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan, *types.Slice:
		// Fits (or is) a single pointer word; conversion may still
		// allocate for slices? Slices are 3 words — they do allocate.
		if _, isSlice := types.Unalias(at).Underlying().(*types.Slice); !isSlice {
			return
		}
	}
	if b, ok := types.Unalias(at).Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(exp.Pos(), "%s value boxes %s into interface %s: interface conversion allocates in hot path", how, at, target)
}

func checkAssignBoxing(pass *analysis.Pass, x *ast.AssignStmt) {
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i := range x.Lhs {
		lt := pass.TypesInfo.TypeOf(x.Lhs[i])
		checkBoxed(pass, x.Rhs[i], lt, "assigned")
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, elidedConv map[*ast.CallExpr]bool) {
	info := pass.TypesInfo

	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make() allocates in hot path (preallocate outside, or reuse a scratch buffer)")
			case "new":
				pass.Reportf(call.Pos(), "new() allocates in hot path")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies.
		target := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if !elidedConv[call] &&
				((isStringType(target) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(target) && isStringType(src))) {
				pass.Reportf(call.Pos(), "%s <-> %s conversion copies in hot path", src, target)
			}
			if types.IsInterface(target) {
				checkBoxed(pass, call.Args[0], target, "converted")
			}
		}
		return
	}

	// fmt.* calls.
	if fn := callee(info, call); fn != nil {
		if _, recvType := recvTypeName(fn); recvType == "" && funcPkgPath(fn) == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s formats into fresh allocations and boxes its arguments in hot path", fn.Name())
			return
		}
	}

	// Implicit interface boxing of arguments.
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole
			} else if s, ok := types.Unalias(params.At(params.Len() - 1).Type()).Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxed(pass, arg, pt, "passed")
	}
}
