package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgPathMatches reports whether the fully-qualified package path is
// the wanted package. want is either a full path ("os") or a
// module-relative suffix ("internal/fsx"), so the same tables match
// the real tree ("provex/internal/fsx") and the analysistest fixtures
// (whose stubs live under testdata/src/provex/...).
func pkgPathMatches(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// callee resolves the *types.Func a call invokes: a package-level
// function, a method (through Selections), or nil for builtins,
// conversions, and calls through function-typed values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// recvTypeName returns the package path and type name of a method's
// receiver, or ("", "") for package-level functions.
func recvTypeName(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// funcPkgPath returns the defining package path of fn ("" for
// error.Error and other universe-scope methods).
func funcPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isNamedType reports whether t (after unwrapping pointers/aliases)
// is the named type pkg.name, with pkg matched per pkgPathMatches.
func isNamedType(t types.Type, pkg, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgPathMatches(n.Obj().Pkg().Path(), pkg)
}

// walkWithStack traverses every file, invoking fn with each node and
// the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func walkWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				// Pruned subtrees get no closing nil visit, so the node
				// is never pushed.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
