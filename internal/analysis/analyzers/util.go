package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pkgPathMatches reports whether the fully-qualified package path is
// the wanted package. want is either a full path ("os") or a
// module-relative suffix ("internal/fsx"), so the same tables match
// the real tree ("provex/internal/fsx") and the analysistest fixtures
// (whose stubs live under testdata/src/provex/...).
func pkgPathMatches(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// callee resolves the *types.Func a call invokes: a package-level
// function, a method (through Selections), or nil for builtins,
// conversions, and calls through function-typed values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// recvTypeName returns the package path and type name of a method's
// receiver, or ("", "") for package-level functions.
func recvTypeName(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// funcPkgPath returns the defining package path of fn ("" for
// error.Error and other universe-scope methods).
func funcPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isNamedType reports whether t (after unwrapping pointers/aliases)
// is the named type pkg.name, with pkg matched per pkgPathMatches.
func isNamedType(t types.Type, pkg, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgPathMatches(n.Obj().Pkg().Path(), pkg)
}

// exprKey renders a lexical identity for an expression so lock
// acquisitions and field accesses on the same base compare equal:
// idents and selector chains become dotted paths ("s.mu"), pointer
// derefs are transparent, and index expressions collapse the index
// ("s.shards[]") so any element of a container shares one key. The
// empty string means the expression has no stable lexical identity
// (call results, literals) and cannot be tied to a lock.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	}
	return ""
}

// freshLocals collects local variables bound to values constructed
// inside body itself (x := &T{...}, x := T{...}, x := new(T), var x T):
// until such a value escapes, no other goroutine can reach it, so the
// concurrency analyzers exempt accesses through these bases. The set is
// flow-insensitive — a local that is ever fresh is treated as fresh
// for the whole function — which trades a sliver of soundness for
// constructor-shaped code not needing annotations.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if rhs == nil || isFreshExpr(rhs) {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				mark(n.Lhs[i], n.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					mark(id, nil)
				}
			} else if len(n.Values) == len(n.Names) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: a
// composite literal, its address, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// syncMethodCall classifies call as a method call on sync.<typeName>
// with a name in ops, returning the lexical key of the receiver value.
// A call through an embedded mutex/waitgroup ("t.Lock()") keys on the
// promoted field ("t.Mutex"), matching how a `// guarded by Mutex`
// annotation names it.
func syncMethodCall(info *types.Info, call *ast.CallExpr, typeNames []string, ops []string) (key, typeName, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	opOK := false
	for _, o := range ops {
		if sel.Sel.Name == o {
			opOK = true
			break
		}
	}
	if !opOK {
		return "", "", ""
	}
	fn := callee(info, call)
	if fn == nil {
		return "", "", ""
	}
	recvPkg, recvType := recvTypeName(fn)
	if !pkgPathMatches(recvPkg, "sync") {
		return "", "", ""
	}
	typeOK := false
	for _, tn := range typeNames {
		if recvType == tn {
			typeOK = true
			break
		}
	}
	if !typeOK {
		return "", "", ""
	}
	base := exprKey(sel.X)
	if base == "" {
		return "", "", ""
	}
	if xt := info.TypeOf(sel.X); xt != nil && !isNamedType(xt, "sync", recvType) {
		// Promoted method through an embedded field.
		base += "." + recvType
	}
	return base, recvType, sel.Sel.Name
}

// lockOp classifies call as a sync.Mutex/RWMutex operation
// (Lock/Unlock/RLock/RUnlock) and returns the guard key it acts on.
func lockOp(info *types.Info, call *ast.CallExpr) (key, op string) {
	key, _, op = syncMethodCall(info, call,
		[]string{"Mutex", "RWMutex"},
		[]string{"Lock", "Unlock", "RLock", "RUnlock"})
	return key, op
}

// wgOp classifies call as a sync.WaitGroup Add/Done/Wait and returns
// the lexical key of the WaitGroup it acts on.
func wgOp(info *types.Info, call *ast.CallExpr) (key, op string) {
	key, _, op = syncMethodCall(info, call,
		[]string{"WaitGroup"},
		[]string{"Add", "Done", "Wait"})
	return key, op
}

// walkWithStack traverses every file, invoking fn with each node and
// the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func walkWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				// Pruned subtrees get no closing nil visit, so the node
				// is never pushed.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
