// The `// guarded by <mutex>` annotation: a struct field carrying this
// marker (trailing comment or doc comment) declares that every access
// outside the owning goroutine must hold the named sibling mutex. The
// lockguard analyzer enforces it; this file owns the parser so the
// fuzz target (FuzzParseGuardedBy) and the analyzer share one
// implementation.

package analyzers

import "strings"

// guardedByMarker introduces the annotation inside a field comment.
const guardedByMarker = "guarded by "

// parseGuardedBy extracts the mutex field name from one comment's
// text ("// guarded by mu", "// hit count; guarded by mu."). The name
// is the first token after the marker, with trailing punctuation
// stripped; it must be a plain Go identifier (the annotation names a
// sibling field, never a dotted path). Returns ok=false when the
// comment carries no well-formed annotation.
func parseGuardedBy(text string) (name string, ok bool) {
	i := strings.Index(text, guardedByMarker)
	if i < 0 {
		return "", false
	}
	rest := text[i+len(guardedByMarker):]
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	name = strings.TrimRight(fields[0], ".,;:)")
	if !isGoIdent(name) {
		return "", false
	}
	return name, true
}

// isGoIdent reports whether s is a plain (ASCII) Go identifier. The
// annotation vocabulary is repo-local, so the ASCII restriction is a
// feature: it rejects prose that happens to follow the marker.
func isGoIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
