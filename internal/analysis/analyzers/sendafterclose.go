package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"provex/internal/analysis"
)

// SendAfterClose covers the two channel-lifecycle bugs that turn into
// runtime panics or goroutine leaks:
//
//  1. A send (or second close) lexically reachable after close(ch) in
//     the same function: send on a closed channel panics, close of a
//     closed channel panics. The tracking is linear per block;
//     a close inside a branch does not poison the code after the
//     branch (it may not have executed).
//  2. A go-launched closure running `for { ... }` with no termination
//     signal — no return, break, goto, select, channel operation, or
//     panic anywhere in the loop. Such a goroutine can never be
//     stopped: it leaks until process exit, and in a server that
//     restarts engines (reopen, resync) each generation adds one.
var SendAfterClose = &analysis.Analyzer{
	Name: "sendafterclose",
	Doc: `channel send reachable after close; goroutine loops with no exit

Flags ch <- v and close(ch) statements that follow a close(ch) in the
same function body (a guaranteed panic if reached), and go func()
bodies that loop forever with no termination signal (a goroutine
leak). for-range over a channel is a valid exit — it ends when the
channel closes — as is any select, receive, return, break, or panic.
_test.go files are exempt.`,
	Run: runSendAfterClose,
}

func runSendAfterClose(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c := &sacChecker{pass: pass}
					c.block(n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				c := &sacChecker{pass: pass}
				c.block(n.Body.List, map[string]token.Pos{})
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineLifecycle(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// sacChecker tracks the set of channels closed so far, keyed by
// lexical identity, through one function body in statement order.
type sacChecker struct {
	pass *analysis.Pass
}

func copyClosed(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// closedChanKey returns the lexical key of the channel a builtin
// close(ch) call closes, or "".
func closedChanKey(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	if len(call.Args) != 1 {
		return ""
	}
	return exprKey(call.Args[0])
}

func (c *sacChecker) block(list []ast.Stmt, closed map[string]token.Pos) {
	for _, s := range list {
		c.stmt(s, closed)
	}
}

func (c *sacChecker) stmt(s ast.Stmt, closed map[string]token.Pos) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key := closedChanKey(c.pass.TypesInfo, call); key != "" {
				if prev, dup := closed[key]; dup {
					c.pass.Reportf(call.Pos(), "close of %s after it was already closed at %s; closing a closed channel panics", key, c.pass.Position(prev))
				}
				closed[key] = call.Pos()
			}
		}
	case *ast.SendStmt:
		if key := exprKey(s.Chan); key != "" {
			if pos, ok := closed[key]; ok {
				c.pass.Reportf(s.Pos(), "send on %s after close at %s; send on a closed channel panics", key, c.pass.Position(pos))
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, closed)
		}
		c.block(s.Body.List, copyClosed(closed))
		if s.Else != nil {
			c.stmt(s.Else, copyClosed(closed))
		}
	case *ast.ForStmt:
		c.block(s.Body.List, copyClosed(closed))
	case *ast.RangeStmt:
		c.block(s.Body.List, copyClosed(closed))
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, copyClosed(closed))
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, copyClosed(closed))
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			inner := copyClosed(closed)
			if cl.Comm != nil {
				c.stmt(cl.Comm, inner)
			}
			c.block(cl.Body, inner)
		}
	case *ast.BlockStmt:
		c.block(s.List, closed)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, closed)
		// Defer/go bodies run at another time; sends inside them are
		// not lexically "after" the close in execution order this
		// linear pass can reason about, and nested closures are
		// analyzed on their own when the outer Inspect reaches them.
	}
}

// checkGoroutineLifecycle flags `for {}` loops inside a go-launched
// closure that contain no way out.
func checkGoroutineLifecycle(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			// Nested closures get their own GoStmt check if spawned.
			return false
		}
		f, ok := n.(*ast.ForStmt)
		if !ok || f.Cond != nil || f.Init != nil || f.Post != nil {
			return true
		}
		if !loopCanTerminate(pass.TypesInfo, f.Body) {
			pass.Reportf(f.Pos(), "goroutine loops forever with no termination signal (no return, break, goto, select, channel operation, or panic); it leaks until process exit")
		}
		return false // the outermost unbounded loop is the finding
	})
}

// loopCanTerminate reports whether body contains any construct that
// can end the enclosing `for {}`: return, break, goto, select, a
// channel receive or send, range over a channel, or a panic call.
func loopCanTerminate(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure does not end this loop
		case *ast.ReturnStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
