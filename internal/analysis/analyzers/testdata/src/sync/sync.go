// Package sync is a hermetic stub of the standard library's sync
// package: just the method surface the concurrency analyzers match
// on, so fixtures type-check without touching GOROOT.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{ n int32 }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}

type Once struct{ done uint32 }

func (o *Once) Do(f func()) { f() }
