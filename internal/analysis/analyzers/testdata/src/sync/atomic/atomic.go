// Package atomic is a hermetic stub of sync/atomic for the analyzer
// fixtures: the package-level address-taking functions atomicmix
// tracks, plus one typed atomic to prove the typed family is exempt.
package atomic

func AddInt64(addr *int64, delta int64) int64     { *addr += delta; return *addr }
func LoadInt64(addr *int64) int64                 { return *addr }
func StoreInt64(addr *int64, val int64)           { *addr = val }
func SwapInt64(addr *int64, new int64) int64      { old := *addr; *addr = new; return old }
func AddUint64(addr *uint64, delta uint64) uint64 { *addr += delta; return *addr }
func LoadUint64(addr *uint64) uint64              { return *addr }
func StoreUint64(addr *uint64, val uint64)        { *addr = val }
func CompareAndSwapInt64(addr *int64, old, new int64) bool {
	if *addr == old {
		*addr = new
		return true
	}
	return false
}

type Int64 struct{ v int64 }

func (x *Int64) Load() int64           { return x.v }
func (x *Int64) Store(val int64)       { x.v = val }
func (x *Int64) Add(delta int64) int64 { x.v += delta; return x.v }
