// Package fixture exercises the sendafterclose analyzer: sends and
// closes lexically after a close of the same channel, and go-launched
// closures looping forever with no way out.
package fixture

func sendAfter() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	ch <- 2 // want `send on ch after close`
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `close of ch after it was already closed`
}

func branchedClose(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
	}
	ch <- 1 // the close above is conditional: not flagged
}

func closeThenBranchSend(x bool) {
	ch := make(chan int, 1)
	close(ch)
	if x {
		ch <- 1 // want `send on ch after close`
	}
}

func fieldChannel(c *carrier) {
	close(c.ch)
	c.ch <- 1 // want `send on c\.ch after close`
}

type carrier struct {
	ch chan int
}

func leakyLoop() {
	go func() {
		for { // want `goroutine loops forever with no termination signal`
			tick()
		}
	}()
}

func stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tick()
			}
		}
	}()
}

func receiver(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			use(v)
		}
	}()
}

func drainer(ch chan int) {
	go func() {
		for range ch {
			tick()
		}
	}()
}

func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			tick()
		}
	}()
}

func tick()     {}
func use(v int) {}
