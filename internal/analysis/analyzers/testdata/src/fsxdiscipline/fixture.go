// Package fixture exercises the fsxdiscipline analyzer: raw os
// mutations are flagged, fsx-routed writes and std-stream writes are
// not.
package fixture

import (
	"os"

	"provex/internal/fsx"
)

func rawWrites(name string) error {
	f, err := os.Create(name) // want `os\.Create bypasses the fsx fault-injection boundary`
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil { // want `\(\*os\.File\)\.Write bypasses the fsx fault-injection boundary`
		return err
	}
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync bypasses the fsx fault-injection boundary`
		return err
	}
	g, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE, 0o644) // want `os\.OpenFile bypasses the fsx fault-injection boundary`
	if err != nil {
		return err
	}
	if _, err := g.WriteString("y"); err != nil { // want `\(\*os\.File\)\.WriteString bypasses the fsx fault-injection boundary`
		return err
	}
	if err := os.Rename(name, name+".new"); err != nil { // want `os\.Rename bypasses the fsx fault-injection boundary`
		return err
	}
	if err := os.RemoveAll(name); err != nil { // want `os\.RemoveAll bypasses the fsx fault-injection boundary`
		return err
	}
	return os.WriteFile(name, nil, 0o644) // want `os\.WriteFile bypasses the fsx fault-injection boundary`
}

func fsxRouted(fsys fsx.FS, name string) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fsys.Rename(name, name+".new"); err != nil {
		return err
	}
	return f.Close()
}

func readsAndStreams(name string) ([]byte, error) {
	if _, err := os.Stdout.Write([]byte("progress\n")); err != nil {
		return nil, err
	}
	if _, err := os.Stderr.WriteString("note\n"); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}
