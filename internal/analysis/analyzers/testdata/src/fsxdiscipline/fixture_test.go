// Test files are exempt from fsxdiscipline: raw os here carries no
// want comments and must produce no diagnostics.
package fixture

import "os"

func helperUsedInTestsOnly(name string) error {
	return os.WriteFile(name, []byte("scratch"), 0o644)
}
