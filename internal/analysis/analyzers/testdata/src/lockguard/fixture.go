// Package fixture exercises the lockguard analyzer: accesses to
// `// guarded by` fields outside the named mutex are flagged; locked
// sections, deferred unlocks, RLock reads, *Locked helpers, freshly
// constructed values, and self-locking closures are not.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rw   sync.RWMutex
	view map[string]int // guarded by rw

	free int // unannotated: never checked

	// guarded by missing
	bogus int // want `no sibling sync\.Mutex or sync\.RWMutex field named "missing"`
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) DeferStyle() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func (c *counter) BadRead() int {
	return c.n // want `read of c\.n without c\.mu held`
}

func (c *counter) BadWrite() {
	c.n = 7 // want `write to c\.n without c\.mu held`
}

func (c *counter) BadAddr() *int {
	return &c.n // want `write to c\.n without c\.mu held`
}

func (c *counter) ReadUnderRLock(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.view[k]
}

func (c *counter) WriteUnderRLock(k string) {
	c.rw.RLock()
	c.view[k] = 1 // want `write to c\.view under RLock of c\.rw`
	c.rw.RUnlock()
}

func (c *counter) WriteUnderLock(k string) {
	c.rw.Lock()
	c.view[k] = 1
	c.rw.Unlock()
}

func (c *counter) earlyReturn(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++ // the unlocking branch returned; still held here
	c.mu.Unlock()
}

func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `write to c\.n without c\.mu held`
}

// resetLocked runs with c.mu already held by the caller (repo naming
// convention), so lockguard skips it.
func (c *counter) resetLocked() { c.n = 0 }

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // freshly constructed: not yet shared
	c.view = map[string]int{}
	return c
}

func (c *counter) Spawn() {
	go func() {
		c.n++ // want `write to c\.n without c\.mu held`
	}()
	go func() {
		c.mu.Lock()
		c.n++ // the goroutine takes the lock itself
		c.mu.Unlock()
	}()
}

func (c *counter) FreeAccess() int {
	c.free++ // unannotated fields are out of scope
	return c.free
}

type embedded struct {
	sync.RWMutex
	m map[string]bool // guarded by RWMutex
}

func (e *embedded) Get(k string) bool {
	e.RLock()
	defer e.RUnlock()
	return e.m[k]
}

func (e *embedded) BadGet(k string) bool {
	return e.m[k] // want `read of e\.m without e\.RWMutex held`
}
