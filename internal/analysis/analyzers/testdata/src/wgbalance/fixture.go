// Package fixture exercises the wgbalance analyzer: Add inside the
// counted goroutine, spawned goroutines that cannot reach Done,
// non-deferred Done, and Wait under a lock the workers need.
package fixture

import "sync"

func addInsideGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `wg\.Add inside the goroutine it counts`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func missingDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `goroutine counted by wg\.Add never calls wg\.Done`
		work()
	}()
	wg.Wait()
}

func notDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want `wg\.Done in a spawned goroutine is not deferred`
	}()
	wg.Wait()
}

func balanced(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// handsOff passes the WaitGroup on: a helper may call Done, so the
// spawned closure is not flagged.
func handsOff(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		helper(wg)
	}()
	wg.Wait()
}

type pool struct {
	wg sync.WaitGroup
	mu sync.Mutex
}

func (p *pool) fieldBalanced() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
	p.wg.Wait()
}

func (p *pool) fieldMissingDone() {
	p.wg.Add(1)
	go func() { // want `goroutine counted by p\.wg\.Add never calls p\.wg\.Done`
		work()
	}()
	p.wg.Wait()
}

func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		work()
		mu.Unlock()
	}()
	mu.Lock()
	wg.Wait() // want `wg\.Wait while holding mu`
	mu.Unlock()
}

func waitAfterUnlock(mu *sync.Mutex, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		work()
		mu.Unlock()
	}()
	mu.Lock()
	work()
	mu.Unlock()
	wg.Wait()
}

func work() {}

func helper(wg *sync.WaitGroup) { wg.Done() }
