// Package shard is a hermetic stub of provex/internal/shard for the
// durabilityerr fixtures: the ledger/manifest write paths carry the
// same names as the real coordinated-checkpoint machinery. The fixture
// functions live in-package because ledger, writeManifest and wipeDir
// are unexported in the real tree too — the analyzer must fire on
// intra-package discards.
package shard

type ledger struct{}

func (l *ledger) append(global uint64, watermarks []uint64) error { return nil }
func (l *ledger) reset() error                                    { return nil }

func writeManifest(path string) error { return nil }
func wipeDir(dir string) error        { return nil }

func discards(l *ledger) {
	l.append(1, nil)         // want `error from ledger\.append is discarded`
	_ = l.reset()            // want `error from ledger\.reset is assigned to _`
	writeManifest("m.json")  // want `error from writeManifest is discarded`
	defer wipeDir("shard-0") // want `error from wipeDir is discarded by defer`
}

func checks(l *ledger) error {
	if err := l.append(2, nil); err != nil {
		return err
	}
	if err := writeManifest("m.json"); err != nil {
		return err
	}
	if err := wipeDir("shard-0"); err != nil {
		return err
	}
	return l.reset()
}
