// Package fsx is a hermetic stub of provex/internal/fsx for the
// analyzer fixtures: the same package path suffix, interface names and
// method sets as the real fault-injection boundary.
package fsx

import "os"

type File interface {
	Write(p []byte) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
}
