// Package repl is a hermetic stub of provex/internal/repl for the
// durabilityerr fixtures: checkpoint-install and catch-up paths carry
// the same receiver and method names as the real replica. Fixtures are
// in-package because downloadTo and resync are unexported.
package repl

type Replica struct{}

func (r *Replica) downloadTo(path string) error   { return nil }
func (r *Replica) resync(generation uint64) error { return nil }

func discards(r *Replica) {
	r.downloadTo("ckpt") // want `error from Replica\.downloadTo is discarded`
	go r.resync(1)       // want `error from Replica\.resync is discarded by go`
}

func checks(r *Replica) error {
	if err := r.downloadTo("ckpt"); err != nil {
		return err
	}
	return r.resync(2)
}
