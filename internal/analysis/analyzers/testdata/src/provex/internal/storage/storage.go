// Package storage is a hermetic stub of provex/internal/storage for
// the analyzer fixtures.
package storage

type Store struct{}

func (s *Store) Put(data []byte) error { return nil }
func (s *Store) Sync() error           { return nil }
func (s *Store) Compact() error        { return nil }
