// Package wal is a hermetic stub of provex/internal/wal for the
// analyzer fixtures.
package wal

type Log struct{}

func (l *Log) Append(seq uint64, data []byte) error { return nil }
func (l *Log) Truncate() error                      { return nil }
func (l *Log) Sync() error                          { return nil }
