// Package metrics is a hermetic stub of provex/internal/metrics for
// the analyzer fixtures: same instrument type names, write methods and
// Registry surface as the real package.
package metrics

type Counter struct{ v int64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(d int64)  { c.v += d }
func (c *Counter) Value() int64 { return c.v }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64)  { g.v = v }
func (g *Gauge) Add(d int64)  { g.v += d }
func (g *Gauge) Value() int64 { return g.v }

type StageTimer struct{ total int64 }

func (t *StageTimer) Observe(d int64) { t.total += d }
func (t *StageTimer) Time(fn func())  { fn() }
func (t *StageTimer) Total() int64    { return t.total }

type Histogram struct{ n int64 }

func NewHistogram(bounds ...int64) *Histogram { return &Histogram{} }
func NewPow2Histogram(n int) *Histogram       { return &Histogram{} }

func (h *Histogram) Observe(v int64)          { h.n++ }
func (h *Histogram) Quantile(q float64) int64 { return 0 }
func (h *Histogram) String() string           { return "" }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) RegisterCounter(name, help string, c *Counter)     {}
func (r *Registry) RegisterGauge(name, help string, g *Gauge)         {}
func (r *Registry) RegisterTimer(name, help string, t *StageTimer)    {}
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {}
func (r *Registry) Counter(name, help string) *Counter                { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge                    { return &Gauge{} }
