// Package fixture proves //provlint:ignore directives silence
// lockguard findings — and only on the lines they cover, only for the
// analyzer they name.
package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func (g *gauge) blessedRead() int {
	//provlint:ignore lockguard approximate read for a log line; staleness is acceptable
	return g.v
}

func (g *gauge) trailingStyle() int {
	return g.v //provlint:ignore lockguard monotonic progress gauge, torn reads are fine
}

func (g *gauge) stillFlagged() int {
	return g.v // want `read of g\.v without g\.mu held`
}

func (g *gauge) wrongAnalyzer() int {
	//provlint:ignore atomicmix directive names another analyzer
	return g.v // want `read of g\.v without g\.mu held`
}

func (g *gauge) outOfRange() int {
	//provlint:ignore lockguard directive two lines up reaches only one line down

	return g.v // want `read of g\.v without g\.mu held`
}
