// Package fixture exercises the hotpathalloc analyzer: allocating
// constructs inside //provex:hotpath functions are flagged; the same
// constructs in unannotated functions are not.
package fixture

import "fmt"

type pair struct{ a, b int }

type sink interface{ accept() }

type payload struct{ n int }

func (p payload) accept() {}

func consume(s sink) {}

// hot simulates a per-message ingest step.
//
//provex:hotpath fixture for the analyzer test
func hot(names []string, m map[string]int, joined string) string {
	s := ""
	for _, n := range names {
		s = s + n // want `string concatenation in loop allocates per iteration`
	}
	for i := 0; i < len(names); i++ {
		s += "," // want `string concatenation in loop allocates per iteration`
	}
	_ = fmt.Sprintf("%d", len(names)) // want `fmt\.Sprintf formats into fresh allocations`
	buf := make([]byte, 8)            // want `make\(\) allocates in hot path`
	_ = buf
	xs := []int{1, 2, 3} // want `slice literal allocates in hot path`
	_ = xs
	mm := map[string]int{"a": 1} // want `map literal allocates in hot path`
	_ = mm
	fn := func() int { return 0 } // want `function literal in hot path`
	_ = fn
	p := &pair{a: 1, b: 2} // want `escapes to the heap in hot path`
	_ = p.a
	bs := []byte(joined) // want `string <-> \[\]byte conversion copies in hot path`
	_ = bs
	consume(payload{n: 1}) // want `passed value boxes .*payload into interface .*sink`
	var w sink
	w = payload{n: 2} // want `assigned value boxes .*payload into interface .*sink`
	_ = w
	return s
}

// hotLookup proves the compiler-elided map-index conversion form is
// exempt.
//
//provex:hotpath fixture for the elided-conversion exemption
func hotLookup(m map[string]int, key []byte) int {
	return m[string(key)]
}

// hotReturn boxes its concrete result into an interface return value.
//
//provex:hotpath fixture for return boxing
func hotReturn() sink {
	return payload{n: 3} // want `returned value boxes .*payload into interface .*sink`
}

// hotBoundScan mirrors the pruned-placement upper-bound loop shape
// (bundle.addPruned): bucket candidates into fixed-size scratch arrays,
// insertion-sort group indices by a precomputed bound, then scan in
// bound order with early termination. Every construct here — array
// element assignment, by-value struct composite literals, slice
// reslicing to :0, arithmetic on scratch state — must stay free of
// diagnostics, or the real hot path cannot be written allocation-free.
//
//provex:hotpath fixture for the allocation-free bound-scan shape
func hotBoundScan(cands []int32, masks []uint8, bounds *[16]float64, groups *[16][]int32) int32 {
	type stat struct{ scored, skipped int }
	var st stat // by-value struct: no escape, no finding
	var order [16]uint8
	for i := range groups {
		groups[i] = groups[i][:0] // reslice reuses backing store
	}
	for i, id := range cands {
		groups[masks[i]] = append(groups[masks[i]], id)
	}
	n := 0
	for m := 0; m < 16; m++ {
		if len(groups[m]) == 0 {
			continue
		}
		j := n
		for j > 0 && bounds[order[j-1]] < bounds[m] {
			order[j] = order[j-1]
			j--
		}
		order[j] = uint8(m)
		n++
	}
	best, parent := -1.0, int32(-1)
	for g := 0; g < n; g++ {
		if best > bounds[order[g]] {
			st.skipped += len(groups[order[g]])
			break
		}
		for _, id := range groups[order[g]] {
			s := float64(id) * 0.5
			if s > best || (s == best && id < parent) {
				best, parent = s, id
			}
			st.scored++
		}
	}
	_ = st
	return parent
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(names []string) string {
	s := ""
	for _, n := range names {
		s = s + n
	}
	_ = fmt.Sprintf("%d", len(names))
	buf := make([]byte, 8)
	_ = buf
	consume(payload{n: 4})
	return s
}
