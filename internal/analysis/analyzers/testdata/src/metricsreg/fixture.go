// Package fixture exercises the metricsreg analyzer: instruments that
// never reach a Registry are flagged; registered instruments and
// read-locally report aggregates are not.
package fixture

import "provex/internal/metrics"

// orphan is written but never registered — its series silently
// vanishes from /metrics.
var orphan metrics.Counter // want `metrics\.Counter variable "orphan" is never registered`

func touchOrphan() { orphan.Inc() }

type server struct {
	requests metrics.Counter // want `metrics\.Counter field "requests" is never registered`
	inFlight *metrics.Gauge
	lat      *metrics.Histogram
}

func newServer(reg *metrics.Registry) *server {
	s := &server{}
	// Built via the Registry: registered by construction.
	s.inFlight = reg.Gauge("in_flight", "requests in flight")
	// Bare construction, salvaged by an explicit Register call below.
	s.lat = metrics.NewHistogram(1, 2, 3)
	reg.RegisterHistogram("latency_us", "request latency", s.lat)
	return s
}

func (s *server) handle() {
	s.requests.Inc() // write-only use does not register anything
	s.inFlight.Add(1)
	s.lat.Observe(7)
}

func leaked() {
	h := metrics.NewPow2Histogram(8) // want `metrics\.Histogram variable "h" is never registered`
	h.Observe(5)
}

// localReport builds a throwaway histogram, reads it and returns the
// aggregate — a legitimate local use that must not be flagged.
func localReport(samples []int64) int64 {
	h := metrics.NewHistogram(1, 10, 100)
	for _, v := range samples {
		h.Observe(v)
	}
	return h.Quantile(0.99)
}

func registered(reg *metrics.Registry) {
	c := &metrics.Counter{}
	reg.RegisterCounter("ok_total", "successes", c)
	c.Inc()
}
