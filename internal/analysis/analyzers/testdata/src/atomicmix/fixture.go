// Package fixture exercises the atomicmix analyzer: fields touched
// via sync/atomic in one place and plainly in another are flagged at
// the plain access; all-atomic fields, never-atomic fields, typed
// atomics, and constructor-time initialization are not.
package fixture

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
	clean int64
	typed atomic.Int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.total, 1)
}

func (s *stats) plainRead() int64 {
	return s.hits // want `plain access of hits`
}

func (s *stats) plainWrite() {
	s.total = 0 // want `plain access of total`
}

func (s *stats) atomicRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) plainOnly() int64 {
	s.clean++
	return s.clean
}

func (s *stats) typedIsFine() int64 {
	s.typed.Add(1)
	return s.typed.Load()
}

func newStats() *stats {
	s := &stats{}
	s.hits = 0 // freshly constructed: publication not yet possible
	return s
}
