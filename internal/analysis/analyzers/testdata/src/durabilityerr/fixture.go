// Package fixture exercises the durabilityerr analyzer: discarded
// errors from WAL, storage and fsx write paths are flagged; checked
// errors and non-critical calls are not.
package fixture

import (
	"provex/internal/fsx"
	"provex/internal/storage"
	"provex/internal/wal"
)

func discards(l *wal.Log, s *storage.Store, f fsx.File, fsys fsx.FS) {
	l.Append(1, nil)      // want `error from Log\.Append is discarded`
	_ = l.Truncate()      // want `error from Log\.Truncate is assigned to _`
	defer s.Sync()        // want `error from Store\.Sync is discarded by defer`
	go s.Put(nil)         // want `error from Store\.Put is discarded by go`
	f.Sync()              // want `error from File\.Sync is discarded`
	_, _ = f.Write(nil)   // want `error from File\.Write is assigned to _`
	fsys.Rename("a", "b") // want `error from FS\.Rename is discarded`
}

func checks(l *wal.Log, s *storage.Store, f fsx.File) error {
	if err := l.Append(2, nil); err != nil {
		return err
	}
	if err := s.Sync(); err != nil {
		return err
	}
	n, err := f.Write(nil)
	if err != nil {
		return err
	}
	_ = n
	return f.Sync()
}

// nonCritical proves ordinary methods are untouched even when their
// receiver type lives in a critical package.
func nonCritical(f fsx.File) {
	f.Close()
}
