// Package fixture exercises the //provlint:ignore directive: a
// suppressed violation draws no diagnostic, a directive naming a
// different analyzer does not apply, and an unsuppressed twin still
// fires.
package fixture

import "os"

func cleanup(dir string) {
	//provlint:ignore fsxdiscipline scratch-dir cleanup in a fixture; nothing durable lives here
	os.RemoveAll(dir)

	os.RemoveAll(dir) //provlint:ignore fsxdiscipline trailing-comment form is also honoured

	os.RemoveAll(dir) // want `os\.RemoveAll bypasses the fsx fault-injection boundary`

	//provlint:ignore otheranalyzer directive names a different analyzer, so this still fires
	os.RemoveAll(dir) // want `os\.RemoveAll bypasses the fsx fault-injection boundary`
}

func multi(dir string) error {
	//provlint:ignore fsxdiscipline,durabilityerr comma-separated analyzer list
	os.RemoveAll(dir)

	// A directive only reaches its own line and the next: two lines
	// down is out of range.
	//provlint:ignore fsxdiscipline suppressed line
	os.RemoveAll(dir)
	return os.RemoveAll(dir) // want `os\.RemoveAll bypasses the fsx fault-injection boundary`
}
