// Package fixture proves //provlint:ignore directives silence
// atomicmix findings in place, with unsuppressed lines still flagged.
package fixture

import "sync/atomic"

type meter struct {
	n int64
}

func (m *meter) bump() {
	atomic.AddInt64(&m.n, 1)
}

func (m *meter) blessed() int64 {
	//provlint:ignore atomicmix startup-only read before any goroutine exists
	return m.n
}

func (m *meter) stillFlagged() int64 {
	return m.n // want `plain access of n`
}
