// Package fmt is a hermetic stub of the standard library's fmt package
// for the analyzer fixtures.
package fmt

func Sprintf(format string, a ...any) string { return format }
func Sprint(a ...any) string                 { return "" }
func Errorf(format string, a ...any) error   { return nil }
