// Package os is a hermetic stub of the standard library's os package,
// just enough surface for the analyzer fixtures to type-check without
// touching the real GOROOT.
package os

type FileMode uint32

const (
	O_RDONLY = 0
	O_WRONLY = 1
	O_RDWR   = 2
	O_APPEND = 8
	O_CREATE = 64
	O_TRUNC  = 512
)

type File struct{ name string }

func (f *File) Name() string                      { return f.name }
func (f *File) Read(p []byte) (int, error)        { return 0, nil }
func (f *File) Write(p []byte) (int, error)       { return len(p), nil }
func (f *File) WriteString(s string) (int, error) { return len(s), nil }
func (f *File) Sync() error                       { return nil }
func (f *File) Truncate(size int64) error         { return nil }
func (f *File) Close() error                      { return nil }

var (
	Stdout = &File{name: "/dev/stdout"}
	Stderr = &File{name: "/dev/stderr"}
)

func Create(name string) (*File, error) { return &File{name: name}, nil }
func Open(name string) (*File, error)   { return &File{name: name}, nil }
func OpenFile(name string, flag int, perm FileMode) (*File, error) {
	return &File{name: name}, nil
}
func Rename(oldpath, newpath string) error                    { return nil }
func Remove(name string) error                                { return nil }
func RemoveAll(path string) error                             { return nil }
func WriteFile(name string, data []byte, perm FileMode) error { return nil }
func Truncate(name string, size int64) error                  { return nil }
func Mkdir(name string, perm FileMode) error                  { return nil }
func MkdirAll(path string, perm FileMode) error               { return nil }
func ReadFile(name string) ([]byte, error)                    { return nil, nil }
func Getenv(key string) string                                { return "" }
