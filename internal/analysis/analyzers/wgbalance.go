package analyzers

import (
	"go/ast"
	"go/types"

	"provex/internal/analysis"
)

// WgBalance checks the three sync.WaitGroup shapes that deadlock or
// leak in practice:
//
//  1. Add inside the goroutine it counts — Wait can observe the group
//     at zero before the goroutine has run, and returns early.
//  2. A goroutine spawned immediately after Add that can never reach
//     Done (no Done call and the WaitGroup never escapes into it):
//     Wait hangs forever. When Done is present but not deferred, a
//     panic on the goroutine's path skips it — same hang, rarer
//     schedule.
//  3. Wait while holding a mutex that a spawned goroutine also locks:
//     the goroutine blocks on the mutex, Wait blocks on the
//     goroutine — a deadlock the race detector cannot see.
//
// The analysis is intra-procedural and lexical, mirroring the repo's
// fan-out idiom (prepare pool, shard rounds): Add before go, deferred
// Done first in the goroutine, Wait with nothing held.
var WgBalance = &analysis.Analyzer{
	Name: "wgbalance",
	Doc: `sync.WaitGroup Add/Done/Wait pairing errors

Flags Add calls inside the goroutine they count, spawned goroutines
that cannot reach Done (or reach it only on the non-panic path
because it is not deferred), and Wait called while holding a mutex
that a spawned worker goroutine also needs. All three are hangs or
early returns that only bite under unlucky schedules; the static
shape is checkable on every build. _test.go files are exempt.`,
	Run: runWgBalance,
}

func runWgBalance(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Check 1: Add inside a go-launched closure.
		walkWithStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, op := wgOp(pass.TypesInfo, call)
			if key == "" || op != "Add" {
				return true
			}
			for i := len(stack) - 1; i >= 2; i-- {
				lit, ok := stack[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				parentCall, ok := stack[i-1].(*ast.CallExpr)
				if ok && parentCall.Fun == lit {
					if _, ok := stack[i-2].(*ast.GoStmt); ok {
						pass.Reportf(call.Pos(), "%s.Add inside the goroutine it counts; call Add before the go statement so Wait cannot pass before the goroutine starts", key)
					}
				}
				break // innermost closure decides
			}
			return true
		})
		// Checks 2 and 3 are per-function.
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkSpawnedDone(pass, fd)
			checkWaitUnderLock(pass, fd)
			return true
		})
	}
	return nil
}

// checkSpawnedDone inspects every `wg.Add(n); go func() {...}()` pair:
// the spawned closure must either call wg.Done (preferably deferred)
// or receive the WaitGroup so a helper can.
func checkSpawnedDone(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i := 1; i < len(list); i++ {
			gs, ok := list[i].(*ast.GoStmt)
			if !ok {
				continue
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				continue
			}
			es, ok := list[i-1].(*ast.ExprStmt)
			if !ok {
				continue
			}
			addCall, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			key, op := wgOp(pass.TypesInfo, addCall)
			if key == "" || op != "Add" {
				continue
			}
			wgObj := receiverObj(pass.TypesInfo, addCall)
			checkGoroutineDone(pass, gs, lit, key, wgObj)
		}
		return true
	})
}

// receiverObj resolves the object the method call's receiver
// expression names: the Ident's object, or the field a selector
// resolves to. nil when the receiver has no single object identity.
func receiverObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
	}
	return nil
}

// checkGoroutineDone verifies one spawned closure against the Add that
// precedes it.
func checkGoroutineDone(pass *analysis.Pass, gs *ast.GoStmt, lit *ast.FuncLit, key string, wgObj types.Object) {
	var (
		doneCalls     []*ast.CallExpr
		deferredDones int
		referencesWg  bool
	)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if wgObj != nil && pass.TypesInfo.Uses[n] == wgObj {
				referencesWg = true
			}
		case *ast.DeferStmt:
			if k, op := wgOp(pass.TypesInfo, n.Call); k == key && op == "Done" {
				deferredDones++
			}
		case *ast.CallExpr:
			if k, op := wgOp(pass.TypesInfo, n); k == key && op == "Done" {
				doneCalls = append(doneCalls, n)
			}
		}
		return true
	})
	switch {
	case len(doneCalls) == 0 && !referencesWg:
		pass.Reportf(gs.Pos(), "goroutine counted by %s.Add never calls %s.Done and the WaitGroup does not escape into it; %s.Wait will hang", key, key, key)
	case len(doneCalls) > 0 && deferredDones == 0:
		pass.Reportf(doneCalls[0].Pos(), "%s.Done in a spawned goroutine is not deferred; a panic on this path skips it and %s.Wait hangs", key, key)
	}
}

// checkWaitUnderLock simulates the function's lock set in source
// order (skipping closures) and flags Wait calls made while holding a
// mutex that some goroutine spawned in the same function also locks.
func checkWaitUnderLock(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Locks taken inside go-launched closures.
	goroutineLocks := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if key, op := lockOp(pass.TypesInfo, call); key != "" && (op == "Lock" || op == "RLock") {
					goroutineLocks[key] = true
				}
			}
			return true
		})
		return true
	})
	if len(goroutineLocks) == 0 {
		return
	}
	// Linear lock-set simulation over the function body proper.
	held := make(map[string]bool)
	var walk func(n ast.Node) bool
	inDefer := false
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // goroutine/closure bodies simulated separately
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held until return.
			saved := inDefer
			inDefer = true
			ast.Inspect(n.Call, walk)
			inDefer = saved
			return false
		case *ast.CallExpr:
			if key, op := lockOp(pass.TypesInfo, n); key != "" {
				if inDefer {
					return true
				}
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return true
			}
			if key, op := wgOp(pass.TypesInfo, n); key != "" && op == "Wait" {
				for lock := range held {
					if goroutineLocks[lock] {
						pass.Reportf(n.Pos(), "%s.Wait while holding %s, which a goroutine spawned in this function also locks; if that goroutine has not passed its critical section this deadlocks", key, lock)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}
