// Package analyzers holds the provlint analyzer suite. Each analyzer
// encodes one contract this repo's earlier PRs established at runtime
// and promotes it to a build-time check; registry.go is the single
// list the provlint binary, the meta-test, and the docs all key off.
package analyzers

import "provex/internal/analysis"

// All returns every provlint analyzer, in stable order. The first
// four date from PR 5 (filesystem, durability, metrics and allocation
// contracts); the concurrency four extend the same machinery to the
// lock discipline, goroutine lifecycles and atomics the sharded
// engine and the replication layer rest on.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FsxDiscipline,
		DurabilityErr,
		MetricsReg,
		HotPathAlloc,
		LockGuard,
		WgBalance,
		AtomicMix,
		SendAfterClose,
	}
}
