package analyzers

import (
	"go/ast"
	"go/types"

	"provex/internal/analysis"
)

// fsxMutatingFuncs are the package-level os functions that create,
// mutate, or destroy filesystem state. Read-only calls (os.Open,
// os.ReadFile, os.Stat) are deliberately absent: crash-safety is a
// property of writes.
var fsxMutatingFuncs = map[string]bool{
	"Create":    true,
	"OpenFile":  true,
	"Rename":    true,
	"Remove":    true,
	"RemoveAll": true,
	"WriteFile": true,
	"Truncate":  true,
	"Mkdir":     true,
	"MkdirAll":  true,
	"Link":      true,
	"Symlink":   true,
}

// fsxMutatingMethods are the *os.File methods that write. Read/Close/
// Seek/Name on a file opened elsewhere are allowed — a handle that
// only reads cannot tear the on-disk image.
var fsxMutatingMethods = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"ReadFrom":    true,
	"Sync":        true,
	"Truncate":    true,
	"Chmod":       true,
}

// FsxDiscipline enforces the crash-safety boundary PR 2 established:
// every filesystem mutation must flow through internal/fsx so the
// fault-injection filesystems (FaultFS torn writes, MemFS.Crash) and
// the crash-torture test exercise it.
var FsxDiscipline = &analysis.Analyzer{
	Name: "fsxdiscipline",
	Doc: `raw os file mutation outside the internal/fsx boundary

All file writes, renames, and removals must go through an fsx.FS so
fault injection (FaultFS) and crash simulation (MemFS.Crash) cover
them; a raw os.OpenFile is a durability bug the crash-torture test can
never catch. The boundary:

  - internal/fsx itself is exempt (it is the boundary);
  - _test.go files are exempt (fixtures and scratch dirs are fine);
  - cmd/ binaries may use os for flags, stdout, and os.Open-style
    reads, but file *writes* — including report or dataset output that
    later feeds the store via ingest — go through fsx (fsx.OS{} costs
    one line) or carry a //provlint:ignore fsxdiscipline <reason>
    stating why the bytes can never reach the durability layer.`,
	Run: runFsxDiscipline,
}

func runFsxDiscipline(pass *analysis.Pass) error {
	if pkgPathMatches(pass.Pkg.Path(), "internal/fsx") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if recvPkg, recvType := recvTypeName(fn); recvType != "" {
				if recvPkg == "os" && recvType == "File" && fsxMutatingMethods[fn.Name()] &&
					!isStdStream(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(),
						"(*os.File).%s bypasses the fsx fault-injection boundary; open the file through an fsx.FS",
						fn.Name())
				}
				return true
			}
			if funcPkgPath(fn) == "os" && fsxMutatingFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"os.%s bypasses the fsx fault-injection boundary; use an fsx.FS (fsx.OS{} in production code)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// isStdStream reports whether the method call's receiver is literally
// os.Stdout/os.Stderr/os.Stdin: writing to the process streams is not
// filesystem state and is always allowed.
func isStdStream(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[recv.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	switch obj.Name() {
	case "Stdout", "Stderr", "Stdin":
		return true
	}
	return false
}
