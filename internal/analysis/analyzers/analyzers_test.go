package analyzers

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"provex/internal/analysis/analysistest"
)

func TestFsxDiscipline(t *testing.T) {
	analysistest.Run(t, FsxDiscipline, "fsxdiscipline")
}

func TestDurabilityErr(t *testing.T) {
	analysistest.Run(t, DurabilityErr, "durabilityerr",
		"provex/internal/shard", "provex/internal/repl")
}

func TestMetricsReg(t *testing.T) {
	analysistest.Run(t, MetricsReg, "metricsreg")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, HotPathAlloc, "hotpathalloc")
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, LockGuard, "lockguard")
}

func TestWgBalance(t *testing.T) {
	analysistest.Run(t, WgBalance, "wgbalance")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, AtomicMix, "atomicmix")
}

func TestSendAfterClose(t *testing.T) {
	analysistest.Run(t, SendAfterClose, "sendafterclose")
}

// TestSuppression runs fsxdiscipline over a fixture where some
// violations carry //provlint:ignore directives: suppressed lines must
// stay silent, mismatched or out-of-range directives must not.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, FsxDiscipline, "suppress")
}

// TestSuppressionConcurrency proves the ignore scanner composes with
// the concurrency analyzers: directives naming lockguard/atomicmix
// silence exactly the lines they cover, and mismatched analyzer names
// or out-of-range directives leave the finding live.
func TestSuppressionConcurrency(t *testing.T) {
	analysistest.Run(t, LockGuard, "suppresslock")
	analysistest.Run(t, AtomicMix, "suppressatomic")
}

// TestParseGuardedBy pins the annotation grammar the lockguard
// analyzer and CONTRIBUTING.md both promise.
func TestParseGuardedBy(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"// guarded by mu", "mu", true},
		{"// guarded by mu.", "mu", true},
		{"// hit count; guarded by statsMu, see DESIGN.md", "statsMu", true},
		{"// guarded by RWMutex", "RWMutex", true},
		{"// guarded by s.mu", "", false}, // dotted paths are not sibling names
		{"// guarded by", "", false},
		{"// guarded by 2fast", "", false},
		{"// plain prose with no marker", "", false},
		{"// guard by mu (typo: not the marker)", "", false},
	}
	for _, c := range cases {
		name, ok := parseGuardedBy(c.text)
		if ok != c.ok || name != c.name {
			t.Errorf("parseGuardedBy(%q) = (%q, %v), want (%q, %v)", c.text, name, ok, c.name, c.ok)
		}
	}
}

// FuzzParseGuardedBy holds the annotation parser to its contract on
// arbitrary comment text: never panic, and any accepted name is a
// plain non-empty Go identifier that round-trips through a canonical
// annotation.
func FuzzParseGuardedBy(f *testing.F) {
	f.Add("// guarded by mu")
	f.Add("// guarded by ")
	f.Add("//guarded by\tmu.")
	f.Add("// totals; guarded by statsMu, repo convention")
	f.Add("/* guarded by rw */")
	f.Fuzz(func(t *testing.T, text string) {
		name, ok := parseGuardedBy(text)
		if !ok {
			if name != "" {
				t.Fatalf("rejected input returned non-empty name %q", name)
			}
			return
		}
		if name == "" {
			t.Fatal("accepted annotation with empty mutex name")
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ident := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
			if !ident {
				t.Fatalf("accepted name %q contains non-identifier byte %q", name, c)
			}
		}
		again, ok2 := parseGuardedBy("// guarded by " + name)
		if !ok2 || again != name {
			t.Fatalf("canonical annotation for %q did not round-trip: (%q, %v)", name, again, ok2)
		}
	})
}

// TestEveryAnalyzerHasFixture is the meta-test: each analyzer wired
// into provlint must ship a testdata fixture that demonstrably makes
// it fire, so a new analyzer cannot land untested.
func TestEveryAnalyzerHasFixture(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc or Run", a)
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true

		dir := filepath.Join("testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %q has no fixture package under testdata/src/%s: %v", a.Name, a.Name, err)
			continue
		}
		hasWant := false
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(data, []byte("// want ")) {
				hasWant = true
			}
		}
		if !hasWant {
			t.Errorf("fixture for analyzer %q has no // want expectations: it cannot prove the analyzer fires", a.Name)
		}
	}
}
