package analyzers

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"provex/internal/analysis/analysistest"
)

func TestFsxDiscipline(t *testing.T) {
	analysistest.Run(t, FsxDiscipline, "fsxdiscipline")
}

func TestDurabilityErr(t *testing.T) {
	analysistest.Run(t, DurabilityErr, "durabilityerr")
}

func TestMetricsReg(t *testing.T) {
	analysistest.Run(t, MetricsReg, "metricsreg")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, HotPathAlloc, "hotpathalloc")
}

// TestSuppression runs fsxdiscipline over a fixture where some
// violations carry //provlint:ignore directives: suppressed lines must
// stay silent, mismatched or out-of-range directives must not.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, FsxDiscipline, "suppress")
}

// TestEveryAnalyzerHasFixture is the meta-test: each analyzer wired
// into provlint must ship a testdata fixture that demonstrably makes
// it fire, so a new analyzer cannot land untested.
func TestEveryAnalyzerHasFixture(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc or Run", a)
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true

		dir := filepath.Join("testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %q has no fixture package under testdata/src/%s: %v", a.Name, a.Name, err)
			continue
		}
		hasWant := false
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(data, []byte("// want ")) {
				hasWant = true
			}
		}
		if !hasWant {
			t.Errorf("fixture for analyzer %q has no // want expectations: it cannot prove the analyzer fires", a.Name)
		}
	}
}
