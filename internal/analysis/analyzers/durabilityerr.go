package analyzers

import (
	"go/ast"
	"go/types"

	"provex/internal/analysis"
)

// durabilityCritical lists the calls whose error return IS the
// durability guarantee: ignoring it converts "the write may fail" into
// "the write silently failed". Each entry is matched by defining
// package (full path or module-relative suffix), receiver type name
// ("" for package-level functions), and method/function name.
type critCall struct {
	pkg    string // matched via pkgPathMatches
	recv   string // receiver type name; "" = package-level func
	name   string
	advice string
}

var durabilityCritical = []critCall{
	{"internal/wal", "Log", "Append", "a dropped WAL append loses the message on crash"},
	{"internal/wal", "Log", "Truncate", "a dropped truncate error can leave a sealed log the next recovery rejects"},
	{"internal/wal", "Log", "Sync", "an unchecked fsync means acknowledged data may not be durable"},
	{"internal/storage", "Store", "Put", "a dropped Put error silently loses the bundle from the store"},
	{"internal/storage", "Store", "Sync", "an unchecked store sync means flushed bundles may not be durable"},
	{"internal/storage", "Store", "Compact", "an unchecked compaction error can strand dead segments"},
	{"internal/core", "Engine", "WriteCheckpoint", "a failed checkpoint write must abort the checkpoint, not seal garbage"},
	{"internal/core", "Engine", "SaveCheckpoint", "a failed checkpoint write must abort the checkpoint, not seal garbage"},
	{"internal/pipeline", "Durable", "Checkpoint", "an unchecked checkpoint failure leaves recovery pinned to the previous checkpoint"},
	{"internal/shard", "ledger", "append", "a dropped ledger append loses the barrier cut; recovery replays from a stale coordinate"},
	{"internal/shard", "ledger", "reset", "an unchecked ledger reset can leave a stale cut that recovery trusts over newer shard state"},
	{"internal/shard", "", "writeManifest", "an unchecked manifest write breaks the atomic commit point of the sharded checkpoint"},
	{"internal/shard", "", "wipeDir", "an unchecked wipe can leave stale shard files that the next recovery resurrects"},
	{"internal/repl", "Replica", "downloadTo", "an unchecked checkpoint download can install a torn snapshot as the replica's base state"},
	{"internal/repl", "Replica", "resync", "an unchecked resync failure leaves the replica serving stale state while reporting progress"},
	{"internal/fsx", "File", "Write", "an unchecked write can tear the file image"},
	{"internal/fsx", "File", "WriteAt", "an unchecked write can tear the file image"},
	{"internal/fsx", "File", "Sync", "an unchecked fsync is the canonical lost-durability bug"},
	{"internal/fsx", "File", "Truncate", "an unchecked truncate can leave a torn tail that replay rejects"},
	{"internal/fsx", "FS", "Rename", "an unchecked rename breaks the atomic-checkpoint commit point"},
	{"internal/fsx", "FS", "Remove", "an unchecked remove can resurrect stale state on recovery"},
	{"internal/fsx", "FS", "MkdirAll", "an unchecked mkdir fails every subsequent write in the tree"},
}

// DurabilityErr flags durability-critical calls whose error result is
// discarded: as a bare expression statement, via `_`, or inside
// go/defer. PR 2's crash-safety argument is that every failure path is
// observed and either retried or latched; a single dropped error
// re-opens the silent-loss hole the WAL exists to close.
var DurabilityErr = &analysis.Analyzer{
	Name: "durabilityerr",
	Doc: `discarded error from a durability-critical call

Errors from wal.Append/Truncate/Sync, storage.Put/Sync/Compact,
checkpoint writes, and fsx write/fsync/rename calls must be checked.
These errors are the crash-safety contract: the WAL+checkpoint
recovery proof (DESIGN.md §2d) assumes every failed write is observed
by the caller. Discarding one with _, a bare statement, or defer means
an injected fault in testing — or a real ENOSPC in production —
vanishes. _test.go files are exempt.`,
	Run: runDurabilityErr,
}

func matchCritical(fn *types.Func) *critCall {
	recvPkg, recvType := recvTypeName(fn)
	for i := range durabilityCritical {
		c := &durabilityCritical[i]
		if c.name != fn.Name() {
			continue
		}
		if c.recv == "" {
			if recvType == "" && pkgPathMatches(funcPkgPath(fn), c.pkg) {
				return c
			}
			continue
		}
		if recvType == c.recv && pkgPathMatches(recvPkg, c.pkg) {
			return c
		}
	}
	return nil
}

// critDiscarded reports the critical callee of call if the call's
// error result is not bound to a usable variable.
func describe(fn *types.Func) string {
	if _, recvType := recvTypeName(fn); recvType != "" {
		return recvType + "." + fn.Name()
	}
	return fn.Name()
}

func runDurabilityErr(pass *analysis.Pass) error {
	report := func(call *ast.CallExpr, how string) {
		fn := callee(pass.TypesInfo, call)
		c := matchCritical(fn)
		if c == nil {
			return
		}
		pass.Reportf(call.Pos(), "error from %s %s: %s", describe(fn), how, c.advice)
	}
	isCritical := func(e ast.Expr) *ast.CallExpr {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := callee(pass.TypesInfo, call)
		if fn == nil || matchCritical(fn) == nil {
			return nil
		}
		return call
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call := isCritical(stmt.X); call != nil {
					report(call, "is discarded")
				}
			case *ast.GoStmt:
				if call := isCritical(stmt.Call); call != nil {
					report(call, "is discarded by go")
				}
			case *ast.DeferStmt:
				if call := isCritical(stmt.Call); call != nil {
					report(call, "is discarded by defer")
				}
			case *ast.AssignStmt:
				// call as the sole RHS: results map positionally onto
				// the LHS; the error is the last result.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call := isCritical(stmt.Rhs[0])
				if call == nil {
					return true
				}
				sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
				if !ok || sig.Results().Len() == 0 || sig.Results().Len() != len(stmt.Lhs) {
					return true
				}
				last := sig.Results().At(sig.Results().Len() - 1)
				if !types.Identical(last.Type(), types.Universe.Lookup("error").Type()) {
					return true
				}
				if id, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					report(call, "is assigned to _")
				}
			}
			return true
		})
	}
	return nil
}
