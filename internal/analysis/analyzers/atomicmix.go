package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"provex/internal/analysis"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// in one place and through plain loads or stores in another. Mixing
// the two silently downgrades every access to a data race: the plain
// side tears under concurrent atomic writes, and the compiler is free
// to cache the plain load across the atomic store. The safe states
// are all-atomic (or better, the typed atomic.Int64 family, which
// makes plain access a compile error) or all-guarded. Freshly
// constructed values and _test.go files are exempt;
// //provlint:ignore atomicmix covers paths proven single-goroutine.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: `field accessed both via sync/atomic and via plain load/store

A field passed to atomic.Add/Load/Store/Swap/CompareAndSwap in one
function and read or written plainly in another races: the plain
access is invisible to the atomic protocol. Either every access goes
through sync/atomic (prefer the typed atomic.Int64 family, which the
compiler enforces) or the field moves under a mutex. Constructor-time
initialization of freshly built values and _test.go files are exempt.`,
	Run: runAtomicMix,
}

// atomicFnPrefixes are the sync/atomic package-level function families
// whose first argument is the address of the operated-on word.
var atomicFnPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

// atomicTarget resolves the struct field a sync/atomic call operates
// on (the &x.f first argument), or nil.
func atomicTarget(info *types.Info, call *ast.CallExpr) *types.Var {
	fn := callee(info, call)
	if fn == nil || !pkgPathMatches(funcPkgPath(fn), "sync/atomic") {
		return nil
	}
	if _, recvType := recvTypeName(fn); recvType != "" {
		// Typed atomics (atomic.Int64 etc.) cannot be mixed; nothing
		// to track.
		return nil
	}
	matched := false
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			matched = true
			break
		}
	}
	if !matched || len(call.Args) == 0 {
		return nil
	}
	ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func runAtomicMix(pass *analysis.Pass) error {
	// Pass 1: every field that is the target of a sync/atomic call,
	// with one example position for the diagnostic.
	atomicFields := make(map[*types.Var]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v := atomicTarget(pass.TypesInfo, call); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain accesses to those fields. A selector is "plain"
	// unless it sits under the & of a sync/atomic call.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshLocals(pass.TypesInfo, fd.Body)
			checkPlainAccesses(pass, fd, atomicFields, fresh)
		}
	}
	return nil
}

func checkPlainAccesses(pass *analysis.Pass, fd *ast.FuncDecl, atomicFields map[*types.Var]token.Pos, fresh map[types.Object]bool) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		defer func() { stack = append(stack, n) }()
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		atomicPos, tracked := atomicFields[v]
		if !tracked {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && fresh[obj] {
				return true
			}
		}
		if underAtomicCall(pass.TypesInfo, stack) {
			return true
		}
		pass.Reportf(sel.Pos(), "plain access of %s, which is accessed via sync/atomic at %s; mixed plain/atomic access is a data race", v.Name(), pass.Position(atomicPos))
		return true
	})
}

// underAtomicCall reports whether the innermost enclosing expression
// chain is `&x.f` inside a sync/atomic call's argument list.
func underAtomicCall(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return false
			}
			continue
		case *ast.CallExpr:
			return atomicTarget(info, n) != nil
		default:
			return false
		}
	}
	return false
}
