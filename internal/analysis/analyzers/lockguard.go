package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"provex/internal/analysis"
)

// LockGuard enforces `// guarded by <mutex>` field annotations: every
// read or write of an annotated field must happen with the named
// sibling mutex held. The check is intra-procedural and lexical — a
// statement-ordered held-lock set per function, branches analyzed
// with a copy and assumed lock-balanced — which is exactly the
// discipline the repo's own code follows (lock, touch, unlock, or
// defer the unlock). Escape hatches, in order of preference:
//
//   - methods whose name ends in "Locked" (repo convention: the
//     caller already holds the receiver's locks) are skipped;
//   - values freshly constructed in the same function are exempt
//     (constructors publish after initialization);
//   - closures are analyzed with an empty held set — a collector or
//     goroutine body must take the lock itself, which is also how
//     render-time Snapshot collectors behave;
//   - _test.go files are exempt;
//   - //provlint:ignore lockguard <reason> for deliberate exceptions
//     (e.g. reads on a path proven single-goroutine).
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: `access to a // guarded by field without its mutex held

A struct field annotated // guarded by mu may only be read with mu
(or mu.RLock for an RWMutex) held, and only written under the full
Lock. The annotation turns DESIGN.md's prose concurrency contracts
(§2c/§2h/§2i) into a machine-checked invariant: the analyzer tracks
Lock/RLock/Unlock/RUnlock lexically through each function and flags
any access outside the critical section. Freshly-constructed values,
*Locked methods, closures that lock for themselves, and _test.go
files are exempt.`,
	Run: runLockGuard,
}

// guardInfo describes one annotated field's guard.
type guardInfo struct {
	mutexName string // sibling field name, as the annotation spells it
	rw        bool   // guard is a sync.RWMutex (reads may hold RLock)
}

// held-lock modes, ordered by strength.
const (
	heldNone = iota
	heldRead
	heldWrite
)

type heldSet map[string]int

func (h heldSet) copy() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func applyLockOp(held heldSet, key, op string) {
	switch op {
	case "Lock":
		held[key] = heldWrite
	case "RLock":
		if held[key] < heldRead {
			held[key] = heldRead
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

func runLockGuard(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Convention: fooLocked runs with the caller holding
				// the relevant locks; the call sites are checked.
				continue
			}
			c := &lockguardChecker{
				pass:   pass,
				guards: guards,
				fresh:  freshLocals(pass.TypesInfo, fd.Body),
			}
			c.block(fd.Body.List, heldSet{})
		}
	}
	return nil
}

// collectGuards maps each annotated struct field to its guard, and
// reports annotations that name a missing or non-mutex sibling so a
// typo cannot silently disable the check.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				name, ok := fieldGuardAnnotation(field)
				if !ok {
					continue
				}
				rw, found := findSiblingMutex(pass.TypesInfo, st, name)
				if !found {
					pass.Reportf(field.Pos(), "// guarded by %s: no sibling sync.Mutex or sync.RWMutex field named %q in this struct", name, name)
					continue
				}
				for _, id := range field.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						guards[v] = guardInfo{mutexName: name, rw: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuardAnnotation scans a field's trailing and doc comments for
// the guarded-by marker.
func fieldGuardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if name, ok := parseGuardedBy(c.Text); ok {
				return name, true
			}
		}
	}
	return "", false
}

// findSiblingMutex locates the named field in the same struct and
// checks it is a sync.Mutex or sync.RWMutex (directly, by pointer, or
// embedded — an embedded mutex is named by its type: "Mutex"
// or "RWMutex").
func findSiblingMutex(info *types.Info, st *ast.StructType, name string) (rw, found bool) {
	for _, field := range st.Fields.List {
		match := false
		for _, id := range field.Names {
			if id.Name == name {
				match = true
			}
		}
		if len(field.Names) == 0 {
			// Embedded field: its name is the type's base name.
			t := field.Type
			if se, ok := t.(*ast.SelectorExpr); ok {
				if se.Sel.Name == name {
					match = true
				}
			} else if id, ok := t.(*ast.Ident); ok && id.Name == name {
				match = true
			}
		}
		if !match {
			continue
		}
		t := info.TypeOf(field.Type)
		if t == nil {
			return false, false
		}
		if isNamedType(t, "sync", "Mutex") {
			return false, true
		}
		if isNamedType(t, "sync", "RWMutex") {
			return true, true
		}
		return false, false
	}
	return false, false
}

type lockguardChecker struct {
	pass   *analysis.Pass
	guards map[*types.Var]guardInfo
	fresh  map[types.Object]bool
}

func (c *lockguardChecker) block(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

// stmt threads the held-lock set through one statement. Control-flow
// statements analyze their bodies with a copy of the set and are
// assumed lock-balanced: a branch that unlocks must also return or
// re-lock, which matches every critical section in this repo.
func (c *lockguardChecker) stmt(s ast.Stmt, held heldSet) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := lockOp(c.pass.TypesInfo, call); key != "" {
				applyLockOp(held, key, op)
				return
			}
		}
		c.expr(s.X, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, held)
		}
		for _, l := range s.Lhs {
			c.writeTarget(l, held)
		}
	case *ast.IncDecStmt:
		c.writeTarget(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if key, _ := lockOp(c.pass.TypesInfo, s.Call); key != "" {
			// defer mu.Unlock() releases at return: the lock stays
			// held for the remainder of this body.
			return
		}
		c.expr(s.Call, held)
	case *ast.GoStmt:
		c.expr(s.Call, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, held)
		}
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.block(s.Body.List, held.copy())
		if s.Else != nil {
			c.stmt(s.Else, held.copy())
		}
	case *ast.ForStmt:
		inner := held.copy()
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body.List, held.copy())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			inner := held.copy()
			for _, e := range cl.List {
				c.expr(e, inner)
			}
			c.block(cl.Body, inner)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			c.block(cl.Body, held.copy())
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			inner := held.copy()
			if cl.Comm != nil {
				c.stmt(cl.Comm, inner)
			}
			c.block(cl.Body, inner)
		}
	case *ast.BlockStmt:
		c.block(s.List, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// expr checks read accesses inside an expression tree.
func (c *lockguardChecker) expr(e ast.Expr, held heldSet) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		c.access(e, held, false)
		c.expr(e.X, held)
	case *ast.FuncLit:
		// A closure may run on any goroutine (go, defer, collector
		// registration): it gets nothing for free and must take the
		// lock itself.
		c.block(e.Body.List, heldSet{})
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address lets the field escape the critical
			// section; demand the write lock.
			c.writeTarget(e.X, held)
			return
		}
		c.expr(e.X, held)
	case *ast.CallExpr:
		c.expr(e.Fun, held)
		for _, a := range e.Args {
			c.expr(a, held)
		}
	case *ast.BinaryExpr:
		c.expr(e.X, held)
		c.expr(e.Y, held)
	case *ast.ParenExpr:
		c.expr(e.X, held)
	case *ast.StarExpr:
		c.expr(e.X, held)
	case *ast.IndexExpr:
		c.expr(e.X, held)
		c.expr(e.Index, held)
	case *ast.IndexListExpr:
		c.expr(e.X, held)
		for _, i := range e.Indices {
			c.expr(i, held)
		}
	case *ast.SliceExpr:
		c.expr(e.X, held)
		c.expr(e.Low, held)
		c.expr(e.High, held)
		c.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		c.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.expr(el, held)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Key, held)
		c.expr(e.Value, held)
	}
}

// writeTarget checks an expression in a store position: assignment
// LHS, ++/--, or an address-taken operand. Indexing a guarded
// container field and storing mutates the field.
func (c *lockguardChecker) writeTarget(e ast.Expr, held heldSet) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		c.access(e, held, true)
		c.expr(e.X, held)
	case *ast.IndexExpr:
		c.writeTarget(e.X, held)
		c.expr(e.Index, held)
	case *ast.StarExpr:
		c.expr(e.X, held)
	case *ast.Ident:
		// Plain local/package var: never a guarded field access.
	default:
		c.expr(e, held)
	}
}

// access checks one guarded-field selector against the held set.
func (c *lockguardChecker) access(sel *ast.SelectorExpr, held heldSet, write bool) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	g, ok := c.guards[v]
	if !ok {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.fresh[obj] {
			return
		}
	}
	base := exprKey(sel.X)
	if base == "" {
		// A temporary (call result) we cannot tie to any lock
		// acquisition; left to the race detector.
		return
	}
	key := base + "." + g.mutexName
	mode := held[key]
	switch {
	case mode == heldNone:
		verb := "read of"
		if write {
			verb = "write to"
		}
		c.pass.Reportf(sel.Pos(), "%s %s.%s without %s held (field is // guarded by %s)", verb, base, v.Name(), key, g.mutexName)
	case write && mode == heldRead:
		c.pass.Reportf(sel.Pos(), "write to %s.%s under RLock of %s; writes need %s.Lock", base, v.Name(), key, key)
	}
}
