// Package analysistest runs a provlint analyzer over fixture packages
// under testdata/src and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that fixtures read identically.
//
// Fixtures are self-contained: imports resolve against testdata/src
// only (including stubs for "os", "fmt", and the provex packages the
// analyzers match on), never against the real module or GOROOT, so
// the tests are hermetic and fast. A fixture line expects diagnostics
// with a trailing comment:
//
//	f, _ := os.Create("x") // want `os\.Create bypasses`
//
// Each backquoted or double-quoted string is a regexp that must match
// exactly one diagnostic reported on that line; diagnostics with no
// matching want (and wants with no diagnostic) fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"provex/internal/analysis"
)

// TestDataDir is where fixture packages live, relative to the test.
const TestDataDir = "testdata/src"

// Run loads each fixture package (a directory under testdata/src),
// type-checks it hermetically, applies the analyzer (including the
// shared //provlint:ignore suppression pass), and compares
// diagnostics against the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(a.Name+"/"+pkgPath, func(t *testing.T) {
			runOne(t, a, pkgPath)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	imp := &fixtureImporter{
		root:     TestDataDir,
		fset:     token.NewFileSet(),
		packages: make(map[string]*fixturePkg),
	}
	fp, err := imp.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture package %q: %v", pkgPath, err)
	}
	diags, err := analysis.RunAnalyzers(imp.fset, fp.files, fp.pkg, fp.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, pkgPath, err)
	}
	checkWants(t, imp.fset, fp.files, diags)
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureImporter type-checks fixture packages rooted at testdata/src,
// resolving imports recursively against the same tree.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	packages map[string]*fixturePkg
	loading  []string // cycle detection
}

var _ types.Importer = (*fixtureImporter)(nil)

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	fp, err := fi.load(path)
	if err != nil {
		return nil, err
	}
	return fp.pkg, nil
}

func (fi *fixtureImporter) load(path string) (*fixturePkg, error) {
	if fp, ok := fi.packages[path]; ok {
		return fp, nil
	}
	for _, p := range fi.loading {
		if p == path {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
	}
	fi.loading = append(fi.loading, path)
	defer func() { fi.loading = fi.loading[:len(fi.loading)-1] }()

	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q is not stubbed under %s: %w", path, fi.root, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := &types.Config{
		Importer: fi,
		Sizes:    analysis.TypesSizes("amd64"),
	}
	pkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	fi.packages[path] = fp
	return fp, nil
}

// want is one expectation: a regexp at a file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE requires the pattern to start with a quote so prose that
// merely contains the word "want" is not mistaken for an expectation.
var wantRE = regexp.MustCompile("//\\s*want\\s+([\"`].*)$")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, m[1], pos) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the quoted (double-quote or backquote)
// patterns from the tail of a want comment.
func splitPatterns(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		end := 1
		for ; end < len(s); end++ {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+1]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: cannot unquote want pattern %s: %v", pos, raw, err)
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return pats
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.AnalyzerName)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
