package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func scan(t *testing.T, src string) (*token.FileSet, *Suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ScanSuppressions(fset, []*ast.File{f})
}

func TestScanSuppressionsCoverage(t *testing.T) {
	fset, s := scan(t, `package p

func f() {
	//provlint:ignore fsxdiscipline justified: scratch file
	g()
	g()
	g() //provlint:ignore durabilityerr,metricsreg trailing, two analyzers
}

func g() {}
`)
	_ = fset
	at := func(line int) token.Position {
		return token.Position{Filename: "fixture.go", Line: line}
	}
	// Line 4 is the directive, line 5 the statement below: both covered.
	if !s.Suppressed("fsxdiscipline", at(4)) || !s.Suppressed("fsxdiscipline", at(5)) {
		t.Error("directive above a statement must cover its own line and the next")
	}
	// Line 6 is two lines below the directive: out of range.
	if s.Suppressed("fsxdiscipline", at(6)) {
		t.Error("directive must not reach two lines below itself")
	}
	// The trailing directive on line 7 covers both named analyzers
	// on its own line, and only those.
	if !s.Suppressed("durabilityerr", at(7)) || !s.Suppressed("metricsreg", at(7)) {
		t.Error("comma-separated analyzer list must suppress every named analyzer")
	}
	if s.Suppressed("fsxdiscipline", at(7)) {
		t.Error("directive must not suppress analyzers it does not name")
	}
	if len(s.Malformed) != 0 {
		t.Errorf("well-formed directives reported as malformed: %v", s.Malformed)
	}
}

func TestScanSuppressionsMalformed(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//provlint:ignore\nfunc f() {}\n",               // no analyzer, no reason
		"package p\n\n//provlint:ignore fsxdiscipline\nfunc f() {}\n", // analyzer but no reason
		// The concurrency analyzers get no special treatment: an ignore
		// without a reason still fails, whatever analyzer it names.
		"package p\n\n//provlint:ignore lockguard\nfunc f() {}\n",
		"package p\n\n//provlint:ignore atomicmix\nfunc f() {}\n",
		"package p\n\n//provlint:ignore lockguard,atomicmix\nfunc f() {}\n",
	} {
		_, s := scan(t, src)
		if len(s.Malformed) != 1 {
			t.Errorf("source %q: got %d malformed diagnostics, want 1", src, len(s.Malformed))
			continue
		}
		if !strings.Contains(s.Malformed[0].Message, "malformed //provlint:ignore") {
			t.Errorf("unexpected malformed message %q", s.Malformed[0].Message)
		}
	}
}

func TestScanSuppressionsIgnoresProse(t *testing.T) {
	// A space after // (prose style) or a mid-sentence mention must not
	// register a directive or a malformed report.
	_, s := scan(t, `package p

// provlint:ignore directives look like this, but this comment is prose.
// See the docs on provlint:ignore for details.
func f() {}
`)
	if len(s.Malformed) != 0 {
		t.Errorf("prose mentioning the directive reported as malformed: %v", s.Malformed)
	}
	if s.Suppressed("fsxdiscipline", token.Position{Filename: "fixture.go", Line: 4}) {
		t.Error("prose comment must not suppress anything")
	}
}
