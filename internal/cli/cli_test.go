package cli

import (
	"context"
	"log/slog"
	"testing"
)

func TestSetupLogging(t *testing.T) {
	old := slog.Default()
	defer slog.SetDefault(old)

	for _, level := range []string{"debug", "info", "WARN", "Error"} {
		if err := SetupLogging(level); err != nil {
			t.Errorf("SetupLogging(%q) = %v", level, err)
		}
	}
	if err := SetupLogging("verbose"); err == nil {
		t.Error("SetupLogging(\"verbose\") accepted an unknown level")
	}
}

func TestLevelFiltering(t *testing.T) {
	old := slog.Default()
	defer slog.SetDefault(old)

	if err := SetupLogging("warn"); err != nil {
		t.Fatal(err)
	}
	h := slog.Default().Handler()
	if h.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("info enabled at -log-level warn")
	}
	if !h.Enabled(context.Background(), slog.LevelError) {
		t.Error("error disabled at -log-level warn")
	}
}
