// Package cli centralises the conventions shared by every cmd/*
// binary: one -log-level flag, one slog setup (TextHandler on stderr,
// so stdout stays reserved for each tool's actual output), and one
// fatal-exit helper. Keeping this in a package rather than per-main
// boilerplate is what keeps the 7 binaries' logging uniform.
package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
)

// LogLevelFlag registers the shared -log-level flag on the default
// flag set. Call before flag.Parse, then pass the parsed value to
// SetupLogging.
func LogLevelFlag() *string {
	return flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
}

// SetupLogging installs the process-wide slog default: a TextHandler
// on stderr filtered at the given level. Level names parse per
// slog.Level.UnmarshalText (case-insensitive, DEBUG/INFO/WARN/ERROR).
func SetupLogging(level string) error {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})))
	return nil
}

// Fatal logs msg (plus an optional error and attrs) at error level and
// exits non-zero.
func Fatal(msg string, err error, attrs ...any) {
	if err != nil {
		attrs = append(attrs, "err", err)
	}
	slog.Error(msg, attrs...)
	os.Exit(1)
}
