// Package storage is the on-disk bundle back-end of the paper's
// framework (Figure 4): finished bundles that no longer receive updates
// are flushed out of the in-memory pool and kept durably for later
// retrieval and analysis.
//
// Layout: a store directory holds append-only segment files
// (seg-000001.bls, seg-000002.bls, ...). Each segment starts with an
// 8-byte magic and carries length-prefixed, CRC32C-guarded records,
// one encoded bundle per record. An in-memory directory maps bundle ID
// to its newest record position; re-flushing a bundle supersedes the
// previous record (last write wins), and superseded records are dead
// weight until Compact rewrites live records into fresh segments.
//
// Recovery: Open scans every segment. A corrupt or torn record in the
// final segment truncates the tail (the torn-write case of a crash
// mid-append), and a final segment whose header never reached the disk
// (a crash during rotation) is discarded; corruption anywhere else is
// reported as an error, since sealed segments are never legitimately
// half-written.
//
// All filesystem access goes through an fsx.FS (Options.FS), so every
// failure path — torn write, ENOSPC, fsync error, frozen image — is
// testable with fsx's fault injector; production uses the real
// filesystem by default.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"provex/internal/bundle"
	"provex/internal/fsx"
)

var segMagic = [8]byte{'P', 'R', 'O', 'V', 'S', 'E', 'G', '1'}

const (
	recordHeaderSize = 8 // u32 length + u32 crc32c
	// DefaultSegmentSize rotates segments at 8 MiB, large enough to
	// amortise file overhead, small enough for cheap compaction.
	DefaultSegmentSize = 8 << 20
	// maxRecordLen caps one record's payload so a corrupt length field
	// cannot drive an absurd allocation during recovery.
	maxRecordLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a bundle ID absent from the store.
var ErrNotFound = errors.New("storage: bundle not found")

// ErrCorrupt reports an unreadable sealed segment.
var ErrCorrupt = errors.New("storage: corrupt segment")

// errBadMagic distinguishes a segment whose header never made it to
// disk (crash during rotation — recoverable for the final segment)
// from record corruption.
var errBadMagic = errors.New("bad magic")

// Options tune a Store.
type Options struct {
	// SegmentSize is the rotation threshold in bytes; 0 means
	// DefaultSegmentSize.
	SegmentSize int64
	// SyncEvery fsyncs the active segment after every n appends;
	// 0 disables explicit fsync (the OS flushes on its schedule, and
	// Sync/Close force it).
	SyncEvery int
	// FS is the filesystem the store lives on; nil uses the real one.
	// Tests substitute fsx.MemFS/fsx.FaultFS to exercise crash and
	// error paths.
	FS fsx.FS
}

// recordPos locates a record inside a segment.
type recordPos struct {
	seg    int
	offset int64
	length int64 // payload length
}

// Store is the bundle store. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	fs   fsx.FS

	active     fsx.File // guarded by mu
	activeSeg  int      // guarded by mu
	activeSize int64    // guarded by mu
	appends    int      // guarded by mu

	index     map[bundle.ID]recordPos // guarded by mu
	deadBytes int64                   // superseded record bytes, Compact trigger signal; guarded by mu
	liveBytes int64                   // guarded by mu

	// broken latches a failed tail repair: the active segment's on-disk
	// state no longer matches the in-memory cursor, so appends are
	// refused until the store is reopened (recovery truncates the torn
	// tail). Reads stay available. Guarded by mu.
	broken error
}

// Open opens (creating if needed) the store at dir and replays existing
// segments to rebuild the directory.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	opts.FS = fsx.Default(opts.FS)
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		fs:    opts.FS,
		index: make(map[bundle.ID]recordPos),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// segPath names segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.bls", n))
}

// listSegments returns existing segment numbers ascending.
func (s *Store) listSegments() ([]int, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "seg-%06d.bls", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// recover replays all segments, rebuilding the index. The final segment
// tolerates a torn tail, which is truncated away; a final segment whose
// magic never reached the disk (crash during rotation) is discarded;
// earlier segments must be pristine.
func (s *Store) recover() error {
	// Open has not published the store yet, so there is no contention —
	// but recover mutates the mu-guarded segment cursor and calls
	// *Locked helpers, so it takes the lock like any other writer.
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := s.listSegments()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if n := len(segs); n > 0 {
		bad, err := s.badMagic(segs[n-1])
		if err != nil {
			return err
		}
		if bad {
			if rmErr := s.fs.Remove(s.segPath(segs[n-1])); rmErr != nil {
				return fmt.Errorf("storage: remove stillborn segment: %w", rmErr)
			}
			segs = segs[:n-1]
		}
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		validLen, err := s.replaySegment(seg, last)
		if err != nil {
			return err
		}
		if last {
			s.activeSeg = seg
			s.activeSize = validLen
		}
	}
	if len(segs) == 0 {
		s.activeSeg = 0
		return s.rotateLocked()
	}
	// Reopen the final segment for appending, truncating a torn tail.
	f, err := s.fs.OpenFile(s.segPath(s.activeSeg), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Truncate(s.activeSize); err != nil {
		f.Close()
		return fmt.Errorf("storage: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	s.active = f
	return nil
}

// badMagic reports whether segment seg lacks a complete, correct magic
// header — the signature of a crash during rotation.
func (s *Store) badMagic(seg int) (bool, error) {
	f, err := s.fs.Open(s.segPath(seg))
	if err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		return true, nil
	}
	return false, nil
}

// replaySegment scans one segment, indexing its records. It returns the
// byte length of the valid prefix. tolerateTail permits a torn final
// record (returning the prefix before it); otherwise corruption errors.
func (s *Store) replaySegment(seg int, tolerateTail bool) (int64, error) {
	f, err := s.fs.Open(s.segPath(seg))
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()

	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		return 0, fmt.Errorf("%w: segment %d: %w", ErrCorrupt, seg, errBadMagic)
	}
	offset := int64(len(segMagic))
	var hdr [recordHeaderSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return offset, nil
		}
		if err != nil { // torn header
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: torn header at %d", ErrCorrupt, seg, offset)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: oversized record at %d", ErrCorrupt, seg, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: torn payload at %d", ErrCorrupt, seg, offset)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: bad checksum at %d", ErrCorrupt, seg, offset)
		}
		b, err := bundle.Unmarshal(payload)
		if err != nil {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: undecodable record at %d: %v", ErrCorrupt, seg, offset, err)
		}
		s.indexRecordLocked(b.ID(), recordPos{seg: seg, offset: offset, length: length})
		offset += recordHeaderSize + length
	}
}

// indexRecordLocked records the newest position of id, tracking dead
// bytes of any superseded record. Caller holds s.mu.
func (s *Store) indexRecordLocked(id bundle.ID, pos recordPos) {
	if old, ok := s.index[id]; ok {
		s.deadBytes += recordHeaderSize + old.length
		s.liveBytes -= recordHeaderSize + old.length
	}
	s.index[id] = pos
	s.liveBytes += recordHeaderSize + pos.length
}

// rotateLocked seals the active segment and opens the next one. Every
// failure path leaves the store retryable: a failed seal keeps the old
// segment active, and a half-created next segment is removed (or
// replaced on the next attempt) so it cannot shadow future rotations.
// Caller holds s.mu (or is in single-threaded Open).
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		err := s.active.Close()
		s.active = nil
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	next := s.activeSeg + 1
	f, err := s.fs.OpenFile(s.segPath(next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrExist) {
		// Debris of a previously failed rotation; replace it.
		if rmErr := s.fs.Remove(s.segPath(next)); rmErr == nil {
			f, err = s.fs.OpenFile(s.segPath(next), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		fsx.BestEffortRemove(s.fs, s.segPath(next))
		return fmt.Errorf("storage: %w", err)
	}
	// Make the header durable immediately: a crash after rotation must
	// find either a well-formed empty segment or (if this sync never
	// ran) a stillborn file that recovery discards.
	if err := f.Sync(); err != nil {
		f.Close()
		fsx.BestEffortRemove(s.fs, s.segPath(next))
		return fmt.Errorf("storage: %w", err)
	}
	s.active = f
	s.activeSeg = next
	s.activeSize = int64(len(segMagic))
	return nil
}

// repairTailLocked rewinds the active segment to its last good length
// after a failed append, so a retried Put starts from a clean boundary
// instead of appending after a dangling partial record. If the repair
// itself fails the store is marked broken: further Puts are refused
// (the on-disk tail is torn, which recovery on the next Open handles),
// rather than risking interior corruption a reopen could not detect.
func (s *Store) repairTailLocked() {
	if s.active == nil {
		return
	}
	if err := s.active.Truncate(s.activeSize); err != nil {
		s.broken = fmt.Errorf("storage: segment tail unrepaired: %w", err)
		return
	}
	if _, err := s.active.Seek(0, io.SeekEnd); err != nil {
		s.broken = fmt.Errorf("storage: segment tail unrepaired: %w", err)
	}
}

// Put appends b to the store. A bundle already present is superseded by
// the new record. A failed Put leaves the store exactly as it was, so
// the caller may retry (the engine's flush retry queue does).
func (s *Store) Put(b *bundle.Bundle) error {
	payload := b.Marshal()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if s.active == nil || s.activeSize >= s.opts.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.active.Write(hdr[:]); err != nil {
		s.repairTailLocked()
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := s.active.Write(payload); err != nil {
		s.repairTailLocked()
		return fmt.Errorf("storage: %w", err)
	}
	s.indexRecordLocked(b.ID(), recordPos{seg: s.activeSeg, offset: s.activeSize, length: int64(len(payload))})
	s.activeSize += recordHeaderSize + int64(len(payload))
	s.appends++
	if s.opts.SyncEvery > 0 && s.appends%s.opts.SyncEvery == 0 {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	return nil
}

// Get loads bundle id.
func (s *Store) Get(id bundle.ID) (*bundle.Bundle, error) {
	s.mu.Lock()
	pos, ok := s.index[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return s.readAt(pos)
}

func (s *Store) readAt(pos recordPos) (*bundle.Bundle, error) {
	// The active segment is written through s.active; reads open their
	// own handle so readers never disturb the append cursor.
	f, err := s.fs.Open(s.segPath(pos.seg))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	buf := make([]byte, recordHeaderSize+pos.length)
	if _, err := f.ReadAt(buf, pos.offset); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[recordHeaderSize:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch for segment %d offset %d", ErrCorrupt, pos.seg, pos.offset)
	}
	b, err := bundle.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return b, nil
}

// Has reports whether id is stored.
func (s *Store) Has(id bundle.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Count returns the number of live bundles.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// LiveBytes and DeadBytes report record accounting; their ratio drives
// Compact policy.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// DeadBytes returns superseded record bytes awaiting compaction.
func (s *Store) DeadBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadBytes
}

// IDs returns every stored bundle ID, ascending.
func (s *Store) IDs() []bundle.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]bundle.ID, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scan calls fn for every live bundle in ascending ID order, stopping
// at the first error.
func (s *Store) Scan(fn func(*bundle.Bundle) error) error {
	for _, id := range s.IDs() {
		b, err := s.Get(id)
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites live records into fresh segments and deletes old
// ones, reclaiming dead bytes. The store stays readable during the
// rewrite but Put is excluded for its duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	oldSegs, err := s.listSegments()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	ids := make([]bundle.ID, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Read everything first (positions reference old segments).
	bundles := make([]*bundle.Bundle, 0, len(ids))
	for _, id := range ids {
		b, err := s.readAt(s.index[id])
		if err != nil {
			return err
		}
		bundles = append(bundles, b)
	}

	// Start a fresh segment chain after the old ones.
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	s.index = make(map[bundle.ID]recordPos, len(ids))
	s.liveBytes, s.deadBytes = 0, 0
	if err := s.rotateLocked(); err != nil {
		return err
	}
	for _, b := range bundles {
		payload := b.Marshal()
		if s.activeSize >= s.opts.SegmentSize {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := s.active.Write(hdr[:]); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if _, err := s.active.Write(payload); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		s.indexRecordLocked(b.ID(), recordPos{seg: s.activeSeg, offset: s.activeSize, length: int64(len(payload))})
		s.activeSize += recordHeaderSize + int64(len(payload))
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, seg := range oldSegs {
		if err := s.fs.Remove(s.segPath(seg)); err != nil {
			return fmt.Errorf("storage: remove old segment: %w", err)
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage. The durability
// layer calls it before a checkpoint truncates the write-ahead log, so
// no flushed bundle can be lost once its source messages are.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Close syncs and closes the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	err := s.active.Close()
	s.active = nil
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
